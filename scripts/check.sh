#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run from the repo root before
# sending a change; CI-equivalent for this offline environment.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace, including the zkml CLI)"
cargo build --workspace --release

echo "==> cargo test -q (workspace, default ZKML_THREADS)"
cargo test --workspace -q

echo "==> cargo test -q (workspace, ZKML_THREADS=1)"
ZKML_THREADS=1 cargo test --workspace -q

echo "==> soundness suite (mock checker conformance + adversarial mutations)"
cargo test -p zkml-testkit --test soundness -q
cargo test -p zkml-plonk --test negative_path -q

echo "==> optimizer parity (parallel sweep == serial exhaustive sweep)"
cargo test -p zkml --test optimizer_parity -q

echo "==> segmented prove/verify round-trip (bundles identical across thread counts)"
SEG_TMP="$(mktemp -d)"
trap 'rm -rf "$SEG_TMP"' EXIT
./target/release/zkml prove MNIST --dir "$SEG_TMP/default" --segments 3 --seed 7
ZKML_THREADS=1 ./target/release/zkml prove MNIST --dir "$SEG_TMP/serial" --segments 3 --seed 7
cmp "$SEG_TMP/default/bundle.bin" "$SEG_TMP/serial/bundle.bin"
./target/release/zkml verify --dir "$SEG_TMP/default"
ZKML_THREADS=1 ./target/release/zkml verify --dir "$SEG_TMP/serial"

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
