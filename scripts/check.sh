#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run from the repo root before
# sending a change; CI-equivalent for this offline environment.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace, including the zkml CLI)"
cargo build --workspace --release

echo "==> cargo test -q (workspace, default ZKML_THREADS)"
cargo test --workspace -q

echo "==> cargo test -q (workspace, ZKML_THREADS=1)"
ZKML_THREADS=1 cargo test --workspace -q

echo "==> soundness suite (mock checker conformance + adversarial mutations)"
cargo test -p zkml-testkit --test soundness -q
cargo test -p zkml-plonk --test negative_path -q

echo "==> optimizer parity (parallel sweep == serial exhaustive sweep)"
cargo test -p zkml --test optimizer_parity -q

echo "==> static analyzer (rule unit tests, default + ZKML_THREADS=1)"
cargo test -p zkml-analyze -q
ZKML_THREADS=1 cargo test -p zkml-analyze -q

echo "==> analyzer enrollment (zoo clean, toy fixture flagged, every optimizer layout clean)"
# The enrollment suite sweeps all 15 zoo gadgets, asserts the committed
# underconstrained fixture is flagged with exactly its two free cells, and
# analyzes every candidate layout the optimizer evaluated for the example
# models — an expected-failure fixture plus an exhaustive clean sweep.
cargo test -p zkml-testkit --test analyze -q
cargo test -p zkml-testkit --test affected -q

echo "==> segmented prove/verify round-trip (bundles identical across thread counts)"
SEG_TMP="$(mktemp -d)"
trap 'rm -rf "$SEG_TMP"' EXIT
./target/release/zkml prove MNIST --dir "$SEG_TMP/default" --segments 3 --seed 7
ZKML_THREADS=1 ./target/release/zkml prove MNIST --dir "$SEG_TMP/serial" --segments 3 --seed 7
cmp "$SEG_TMP/default/bundle.bin" "$SEG_TMP/serial/bundle.bin"
./target/release/zkml verify --dir "$SEG_TMP/default"
ZKML_THREADS=1 ./target/release/zkml verify --dir "$SEG_TMP/serial"

echo "==> HTTP serving round-trip (submit, poll, download, verify, 429, drain)"
NET_TMP="$(mktemp -d)"
trap 'rm -rf "$SEG_TMP" "$NET_TMP"; [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true' EXIT
./target/release/zkml serve --http 127.0.0.1:0 \
  --journal "$NET_TMP/journal.jsonl" --port-file "$NET_TMP/port" \
  --workers 2 --tenant-limit throttled:0.1:1:8 &
SERVER_PID=$!
for _ in $(seq 1 100); do [ -s "$NET_TMP/port" ] && break; sleep 0.1; done
ADDR="$(cat "$NET_TMP/port")"
# Monolithic prove over HTTP: submit, wait, download artifacts, verify.
./target/release/zkml submit MNIST --http "$ADDR" --tenant ci --seed 7 \
  --wait --timeout-s 600 --dir "$NET_TMP/proof"
./target/release/zkml verify --dir "$NET_TMP/proof"
# Segmented prove over HTTP: same round-trip with a 3-segment bundle.
./target/release/zkml submit MNIST --http "$ADDR" --tenant ci --seed 7 \
  --segments 3 --wait --timeout-s 600 --dir "$NET_TMP/bundle"
./target/release/zkml verify --dir "$NET_TMP/bundle"
# Admission: the throttled tenant's second submit must be a 429 (exit 3).
./target/release/zkml submit sleep --http "$ADDR" --tenant throttled
if ./target/release/zkml submit sleep --http "$ADDR" --tenant throttled; then
  echo "expected a 429 rejection for tenant 'throttled'" >&2; exit 1
else
  [ $? -eq 3 ] || { echo "429 should map to exit code 3" >&2; exit 1; }
fi
# Commit-and-prove over HTTP: publish the weight commitment on the server's
# registry, prove against the returned digest, verify the download against it.
./target/release/zkml commit-model MNIST --http "$ADDR" | tee "$NET_TMP/commit.out"
DIGEST_HTTP="$(sed -n 's/^model digest: //p' "$NET_TMP/commit.out")"
./target/release/zkml submit MNIST --http "$ADDR" --tenant ci --seed 9 \
  --model "$DIGEST_HTTP" --wait --timeout-s 600 --dir "$NET_TMP/committed"
./target/release/zkml verify --dir "$NET_TMP/committed" --model "$DIGEST_HTTP"
# Graceful drain: SIGTERM, server exits 0 with the journal settled.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
grep -q '"rec":"completed"' "$NET_TMP/journal.jsonl"

echo "==> commit-and-prove (publish once, prove twice, zero re-keygen/re-encode)"
CP_TMP="$(mktemp -d)"
trap 'rm -rf "$SEG_TMP" "$NET_TMP" "$CP_TMP"; [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true' EXIT
# Standalone CLI quickstart: publish, prove under the digest, verify against it.
./target/release/zkml commit-model MNIST --dir "$CP_TMP/registry"
DIGEST="$(basename "$CP_TMP/registry"/*.wc .wc)"
./target/release/zkml prove MNIST --dir "$CP_TMP/proof" --seed 7 --model "$DIGEST"
./target/release/zkml verify --dir "$CP_TMP/proof" --model "$DIGEST"
# A foreign digest must fail with the distinct commitment-mismatch exit code 4.
BAD_DIGEST="$(printf '0%.0s' $(seq 1 64))"
if ./target/release/zkml verify --dir "$CP_TMP/proof" --model "$BAD_DIGEST"; then
  echo "expected a commitment mismatch for a foreign digest" >&2; exit 1
else
  [ $? -eq 4 ] || { echo "commitment mismatch should map to exit code 4" >&2; exit 1; }
fi
# Counter regression: after one publication, proving twice against the digest
# performs zero keygens and zero weight re-encodings (runs alone because it
# reads process-global counters).
cargo test -p zkml-service --test commitment -q -- --ignored --test-threads=1

echo "==> perf smoke (kernel + 4-thread ratios at small k vs PERF_THRESHOLDS.json)"
# Gates the serial jacobian/batch-affine MSM ratio and the 4-thread/1-thread
# MSM and FFT ratios. Thresholds are hardware-stamped: on a machine with a
# different core count the parallel gates auto-skip; re-baseline with
# ZKML_PERF_RECORD=1 cargo run --release -p zkml-bench --bin perf_smoke
cargo run --release -q -p zkml-bench --bin perf_smoke

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
