#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run from the repo root before
# sending a change; CI-equivalent for this offline environment.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace, default ZKML_THREADS)"
cargo test --workspace -q

echo "==> cargo test -q (workspace, ZKML_THREADS=1)"
ZKML_THREADS=1 cargo test --workspace -q

echo "==> soundness suite (mock checker conformance + adversarial mutations)"
cargo test -p zkml-testkit --test soundness -q
cargo test -p zkml-plonk --test negative_path -q

echo "==> optimizer parity (parallel sweep == serial exhaustive sweep)"
cargo test -p zkml --test optimizer_parity -q

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
