//! Cross-thread-count determinism: every parallelized kernel, and the full
//! prover, must produce bit-identical results on a 1-thread pool, a 2-thread
//! pool, and the default global pool.
//!
//! The `zkml-par` contract is that parallel decomposition never changes a
//! value: chunks are reduced in order and field arithmetic is exact. These
//! tests enforce that contract end to end — `scripts/check.sh` additionally
//! re-runs the whole suite under `ZKML_THREADS=1` to cover the env-var
//! path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_curves::{msm, G1Affine, G1Projective};
use zkml_ff::{Field, Fr};
use zkml_model::{Activation, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_poly::EvaluationDomain;
use zkml_tensor::{FixedPoint, Tensor};

/// Runs `f` under a 1-thread pool, a 2-thread pool, and the default global
/// pool, and asserts all three results are equal.
fn assert_pool_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let serial = zkml_par::with_pool(&zkml_par::Pool::new(1), &f);
    let two = zkml_par::with_pool(&zkml_par::Pool::new(2), &f);
    let default = f();
    assert_eq!(serial, two, "1-thread vs 2-thread mismatch");
    assert_eq!(serial, default, "1-thread vs default-pool mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Pippenger MSM (bucket path) is bit-identical at any thread count.
    #[test]
    fn msm_thread_count_invariant(seed in any::<u64>(), n in 32usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = G1Projective::generator();
        let uniq: Vec<G1Affine> = (0..16)
            .map(|_| g.mul_scalar(&Fr::random(&mut rng)).to_affine())
            .collect();
        let bases: Vec<G1Affine> = (0..n).map(|i| uniq[i % 16]).collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        assert_pool_invariant(|| msm(&bases, &scalars));
    }

    /// The (i)FFT, including the parallel butterfly stages at k >= 12, is
    /// bit-identical at any thread count.
    #[test]
    fn fft_thread_count_invariant(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 12u32;
        let domain = EvaluationDomain::<Fr>::new(k);
        let coeffs: Vec<Fr> = (0..domain.n).map(|_| Fr::random(&mut rng)).collect();
        assert_pool_invariant(|| {
            let mut v = coeffs.clone();
            domain.fft(&mut v);
            let evals = v.clone();
            domain.ifft(&mut v);
            (evals, v)
        });
    }

    /// Coset FFTs (the quotient-evaluation substrate: coset scaling plus the
    /// extended-domain transform) are bit-identical at any thread count.
    #[test]
    fn coset_fft_thread_count_invariant(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let domain = EvaluationDomain::<Fr>::new(12);
        let coeffs: Vec<Fr> = (0..domain.n).map(|_| Fr::random(&mut rng)).collect();
        assert_pool_invariant(|| {
            let mut v = coeffs.clone();
            domain.coset_fft(&mut v);
            let evals = v.clone();
            domain.coset_ifft(&mut v);
            (evals, v)
        });
    }
}

fn small_model() -> zkml_model::Graph {
    let mut b = GraphBuilder::new("par-determinism-mlp", 21);
    let x = b.input(vec![1, 4], "x");
    let w1 = b.weight(vec![4, 8], "w1");
    let b1 = b.weight(vec![8], "b1");
    let h = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Relu),
        },
        &[x, w1, b1],
        "fc1",
    );
    let w2 = b.weight(vec![8, 2], "w2");
    let b2 = b.weight(vec![2], "b2");
    let y = b.op(Op::FullyConnected { activation: None }, &[h, w2, b2], "fc2");
    b.finish(vec![y])
}

/// Full pipeline: keygen digests and proof bytes are identical across
/// thread counts (the RNG draws stay in serial order inside the prover), and
/// the proof verifies under every pool setting.
#[test]
fn prove_verify_roundtrip_identical_across_thread_counts() {
    let g = small_model();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let vals: Vec<f32> = (0..4).map(|i| (i as f32 - 2.0) / 3.0).collect();
    let inputs = vec![fp.quantize_tensor(&Tensor::new(vec![1, 4], vals))];
    let compiled = compile(&g, &inputs, cfg).expect("compile");

    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
        let pk = compiled.keygen(&params).expect("keygen");
        let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
        compiled.verify(&params, &pk.vk, &proof).expect("verify");
        (pk.vk.digest.to_vec(), proof)
    };
    let (digest_1, proof_1) = zkml_par::with_pool(&zkml_par::Pool::new(1), run);
    let (digest_2, proof_2) = zkml_par::with_pool(&zkml_par::Pool::new(2), run);
    let (digest_d, proof_d) = run();
    assert_eq!(digest_1, digest_2, "vk digest differs at 2 threads");
    assert_eq!(digest_1, digest_d, "vk digest differs at default threads");
    assert_eq!(proof_1, proof_2, "proof bytes differ at 2 threads");
    assert_eq!(proof_1, proof_d, "proof bytes differ at default threads");
}
