//! Workspace-level integration tests: optimizer + compiler + proving system
//! working together across crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml::{compile, optimizer, CircuitConfig, LayoutChoices, Objective, OptimizerOptions};
use zkml_model::{execute_fixed, Activation, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_tensor::{FixedPoint, Tensor};

fn tiny_model() -> zkml_model::Graph {
    let mut b = GraphBuilder::new("integration-mlp", 21);
    let x = b.input(vec![1, 8], "x");
    let w1 = b.weight(vec![8, 16], "w1");
    let b1 = b.weight(vec![16], "b1");
    let h = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Relu),
        },
        &[x, w1, b1],
        "fc1",
    );
    let w2 = b.weight(vec![16, 4], "w2");
    let b2 = b.weight(vec![4], "b2");
    let y = b.op(Op::FullyConnected { activation: None }, &[h, w2, b2], "fc2");
    let s = b.op(Op::Softmax, &[y], "sm");
    b.finish(vec![s])
}

fn quantized_input(fp: FixedPoint) -> Vec<Tensor<i64>> {
    let vals: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) / 5.0).collect();
    vec![fp.quantize_tensor(&Tensor::new(vec![1, 8], vals))]
}

#[test]
fn optimizer_chooses_a_config_that_proves() {
    let g = tiny_model();
    let hw = zkml::cost::HardwareStats::cached();
    let opts = OptimizerOptions::new(Backend::Kzg, 14);
    let fp = FixedPoint::new(opts.numeric.scale_bits);
    let inputs = quantized_input(fp);
    let report = optimizer::optimize(&g, &inputs, &opts, hw).expect("optimize");
    assert!(report.evaluated > 0);
    assert!(report.best_k <= 14);

    // The winning plan synthesizes without re-lowering the graph.
    let compiled = report.synthesize_best().expect("synthesize best layout");
    assert_eq!(compiled.k, report.best_k, "planned k must match real k");
    let mut rng = StdRng::seed_from_u64(1);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).expect("keygen");
    let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
    compiled.verify(&params, &pk.vk, &proof).expect("verify");
}

#[test]
fn size_objective_reduces_estimated_proof_size() {
    let g = tiny_model();
    let hw = zkml::cost::HardwareStats::cached();
    let mut opts = OptimizerOptions::new(Backend::Kzg, 14);
    let inputs = optimizer::zero_inputs(&g);
    opts.objective = Objective::ProvingTime;
    let time_opt = optimizer::optimize(&g, &inputs, &opts, hw).expect("optimize");
    opts.objective = Objective::ProofSize;
    let size_opt = optimizer::optimize(&g, &inputs, &opts, hw).expect("optimize");
    assert!(
        size_opt.best_cost.proof_bytes <= time_opt.best_cost.proof_bytes,
        "size-optimized layout must not have a larger estimated proof"
    );
}

#[test]
fn pruning_finds_the_same_plan() {
    // The paper's Table 12 property: pruning changes runtime, not the plan.
    let g = tiny_model();
    let hw = zkml::cost::HardwareStats::cached();
    let mut opts = OptimizerOptions::new(Backend::Kzg, 14);
    let inputs = optimizer::zero_inputs(&g);
    opts.prune = true;
    let pruned = optimizer::optimize(&g, &inputs, &opts, hw).expect("optimize");
    opts.prune = false;
    let full = optimizer::optimize(&g, &inputs, &opts, hw).expect("optimize");
    assert_eq!(pruned.best, full.best);
    assert!(pruned.evaluated <= full.evaluated);
}

#[test]
fn circuit_outputs_match_reference_for_every_zoo_model() {
    // Count-free structural check plus witness agreement, without proving
    // (proving each zoo model is covered by the bench harness).
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    for g in zkml_model::zoo::all_models() {
        let mut rng = StdRng::seed_from_u64(11);
        use rand::Rng;
        let inputs: Vec<Tensor<i64>> = g
            .inputs
            .iter()
            .map(|id| {
                let shape = g.shape(*id).to_vec();
                let n: usize = shape.iter().product();
                Tensor::new(
                    shape,
                    (0..n)
                        .map(|_| fp.quantize(rng.gen_range(-0.8..0.8)))
                        .collect(),
                )
            })
            .collect();
        let compiled = compile(&g, &inputs, cfg)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", g.name));
        let reference = execute_fixed(&g, &inputs, fp).outputs(&g);
        assert_eq!(compiled.outputs, reference, "{} witness mismatch", g.name);
    }
}

#[test]
fn proofs_are_transferable_between_equal_compilations() {
    // Two compilations of the same model+input produce interchangeable
    // verification contexts (circuit structure is deterministic).
    let g = tiny_model();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let inputs = quantized_input(fp);
    let a = compile(&g, &inputs, cfg).unwrap();
    let b = compile(&g, &inputs, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let params = Params::setup(Backend::Kzg, a.k, &mut rng);
    let pk_a = a.keygen(&params).unwrap();
    let pk_b = b.keygen(&params).unwrap();
    assert_eq!(pk_a.vk.digest, pk_b.vk.digest, "keys must be reproducible");
    let proof = a.prove(&params, &pk_a, &mut rng).unwrap();
    // Verify the proof produced under compilation A with B's key.
    b.verify(&params, &pk_b.vk, &proof).unwrap();
}

#[test]
fn ipa_and_kzg_agree_on_the_statement() {
    let g = tiny_model();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let inputs = quantized_input(fp);
    let compiled = compile(&g, &inputs, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for backend in [Backend::Kzg, Backend::Ipa] {
        let params = Params::setup(backend, compiled.k, &mut rng);
        let pk = compiled.keygen(&params).unwrap();
        let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
        compiled
            .verify(&params, &pk.vk, &proof)
            .unwrap_or_else(|e| panic!("{backend}: {e}"));
    }
}
