//! Trustless recommendation audit (Figure 1 / §2 of the paper).
//!
//! A platform runs a MaskNet ranking model over private weights. With ZKML
//! it can publish, for each ranked item, a proof that the score came from
//! the committed model — an auditor verifies the scores without ever seeing
//! the weights.
//!
//! ```text
//! cargo run --release --example twitter_audit
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_pcs::{Backend, Params};
use zkml_tensor::{FixedPoint, Tensor};

fn main() {
    let model = zkml_model::zoo::twitter_masknet();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);

    // The platform ranks three candidate tweets for a user.
    let mut rng = StdRng::seed_from_u64(2024);
    let candidates: Vec<Tensor<i64>> = (0..3)
        .map(|_| {
            let feats: Vec<f32> = (0..32).map(|_| rng.gen_range(-4.0..4.0)).collect();
            fp.quantize_tensor(&Tensor::new(vec![1, 32], feats))
        })
        .collect();

    // One-time setup shared by prover (platform) and verifier (auditor).
    let probe = compile(&model, &[candidates[0].clone()], cfg).expect("compile");
    let mut srs_rng = StdRng::seed_from_u64(7);
    let params = Params::setup(Backend::Kzg, probe.k, &mut srs_rng);
    let pk = probe.keygen(&params).expect("keygen");
    println!(
        "MaskNet circuit: 2^{} rows, {} columns — keys ready",
        probe.k, probe.stats.num_advice
    );

    // The platform scores each candidate and attaches a proof.
    let mut scored = Vec::new();
    for (i, cand) in candidates.iter().enumerate() {
        let compiled = compile(&model, std::slice::from_ref(cand), cfg).expect("compile");
        let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
        let score = fp.dequantize(compiled.outputs[0].data()[0]);
        println!("tweet #{i}: score {score:.4}, proof {} bytes", proof.len());
        scored.push((i, score, compiled, proof));
    }

    // The auditor verifies every score against the committed circuit.
    for (i, score, compiled, proof) in &scored {
        compiled
            .verify(&params, &pk.vk, proof)
            .unwrap_or_else(|e| panic!("tweet #{i} proof rejected: {e}"));
        println!("auditor: tweet #{i} score {score:.4} verified ✓");
    }

    // The ranking is the verified scores, sorted.
    let mut order: Vec<(usize, f32)> = scored.iter().map(|(i, s, _, _)| (*i, *s)).collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    println!(
        "verified ranking: {:?}",
        order.iter().map(|(i, _)| *i).collect::<Vec<_>>()
    );
}
