//! Quickstart: build a tiny model, compile it to a circuit, prove an
//! inference, and verify the proof.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_model::{Activation, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_tensor::{FixedPoint, Tensor};

fn main() {
    // 1. Describe a model (normally loaded from a framework export; here a
    //    two-layer MLP with seeded synthetic weights).
    let mut b = GraphBuilder::new("quickstart-mlp", 7);
    let x = b.input(vec![1, 4], "features");
    let w1 = b.weight(vec![4, 8], "w1");
    let b1 = b.weight(vec![8], "b1");
    let h = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Relu),
        },
        &[x, w1, b1],
        "hidden",
    );
    let w2 = b.weight(vec![8, 3], "w2");
    let b2 = b.weight(vec![3], "b2");
    let logits = b.op(
        Op::FullyConnected { activation: None },
        &[h, w2, b2],
        "logits",
    );
    let probs = b.op(Op::Softmax, &[logits], "probs");
    let graph = b.finish(vec![probs]);

    // 2. Quantize an input with the compiler's fixed-point configuration.
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let input = Tensor::new(vec![1, 4], vec![0.5f32, -0.25, 0.75, 0.1]);
    let input_q = fp.quantize_tensor(&input);

    // 3. Compile: lowers every layer onto gadgets and produces the witness.
    let compiled = compile(&graph, &[input_q], cfg).expect("compile");
    println!(
        "compiled: 2^{} rows, {} advice columns, {} lookups",
        compiled.k, compiled.stats.num_advice, compiled.stats.num_lookups
    );

    // 4. Setup + keygen + prove + verify (KZG backend).
    let mut rng = StdRng::seed_from_u64(1);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).expect("keygen");
    let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
    compiled.verify(&params, &pk.vk, &proof).expect("verify");

    println!("proof: {} bytes — verified ✓", proof.len());
    println!(
        "model output (dequantized softmax): {:?}",
        compiled.outputs[0]
            .data()
            .iter()
            .map(|q| fp.dequantize(*q))
            .collect::<Vec<f32>>()
    );
}
