//! Proving a transformer inference (the paper's headline result, scaled to
//! a nano GPT-2 so it runs in seconds on a laptop).
//!
//! Demonstrates the pieces GPT-class models need beyond CNNs (Table 3):
//! BatchMatMul, Softmax, LayerNorm and GELU — plus the layout optimizer
//! choosing the circuit configuration.
//!
//! ```text
//! cargo run --release --example gpt2_inference
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml::{optimizer, OptimizerOptions};
use zkml_pcs::{Backend, Params};
use zkml_tensor::FixedPoint;

fn main() {
    let model = zkml_model::zoo::gpt2();
    println!("model: {} ({} nodes)", model.name, model.nodes.len());
    let stats = zkml_model::stats(&model);
    println!(
        "params: {}, flops: {}",
        zkml_model::stats::human(stats.params),
        zkml_model::stats::human(stats.flops)
    );

    // One inference over an embedded token sequence; the schedule the
    // optimizer lowers is reused for the final synthesis.
    let opts = OptimizerOptions::new(Backend::Kzg, 16);
    let fp = FixedPoint::new(opts.numeric.scale_bits);
    let inputs = {
        let mut rng = StdRng::seed_from_u64(99);
        use rand::Rng;
        model
            .inputs
            .iter()
            .map(|id| {
                let shape = model.shape(*id).to_vec();
                let n: usize = shape.iter().product();
                let vals: Vec<i64> = (0..n)
                    .map(|_| fp.quantize(rng.gen_range(-0.5f32..0.5)))
                    .collect();
                zkml_tensor::Tensor::new(shape, vals)
            })
            .collect::<Vec<_>>()
    };

    // Let the optimizer choose gadgets + layout for this machine.
    let hw = zkml::cost::HardwareStats::cached();
    let report = optimizer::optimize(&model, &inputs, &opts, hw).expect("optimize");
    println!(
        "optimizer: {} layouts in {:?}; chose {} columns at 2^{} rows (est. {:.2}s proving)",
        report.evaluated,
        report.elapsed,
        report.best.num_cols,
        report.best_k,
        report.best_cost.proving_s
    );

    let compiled = report.synthesize_best().expect("synthesize");
    let mut rng = StdRng::seed_from_u64(3);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).expect("keygen");

    let t = std::time::Instant::now();
    let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
    println!("proved transformer inference in {:?}", t.elapsed());

    let t = std::time::Instant::now();
    compiled.verify(&params, &pk.vk, &proof).expect("verify");
    println!(
        "verified in {:?} — proof {} bytes, logits for last token: {:?}",
        t.elapsed(),
        proof.len(),
        &compiled.outputs[0]
            .data()
            .iter()
            .rev()
            .take(4)
            .map(|q| fp.dequantize(*q))
            .collect::<Vec<f32>>()
    );
}
