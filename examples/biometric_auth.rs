//! Private biometric authentication (§2 of the paper).
//!
//! A user proves that a freshly captured face embedding matches their
//! enrolled template — the service verifies the match score came from the
//! committed matching model without seeing either embedding.
//!
//! ```text
//! cargo run --release --example biometric_auth
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_model::{Activation, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_tensor::{FixedPoint, Tensor};

/// A small matching network: both embeddings pass through a shared
/// projection; the squared distance is reduced to a match score.
fn matcher() -> zkml_model::Graph {
    let d = 16usize;
    let mut b = GraphBuilder::new("face-matcher", 0xFACE);
    let probe = b.input(vec![1, d], "probe_embedding");
    let template = b.input(vec![1, d], "enrolled_template");
    let w = b.weight(vec![d, d], "proj.w");
    let pb = b.weight(vec![d], "proj.b");
    let p1 = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Tanh),
        },
        &[probe, w, pb],
        "proj_probe",
    );
    let p2 = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Tanh),
        },
        &[template, w, pb],
        "proj_template",
    );
    let d2 = b.op(Op::SquaredDifference, &[p1, p2], "sqdiff");
    let dist = b.op(
        Op::Sum {
            axis: 1,
            keep_dims: true,
        },
        &[d2],
        "distance",
    );
    // Score = sigmoid(-distance/4): 0.5 for a perfect match, lower as the
    // embeddings diverge; the service accepts scores above 0.48.
    let neg_quarter = b.weight_with(Tensor::from_vec(vec![-0.25f32]), "neg_quarter");
    let neg = b.op(Op::Mul, &[dist, neg_quarter], "scaled");
    let score = b.op(Op::Act(Activation::Sigmoid), &[neg], "score");
    b.finish(vec![score])
}

fn main() {
    let model = matcher();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let mut rng = StdRng::seed_from_u64(31337);

    // Enrolled template and two probes: one genuine (template + noise), one
    // impostor (random).
    let template: Vec<f32> = (0..16).map(|_| rng.gen_range(-0.8..0.8)).collect();
    let genuine: Vec<f32> = template
        .iter()
        .map(|t| t + rng.gen_range(-0.05..0.05))
        .collect();
    let impostor: Vec<f32> = (0..16).map(|_| rng.gen_range(-0.8..0.8)).collect();

    let tq = fp.quantize_tensor(&Tensor::new(vec![1, 16], template));
    let mut params_rng = StdRng::seed_from_u64(55);
    let mut shared: Option<(Params, zkml_plonk::ProvingKey)> = None;

    for (label, probe) in [("genuine", genuine), ("impostor", impostor)] {
        let pq = fp.quantize_tensor(&Tensor::new(vec![1, 16], probe));
        let compiled = compile(&model, &[pq, tq.clone()], cfg).expect("compile");
        let (params, pk) = shared.get_or_insert_with(|| {
            let params = Params::setup(Backend::Kzg, compiled.k, &mut params_rng);
            let pk = compiled.keygen(&params).expect("keygen");
            (params, pk)
        });
        let proof = compiled.prove(params, pk, &mut rng).expect("prove");
        compiled.verify(params, &pk.vk, &proof).expect("verify");
        let score = fp.dequantize(compiled.outputs[0].data()[0]);
        println!(
            "{label}: match score {score:.3} (proof {} bytes, verified ✓) -> {}",
            proof.len(),
            if score >= 0.48 { "ACCEPT" } else { "REJECT" }
        );
    }
}
