//! Compares the KZG and IPA backends on the same model — the tradeoff of
//! Tables 6 vs 7: KZG verifies in O(1) (two pairings) with a trusted setup;
//! IPA is transparent but verification does O(n) group work and proofs are
//! larger.
//!
//! ```text
//! cargo run --release --example backend_comparison
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_pcs::{Backend, Params};
use zkml_tensor::FixedPoint;

fn main() {
    let model = zkml_model::zoo::dlrm();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let mut rng = StdRng::seed_from_u64(42);
    use rand::Rng;
    let inputs: Vec<zkml_tensor::Tensor<i64>> = model
        .inputs
        .iter()
        .map(|id| {
            let shape = model.shape(*id).to_vec();
            let n: usize = shape.iter().product();
            zkml_tensor::Tensor::new(
                shape,
                (0..n)
                    .map(|_| fp.quantize(rng.gen_range(-1.0..1.0)))
                    .collect(),
            )
        })
        .collect();
    let compiled = compile(&model, &inputs, cfg).expect("compile");
    println!(
        "{}: 2^{} rows, {} columns\n",
        model.name, compiled.k, compiled.stats.num_advice
    );
    println!("| backend | setup | prove | verify | proof size |");
    println!("|---|---|---|---|---|");
    for backend in [Backend::Kzg, Backend::Ipa] {
        let t = Instant::now();
        let params = Params::setup(backend, compiled.k, &mut rng);
        let setup = t.elapsed();
        let pk = compiled.keygen(&params).expect("keygen");
        let t = Instant::now();
        let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
        let prove = t.elapsed();
        let t = Instant::now();
        compiled.verify(&params, &pk.vk, &proof).expect("verify");
        let verify = t.elapsed();
        println!(
            "| {backend} | {setup:.2?} | {prove:.2?} | {verify:.2?} | {} B |",
            proof.len()
        );
    }
    println!("\nKZG: constant verification (pairings); IPA: transparent setup, O(n) verify.");
}
