//! The model graph IR and builder.

use crate::op::{conv_output_dim, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkml_tensor::Tensor;

/// Identifies a tensor within a graph.
pub type TensorId = usize;

/// What kind of tensor a node produces or holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TensorKind {
    /// Model input (prover-supplied, private by default).
    Input,
    /// Trained weight (part of the committed model).
    Weight,
    /// Intermediate or output activation.
    Activation,
}

/// Metadata for one tensor.
#[derive(Clone, Debug)]
pub struct TensorMeta {
    /// Shape.
    pub shape: Vec<usize>,
    /// Role.
    pub kind: TensorKind,
    /// Debug name.
    pub name: String,
}

/// A graph node: one operator, n inputs, one output tensor.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Input tensor ids.
    pub inputs: Vec<TensorId>,
    /// Output tensor id.
    pub output: TensorId,
}

/// A complete model: tensors, weights, and a topologically ordered node list.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Human-readable model name.
    pub name: String,
    /// Tensor metadata, indexed by `TensorId`.
    pub tensors: Vec<TensorMeta>,
    /// Nodes in topological order.
    pub nodes: Vec<Node>,
    /// Model input tensor ids.
    pub inputs: Vec<TensorId>,
    /// Model output tensor ids.
    pub outputs: Vec<TensorId>,
    /// Weight values, indexed by `TensorId` (None for non-weights).
    pub weights: Vec<Option<Tensor<f32>>>,
}

impl Graph {
    /// Shape of a tensor.
    pub fn shape(&self, id: TensorId) -> &[usize] {
        &self.tensors[id].shape
    }
}

/// Incrementally builds a [`Graph`] with shape inference.
pub struct GraphBuilder {
    name: String,
    tensors: Vec<TensorMeta>,
    nodes: Vec<Node>,
    inputs: Vec<TensorId>,
    weights: Vec<Option<Tensor<f32>>>,
    rng: StdRng,
}

impl GraphBuilder {
    /// Creates a builder; `seed` drives synthetic weight initialization.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            tensors: Vec::new(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            weights: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn push_tensor(&mut self, shape: Vec<usize>, kind: TensorKind, name: String) -> TensorId {
        self.tensors.push(TensorMeta { shape, kind, name });
        self.weights.push(None);
        self.tensors.len() - 1
    }

    /// Declares a model input.
    pub fn input(&mut self, shape: Vec<usize>, name: &str) -> TensorId {
        let id = self.push_tensor(shape, TensorKind::Input, name.into());
        self.inputs.push(id);
        id
    }

    /// Declares a weight with synthetic (seeded, fan-in-scaled) values.
    ///
    /// Fan-in is the product of all dimensions except the last (the output
    /// channels), matching He/Glorot-style initialization; rank-1 weights
    /// (biases, norm parameters) use a small fixed bound.
    pub fn weight(&mut self, shape: Vec<usize>, name: &str) -> TensorId {
        let n: usize = shape.iter().product();
        let fan_in = if shape.len() >= 2 {
            shape[..shape.len() - 1].iter().product::<usize>() as f32
        } else {
            100.0
        };
        let bound = (1.0 / fan_in.max(1.0)).sqrt();
        let data: Vec<f32> = (0..n).map(|_| self.rng.gen_range(-bound..=bound)).collect();
        let id = self.push_tensor(shape.clone(), TensorKind::Weight, name.into());
        self.weights[id] = Some(Tensor::new(shape, data));
        id
    }

    /// Declares a weight with explicit values.
    pub fn weight_with(&mut self, t: Tensor<f32>, name: &str) -> TensorId {
        let id = self.push_tensor(t.shape().to_vec(), TensorKind::Weight, name.into());
        self.weights[id] = Some(t);
        id
    }

    /// Appends an op node, inferring the output shape.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape errors — model construction bugs should fail
    /// loudly at build time.
    pub fn op(&mut self, op: Op, inputs: &[TensorId], name: &str) -> TensorId {
        let shape = self.infer_shape(&op, inputs);
        let out = self.push_tensor(shape, TensorKind::Activation, name.into());
        self.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
            output: out,
        });
        out
    }

    fn infer_shape(&self, op: &Op, inputs: &[TensorId]) -> Vec<usize> {
        let s = |i: usize| -> &[usize] { &self.tensors[inputs[i]].shape };
        let numel = |sh: &[usize]| -> usize { sh.iter().product() };
        match op {
            Op::Reshape { shape } => {
                assert_eq!(numel(shape), numel(s(0)), "reshape volume mismatch");
                shape.clone()
            }
            Op::Transpose { perm } => perm.iter().map(|&p| s(0)[p]).collect(),
            Op::Slice { starts, ends } => starts.iter().zip(ends).map(|(a, b)| b - a).collect(),
            Op::Concat { axis } => {
                let mut shape = s(0).to_vec();
                for i in 1..inputs.len() {
                    shape[*axis] += s(i)[*axis];
                }
                shape
            }
            Op::Pad { pads } => s(0).iter().zip(pads).map(|(d, (b, a))| d + b + a).collect(),
            Op::Squeeze { axis } => {
                let mut shape = s(0).to_vec();
                assert_eq!(shape[*axis], 1);
                shape.remove(*axis);
                shape
            }
            Op::ExpandDims { axis } => {
                let mut shape = s(0).to_vec();
                shape.insert(*axis, 1);
                shape
            }
            Op::Flatten => {
                let sh = s(0);
                vec![sh[0], sh[1..].iter().product()]
            }
            Op::BroadcastTo { shape } => shape.clone(),
            Op::Upsample2x => {
                let sh = s(0);
                assert_eq!(sh.len(), 4, "Upsample2x expects NHWC");
                vec![sh[0], sh[1] * 2, sh[2] * 2, sh[3]]
            }
            Op::Add | Op::Sub | Op::Mul | Op::SquaredDifference => {
                zkml_tensor::shape::broadcast_shape(s(0), s(1))
                    .unwrap_or_else(|| panic!("cannot broadcast {:?} and {:?}", s(0), s(1)))
            }
            Op::DivConst { .. }
            | Op::Square
            | Op::Act(_)
            | Op::Rsqrt
            | Op::Sqrt
            | Op::Exp
            | Op::Softmax => s(0).to_vec(),
            Op::Sum { axis, keep_dims } | Op::Mean { axis, keep_dims } => {
                let mut shape = s(0).to_vec();
                if *keep_dims {
                    shape[*axis] = 1;
                } else {
                    shape.remove(*axis);
                }
                shape
            }
            Op::FullyConnected { .. } => {
                let x = s(0);
                let w = s(1);
                assert_eq!(x[x.len() - 1], w[0], "FC inner-dim mismatch");
                let mut shape = x.to_vec();
                *shape.last_mut().unwrap() = w[1];
                shape
            }
            Op::Conv2D {
                stride, padding, ..
            } => {
                let x = s(0);
                let w = s(1); // [KH, KW, Cin, Cout]
                assert_eq!(x.len(), 4, "Conv2D expects NHWC");
                assert_eq!(x[3], w[2], "Conv2D channel mismatch");
                let (oh, _, _) = conv_output_dim(x[1], w[0], stride.0, *padding);
                let (ow, _, _) = conv_output_dim(x[2], w[1], stride.1, *padding);
                vec![x[0], oh, ow, w[3]]
            }
            Op::DepthwiseConv2D {
                stride, padding, ..
            } => {
                let x = s(0);
                let w = s(1); // [KH, KW, C, 1]
                assert_eq!(x[3], w[2], "DWConv channel mismatch");
                let (oh, _, _) = conv_output_dim(x[1], w[0], stride.0, *padding);
                let (ow, _, _) = conv_output_dim(x[2], w[1], stride.1, *padding);
                vec![x[0], oh, ow, x[3]]
            }
            Op::BatchMatMul => {
                let a = s(0);
                let b = s(1);
                assert_eq!(a[a.len() - 1], b[b.len() - 2], "BMM inner-dim mismatch");
                assert_eq!(a[..a.len() - 2], b[..b.len() - 2], "BMM batch mismatch");
                let mut shape = a.to_vec();
                let n = b[b.len() - 1];
                *shape.last_mut().unwrap() = n;
                shape
            }
            Op::AvgPool2D { ksize, stride } | Op::MaxPool2D { ksize, stride } => {
                let x = s(0);
                let oh = (x[1] - ksize.0) / stride.0 + 1;
                let ow = (x[2] - ksize.1) / stride.1 + 1;
                vec![x[0], oh, ow, x[3]]
            }
            Op::GlobalAvgPool => {
                let x = s(0);
                vec![x[0], x[3]]
            }
            Op::LayerNorm { .. } | Op::BatchNorm => s(0).to_vec(),
        }
    }

    /// Finishes the graph, marking `outputs`.
    pub fn finish(self, outputs: Vec<TensorId>) -> Graph {
        Graph {
            name: self.name,
            tensors: self.tensors,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs,
            weights: self.weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, Padding};

    #[test]
    fn builds_a_small_cnn_with_shapes() {
        let mut b = GraphBuilder::new("test", 0);
        let x = b.input(vec![1, 8, 8, 3], "x");
        let w = b.weight(vec![3, 3, 3, 4], "w");
        let bias = b.weight(vec![4], "b");
        let c = b.op(
            Op::Conv2D {
                stride: (2, 2),
                padding: Padding::Same,
                activation: Some(Activation::Relu),
            },
            &[x, w, bias],
            "conv",
        );
        let f = b.op(Op::Flatten, &[c], "flat");
        let w2 = b.weight(vec![64, 10], "w2");
        let out = b.op(Op::FullyConnected { activation: None }, &[f, w2], "fc");
        let g = b.finish(vec![out]);
        assert_eq!(g.shape(c), &[1, 4, 4, 4]);
        assert_eq!(g.shape(f), &[1, 64]);
        assert_eq!(g.shape(out), &[1, 10]);
        assert_eq!(g.nodes.len(), 3);
        assert!(g.weights[w].is_some());
        assert!(g.weights[x].is_none());
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let mut b1 = GraphBuilder::new("a", 7);
        let mut b2 = GraphBuilder::new("a", 7);
        let w1 = b1.weight(vec![4, 4], "w");
        let w2 = b2.weight(vec![4, 4], "w");
        assert_eq!(
            b1.weights[w1].as_ref().unwrap().data(),
            b2.weights[w2].as_ref().unwrap().data()
        );
    }

    #[test]
    #[should_panic(expected = "FC inner-dim mismatch")]
    fn shape_errors_panic() {
        let mut b = GraphBuilder::new("bad", 0);
        let x = b.input(vec![1, 5], "x");
        let w = b.weight(vec![4, 2], "w");
        b.op(Op::FullyConnected { activation: None }, &[x, w], "fc");
    }
}
