//! The operator set.
//!
//! Mirrors the TFLite-level layers ZKML supports (§6, Table 3): shape
//! operations (free in-circuit), arithmetic layers, linear layers,
//! normalization/softmax, and pointwise non-linearities. Linear layers carry
//! an optional fused activation, matching the paper's observation that the
//! fixed-point rescale can be fused with a following non-linearity (§6.2).

/// Pointwise non-linearities (all lookup-table-backed in-circuit except
/// ReLU, which also has a bit-decomposition implementation for the
/// optimizer to choose from).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// min(max(0, x), 6)
    Relu6,
    /// x if x > 0 else alpha * x
    LeakyRelu(f32),
    /// x if x > 0 else exp(x) - 1
    Elu,
    /// 1 / (1 + exp(-x))
    Sigmoid,
    /// tanh(x)
    Tanh,
    /// Gaussian error linear unit (tanh approximation)
    Gelu,
    /// x * sigmoid(x)
    Silu,
}

impl Activation {
    /// Evaluates the activation in f32.
    pub fn eval(&self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::LeakyRelu(a) => {
                if x > 0.0 {
                    x
                } else {
                    a * x
                }
            }
            Activation::Elu => {
                if x > 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Gelu => {
                0.5 * x
                    * (1.0
                        + ((2.0 / std::f32::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
            }
            Activation::Silu => x / (1.0 + (-x).exp()),
        }
    }

    /// A stable name (used as the lookup-table key in the compiler).
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Relu6 => "relu6",
            Activation::LeakyRelu(_) => "leaky_relu",
            Activation::Elu => "elu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Gelu => "gelu",
            Activation::Silu => "silu",
        }
    }
}

/// Spatial padding mode for convolutions and pooling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Padding {
    /// Output spatial size = ceil(input / stride); zero-pads symmetrically.
    Same,
    /// No padding.
    Valid,
}

/// A graph operator. One output per node; multi-output ops are expressed as
/// multiple `Slice` nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    // ---- Shape operations (free in-circuit: reference-only) -------------
    /// Reinterprets the shape.
    Reshape { shape: Vec<usize> },
    /// Permutes axes.
    Transpose { perm: Vec<usize> },
    /// Extracts a box `[starts, ends)`.
    Slice {
        starts: Vec<usize>,
        ends: Vec<usize>,
    },
    /// Concatenates all inputs along `axis`.
    Concat { axis: usize },
    /// Zero-pads.
    Pad { pads: Vec<(usize, usize)> },
    /// Removes a unit axis.
    Squeeze { axis: usize },
    /// Inserts a unit axis.
    ExpandDims { axis: usize },
    /// Collapses to `[batch, -1]`.
    Flatten,
    /// Broadcasts to a shape.
    BroadcastTo { shape: Vec<usize> },
    /// Nearest-neighbour 2x spatial upsampling (NHWC); reference-only.
    Upsample2x,

    // ---- Arithmetic layers ----------------------------------------------
    /// Elementwise addition (broadcasting).
    Add,
    /// Elementwise subtraction (broadcasting).
    Sub,
    /// Elementwise multiplication (broadcasting, rescaled).
    Mul,
    /// Division by a compile-time constant.
    DivConst { divisor: f32 },
    /// Elementwise square (rescaled).
    Square,
    /// Elementwise squared difference (broadcasting, rescaled).
    SquaredDifference,
    /// Reduction sum along one axis.
    Sum { axis: usize, keep_dims: bool },
    /// Reduction mean along one axis.
    Mean { axis: usize, keep_dims: bool },

    // ---- Linear layers -----------------------------------------------------
    /// `x @ w + b` with optional fused activation. Inputs: x, w, (b).
    /// x: `[..., K]`, w: `[K, N]`, b: `[N]`.
    FullyConnected { activation: Option<Activation> },
    /// 2D convolution (NHWC, weights [KH, KW, Cin, Cout]). Inputs: x, w, (b).
    Conv2D {
        stride: (usize, usize),
        padding: Padding,
        activation: Option<Activation>,
    },
    /// Depthwise 2D convolution (weights [KH, KW, C, 1]). Inputs: x, w, (b).
    DepthwiseConv2D {
        stride: (usize, usize),
        padding: Padding,
        activation: Option<Activation>,
    },
    /// Batched matrix multiply: [..., M, K] x [..., K, N].
    BatchMatMul,
    /// Average pooling (NHWC).
    AvgPool2D {
        ksize: (usize, usize),
        stride: (usize, usize),
    },
    /// Max pooling (NHWC).
    MaxPool2D {
        ksize: (usize, usize),
        stride: (usize, usize),
    },
    /// Global average pooling over H and W (NHWC).
    GlobalAvgPool,

    // ---- Normalization and softmax ------------------------------------------
    /// Softmax over the last axis (max-shifted, scaled-numerator division).
    Softmax,
    /// Layer normalization over the last axis. Inputs: x, gamma, beta.
    LayerNorm { eps: f32 },
    /// Folded batch normalization: per-channel affine. Inputs: x, scale, offset.
    BatchNorm,

    // ---- Pointwise non-linearities --------------------------------------------
    /// A standalone activation layer.
    Act(Activation),
    /// 1/sqrt(x) (lookup).
    Rsqrt,
    /// sqrt(x) (lookup).
    Sqrt,
    /// exp(x) (lookup).
    Exp,
}

impl Op {
    /// True for operations that are free in-circuit (pure reference
    /// rearrangement, §5.1 of the paper).
    pub fn is_shape_op(&self) -> bool {
        matches!(
            self,
            Op::Reshape { .. }
                | Op::Transpose { .. }
                | Op::Slice { .. }
                | Op::Concat { .. }
                | Op::Pad { .. }
                | Op::Squeeze { .. }
                | Op::ExpandDims { .. }
                | Op::Flatten
                | Op::BroadcastTo { .. }
                | Op::Upsample2x
        )
    }

    /// A short name for diagnostics and layout tables.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Reshape { .. } => "Reshape",
            Op::Transpose { .. } => "Transpose",
            Op::Slice { .. } => "Slice",
            Op::Concat { .. } => "Concat",
            Op::Pad { .. } => "Pad",
            Op::Squeeze { .. } => "Squeeze",
            Op::ExpandDims { .. } => "ExpandDims",
            Op::Flatten => "Flatten",
            Op::BroadcastTo { .. } => "BroadcastTo",
            Op::Upsample2x => "Upsample2x",
            Op::Add => "Add",
            Op::Sub => "Sub",
            Op::Mul => "Mul",
            Op::DivConst { .. } => "DivConst",
            Op::Square => "Square",
            Op::SquaredDifference => "SquaredDifference",
            Op::Sum { .. } => "Sum",
            Op::Mean { .. } => "Mean",
            Op::FullyConnected { .. } => "FullyConnected",
            Op::Conv2D { .. } => "Conv2D",
            Op::DepthwiseConv2D { .. } => "DepthwiseConv2D",
            Op::BatchMatMul => "BatchMatMul",
            Op::AvgPool2D { .. } => "AvgPool2D",
            Op::MaxPool2D { .. } => "MaxPool2D",
            Op::GlobalAvgPool => "GlobalAvgPool",
            Op::Softmax => "Softmax",
            Op::LayerNorm { .. } => "LayerNorm",
            Op::BatchNorm => "BatchNorm",
            Op::Act(a) => a.name(),
            Op::Rsqrt => "Rsqrt",
            Op::Sqrt => "Sqrt",
            Op::Exp => "Exp",
        }
    }
}

/// Computes conv/pool output spatial size and padding amounts.
pub fn conv_output_dim(
    input: usize,
    k: usize,
    stride: usize,
    padding: Padding,
) -> (usize, usize, usize) {
    match padding {
        Padding::Valid => ((input - k) / stride + 1, 0, 0),
        Padding::Same => {
            let out = input.div_ceil(stride);
            let total_pad = ((out - 1) * stride + k).saturating_sub(input);
            let before = total_pad / 2;
            (out, before, total_pad - before)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Relu.eval(-3.0), 0.0);
        assert_eq!(Activation::Relu.eval(2.5), 2.5);
        assert_eq!(Activation::Relu6.eval(9.0), 6.0);
        assert!((Activation::Sigmoid.eval(0.0) - 0.5).abs() < 1e-6);
        assert!(Activation::Tanh.eval(100.0) <= 1.0);
        assert!((Activation::Silu.eval(0.0)).abs() < 1e-6);
        assert!((Activation::Gelu.eval(0.0)).abs() < 1e-6);
        assert!((Activation::LeakyRelu(0.1).eval(-10.0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn conv_dims() {
        // 8 wide, k=3, stride 1, valid -> 6.
        assert_eq!(conv_output_dim(8, 3, 1, Padding::Valid), (6, 0, 0));
        // same padding keeps size at stride 1.
        let (out, b, a) = conv_output_dim(8, 3, 1, Padding::Same);
        assert_eq!(out, 8);
        assert_eq!(b + a, 2);
        // stride 2 halves (ceil).
        assert_eq!(conv_output_dim(9, 3, 2, Padding::Same).0, 5);
    }

    #[test]
    fn shape_ops_flagged_free() {
        assert!(Op::Flatten.is_shape_op());
        assert!(Op::Upsample2x.is_shape_op());
        assert!(!Op::Add.is_shape_op());
        assert!(!Op::Softmax.is_shape_op());
    }
}
