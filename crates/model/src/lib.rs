//! ML graph IR, reference executors, and the evaluation model zoo.
//!
//! The paper's pipeline starts from TFLite files; this crate plays that
//! role with a programmatic graph builder (same operator granularity as the
//! TFLite ops ZKML consumes), an f32 reference executor, and a fixed-point
//! executor whose semantics the circuit compiler reproduces bit-exactly.

pub mod exec;
pub mod graph;
pub mod op;
pub mod qops;
pub mod serialize;
pub mod stats;
pub mod zoo;

pub use exec::{execute_f32, execute_fixed, Execution};
pub use graph::{Graph, GraphBuilder, Node, TensorId, TensorKind, TensorMeta};
pub use op::{Activation, Op, Padding};
pub use stats::{stats, ModelStats};
