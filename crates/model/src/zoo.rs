//! The evaluation model zoo (§9.1, Table 5).
//!
//! Architecture-faithful but dimension-scaled ("nano") versions of the
//! paper's eight models, with seeded synthetic weights. Proving cost depends
//! on the op mix and tensor shapes, not the weight values; scaling the
//! dimensions keeps each model's characteristic mix (conv-heavy VGG,
//! residual ResNet, depthwise MobileNet, attention GPT-2, mask-gated
//! MaskNet, interaction-heavy DLRM, UNet diffusion) while keeping circuits
//! in the 2^10..2^17-row range a single machine can regenerate tables on.

use crate::graph::{Graph, GraphBuilder, TensorId};
use crate::op::{Activation, Op, Padding};

#[allow(clippy::too_many_arguments)]
fn conv(
    b: &mut GraphBuilder,
    x: TensorId,
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    act: Option<Activation>,
    name: &str,
) -> TensorId {
    let w = b.weight(vec![k, k, cin, cout], &format!("{name}.w"));
    let bias = b.weight(vec![cout], &format!("{name}.b"));
    b.op(
        Op::Conv2D {
            stride: (stride, stride),
            padding: Padding::Same,
            activation: act,
        },
        &[x, w, bias],
        name,
    )
}

fn fc(
    b: &mut GraphBuilder,
    x: TensorId,
    din: usize,
    dout: usize,
    act: Option<Activation>,
    name: &str,
) -> TensorId {
    let w = b.weight(vec![din, dout], &format!("{name}.w"));
    let bias = b.weight(vec![dout], &format!("{name}.b"));
    b.op(Op::FullyConnected { activation: act }, &[x, w, bias], name)
}

/// The MNIST CNN (paper model 8): two strided convs plus a classifier head.
pub fn mnist_cnn() -> Graph {
    let mut b = GraphBuilder::new("MNIST", 0xA11CE);
    let x = b.input(vec![1, 14, 14, 1], "image");
    let c1 = conv(&mut b, x, 1, 8, 3, 2, Some(Activation::Relu), "conv1");
    let c2 = conv(&mut b, c1, 8, 16, 3, 2, Some(Activation::Relu), "conv2");
    let f = b.op(Op::Flatten, &[c2], "flatten");
    let out = fc(&mut b, f, 4 * 4 * 16, 10, None, "head");
    b.finish(vec![out])
}

/// VGG-16 on CIFAR-10 (paper model 7): 13 convolutions in five max-pooled
/// blocks plus two fully connected layers, at nano width.
pub fn vgg16() -> Graph {
    let mut b = GraphBuilder::new("VGG16", 0x5EED_0007);
    let x = b.input(vec![1, 16, 16, 3], "image");
    let cfg: &[&[usize]] = &[&[4, 4], &[8, 8], &[8, 8, 8], &[16, 16, 16], &[16, 16, 16]];
    let mut cur = x;
    let mut cin = 3;
    let mut spatial = 16usize;
    for (bi, block) in cfg.iter().enumerate() {
        for (ci, &c) in block.iter().enumerate() {
            cur = conv(
                &mut b,
                cur,
                cin,
                c,
                3,
                1,
                Some(Activation::Relu),
                &format!("b{bi}c{ci}"),
            );
            cin = c;
        }
        // The nano input is 16x16, so the fifth VGG pool would act on a
        // 1x1 map; skip pooling once fully reduced.
        if spatial >= 2 {
            cur = b.op(
                Op::MaxPool2D {
                    ksize: (2, 2),
                    stride: (2, 2),
                },
                &[cur],
                &format!("pool{bi}"),
            );
            spatial /= 2;
        }
    }
    let f = b.op(Op::Flatten, &[cur], "flatten");
    let h = fc(&mut b, f, 16, 32, Some(Activation::Relu), "fc1");
    let out = fc(&mut b, h, 32, 10, None, "fc2");
    b.finish(vec![out])
}

/// Appends a folded batch-norm (per-channel affine) with a damping scale,
/// mirroring how trained BN statistics keep residual activations bounded.
fn bn(b: &mut GraphBuilder, x: TensorId, channels: usize, name: &str) -> TensorId {
    let scale = b.weight_with(
        zkml_tensor::Tensor::from_vec(vec![0.35f32; channels]),
        &format!("{name}.scale"),
    );
    let offset = b.weight_with(
        zkml_tensor::Tensor::from_vec(vec![0.02f32; channels]),
        &format!("{name}.offset"),
    );
    b.op(Op::BatchNorm, &[x, scale, offset], name)
}

/// ResNet-18 on CIFAR-10 (paper model 6): stem plus four stages of two
/// basic residual blocks with folded batch norm, at nano width.
pub fn resnet18() -> Graph {
    let mut b = GraphBuilder::new("ResNet-18", 0x5EED_0006);
    let x = b.input(vec![1, 16, 16, 3], "image");
    let widths = [4usize, 8, 8, 8];
    let mut cur = conv(
        &mut b,
        x,
        3,
        widths[0],
        3,
        1,
        Some(Activation::Relu),
        "stem",
    );
    let mut cin = widths[0];
    for (stage, &w) in widths.iter().enumerate() {
        for blk in 0..2 {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let name = format!("s{stage}b{blk}");
            let c1 = conv(
                &mut b,
                cur,
                cin,
                w,
                3,
                stride,
                Some(Activation::Relu),
                &format!("{name}.conv1"),
            );
            let c1 = bn(&mut b, c1, w, &format!("{name}.bn1"));
            let c2 = conv(&mut b, c1, w, w, 3, 1, None, &format!("{name}.conv2"));
            let c2 = bn(&mut b, c2, w, &format!("{name}.bn2"));
            let shortcut = if stride != 1 || cin != w {
                let p = conv(
                    &mut b,
                    cur,
                    cin,
                    w,
                    1,
                    stride,
                    None,
                    &format!("{name}.proj"),
                );
                bn(&mut b, p, w, &format!("{name}.proj.bn"))
            } else {
                cur
            };
            let sum = b.op(Op::Add, &[c2, shortcut], &format!("{name}.add"));
            cur = b.op(Op::Act(Activation::Relu), &[sum], &format!("{name}.relu"));
            cin = w;
        }
    }
    let gap = b.op(Op::GlobalAvgPool, &[cur], "gap");
    let out = fc(&mut b, gap, cin, 10, None, "head");
    b.finish(vec![out])
}

/// MobileNetV2 on ImageNet (paper model 5): stem plus inverted-residual
/// blocks with depthwise convolutions and ReLU6, at nano scale.
pub fn mobilenet_v2() -> Graph {
    let mut b = GraphBuilder::new("MobileNet", 0x5EED_0005);
    let x = b.input(vec![1, 16, 16, 3], "image");
    let mut cur = conv(&mut b, x, 3, 8, 3, 2, Some(Activation::Relu6), "stem");
    cur = bn(&mut b, cur, 8, "stem.bn");
    let mut cin = 8usize;
    // (expansion, out channels, stride)
    let blocks = [(1usize, 8usize, 1usize), (2, 12, 2), (2, 12, 1), (2, 16, 2)];
    for (i, (t, c, s)) in blocks.iter().enumerate() {
        let name = format!("ir{i}");
        let hidden = cin * t;
        let expanded = if *t != 1 {
            let e = conv(
                &mut b,
                cur,
                cin,
                hidden,
                1,
                1,
                Some(Activation::Relu6),
                &format!("{name}.expand"),
            );
            bn(&mut b, e, hidden, &format!("{name}.expand.bn"))
        } else {
            cur
        };
        let dw_w = b.weight(vec![3, 3, hidden, 1], &format!("{name}.dw.w"));
        let dw_b = b.weight(vec![hidden], &format!("{name}.dw.b"));
        let dw = b.op(
            Op::DepthwiseConv2D {
                stride: (*s, *s),
                padding: Padding::Same,
                activation: Some(Activation::Relu6),
            },
            &[expanded, dw_w, dw_b],
            &format!("{name}.dw"),
        );
        let dw = bn(&mut b, dw, hidden, &format!("{name}.dw.bn"));
        let projected = conv(
            &mut b,
            dw,
            hidden,
            *c,
            1,
            1,
            None,
            &format!("{name}.project"),
        );
        let projected = bn(&mut b, projected, *c, &format!("{name}.project.bn"));
        cur = if *s == 1 && cin == *c {
            b.op(Op::Add, &[projected, cur], &format!("{name}.add"))
        } else {
            projected
        };
        cin = *c;
    }
    cur = conv(
        &mut b,
        cur,
        cin,
        32,
        1,
        1,
        Some(Activation::Relu6),
        "headconv",
    );
    let gap = b.op(Op::GlobalAvgPool, &[cur], "gap");
    let out = fc(&mut b, gap, 32, 16, None, "classifier");
    b.finish(vec![out])
}

/// DLRM (paper model 4): bottom MLP over dense features, pairwise dot
/// interactions with embedded sparse features, top MLP with sigmoid.
///
/// The paper's DLRM gathers rows from embedding tables; embedding gathers
/// with private tables are out of scope (see DESIGN.md), so the embedded
/// sparse features enter as inputs, which exercises the identical
/// interaction + MLP circuit.
pub fn dlrm() -> Graph {
    let mut b = GraphBuilder::new("DLRM", 0x5EED_0004);
    let dense = b.input(vec![1, 16], "dense");
    let emb_dim = 8usize;
    let n_sparse = 6usize;
    let sparse = b.input(vec![1, n_sparse, emb_dim], "sparse_embedded");
    // Bottom MLP: 16 -> 32 -> emb_dim.
    let h = fc(&mut b, dense, 16, 32, Some(Activation::Relu), "bot1");
    let z = fc(&mut b, h, 32, emb_dim, Some(Activation::Relu), "bot2");
    // Interaction: stack dense output with sparse embeddings, Z Z^T.
    let zr = b.op(
        Op::Reshape {
            shape: vec![1, 1, emb_dim],
        },
        &[z],
        "z3d",
    );
    let stack = b.op(Op::Concat { axis: 1 }, &[zr, sparse], "stack");
    let stack_t = b.op(
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        &[stack],
        "stack_t",
    );
    let inter = b.op(Op::BatchMatMul, &[stack, stack_t], "interact");
    let flat = b.op(Op::Flatten, &[inter], "flat");
    let joined = b.op(Op::Concat { axis: 1 }, &[z, flat], "join");
    let d = emb_dim + (n_sparse + 1) * (n_sparse + 1);
    let t1 = fc(&mut b, joined, d, 32, Some(Activation::Relu), "top1");
    let t2 = fc(&mut b, t1, 32, 16, Some(Activation::Relu), "top2");
    let out = fc(&mut b, t2, 16, 1, Some(Activation::Sigmoid), "top3");
    b.finish(vec![out])
}

/// Twitter's MaskNet recommender (paper model 3): parallel instance-guided
/// mask blocks (two-layer mask MLP, elementwise gating, layer norm) over the
/// feature embedding, followed by a scoring head.
pub fn twitter_masknet() -> Graph {
    let mut b = GraphBuilder::new("Twitter", 0x5EED_0003);
    let d = 32usize;
    let x = b.input(vec![1, d], "features");
    let ln_g = b.weight(vec![d], "ln0.gamma");
    let ln_b = b.weight(vec![d], "ln0.beta");
    let xn = b.op(Op::LayerNorm { eps: 1e-5 }, &[x, ln_g, ln_b], "ln0");
    let mut block_outputs = Vec::new();
    let block_dim = 16usize;
    for blk in 0..2 {
        let name = format!("mask{blk}");
        // Instance-guided mask: d -> 2d -> d on the raw embedding.
        let m1 = fc(
            &mut b,
            x,
            d,
            2 * d,
            Some(Activation::Relu),
            &format!("{name}.agg"),
        );
        let m2 = fc(&mut b, m1, 2 * d, d, None, &format!("{name}.proj"));
        let gated = b.op(Op::Mul, &[xn, m2], &format!("{name}.gate"));
        let hidden = fc(&mut b, gated, d, block_dim, None, &format!("{name}.hidden"));
        let g = b.weight(vec![block_dim], &format!("{name}.ln.gamma"));
        let beta = b.weight(vec![block_dim], &format!("{name}.ln.beta"));
        let normed = b.op(
            Op::LayerNorm { eps: 1e-5 },
            &[hidden, g, beta],
            &format!("{name}.ln"),
        );
        let act = b.op(
            Op::Act(Activation::Relu),
            &[normed],
            &format!("{name}.relu"),
        );
        block_outputs.push(act);
    }
    let cat = b.op(Op::Concat { axis: 1 }, &block_outputs, "concat");
    let h = fc(
        &mut b,
        cat,
        2 * block_dim,
        16,
        Some(Activation::Relu),
        "head1",
    );
    let logit = fc(&mut b, h, 16, 1, None, "head2");
    // Calibration temperature: sharpen the logit before the sigmoid so
    // engagement probabilities separate at fixed-point precision.
    let scaled = b.op(Op::DivConst { divisor: 0.125 }, &[logit], "temperature");
    let out = b.op(Op::Act(Activation::Sigmoid), &[scaled], "probability");
    b.finish(vec![out])
}

/// Distilled GPT-2 (paper model 1): pre-LN transformer blocks with
/// multi-head-style attention (single head at nano scale), GELU MLP, and a
/// language-model head. Token embedding enters as an input (see DESIGN.md).
pub fn gpt2() -> Graph {
    gpt2_config(8, 16, 2, 32)
}

/// GPT-2 with explicit (seq, d_model, layers, vocab) for scaling studies.
pub fn gpt2_config(seq: usize, d: usize, layers: usize, vocab: usize) -> Graph {
    let mut b = GraphBuilder::new("GPT-2", 0x5EED_0001);
    let x = b.input(vec![1, seq, d], "embedded_tokens");
    let mut cur = x;
    let sqrt_d = (d as f32).sqrt();
    for l in 0..layers {
        let name = format!("blk{l}");
        let g1 = b.weight(vec![d], &format!("{name}.ln1.g"));
        let b1 = b.weight(vec![d], &format!("{name}.ln1.b"));
        let ln1 = b.op(
            Op::LayerNorm { eps: 1e-5 },
            &[cur, g1, b1],
            &format!("{name}.ln1"),
        );
        let q = fc(&mut b, ln1, d, d, None, &format!("{name}.q"));
        let k = fc(&mut b, ln1, d, d, None, &format!("{name}.k"));
        let v = fc(&mut b, ln1, d, d, None, &format!("{name}.v"));
        let kt = b.op(
            Op::Transpose {
                perm: vec![0, 2, 1],
            },
            &[k],
            &format!("{name}.kt"),
        );
        let scores = b.op(Op::BatchMatMul, &[q, kt], &format!("{name}.qk"));
        let scaled = b.op(
            Op::DivConst { divisor: sqrt_d },
            &[scores],
            &format!("{name}.scale"),
        );
        let probs = b.op(Op::Softmax, &[scaled], &format!("{name}.softmax"));
        let ctx = b.op(Op::BatchMatMul, &[probs, v], &format!("{name}.ctx"));
        let attn_out = fc(&mut b, ctx, d, d, None, &format!("{name}.attn_out"));
        let res1 = b.op(Op::Add, &[cur, attn_out], &format!("{name}.res1"));
        let g2 = b.weight(vec![d], &format!("{name}.ln2.g"));
        let b2 = b.weight(vec![d], &format!("{name}.ln2.b"));
        let ln2 = b.op(
            Op::LayerNorm { eps: 1e-5 },
            &[res1, g2, b2],
            &format!("{name}.ln2"),
        );
        let m1 = fc(
            &mut b,
            ln2,
            d,
            4 * d,
            Some(Activation::Gelu),
            &format!("{name}.mlp1"),
        );
        let m2 = fc(&mut b, m1, 4 * d, d, None, &format!("{name}.mlp2"));
        cur = b.op(Op::Add, &[res1, m2], &format!("{name}.res2"));
    }
    let gf = b.weight(vec![d], "lnf.g");
    let bf = b.weight(vec![d], "lnf.b");
    let lnf = b.op(Op::LayerNorm { eps: 1e-5 }, &[cur, gf, bf], "lnf");
    let logits = fc(&mut b, lnf, d, vocab, None, "lm_head");
    b.finish(vec![logits])
}

/// A small latent diffusion denoiser (paper model 2): UNet with SiLU convs,
/// a self-attention middle block, timestep-embedding injection, and skip
/// connections through nearest-neighbour upsampling.
pub fn diffusion() -> Graph {
    let mut b = GraphBuilder::new("Diffusion", 0x5EED_0002);
    let x = b.input(vec![1, 8, 8, 4], "latent");
    let t_emb = b.input(vec![1, 8], "t_embedding");
    // Down path.
    let d1 = conv(&mut b, x, 4, 8, 3, 1, Some(Activation::Silu), "down1");
    // Inject the timestep embedding as a per-channel bias.
    let t_proj = fc(&mut b, t_emb, 8, 8, Some(Activation::Silu), "t_proj");
    let t_b = b.op(
        Op::Reshape {
            shape: vec![1, 1, 1, 8],
        },
        &[t_proj],
        "t_b",
    );
    let d1t = b.op(Op::Add, &[d1, t_b], "inject_t");
    let d2 = conv(&mut b, d1t, 8, 8, 3, 2, Some(Activation::Silu), "down2");
    // Middle: conv + single-head self-attention over 4x4 tokens.
    let mid1 = conv(&mut b, d2, 8, 8, 3, 1, Some(Activation::Silu), "mid1");
    let tokens = b.op(
        Op::Reshape {
            shape: vec![1, 16, 8],
        },
        &[mid1],
        "tokens",
    );
    let q = fc(&mut b, tokens, 8, 8, None, "attn.q");
    let k = fc(&mut b, tokens, 8, 8, None, "attn.k");
    let v = fc(&mut b, tokens, 8, 8, None, "attn.v");
    let kt = b.op(
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        &[k],
        "attn.kt",
    );
    let scores = b.op(Op::BatchMatMul, &[q, kt], "attn.qk");
    let scaled = b.op(
        Op::DivConst {
            divisor: (8f32).sqrt(),
        },
        &[scores],
        "attn.scale",
    );
    let probs = b.op(Op::Softmax, &[scaled], "attn.sm");
    let ctx = b.op(Op::BatchMatMul, &[probs, v], "attn.ctx");
    let attn = b.op(
        Op::Reshape {
            shape: vec![1, 4, 4, 8],
        },
        &[ctx],
        "attn.grid",
    );
    let mid2 = b.op(Op::Add, &[mid1, attn], "mid.res");
    // Up path with skip connection.
    let up = b.op(Op::Upsample2x, &[mid2], "up");
    let skip = b.op(Op::Concat { axis: 3 }, &[up, d1t], "skip");
    let u1 = conv(&mut b, skip, 16, 8, 3, 1, Some(Activation::Silu), "up1");
    let out = conv(&mut b, u1, 8, 4, 3, 1, None, "out");
    b.finish(vec![out])
}

/// Canonical CLI names of the zoo models, in the paper's Table 5 order.
pub const MODEL_NAMES: [&str; 8] = [
    "gpt2",
    "diffusion",
    "twitter",
    "dlrm",
    "mobilenet",
    "resnet18",
    "vgg16",
    "mnist",
];

/// Looks up a zoo model by name (case-insensitive, common aliases accepted).
///
/// This is the single source of truth for name-to-model resolution; the CLI
/// and the proving service both route through it.
pub fn by_name(name: &str) -> Option<Graph> {
    Some(match name.to_ascii_lowercase().as_str() {
        "mnist" => mnist_cnn(),
        "vgg16" | "vgg" => vgg16(),
        "resnet18" | "resnet-18" | "resnet" => resnet18(),
        "mobilenet" => mobilenet_v2(),
        "dlrm" => dlrm(),
        "twitter" | "masknet" => twitter_masknet(),
        "gpt2" | "gpt-2" | "gpt" => gpt2(),
        "diffusion" => diffusion(),
        _ => return None,
    })
}

/// All eight evaluation models, in the paper's Table 5 order.
pub fn all_models() -> Vec<Graph> {
    vec![
        gpt2(),
        diffusion(),
        twitter_masknet(),
        dlrm(),
        mobilenet_v2(),
        resnet18(),
        vgg16(),
        mnist_cnn(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_f32, execute_fixed};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use zkml_tensor::{FixedPoint, Tensor};

    fn random_inputs(g: &Graph, seed: u64) -> Vec<Tensor<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        g.inputs
            .iter()
            .map(|id| {
                let shape = g.shape(*id).to_vec();
                let n: usize = shape.iter().product();
                Tensor::new(shape, (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect()
    }

    #[test]
    fn all_models_execute_f32() {
        for g in all_models() {
            let inputs = random_inputs(&g, 1);
            let e = execute_f32(&g, &inputs);
            for out in &g.outputs {
                let t = e.value(*out);
                assert!(
                    t.data().iter().all(|v| v.is_finite()),
                    "{}: non-finite output",
                    g.name
                );
            }
        }
    }

    #[test]
    fn all_models_execute_fixed_and_track_float() {
        let fp = FixedPoint::new(14);
        for g in all_models() {
            let inputs = random_inputs(&g, 2);
            let qin: Vec<Tensor<i64>> = inputs.iter().map(|t| fp.quantize_tensor(t)).collect();
            let ef = execute_f32(&g, &inputs);
            let eq = execute_fixed(&g, &qin, fp);
            let mut max_err = 0f32;
            for out in &g.outputs {
                for (a, b) in ef.value(*out).data().iter().zip(eq.value(*out).data()) {
                    max_err = max_err.max((a - fp.dequantize(*b)).abs());
                }
            }
            assert!(
                max_err < 0.25,
                "{}: fixed-point diverged from float by {max_err}",
                g.name
            );
        }
    }

    #[test]
    fn by_name_covers_the_zoo() {
        // Every canonical name resolves, matching all_models() order.
        let from_names: Vec<String> = MODEL_NAMES
            .iter()
            .map(|n| by_name(n).expect("canonical name").name)
            .collect();
        let from_zoo: Vec<String> = all_models().into_iter().map(|g| g.name).collect();
        assert_eq!(from_names, from_zoo);
        // Display names, aliases, and arbitrary case also resolve.
        for alias in ["ResNet-18", "GPT-2", "vgg", "MASKNET", "Gpt"] {
            assert!(by_name(alias).is_some(), "alias {alias} should resolve");
        }
        assert!(by_name("alexnet").is_none());
    }

    #[test]
    fn model_names_match_paper_order() {
        let names: Vec<String> = all_models().into_iter().map(|g| g.name).collect();
        assert_eq!(
            names,
            vec![
                "GPT-2",
                "Diffusion",
                "Twitter",
                "DLRM",
                "MobileNet",
                "ResNet-18",
                "VGG16",
                "MNIST"
            ]
        );
    }
}
