//! Reference executors: float (f32) and fixed-point (i64).
//!
//! The fixed-point executor mirrors the circuit semantics exactly (same
//! rescaling points, same lookup quantization via [`crate::qops`]); the
//! compiler uses its per-node outputs as golden witness values, and Table 8
//! compares its outputs against the f32 executor.

use crate::graph::{Graph, TensorId, TensorKind};
use crate::op::{conv_output_dim, Op, Padding};
use crate::qops;
use zkml_tensor::{FixedPoint, Tensor};

/// Results of running a graph: every tensor's value.
pub struct Execution<T> {
    /// Values indexed by `TensorId`.
    pub values: Vec<Option<Tensor<T>>>,
}

impl<T: Clone> Execution<T> {
    /// The value of a tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor was never computed.
    pub fn value(&self, id: TensorId) -> &Tensor<T> {
        self.values[id].as_ref().expect("tensor not computed")
    }

    /// The model outputs, in declaration order.
    pub fn outputs(&self, g: &Graph) -> Vec<Tensor<T>> {
        g.outputs.iter().map(|id| self.value(*id).clone()).collect()
    }
}

// ---------------------------------------------------------------------------
// f32 executor
// ---------------------------------------------------------------------------

/// Runs the graph in f32.
///
/// # Panics
///
/// Panics if the number of inputs is wrong or shapes mismatch.
pub fn execute_f32(g: &Graph, inputs: &[Tensor<f32>]) -> Execution<f32> {
    assert_eq!(inputs.len(), g.inputs.len(), "input count mismatch");
    let mut values: Vec<Option<Tensor<f32>>> = g.weights.clone();
    for (id, t) in g.inputs.iter().zip(inputs) {
        assert_eq!(g.shape(*id), t.shape(), "input shape mismatch");
        values[*id] = Some(t.clone());
    }
    for node in &g.nodes {
        let get = |i: usize| values[node.inputs[i]].as_ref().expect("input computed");
        let out = eval_f32(&node.op, &node.inputs, &values, get);
        values[node.output] = Some(out);
    }
    Execution { values }
}

fn eval_f32<'a>(
    op: &Op,
    inputs: &[TensorId],
    values: &'a [Option<Tensor<f32>>],
    get: impl Fn(usize) -> &'a Tensor<f32>,
) -> Tensor<f32> {
    match op {
        Op::Reshape { shape } => get(0).reshape(shape.clone()),
        Op::Transpose { perm } => get(0).transpose(perm),
        Op::Slice { starts, ends } => get(0).slice(starts, ends),
        Op::Concat { axis } => {
            let parts: Vec<&Tensor<f32>> = inputs
                .iter()
                .map(|i| values[*i].as_ref().expect("computed"))
                .collect();
            Tensor::concat(&parts, *axis)
        }
        Op::Pad { pads } => get(0).pad(pads, 0.0),
        Op::Squeeze { axis } => get(0).squeeze(*axis),
        Op::ExpandDims { axis } => get(0).expand_dims(*axis),
        Op::Flatten => {
            let t = get(0);
            let n: usize = t.shape()[1..].iter().product();
            t.reshape(vec![t.shape()[0], n])
        }
        Op::BroadcastTo { shape } => get(0).broadcast_to(shape),
        Op::Upsample2x => upsample2x(get(0)),
        Op::Add => get(0).zip(get(1), |a, b| a + b),
        Op::Sub => get(0).zip(get(1), |a, b| a - b),
        Op::Mul => get(0).zip(get(1), |a, b| a * b),
        Op::SquaredDifference => get(0).zip(get(1), |a, b| (a - b) * (a - b)),
        Op::DivConst { divisor } => get(0).map(|x| x / divisor),
        Op::Square => get(0).map(|x| x * x),
        Op::Sum { axis, keep_dims } => reduce_f32(get(0), *axis, *keep_dims, false),
        Op::Mean { axis, keep_dims } => reduce_f32(get(0), *axis, *keep_dims, true),
        Op::FullyConnected { activation } => {
            let y = matmul_f32(get(0), get(1), inputs.get(2).map(|_| get(2)));
            match activation {
                Some(a) => y.map(|x| a.eval(*x)),
                None => y,
            }
        }
        Op::Conv2D {
            stride,
            padding,
            activation,
        } => {
            let y = conv2d_f32(
                get(0),
                get(1),
                inputs.get(2).map(|_| get(2)),
                *stride,
                *padding,
                false,
            );
            match activation {
                Some(a) => y.map(|x| a.eval(*x)),
                None => y,
            }
        }
        Op::DepthwiseConv2D {
            stride,
            padding,
            activation,
        } => {
            let y = conv2d_f32(
                get(0),
                get(1),
                inputs.get(2).map(|_| get(2)),
                *stride,
                *padding,
                true,
            );
            match activation {
                Some(a) => y.map(|x| a.eval(*x)),
                None => y,
            }
        }
        Op::BatchMatMul => bmm_f32(get(0), get(1)),
        Op::AvgPool2D { ksize, stride } => pool_f32(get(0), *ksize, *stride, true),
        Op::MaxPool2D { ksize, stride } => pool_f32(get(0), *ksize, *stride, false),
        Op::GlobalAvgPool => {
            let x = get(0);
            let (n, h, w, c) = nhwc(x.shape());
            let mut out = vec![0f32; n * c];
            for b in 0..n {
                for ch in 0..c {
                    let mut s = 0f32;
                    for i in 0..h {
                        for j in 0..w {
                            s += *x.get(&[b, i, j, ch]);
                        }
                    }
                    out[b * c + ch] = s / (h * w) as f32;
                }
            }
            Tensor::new(vec![n, c], out)
        }
        Op::Softmax => softmax_f32(get(0)),
        Op::LayerNorm { eps } => layernorm_f32(get(0), get(1), get(2), *eps),
        Op::BatchNorm => {
            let x = get(0);
            let scale = get(1);
            let offset = get(2);
            let c = *x.shape().last().unwrap();
            let mut out = x.data().to_vec();
            for (i, v) in out.iter_mut().enumerate() {
                let ch = i % c;
                *v = *v * scale.data()[ch] + offset.data()[ch];
            }
            Tensor::new(x.shape().to_vec(), out)
        }
        Op::Act(a) => get(0).map(|x| a.eval(*x)),
        Op::Rsqrt => get(0).map(|x| 1.0 / x.max(1e-12).sqrt()),
        Op::Sqrt => get(0).map(|x| x.max(0.0).sqrt()),
        Op::Exp => get(0).map(|x| x.exp()),
    }
}

fn nhwc(s: &[usize]) -> (usize, usize, usize, usize) {
    (s[0], s[1], s[2], s[3])
}

fn upsample2x<T: Clone>(x: &Tensor<T>) -> Tensor<T> {
    let (n, h, w, c) = nhwc(x.shape());
    let mut out = Vec::with_capacity(n * h * 2 * w * 2 * c);
    for b in 0..n {
        for i in 0..2 * h {
            for j in 0..2 * w {
                for ch in 0..c {
                    out.push(x.get(&[b, i / 2, j / 2, ch]).clone());
                }
            }
        }
    }
    Tensor::new(vec![n, 2 * h, 2 * w, c], out)
}

fn reduce_f32(x: &Tensor<f32>, axis: usize, keep: bool, mean: bool) -> Tensor<f32> {
    let shape = x.shape().to_vec();
    let mut out_shape = shape.clone();
    out_shape[axis] = 1;
    let count = shape[axis];
    let n_out: usize = out_shape.iter().product();
    let mut out = vec![0f32; n_out];
    for off in 0..x.len() {
        let idx = zkml_tensor::shape::unflatten_index(&shape, off);
        let mut oidx = idx.clone();
        oidx[axis] = 0;
        out[zkml_tensor::shape::flatten_index(&out_shape, &oidx)] += x.data()[off];
    }
    if mean {
        for v in out.iter_mut() {
            *v /= count as f32;
        }
    }
    let t = Tensor::new(out_shape, out);
    if keep {
        t
    } else {
        t.squeeze(axis)
    }
}

fn matmul_f32(x: &Tensor<f32>, w: &Tensor<f32>, b: Option<&Tensor<f32>>) -> Tensor<f32> {
    let k = w.shape()[0];
    let n = w.shape()[1];
    let rows = x.len() / k;
    let mut out = vec![0f32; rows * n];
    for r in 0..rows {
        for j in 0..n {
            let mut acc = b.map(|bb| bb.data()[j]).unwrap_or(0.0);
            for i in 0..k {
                acc += x.data()[r * k + i] * w.data()[i * n + j];
            }
            out[r * n + j] = acc;
        }
    }
    let mut shape = x.shape().to_vec();
    *shape.last_mut().unwrap() = n;
    Tensor::new(shape, out)
}

fn bmm_f32(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    let ar = a.shape().len();
    let (m, k) = (a.shape()[ar - 2], a.shape()[ar - 1]);
    let n = b.shape()[b.shape().len() - 1];
    let batch: usize = a.shape()[..ar - 2].iter().product();
    let mut out = vec![0f32; batch * m * n];
    for bt in 0..batch {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0f32;
                for l in 0..k {
                    acc += a.data()[bt * m * k + i * k + l] * b.data()[bt * k * n + l * n + j];
                }
                out[bt * m * n + i * n + j] = acc;
            }
        }
    }
    let mut shape = a.shape().to_vec();
    *shape.last_mut().unwrap() = n;
    Tensor::new(shape, out)
}

fn conv2d_f32(
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    b: Option<&Tensor<f32>>,
    stride: (usize, usize),
    padding: Padding,
    depthwise: bool,
) -> Tensor<f32> {
    let (n, h, wid, cin) = nhwc(x.shape());
    let (kh, kw) = (w.shape()[0], w.shape()[1]);
    let cout = if depthwise { cin } else { w.shape()[3] };
    let (oh, ph, _) = conv_output_dim(h, kh, stride.0, padding);
    let (ow, pw, _) = conv_output_dim(wid, kw, stride.1, padding);
    let mut out = vec![0f32; n * oh * ow * cout];
    for bi in 0..n {
        for oi in 0..oh {
            for oj in 0..ow {
                for co in 0..cout {
                    let mut acc = b.map(|bb| bb.data()[co]).unwrap_or(0.0);
                    for ki in 0..kh {
                        for kj in 0..kw {
                            let ii = (oi * stride.0 + ki) as isize - ph as isize;
                            let jj = (oj * stride.1 + kj) as isize - pw as isize;
                            if ii < 0 || jj < 0 || ii >= h as isize || jj >= wid as isize {
                                continue;
                            }
                            if depthwise {
                                acc += x.get(&[bi, ii as usize, jj as usize, co])
                                    * w.get(&[ki, kj, co, 0]);
                            } else {
                                for ci in 0..cin {
                                    acc += x.get(&[bi, ii as usize, jj as usize, ci])
                                        * w.get(&[ki, kj, ci, co]);
                                }
                            }
                        }
                    }
                    out[((bi * oh + oi) * ow + oj) * cout + co] = acc;
                }
            }
        }
    }
    Tensor::new(vec![n, oh, ow, cout], out)
}

fn pool_f32(
    x: &Tensor<f32>,
    ksize: (usize, usize),
    stride: (usize, usize),
    avg: bool,
) -> Tensor<f32> {
    let (n, h, w, c) = nhwc(x.shape());
    let oh = (h - ksize.0) / stride.0 + 1;
    let ow = (w - ksize.1) / stride.1 + 1;
    let mut out = vec![0f32; n * oh * ow * c];
    for b in 0..n {
        for oi in 0..oh {
            for oj in 0..ow {
                for ch in 0..c {
                    let mut acc = if avg { 0f32 } else { f32::NEG_INFINITY };
                    for ki in 0..ksize.0 {
                        for kj in 0..ksize.1 {
                            let v = *x.get(&[b, oi * stride.0 + ki, oj * stride.1 + kj, ch]);
                            if avg {
                                acc += v;
                            } else {
                                acc = acc.max(v);
                            }
                        }
                    }
                    if avg {
                        acc /= (ksize.0 * ksize.1) as f32;
                    }
                    out[((b * oh + oi) * ow + oj) * c + ch] = acc;
                }
            }
        }
    }
    Tensor::new(vec![n, oh, ow, c], out)
}

fn softmax_f32(x: &Tensor<f32>) -> Tensor<f32> {
    let d = *x.shape().last().unwrap();
    let mut out = x.data().to_vec();
    for row in out.chunks_mut(d) {
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Tensor::new(x.shape().to_vec(), out)
}

fn layernorm_f32(
    x: &Tensor<f32>,
    gamma: &Tensor<f32>,
    beta: &Tensor<f32>,
    eps: f32,
) -> Tensor<f32> {
    let d = *x.shape().last().unwrap();
    let mut out = x.data().to_vec();
    for row in out.chunks_mut(d) {
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let r = 1.0 / (var + eps).sqrt();
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * r * gamma.data()[j] + beta.data()[j];
        }
    }
    Tensor::new(x.shape().to_vec(), out)
}

// ---------------------------------------------------------------------------
// Fixed-point executor
// ---------------------------------------------------------------------------

/// Runs the graph in fixed point, mirroring the circuit semantics.
///
/// Weights are quantized at `SF`; biases at `SF^2` so they can be added to
/// unrescaled accumulators (as the circuit does).
pub fn execute_fixed(g: &Graph, inputs: &[Tensor<i64>], fp: FixedPoint) -> Execution<i64> {
    assert_eq!(inputs.len(), g.inputs.len(), "input count mismatch");
    let mut values: Vec<Option<Tensor<i64>>> = vec![None; g.tensors.len()];
    for (id, meta) in g.tensors.iter().enumerate() {
        if meta.kind == TensorKind::Weight {
            let w = g.weights[id].as_ref().expect("weight values");
            values[id] = Some(fp.quantize_tensor(w));
        }
    }
    for (id, t) in g.inputs.iter().zip(inputs) {
        assert_eq!(g.shape(*id), t.shape(), "input shape mismatch");
        values[*id] = Some(t.clone());
    }
    for node in &g.nodes {
        let out = eval_fixed(g, node, &values, fp);
        values[node.output] = Some(out);
    }
    Execution { values }
}

/// Evaluates a single node in fixed point (exposed for witness generation).
pub fn eval_fixed(
    g: &Graph,
    node: &crate::graph::Node,
    values: &[Option<Tensor<i64>>],
    fp: FixedPoint,
) -> Tensor<i64> {
    let sf = fp.scale();
    let get =
        |i: usize| -> &Tensor<i64> { values[node.inputs[i]].as_ref().expect("input computed") };
    // Bias at double scale (added before the rescale).
    let bias2 = |i: usize| -> Option<Tensor<i64>> {
        node.inputs.get(i).map(|id| {
            let w = g.weights[*id].as_ref().expect("bias weight");
            w.map(|x| ((*x as f64) * (sf as f64) * (sf as f64)).round() as i64)
        })
    };
    let rescale = |x: i64| qops::div_round(x, sf);
    match &node.op {
        Op::Reshape { shape } => get(0).reshape(shape.clone()),
        Op::Transpose { perm } => get(0).transpose(perm),
        Op::Slice { starts, ends } => get(0).slice(starts, ends),
        Op::Concat { axis } => {
            let parts: Vec<&Tensor<i64>> = node
                .inputs
                .iter()
                .map(|i| values[*i].as_ref().expect("computed"))
                .collect();
            Tensor::concat(&parts, *axis)
        }
        Op::Pad { pads } => get(0).pad(pads, 0),
        Op::Squeeze { axis } => get(0).squeeze(*axis),
        Op::ExpandDims { axis } => get(0).expand_dims(*axis),
        Op::Flatten => {
            let t = get(0);
            let n: usize = t.shape()[1..].iter().product();
            t.reshape(vec![t.shape()[0], n])
        }
        Op::BroadcastTo { shape } => get(0).broadcast_to(shape),
        Op::Upsample2x => upsample2x(get(0)),
        Op::Add => get(0).zip(get(1), |a, b| a + b),
        Op::Sub => get(0).zip(get(1), |a, b| a - b),
        Op::Mul => get(0).zip(get(1), |a, b| rescale(a * b)),
        Op::SquaredDifference => get(0).zip(get(1), |a, b| rescale((a - b) * (a - b))),
        Op::DivConst { divisor } => {
            let c_q = ((*divisor as f64) * sf as f64).round() as i64;
            get(0).map(|x| qops::div_const_q(*x, c_q, sf))
        }
        Op::Square => get(0).map(|x| rescale(x * x)),
        Op::Sum { axis, keep_dims } => reduce_fixed(get(0), *axis, *keep_dims, false),
        Op::Mean { axis, keep_dims } => reduce_fixed(get(0), *axis, *keep_dims, true),
        Op::FullyConnected { activation } => {
            let y = matmul_fixed(get(0), get(1), bias2(2).as_ref(), sf);
            match activation {
                Some(a) => y.map(|x| qops::act_q(*a, *x, sf)),
                None => y,
            }
        }
        Op::Conv2D {
            stride,
            padding,
            activation,
        } => {
            let y = conv2d_fixed(
                get(0),
                get(1),
                bias2(2).as_ref(),
                *stride,
                *padding,
                false,
                sf,
            );
            match activation {
                Some(a) => y.map(|x| qops::act_q(*a, *x, sf)),
                None => y,
            }
        }
        Op::DepthwiseConv2D {
            stride,
            padding,
            activation,
        } => {
            let y = conv2d_fixed(
                get(0),
                get(1),
                bias2(2).as_ref(),
                *stride,
                *padding,
                true,
                sf,
            );
            match activation {
                Some(a) => y.map(|x| qops::act_q(*a, *x, sf)),
                None => y,
            }
        }
        Op::BatchMatMul => bmm_fixed(get(0), get(1), sf),
        Op::AvgPool2D { ksize, stride } => pool_fixed(get(0), *ksize, *stride, true),
        Op::MaxPool2D { ksize, stride } => pool_fixed(get(0), *ksize, *stride, false),
        Op::GlobalAvgPool => {
            let x = get(0);
            let (n, h, w, c) = nhwc(x.shape());
            let mut out = vec![0i64; n * c];
            for b in 0..n {
                for ch in 0..c {
                    let mut s = 0i64;
                    for i in 0..h {
                        for j in 0..w {
                            s += *x.get(&[b, i, j, ch]);
                        }
                    }
                    out[b * c + ch] = qops::div_round(s, (h * w) as i64);
                }
            }
            Tensor::new(vec![n, c], out)
        }
        Op::Softmax => softmax_fixed(get(0), sf),
        Op::LayerNorm { .. } => layernorm_fixed(get(0), get(1), get(2), sf),
        Op::BatchNorm => {
            let x = get(0);
            let scale = get(1);
            let offset = get(2);
            let c = *x.shape().last().unwrap();
            let data: Vec<i64> = x
                .data()
                .iter()
                .enumerate()
                .map(|(i, v)| rescale(v * scale.data()[i % c]) + offset.data()[i % c])
                .collect();
            Tensor::new(x.shape().to_vec(), data)
        }
        Op::Act(a) => get(0).map(|x| qops::act_q(*a, *x, sf)),
        Op::Rsqrt => get(0).map(|x| qops::rsqrt_q(*x, sf)),
        Op::Sqrt => get(0).map(|x| qops::sqrt_q(*x, sf)),
        Op::Exp => get(0).map(|x| qops::exp_q(*x, sf)),
    }
}

fn reduce_fixed(x: &Tensor<i64>, axis: usize, keep: bool, mean: bool) -> Tensor<i64> {
    let shape = x.shape().to_vec();
    let mut out_shape = shape.clone();
    out_shape[axis] = 1;
    let count = shape[axis] as i64;
    let n_out: usize = out_shape.iter().product();
    let mut out = vec![0i64; n_out];
    for off in 0..x.len() {
        let idx = zkml_tensor::shape::unflatten_index(&shape, off);
        let mut oidx = idx.clone();
        oidx[axis] = 0;
        out[zkml_tensor::shape::flatten_index(&out_shape, &oidx)] += x.data()[off];
    }
    if mean {
        for v in out.iter_mut() {
            *v = qops::div_round(*v, count);
        }
    }
    let t = Tensor::new(out_shape, out);
    if keep {
        t
    } else {
        t.squeeze(axis)
    }
}

fn matmul_fixed(
    x: &Tensor<i64>,
    w: &Tensor<i64>,
    b2: Option<&Tensor<i64>>,
    sf: i64,
) -> Tensor<i64> {
    let k = w.shape()[0];
    let n = w.shape()[1];
    let rows = x.len() / k;
    let mut out = vec![0i64; rows * n];
    for r in 0..rows {
        for j in 0..n {
            let mut acc: i64 = b2.map(|bb| bb.data()[j]).unwrap_or(0);
            for i in 0..k {
                acc += x.data()[r * k + i] * w.data()[i * n + j];
            }
            out[r * n + j] = qops::div_round(acc, sf);
        }
    }
    let mut shape = x.shape().to_vec();
    *shape.last_mut().unwrap() = n;
    Tensor::new(shape, out)
}

fn bmm_fixed(a: &Tensor<i64>, b: &Tensor<i64>, sf: i64) -> Tensor<i64> {
    let ar = a.shape().len();
    let (m, k) = (a.shape()[ar - 2], a.shape()[ar - 1]);
    let n = b.shape()[b.shape().len() - 1];
    let batch: usize = a.shape()[..ar - 2].iter().product();
    let mut out = vec![0i64; batch * m * n];
    for bt in 0..batch {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for l in 0..k {
                    acc += a.data()[bt * m * k + i * k + l] * b.data()[bt * k * n + l * n + j];
                }
                out[bt * m * n + i * n + j] = qops::div_round(acc, sf);
            }
        }
    }
    let mut shape = a.shape().to_vec();
    *shape.last_mut().unwrap() = n;
    Tensor::new(shape, out)
}

fn conv2d_fixed(
    x: &Tensor<i64>,
    w: &Tensor<i64>,
    b2: Option<&Tensor<i64>>,
    stride: (usize, usize),
    padding: Padding,
    depthwise: bool,
    sf: i64,
) -> Tensor<i64> {
    let (n, h, wid, cin) = nhwc(x.shape());
    let (kh, kw) = (w.shape()[0], w.shape()[1]);
    let cout = if depthwise { cin } else { w.shape()[3] };
    let (oh, ph, _) = conv_output_dim(h, kh, stride.0, padding);
    let (ow, pw, _) = conv_output_dim(wid, kw, stride.1, padding);
    let mut out = vec![0i64; n * oh * ow * cout];
    for bi in 0..n {
        for oi in 0..oh {
            for oj in 0..ow {
                for co in 0..cout {
                    let mut acc: i64 = b2.map(|bb| bb.data()[co]).unwrap_or(0);
                    for ki in 0..kh {
                        for kj in 0..kw {
                            let ii = (oi * stride.0 + ki) as isize - ph as isize;
                            let jj = (oj * stride.1 + kj) as isize - pw as isize;
                            if ii < 0 || jj < 0 || ii >= h as isize || jj >= wid as isize {
                                continue;
                            }
                            if depthwise {
                                acc += x.get(&[bi, ii as usize, jj as usize, co])
                                    * w.get(&[ki, kj, co, 0]);
                            } else {
                                for ci in 0..cin {
                                    acc += x.get(&[bi, ii as usize, jj as usize, ci])
                                        * w.get(&[ki, kj, ci, co]);
                                }
                            }
                        }
                    }
                    out[((bi * oh + oi) * ow + oj) * cout + co] = qops::div_round(acc, sf);
                }
            }
        }
    }
    Tensor::new(vec![n, oh, ow, cout], out)
}

fn pool_fixed(
    x: &Tensor<i64>,
    ksize: (usize, usize),
    stride: (usize, usize),
    avg: bool,
) -> Tensor<i64> {
    let (n, h, w, c) = nhwc(x.shape());
    let oh = (h - ksize.0) / stride.0 + 1;
    let ow = (w - ksize.1) / stride.1 + 1;
    let mut out = vec![0i64; n * oh * ow * c];
    for b in 0..n {
        for oi in 0..oh {
            for oj in 0..ow {
                for ch in 0..c {
                    let mut acc: i64 = if avg { 0 } else { i64::MIN };
                    for ki in 0..ksize.0 {
                        for kj in 0..ksize.1 {
                            let v = *x.get(&[b, oi * stride.0 + ki, oj * stride.1 + kj, ch]);
                            if avg {
                                acc += v;
                            } else {
                                acc = acc.max(v);
                            }
                        }
                    }
                    if avg {
                        acc = qops::div_round(acc, (ksize.0 * ksize.1) as i64);
                    }
                    out[((b * oh + oi) * ow + oj) * c + ch] = acc;
                }
            }
        }
    }
    Tensor::new(vec![n, oh, ow, c], out)
}

/// Fixed-point softmax exactly as the circuit computes it (§6.1): max-shift,
/// scaled-exp lookup, sum, then scaled-numerator rounded variable division.
pub fn softmax_fixed(x: &Tensor<i64>, sf: i64) -> Tensor<i64> {
    let d = *x.shape().last().unwrap();
    let mut out = x.data().to_vec();
    for row in out.chunks_mut(d) {
        let m = *row.iter().max().expect("nonempty row");
        let exps: Vec<i64> = row.iter().map(|v| qops::exp_q(v - m, sf)).collect();
        let sum: i64 = exps.iter().sum();
        for (v, e) in row.iter_mut().zip(&exps) {
            *v = qops::var_div_scaled(*e, sum.max(1), sf);
        }
    }
    Tensor::new(x.shape().to_vec(), out)
}

/// Fixed-point layer norm as the circuit computes it.
pub fn layernorm_fixed(
    x: &Tensor<i64>,
    gamma: &Tensor<i64>,
    beta: &Tensor<i64>,
    sf: i64,
) -> Tensor<i64> {
    let d = *x.shape().last().unwrap();
    let mut out = x.data().to_vec();
    for row in out.chunks_mut(d) {
        let mean = qops::div_round(row.iter().sum::<i64>(), d as i64);
        let sq: Vec<i64> = row
            .iter()
            .map(|v| qops::div_round((v - mean) * (v - mean), sf))
            .collect();
        let var = qops::div_round(sq.iter().sum::<i64>(), d as i64);
        let r = qops::rsqrt_q(var, sf);
        for (j, v) in row.iter_mut().enumerate() {
            let norm = qops::div_round((*v - mean) * r, sf);
            *v = qops::div_round(norm * gamma.data()[j], sf) + beta.data()[j];
        }
    }
    Tensor::new(x.shape().to_vec(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::op::Activation;

    #[test]
    fn f32_fc_matches_manual() {
        let mut b = GraphBuilder::new("t", 0);
        let x = b.input(vec![1, 2], "x");
        let w = b.weight_with(Tensor::new(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]), "w");
        let bias = b.weight_with(Tensor::from_vec(vec![0.5, -0.5]), "b");
        let y = b.op(Op::FullyConnected { activation: None }, &[x, w, bias], "fc");
        let g = b.finish(vec![y]);
        let out = execute_f32(&g, &[Tensor::new(vec![1, 2], vec![1.0, 1.0])]);
        // [1,1] @ [[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5].
        assert_eq!(out.value(y).data(), &[4.5, 5.5]);
    }

    #[test]
    fn fixed_tracks_float_for_smooth_ops() {
        let fp = FixedPoint::new(12);
        let mut b = GraphBuilder::new("t", 3);
        let x = b.input(vec![1, 8], "x");
        let w = b.weight(vec![8, 4], "w");
        let bias = b.weight(vec![4], "b");
        let h = b.op(
            Op::FullyConnected {
                activation: Some(Activation::Relu),
            },
            &[x, w, bias],
            "fc1",
        );
        let w2 = b.weight(vec![4, 2], "w2");
        let y = b.op(Op::FullyConnected { activation: None }, &[h, w2], "fc2");
        let s = b.op(Op::Softmax, &[y], "sm");
        let g = b.finish(vec![s]);

        let xf = Tensor::new(vec![1, 8], (0..8).map(|i| (i as f32 - 4.0) / 4.0).collect());
        let xq = fp.quantize_tensor(&xf);
        let ef = execute_f32(&g, &[xf]);
        let eq = execute_fixed(&g, &[xq], fp);
        for (a, b) in ef.value(s).data().iter().zip(eq.value(s).data()) {
            let bq = fp.dequantize(*b);
            assert!((a - bq).abs() < 0.02, "float {a} vs fixed {bq}");
        }
        // Softmax outputs sum to ~SF.
        let total: i64 = eq.value(s).data().iter().sum();
        assert!((total - fp.scale()).abs() <= 2, "sum {total}");
    }

    #[test]
    fn maxpool_and_avgpool() {
        let mut b = GraphBuilder::new("t", 0);
        let x = b.input(vec![1, 2, 2, 1], "x");
        let mp = b.op(
            Op::MaxPool2D {
                ksize: (2, 2),
                stride: (2, 2),
            },
            &[x],
            "mp",
        );
        let g = b.finish(vec![mp]);
        let inp = Tensor::new(vec![1, 2, 2, 1], vec![1i64, 5, 3, 2]);
        let e = execute_fixed(&g, &[inp], FixedPoint::new(8));
        assert_eq!(e.value(mp).data(), &[5]);
    }

    #[test]
    fn conv_same_padding_fixed_vs_float() {
        let fp = FixedPoint::new(12);
        let mut b = GraphBuilder::new("t", 5);
        let x = b.input(vec![1, 5, 5, 2], "x");
        let w = b.weight(vec![3, 3, 2, 3], "w");
        let bias = b.weight(vec![3], "b");
        let y = b.op(
            Op::Conv2D {
                stride: (2, 2),
                padding: Padding::Same,
                activation: Some(Activation::Relu),
            },
            &[x, w, bias],
            "conv",
        );
        let g = b.finish(vec![y]);
        let xf = Tensor::new(
            vec![1, 5, 5, 2],
            (0..50).map(|i| ((i % 7) as f32 - 3.0) / 3.0).collect(),
        );
        let xq = fp.quantize_tensor(&xf);
        let ef = execute_f32(&g, &[xf]);
        let eq = execute_fixed(&g, &[xq], fp);
        assert_eq!(ef.value(y).shape(), &[1, 3, 3, 3]);
        for (a, b) in ef.value(y).data().iter().zip(eq.value(y).data()) {
            assert!((a - fp.dequantize(*b)).abs() < 0.01);
        }
    }

    #[test]
    fn layernorm_fixed_tracks_float() {
        let fp = FixedPoint::new(12);
        let mut b = GraphBuilder::new("t", 9);
        let x = b.input(vec![2, 6], "x");
        let gamma = b.weight_with(Tensor::from_vec(vec![1.0f32; 6]), "g");
        let beta = b.weight_with(Tensor::from_vec(vec![0.0f32; 6]), "b");
        let y = b.op(Op::LayerNorm { eps: 1e-5 }, &[x, gamma, beta], "ln");
        let g = b.finish(vec![y]);
        let xf = Tensor::new(
            vec![2, 6],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, -1.0, 0.5, 2.0, -0.5, 1.5, 0.0],
        );
        let xq = fp.quantize_tensor(&xf);
        let ef = execute_f32(&g, &[xf]);
        let eq = execute_fixed(&g, &[xq], fp);
        for (a, b) in ef.value(y).data().iter().zip(eq.value(y).data()) {
            assert!(
                (a - fp.dequantize(*b)).abs() < 0.05,
                "{a} vs {}",
                fp.dequantize(*b)
            );
        }
    }
}
