//! Quantized scalar semantics shared by the fixed-point executor, the
//! circuit lookup-table builder, and witness generation.
//!
//! Having a single definition is what guarantees the circuit computes
//! *exactly* what the reference executor computes — the accuracy comparison
//! of Table 8 then measures pure quantization error.

use crate::op::Activation;

pub use zkml_tensor::fixed::div_round;

/// Quantized pointwise activation: `round(f(x / SF) * SF)`.
pub fn act_q(act: Activation, x: i64, scale: i64) -> i64 {
    let xf = x as f64 / scale as f64;
    (act.eval(xf as f32) as f64 * scale as f64).round() as i64
}

/// Quantized scaled exponential `round(exp(x/SF) * SF)` (the paper's
/// "scaled exponentiation", §5.1). Inputs are expected to be `<= 0` after
/// the softmax max-shift; large-magnitude negatives saturate to 0.
pub fn exp_q(x: i64, scale: i64) -> i64 {
    let xf = x as f64 / scale as f64;
    ((xf.exp()) * scale as f64).round() as i64
}

/// Quantized reciprocal square root `round(SF / sqrt(x / SF))`, with
/// non-positive inputs clamped to the smallest representable positive value.
pub fn rsqrt_q(x: i64, scale: i64) -> i64 {
    let xf = (x.max(1)) as f64 / scale as f64;
    (scale as f64 / xf.sqrt()).round() as i64
}

/// Quantized square root `round(sqrt(x / SF) * SF)` (non-positive -> 0).
pub fn sqrt_q(x: i64, scale: i64) -> i64 {
    if x <= 0 {
        return 0;
    }
    let xf = x as f64 / scale as f64;
    (xf.sqrt() * scale as f64).round() as i64
}

/// Rounded variable division `round(b * SF / a)` — the scaled-numerator
/// division used by the softmax (§6.1: "we scale the numerator by the scale
/// factor").
pub fn var_div_scaled(b: i64, a: i64, scale: i64) -> i64 {
    assert!(a > 0, "softmax denominator must be positive");
    div_round_i128(b as i128 * scale as i128, a as i128) as i64
}

/// Rounded division on i128 (round-half-up via euclidean floor, matching
/// the in-circuit `DivRound` relation), for scaled numerators.
pub fn div_round_i128(a: i128, b: i128) -> i128 {
    assert!(b > 0);
    (2 * a + b).div_euclid(2 * b)
}

/// Division by a quantized constant: `round(x / c)` where `c_q = round(c*SF)`.
pub fn div_const_q(x: i64, c_q: i64, scale: i64) -> i64 {
    assert!(c_q > 0, "divisor must be positive");
    div_round_i128(x as i128 * scale as i128, c_q as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_q_matches_definition() {
        let sf = 256;
        assert_eq!(act_q(Activation::Relu, -100, sf), 0);
        assert_eq!(act_q(Activation::Relu, 300, sf), 300);
    }

    #[test]
    fn exp_q_saturates_for_large_negatives() {
        let sf = 1024;
        assert_eq!(exp_q(-100 * sf, sf), 0);
        assert_eq!(exp_q(0, sf), sf);
    }

    #[test]
    fn rsqrt_of_one_is_one() {
        let sf = 4096;
        assert_eq!(rsqrt_q(sf, sf), sf);
        // rsqrt(4) = 0.5.
        assert_eq!(rsqrt_q(4 * sf, sf), sf / 2);
    }

    #[test]
    fn var_div_scaled_basic() {
        let sf = 256;
        // b/a = 1/2 -> SF/2.
        assert_eq!(var_div_scaled(100, 200, sf), sf / 2);
        assert_eq!(var_div_scaled(200, 200, sf), sf);
    }

    #[test]
    fn div_const_symmetry() {
        let sf = 256;
        let c_q = 2 * sf; // dividing by 2.0
        assert_eq!(div_const_q(100, c_q, sf), 50);
        assert_eq!(div_const_q(-100, c_q, sf), -50);
    }
}
