//! Parameter and FLOP counting (regenerates Table 5).

use crate::graph::{Graph, TensorKind};
use crate::op::Op;

/// Model size statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelStats {
    /// Trainable parameter count.
    pub params: u64,
    /// Floating-point operations for one inference (multiply-adds count 2).
    pub flops: u64,
}

/// Counts parameters and FLOPs for one inference.
pub fn stats(g: &Graph) -> ModelStats {
    let params: u64 = g
        .tensors
        .iter()
        .enumerate()
        .filter(|(_, m)| m.kind == TensorKind::Weight)
        .map(|(i, _)| g.weights[i].as_ref().map(|t| t.len() as u64).unwrap_or(0))
        .sum();

    let mut flops: u64 = 0;
    for node in &g.nodes {
        let out_numel: u64 = g.shape(node.output).iter().product::<usize>() as u64;
        flops += match &node.op {
            op if op.is_shape_op() => 0,
            Op::FullyConnected { activation } => {
                let k = g.shape(node.inputs[1])[0] as u64;
                out_numel * 2 * k + activation.map(|_| out_numel).unwrap_or(0)
            }
            Op::Conv2D { activation, .. } => {
                let w = g.shape(node.inputs[1]);
                let k = (w[0] * w[1] * w[2]) as u64;
                out_numel * 2 * k + activation.map(|_| out_numel).unwrap_or(0)
            }
            Op::DepthwiseConv2D { activation, .. } => {
                let w = g.shape(node.inputs[1]);
                let k = (w[0] * w[1]) as u64;
                out_numel * 2 * k + activation.map(|_| out_numel).unwrap_or(0)
            }
            Op::BatchMatMul => {
                let a = g.shape(node.inputs[0]);
                out_numel * 2 * a[a.len() - 1] as u64
            }
            Op::AvgPool2D { ksize, .. } | Op::MaxPool2D { ksize, .. } => {
                out_numel * (ksize.0 * ksize.1) as u64
            }
            Op::GlobalAvgPool => g.shape(node.inputs[0]).iter().product::<usize>() as u64,
            Op::Softmax => 4 * out_numel,
            Op::LayerNorm { .. } => 8 * out_numel,
            Op::BatchNorm => 2 * out_numel,
            Op::Sum { .. } | Op::Mean { .. } => {
                g.shape(node.inputs[0]).iter().product::<usize>() as u64
            }
            // Elementwise ops.
            _ => out_numel,
        };
    }
    ModelStats { params, flops }
}

/// Formats a count with K/M/B suffixes like the paper's Table 5.
pub fn human(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.1}B", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}K", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn mnist_stats_are_plausible() {
        let s = stats(&zoo::mnist_cnn());
        // conv1: 3*3*1*8 + 8; conv2: 3*3*8*16 + 16; fc: 256*10 + 10.
        assert_eq!(s.params, (72 + 8) + (1152 + 16) + (2560 + 10));
        assert!(s.flops > s.params); // convolutions reuse weights
    }

    #[test]
    fn relative_ordering_matches_paper() {
        // The paper's Table 5: GPT-2 has the most parameters among our
        // scaled models relative to MNIST; VGG16 has more flops than DLRM.
        let mnist = stats(&zoo::mnist_cnn());
        let gpt = stats(&zoo::gpt2());
        let vgg = stats(&zoo::vgg16());
        let dlrm = stats(&zoo::dlrm());
        assert!(gpt.params > mnist.params);
        assert!(vgg.flops > dlrm.flops);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(950), "950");
        assert_eq!(human(8_100), "8.1K");
        assert_eq!(human(81_300_000), "81.3M");
        assert_eq!(human(22_900_000_000), "22.9B");
    }
}
