//! Binary model format.
//!
//! The paper consumes `.tflite` files; this crate's equivalent is a compact
//! binary graph format so models can be saved, shipped to a prover, and
//! reloaded (`Graph::to_bytes` / `Graph::from_bytes`). The encoding is
//! self-describing and versioned.

use crate::graph::{Graph, Node, TensorKind, TensorMeta};
use crate::op::{Activation, Op, Padding};
use zkml_tensor::Tensor;

const MAGIC: &[u8; 8] = b"ZKMLMDL1";

impl Graph {
    /// A stable 32-byte content hash of the model: BLAKE2b over the
    /// serialized graph.
    ///
    /// Two graphs with identical structure, names, and weights hash equally,
    /// and the hash survives `to_bytes`/`from_bytes` round trips, so it can
    /// key caches of per-model artifacts (proving keys, SRS sizes) across
    /// process restarts.
    pub fn content_hash(&self) -> [u8; 32] {
        let mut h = zkml_transcript::Blake2b::new();
        h.update(b"zkml-model-hash-v1");
        h.update(&self.to_bytes());
        let digest = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&digest[..32]);
        out
    }

    /// A 32-byte hash of the model's *architecture*: tensor shapes, kinds,
    /// and weight-presence flags, ops with their attributes, node wiring,
    /// and the graph's input/output lists — but **not** the model name,
    /// tensor names, or weight values.
    ///
    /// Two models that differ only in their trained weights hash equally,
    /// so this keys artifacts that are weight-independent by construction:
    /// with weights in committed columns, the circuit layout and the
    /// proving key depend only on the architecture, and provers for many
    /// weight sets of one architecture share a single cached key.
    pub fn arch_hash(&self) -> [u8; 32] {
        let mut w = W(Vec::new());
        w.u32(self.tensors.len() as u32);
        for (i, t) in self.tensors.iter().enumerate() {
            w.usizes(&t.shape);
            w.u8(match t.kind {
                TensorKind::Input => 0,
                TensorKind::Weight => 1,
                TensorKind::Activation => 2,
            });
            w.u8(self.weights[i].is_some() as u8);
        }
        w.u32(self.nodes.len() as u32);
        for n in &self.nodes {
            write_op(&mut w, &n.op);
            w.usizes(&n.inputs);
            w.u64(n.output as u64);
        }
        w.usizes(&self.inputs);
        w.usizes(&self.outputs);

        let mut h = zkml_transcript::Blake2b::new();
        h.update(b"zkml-model-arch-v1");
        h.update(&w.0);
        let digest = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&digest[..32]);
        out
    }
}

/// Error from model deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelFormatError(pub &'static str);

impl std::fmt::Display for ModelFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model format error: {}", self.0)
    }
}
impl std::error::Error for ModelFormatError {}

struct W(Vec<u8>);
impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn usizes(&mut self, v: &[usize]) {
        self.u32(v.len() as u32);
        for x in v {
            self.u64(*x as u64);
        }
    }
}

struct R<'a> {
    b: &'a [u8],
    p: usize,
}
impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelFormatError> {
        if self.p + n > self.b.len() {
            return Err(ModelFormatError("unexpected end of model file"));
        }
        let s = &self.b[self.p..self.p + n];
        self.p += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ModelFormatError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ModelFormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, ModelFormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f32(&mut self) -> Result<f32, ModelFormatError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn str(&mut self) -> Result<String, ModelFormatError> {
        let n = self.u32()? as usize;
        if n > 1 << 16 {
            return Err(ModelFormatError("string too long"));
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| ModelFormatError("bad utf8"))
    }
    fn usizes(&mut self) -> Result<Vec<usize>, ModelFormatError> {
        let n = self.u32()? as usize;
        if n > 1 << 8 {
            return Err(ModelFormatError("rank too large"));
        }
        (0..n).map(|_| self.u64().map(|v| v as usize)).collect()
    }
}

fn write_act(w: &mut W, a: &Activation) {
    match a {
        Activation::Relu => w.u8(0),
        Activation::Relu6 => w.u8(1),
        Activation::LeakyRelu(s) => {
            w.u8(2);
            w.f32(*s);
        }
        Activation::Elu => w.u8(3),
        Activation::Sigmoid => w.u8(4),
        Activation::Tanh => w.u8(5),
        Activation::Gelu => w.u8(6),
        Activation::Silu => w.u8(7),
    }
}

fn read_act(r: &mut R) -> Result<Activation, ModelFormatError> {
    Ok(match r.u8()? {
        0 => Activation::Relu,
        1 => Activation::Relu6,
        2 => Activation::LeakyRelu(r.f32()?),
        3 => Activation::Elu,
        4 => Activation::Sigmoid,
        5 => Activation::Tanh,
        6 => Activation::Gelu,
        7 => Activation::Silu,
        _ => return Err(ModelFormatError("bad activation tag")),
    })
}

fn write_opt_act(w: &mut W, a: &Option<Activation>) {
    match a {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            write_act(w, a);
        }
    }
}

fn read_opt_act(r: &mut R) -> Result<Option<Activation>, ModelFormatError> {
    Ok(if r.u8()? == 0 {
        None
    } else {
        Some(read_act(r)?)
    })
}

fn write_conv_attrs(w: &mut W, stride: (usize, usize), padding: Padding) {
    w.u64(stride.0 as u64);
    w.u64(stride.1 as u64);
    w.u8(match padding {
        Padding::Same => 0,
        Padding::Valid => 1,
    });
}

fn read_conv_attrs(r: &mut R) -> Result<((usize, usize), Padding), ModelFormatError> {
    let s = (r.u64()? as usize, r.u64()? as usize);
    let p = match r.u8()? {
        0 => Padding::Same,
        1 => Padding::Valid,
        _ => return Err(ModelFormatError("bad padding tag")),
    };
    Ok((s, p))
}

fn write_op(w: &mut W, op: &Op) {
    match op {
        Op::Reshape { shape } => {
            w.u8(0);
            w.usizes(shape);
        }
        Op::Transpose { perm } => {
            w.u8(1);
            w.usizes(perm);
        }
        Op::Slice { starts, ends } => {
            w.u8(2);
            w.usizes(starts);
            w.usizes(ends);
        }
        Op::Concat { axis } => {
            w.u8(3);
            w.u64(*axis as u64);
        }
        Op::Pad { pads } => {
            w.u8(4);
            w.u32(pads.len() as u32);
            for (a, b) in pads {
                w.u64(*a as u64);
                w.u64(*b as u64);
            }
        }
        Op::Squeeze { axis } => {
            w.u8(5);
            w.u64(*axis as u64);
        }
        Op::ExpandDims { axis } => {
            w.u8(6);
            w.u64(*axis as u64);
        }
        Op::Flatten => w.u8(7),
        Op::BroadcastTo { shape } => {
            w.u8(8);
            w.usizes(shape);
        }
        Op::Upsample2x => w.u8(9),
        Op::Add => w.u8(10),
        Op::Sub => w.u8(11),
        Op::Mul => w.u8(12),
        Op::DivConst { divisor } => {
            w.u8(13);
            w.f32(*divisor);
        }
        Op::Square => w.u8(14),
        Op::SquaredDifference => w.u8(15),
        Op::Sum { axis, keep_dims } => {
            w.u8(16);
            w.u64(*axis as u64);
            w.u8(*keep_dims as u8);
        }
        Op::Mean { axis, keep_dims } => {
            w.u8(17);
            w.u64(*axis as u64);
            w.u8(*keep_dims as u8);
        }
        Op::FullyConnected { activation } => {
            w.u8(18);
            write_opt_act(w, activation);
        }
        Op::Conv2D {
            stride,
            padding,
            activation,
        } => {
            w.u8(19);
            write_conv_attrs(w, *stride, *padding);
            write_opt_act(w, activation);
        }
        Op::DepthwiseConv2D {
            stride,
            padding,
            activation,
        } => {
            w.u8(20);
            write_conv_attrs(w, *stride, *padding);
            write_opt_act(w, activation);
        }
        Op::BatchMatMul => w.u8(21),
        Op::AvgPool2D { ksize, stride } => {
            w.u8(22);
            write_conv_attrs(w, *ksize, Padding::Valid);
            w.u64(stride.0 as u64);
            w.u64(stride.1 as u64);
        }
        Op::MaxPool2D { ksize, stride } => {
            w.u8(23);
            write_conv_attrs(w, *ksize, Padding::Valid);
            w.u64(stride.0 as u64);
            w.u64(stride.1 as u64);
        }
        Op::GlobalAvgPool => w.u8(24),
        Op::Softmax => w.u8(25),
        Op::LayerNorm { eps } => {
            w.u8(26);
            w.f32(*eps);
        }
        Op::BatchNorm => w.u8(27),
        Op::Act(a) => {
            w.u8(28);
            write_act(w, a);
        }
        Op::Rsqrt => w.u8(29),
        Op::Sqrt => w.u8(30),
        Op::Exp => w.u8(31),
    }
}

fn read_op(r: &mut R) -> Result<Op, ModelFormatError> {
    Ok(match r.u8()? {
        0 => Op::Reshape { shape: r.usizes()? },
        1 => Op::Transpose { perm: r.usizes()? },
        2 => Op::Slice {
            starts: r.usizes()?,
            ends: r.usizes()?,
        },
        3 => Op::Concat {
            axis: r.u64()? as usize,
        },
        4 => {
            let n = r.u32()? as usize;
            if n > 1 << 8 {
                return Err(ModelFormatError("pad rank too large"));
            }
            let pads = (0..n)
                .map(|_| Ok((r.u64()? as usize, r.u64()? as usize)))
                .collect::<Result<Vec<_>, ModelFormatError>>()?;
            Op::Pad { pads }
        }
        5 => Op::Squeeze {
            axis: r.u64()? as usize,
        },
        6 => Op::ExpandDims {
            axis: r.u64()? as usize,
        },
        7 => Op::Flatten,
        8 => Op::BroadcastTo { shape: r.usizes()? },
        9 => Op::Upsample2x,
        10 => Op::Add,
        11 => Op::Sub,
        12 => Op::Mul,
        13 => Op::DivConst { divisor: r.f32()? },
        14 => Op::Square,
        15 => Op::SquaredDifference,
        16 => Op::Sum {
            axis: r.u64()? as usize,
            keep_dims: r.u8()? != 0,
        },
        17 => Op::Mean {
            axis: r.u64()? as usize,
            keep_dims: r.u8()? != 0,
        },
        18 => Op::FullyConnected {
            activation: read_opt_act(r)?,
        },
        19 => {
            let (stride, padding) = read_conv_attrs(r)?;
            Op::Conv2D {
                stride,
                padding,
                activation: read_opt_act(r)?,
            }
        }
        20 => {
            let (stride, padding) = read_conv_attrs(r)?;
            Op::DepthwiseConv2D {
                stride,
                padding,
                activation: read_opt_act(r)?,
            }
        }
        21 => Op::BatchMatMul,
        22 => {
            let (ksize, _) = read_conv_attrs(r)?;
            Op::AvgPool2D {
                ksize,
                stride: (r.u64()? as usize, r.u64()? as usize),
            }
        }
        23 => {
            let (ksize, _) = read_conv_attrs(r)?;
            Op::MaxPool2D {
                ksize,
                stride: (r.u64()? as usize, r.u64()? as usize),
            }
        }
        24 => Op::GlobalAvgPool,
        25 => Op::Softmax,
        26 => Op::LayerNorm { eps: r.f32()? },
        27 => Op::BatchNorm,
        28 => Op::Act(read_act(r)?),
        29 => Op::Rsqrt,
        30 => Op::Sqrt,
        31 => Op::Exp,
        _ => return Err(ModelFormatError("bad op tag")),
    })
}

impl Graph {
    /// Serializes the graph (structure + weights).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = W(Vec::new());
        w.0.extend_from_slice(MAGIC);
        w.str(&self.name);
        w.u32(self.tensors.len() as u32);
        for (i, t) in self.tensors.iter().enumerate() {
            w.usizes(&t.shape);
            w.u8(match t.kind {
                TensorKind::Input => 0,
                TensorKind::Weight => 1,
                TensorKind::Activation => 2,
            });
            w.str(&t.name);
            match &self.weights[i] {
                None => w.u8(0),
                Some(t) => {
                    w.u8(1);
                    for v in t.data() {
                        w.f32(*v);
                    }
                }
            }
        }
        w.u32(self.nodes.len() as u32);
        for n in &self.nodes {
            write_op(&mut w, &n.op);
            w.usizes(&n.inputs);
            w.u64(n.output as u64);
        }
        w.usizes(&self.inputs);
        w.usizes(&self.outputs);
        w.0
    }

    /// Deserializes a graph.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelFormatError> {
        let mut r = R { b: bytes, p: 0 };
        if r.take(8)? != MAGIC {
            return Err(ModelFormatError("bad magic"));
        }
        let name = r.str()?;
        let nt = r.u32()? as usize;
        if nt > 1 << 20 {
            return Err(ModelFormatError("too many tensors"));
        }
        let mut tensors = Vec::with_capacity(nt);
        let mut weights = Vec::with_capacity(nt);
        for _ in 0..nt {
            let shape = r.usizes()?;
            let kind = match r.u8()? {
                0 => TensorKind::Input,
                1 => TensorKind::Weight,
                2 => TensorKind::Activation,
                _ => return Err(ModelFormatError("bad tensor kind")),
            };
            let tname = r.str()?;
            let has_weights = r.u8()? != 0;
            let numel: usize = shape.iter().product();
            if has_weights {
                if numel > 1 << 26 {
                    return Err(ModelFormatError("weight tensor too large"));
                }
                let data = (0..numel).map(|_| r.f32()).collect::<Result<Vec<_>, _>>()?;
                weights.push(Some(Tensor::new(shape.clone(), data)));
            } else {
                weights.push(None);
            }
            tensors.push(TensorMeta {
                shape,
                kind,
                name: tname,
            });
        }
        let nn = r.u32()? as usize;
        if nn > 1 << 20 {
            return Err(ModelFormatError("too many nodes"));
        }
        let mut nodes = Vec::with_capacity(nn);
        for _ in 0..nn {
            let op = read_op(&mut r)?;
            let inputs = r.usizes()?;
            let output = r.u64()? as usize;
            if output >= tensors.len() || inputs.iter().any(|i| *i >= tensors.len()) {
                return Err(ModelFormatError("tensor id out of range"));
            }
            nodes.push(Node { op, inputs, output });
        }
        let inputs = r.usizes()?;
        let outputs = r.usizes()?;
        if r.p != bytes.len() {
            return Err(ModelFormatError("trailing bytes"));
        }
        Ok(Graph {
            name,
            tensors,
            nodes,
            inputs,
            outputs,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_f32;
    use zkml_tensor::Tensor;

    #[test]
    fn zoo_models_roundtrip() {
        for g in crate::zoo::all_models() {
            let bytes = g.to_bytes();
            let back = Graph::from_bytes(&bytes).unwrap_or_else(|e| panic!("{}: {e}", g.name));
            assert_eq!(back.name, g.name);
            assert_eq!(back.nodes.len(), g.nodes.len());
            assert_eq!(back.inputs, g.inputs);
            assert_eq!(back.outputs, g.outputs);
            // Same execution semantics on the same input.
            let inputs: Vec<Tensor<f32>> = g
                .inputs
                .iter()
                .map(|id| {
                    let shape = g.shape(*id).to_vec();
                    let n: usize = shape.iter().product();
                    Tensor::new(shape, (0..n).map(|i| (i % 7) as f32 / 7.0 - 0.5).collect())
                })
                .collect();
            let out1 = execute_f32(&g, &inputs).outputs(&g);
            let out2 = execute_f32(&back, &inputs).outputs(&back);
            assert_eq!(out1.len(), out2.len());
            for (a, b) in out1.iter().zip(&out2) {
                assert_eq!(a.data(), b.data(), "{} output drift", g.name);
            }
        }
    }

    #[test]
    fn content_hash_stable_across_reserialization() {
        for g in crate::zoo::all_models() {
            let h1 = g.content_hash();
            // A freshly built copy of the same model hashes identically.
            let rebuilt = crate::zoo::by_name(&g.name).expect("zoo name resolves");
            assert_eq!(rebuilt.content_hash(), h1, "{}: rebuild drift", g.name);
            // Round-tripping through the binary format preserves the hash.
            let back = Graph::from_bytes(&g.to_bytes()).unwrap();
            assert_eq!(back.content_hash(), h1, "{}: hash drift", g.name);
            // And re-serializing the deserialized copy is byte-identical.
            assert_eq!(back.to_bytes(), g.to_bytes(), "{}", g.name);
        }
    }

    #[test]
    fn content_hash_distinguishes_models() {
        let hashes: Vec<[u8; 32]> = crate::zoo::all_models()
            .iter()
            .map(Graph::content_hash)
            .collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "models {i} and {j} collide");
            }
        }
    }

    #[test]
    fn arch_hash_ignores_weights_and_names_but_not_structure() {
        let g = crate::zoo::mnist_cnn();
        let h = g.arch_hash();

        // Perturbing one trained weight changes the content hash but not
        // the architecture hash.
        let mut tweaked = Graph::from_bytes(&g.to_bytes()).unwrap();
        let slot = tweaked
            .weights
            .iter_mut()
            .find_map(|w| w.as_mut())
            .expect("mnist has weights");
        slot.data_mut()[0] += 1.0;
        assert_ne!(tweaked.content_hash(), g.content_hash());
        assert_eq!(tweaked.arch_hash(), h, "weights must not affect arch");

        // Renaming the model changes neither structure nor arch hash.
        let mut renamed = Graph::from_bytes(&g.to_bytes()).unwrap();
        renamed.name = "mnist-finetuned".into();
        assert_eq!(renamed.arch_hash(), h, "names must not affect arch");

        // Different architectures hash differently.
        let other = crate::zoo::by_name("dlrm").unwrap();
        assert_ne!(other.arch_hash(), h);
    }

    #[test]
    fn corrupted_models_rejected() {
        let g = crate::zoo::mnist_cnn();
        let bytes = g.to_bytes();
        assert!(Graph::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF; // magic
        assert!(Graph::from_bytes(&bad).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Graph::from_bytes(&trailing).is_err());
    }
}
