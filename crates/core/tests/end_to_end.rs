//! End-to-end compiler tests: graph -> circuit -> proof -> verification,
//! plus cross-checks between the circuit witness and the fixed-point
//! reference executor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkml::{compile, CircuitConfig, LayoutChoices, MatmulImpl, ReluImpl};
use zkml_ff::{Field, Fr};
use zkml_model::{execute_fixed, Activation, Graph, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_tensor::{FixedPoint, Tensor};

fn random_inputs(g: &Graph, seed: u64, fp: FixedPoint) -> Vec<Tensor<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    g.inputs
        .iter()
        .map(|id| {
            let shape = g.shape(*id).to_vec();
            let n: usize = shape.iter().product();
            let data: Vec<i64> = (0..n)
                .map(|_| fp.quantize(rng.gen_range(-1.0..1.0)))
                .collect();
            Tensor::new(shape, data)
        })
        .collect()
}

/// A small but representative model: FC + relu + softmax head.
fn small_mlp() -> Graph {
    let mut b = GraphBuilder::new("tiny-mlp", 77);
    let x = b.input(vec![1, 6], "x");
    let w1 = b.weight(vec![6, 8], "w1");
    let b1 = b.weight(vec![8], "b1");
    let h = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Relu),
        },
        &[x, w1, b1],
        "fc1",
    );
    let w2 = b.weight(vec![8, 4], "w2");
    let b2 = b.weight(vec![4], "b2");
    let y = b.op(Op::FullyConnected { activation: None }, &[h, w2, b2], "fc2");
    let s = b.op(Op::Softmax, &[y], "softmax");
    b.finish(vec![s])
}

fn cfg(choices: LayoutChoices) -> CircuitConfig {
    let mut c = CircuitConfig::default_with(choices);
    c.num_cols = 16;
    c
}

#[test]
fn circuit_witness_matches_reference_executor() {
    let g = small_mlp();
    let config = cfg(LayoutChoices::optimized());
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let inputs = random_inputs(&g, 1, fp);
    let compiled = compile(&g, &inputs, config).unwrap();
    let reference = execute_fixed(&g, &inputs, fp);
    let expect = reference.outputs(&g);
    assert_eq!(compiled.outputs.len(), expect.len());
    for (a, b) in compiled.outputs.iter().zip(&expect) {
        assert_eq!(a, b, "circuit and executor disagree");
    }
}

#[test]
fn all_layout_choices_agree_on_outputs() {
    let g = small_mlp();
    let base_cfg = cfg(LayoutChoices::optimized());
    let fp = FixedPoint::new(base_cfg.numeric.scale_bits);
    let inputs = random_inputs(&g, 2, fp);
    let reference = compile(&g, &inputs, base_cfg).unwrap().outputs;
    for choices in LayoutChoices::candidates() {
        let compiled = match compile(&g, &inputs, cfg(choices)) {
            Ok(c) => c,
            Err(e) => panic!("{choices:?} failed to compile: {e}"),
        };
        assert_eq!(compiled.outputs, reference, "{choices:?} changed semantics");
    }
}

#[test]
fn prove_and_verify_kzg() {
    let g = small_mlp();
    let config = cfg(LayoutChoices::optimized());
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let inputs = random_inputs(&g, 3, fp);
    let compiled = compile(&g, &inputs, config).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let params = Params::setup(Backend::Kzg, compiled.k.max(13), &mut rng);
    let pk = compiled.keygen(&params).unwrap();
    let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
    compiled.verify(&params, &pk.vk, &proof).unwrap();
    assert!(!proof.is_empty());
}

#[test]
fn prove_and_verify_ipa() {
    let g = small_mlp();
    // Direct matmul for the IPA test (exercise a different config).
    let mut choices = LayoutChoices::optimized();
    choices.matmul = MatmulImpl::Direct;
    let config = cfg(choices);
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let inputs = random_inputs(&g, 4, fp);
    let compiled = compile(&g, &inputs, config).unwrap();
    let mut rng = StdRng::seed_from_u64(43);
    let params = Params::setup(Backend::Ipa, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).unwrap();
    let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
    compiled.verify(&params, &pk.vk, &proof).unwrap();
}

#[test]
fn freivalds_and_direct_prove_identical_statements() {
    let g = small_mlp();
    let fp = FixedPoint::new(7);
    let inputs = random_inputs(&g, 5, fp);
    let mut rng = StdRng::seed_from_u64(44);
    let params = Params::setup(Backend::Kzg, 13, &mut rng);
    for matmul in [MatmulImpl::Freivalds, MatmulImpl::Direct] {
        let mut choices = LayoutChoices::optimized();
        choices.matmul = matmul;
        let compiled = compile(&g, &inputs, cfg(choices)).unwrap();
        let pk = compiled.keygen(&params).unwrap();
        let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
        compiled
            .verify(&params, &pk.vk, &proof)
            .unwrap_or_else(|e| panic!("{matmul:?}: {e}"));
    }
}

#[test]
fn wrong_output_claim_rejected() {
    let g = small_mlp();
    let config = cfg(LayoutChoices::optimized());
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let inputs = random_inputs(&g, 6, fp);
    let compiled = compile(&g, &inputs, config).unwrap();
    let mut rng = StdRng::seed_from_u64(45);
    let params = Params::setup(Backend::Kzg, compiled.k.max(13), &mut rng);
    let pk = compiled.keygen(&params).unwrap();
    let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
    // Claiming different public outputs must fail.
    let mut bad_instance = compiled.instance()[0].clone();
    bad_instance[0] += Fr::one();
    assert!(
        zkml_plonk::verify_proof(&params, &pk.vk, &[bad_instance], &proof).is_err(),
        "forged output accepted"
    );
}

#[test]
fn relu_bit_decomposition_proves() {
    let mut b = GraphBuilder::new("relu-net", 9);
    let x = b.input(vec![1, 8], "x");
    let y = b.op(Op::Act(Activation::Relu), &[x], "relu");
    let g = b.finish(vec![y]);
    let mut choices = LayoutChoices::optimized();
    choices.relu = ReluImpl::BitDecompose;
    let config = cfg(choices);
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let inputs = random_inputs(&g, 7, fp);
    let compiled = compile(&g, &inputs, config).unwrap();
    let mut rng = StdRng::seed_from_u64(46);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).unwrap();
    let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
    compiled.verify(&params, &pk.vk, &proof).unwrap();
}

#[test]
fn placement_structure_matches_synthesis() {
    let g = small_mlp();
    let config = cfg(LayoutChoices::optimized());
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let inputs = random_inputs(&g, 8, fp);
    let real = compile(&g, &inputs, config).unwrap();
    // A plan placed from a zero-input schedule must predict the real
    // circuit's structure exactly (layouts are input-independent).
    let sched = zkml::layers::lower_graph(&g, &zkml::optimizer::zero_inputs(&g), config.numeric);
    let plan = zkml::place(&sched, config).unwrap();
    assert_eq!(real.k, plan.k, "planned k mismatch");
    assert_eq!(real.stats, plan.stats, "planned stats mismatch");
    assert_eq!(real.cs, plan.cs, "planned constraint system mismatch");
    assert_eq!(real.circuit_digest(), plan.digest());
    // And synthesizing the same schedule under the plan round-trips.
    let synth = zkml::synthesize(&sched, &plan).unwrap();
    assert_eq!(synth.k, plan.k);
}

#[test]
fn mnist_cnn_proves_and_verifies() {
    let g = zkml_model::zoo::mnist_cnn();
    let config = cfg(LayoutChoices::optimized());
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let inputs = random_inputs(&g, 9, fp);
    let compiled = compile(&g, &inputs, config).unwrap();
    // Cross-check against the reference executor.
    let reference = execute_fixed(&g, &inputs, fp).outputs(&g);
    assert_eq!(compiled.outputs, reference);
    let mut rng = StdRng::seed_from_u64(47);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).unwrap();
    let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
    compiled.verify(&params, &pk.vk, &proof).unwrap();
    eprintln!(
        "MNIST: k={}, rows={}, advice={}, lookups={}, proof={}B",
        compiled.k,
        compiled.stats.rows,
        compiled.stats.num_advice,
        compiled.stats.num_lookups,
        proof.len()
    );
}
