//! Determinism and single-lowering guarantees of the plan-driven optimizer:
//! the parallel layout sweep picks bit-identical winners at any thread
//! count, `lower_graph` runs exactly once per `optimize()`, and the winning
//! plan synthesizes into a circuit that satisfies the constraint checker
//! and a real KZG prove/verify round-trip.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use zkml::cost::HardwareStats;
use zkml::{optimizer, schedules_built, OptimizerOptions};
use zkml_par::{with_pool, Pool};
use zkml_pcs::{Backend, Params};

/// The global schedule counter is process-wide, so every test that reads it
/// (or that compares sweep outputs across pool sizes) runs under this lock
/// to keep the counter arithmetic and thread-pool overrides race-free.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_zoo() -> Vec<zkml_model::Graph> {
    vec![
        zkml_model::zoo::mnist_cnn(),
        zkml_model::zoo::dlrm(),
        zkml_model::zoo::twitter_masknet(),
    ]
}

fn opts() -> OptimizerOptions {
    OptimizerOptions::new(Backend::Kzg, 15)
}

#[test]
fn lower_graph_runs_exactly_once_per_optimize() {
    let _guard = lock();
    let hw = HardwareStats::fixture();
    for g in small_zoo() {
        let inputs = optimizer::zero_inputs(&g);
        let before = schedules_built();
        let report = optimizer::optimize(&g, &inputs, &opts(), &hw).expect("optimize");
        assert_eq!(
            schedules_built(),
            before + 1,
            "{}: optimize() must lower the graph exactly once, \
             regardless of how many candidates it sweeps",
            g.name
        );
        assert!(report.evaluated > 1, "sweep should cover many candidates");
        // Synthesizing the winner replays the stored schedule — no second
        // lowering.
        let before = schedules_built();
        let compiled = report.synthesize_best().expect("synthesize");
        assert_eq!(
            schedules_built(),
            before,
            "{}: synthesize_best() must reuse the schedule, not re-lower",
            g.name
        );
        assert_eq!(compiled.k, report.best_k);
    }
}

#[test]
fn parallel_sweep_matches_serial_exhaustive_sweep() {
    let _guard = lock();
    let hw = HardwareStats::fixture();
    for g in small_zoo() {
        let inputs = optimizer::zero_inputs(&g);
        // Ground truth: serial, exhaustive (no pruning) sweep.
        let mut exhaustive = opts();
        exhaustive.prune = false;
        let serial = with_pool(&Pool::new(1), || {
            optimizer::optimize(&g, &inputs, &exhaustive, &hw)
        })
        .expect("serial exhaustive optimize");
        // The pruned sweep at 1, 2 and the default thread count must pick
        // the same winner — same config, same k, same plan bytes.
        for threads in [Some(1usize), Some(2), None] {
            let run = || optimizer::optimize(&g, &inputs, &opts(), &hw);
            let report = match threads {
                Some(n) => with_pool(&Pool::new(n), run),
                None => run(),
            }
            .expect("optimize");
            let label = threads.map_or("default".into(), |n| n.to_string());
            assert_eq!(
                report.best, serial.best,
                "{} @ {label} threads: winner config diverged",
                g.name
            );
            assert_eq!(report.best_k, serial.best_k, "{} @ {label}", g.name);
            assert_eq!(
                report.best_plan.digest(),
                serial.best_plan.digest(),
                "{} @ {label} threads: winning plan bytes diverged",
                g.name
            );
            assert!(report.evaluated <= serial.evaluated);
        }
    }
}

#[test]
fn winning_plan_synthesizes_and_proves() {
    let _guard = lock();
    let hw = HardwareStats::fixture();
    let g = zkml_model::zoo::mnist_cnn();
    let inputs = optimizer::zero_inputs(&g);
    let report = optimizer::optimize(&g, &inputs, &opts(), &hw).expect("optimize");
    let compiled = report.synthesize_best().expect("synthesize");
    assert_eq!(compiled.circuit_digest(), report.best_plan.digest());
    // Row-exact constraint check.
    let mock = compiled.mock().expect("mock synthesis");
    mock.verify().expect("mock constraints violated");
    // Real KZG round-trip on the planned circuit.
    let mut rng = StdRng::seed_from_u64(17);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).expect("keygen");
    let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
    compiled.verify(&params, &pk.vk, &proof).expect("verify");
}
