//! Properties of the layout optimizer: the chosen plan is never worse than
//! any plan it evaluated, pruning preserves the winner, and the placer's
//! structural predictions match real synthesis for arbitrary models.

use proptest::prelude::*;
use zkml::{compile, optimizer, place, CircuitConfig, LayoutChoices, OptimizerOptions};
use zkml_model::{Activation, Graph, GraphBuilder, Op};
use zkml_pcs::Backend;

/// A random small MLP: depth and widths drawn by proptest.
fn random_mlp(widths: &[usize], with_softmax: bool) -> Graph {
    let mut b = GraphBuilder::new("prop-mlp", widths.iter().sum::<usize>() as u64);
    let mut cur = b.input(vec![1, widths[0]], "x");
    let mut d = widths[0];
    for (i, &w) in widths[1..].iter().enumerate() {
        let wt = b.weight(vec![d, w], &format!("w{i}"));
        let bias = b.weight(vec![w], &format!("b{i}"));
        cur = b.op(
            Op::FullyConnected {
                activation: Some(Activation::Relu),
            },
            &[cur, wt, bias],
            &format!("fc{i}"),
        );
        d = w;
    }
    if with_softmax {
        cur = b.op(Op::Softmax, &[cur], "sm");
    }
    b.finish(vec![cur])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn best_is_minimal_over_evaluated(
        widths in prop::collection::vec(2usize..12, 2..4),
        softmax in any::<bool>(),
    ) {
        let g = random_mlp(&widths, softmax);
        let hw = zkml::cost::HardwareStats::fixture();
        let mut opts = OptimizerOptions::new(Backend::Kzg, 14);
        opts.prune = false;
        opts.n_cols_range = (8, 20);
        let inputs = optimizer::zero_inputs(&g);
        let report = optimizer::optimize(&g, &inputs, &opts, &hw).unwrap();
        for e in &report.all {
            prop_assert!(
                report.best_cost.proving_s <= e.cost.proving_s + 1e-12,
                "beaten by {:?}", e.cfg
            );
        }
    }

    #[test]
    fn placement_matches_real_synthesis(
        widths in prop::collection::vec(2usize..10, 2..4),
        ncols in 8usize..24,
    ) {
        let g = random_mlp(&widths, false);
        let mut cfg = CircuitConfig::default_with(LayoutChoices::optimized());
        cfg.num_cols = ncols;
        let inputs = optimizer::zero_inputs(&g);
        let sched = zkml::layers::lower_graph(&g, &inputs, cfg.numeric);
        let plan = place(&sched, cfg).unwrap();
        let real = compile(&g, &inputs, cfg).unwrap();
        prop_assert_eq!(plan.k, real.k);
        prop_assert_eq!(&plan.stats, &real.stats);
        prop_assert_eq!(&plan.cs, &real.cs);
        // And the plan's digest already identifies the synthesized circuit.
        prop_assert_eq!(plan.digest(), real.circuit_digest());
    }

    #[test]
    fn more_columns_never_increase_rows(
        widths in prop::collection::vec(3usize..10, 2..4),
    ) {
        // Monotonicity the column sweep relies on: row count is
        // non-increasing in the number of columns (same logical layout).
        let g = random_mlp(&widths, false);
        let inputs = optimizer::zero_inputs(&g);
        let sched = zkml::layers::lower_graph(&g, &inputs, zkml::NumericConfig::default_nano());
        let mut prev = usize::MAX;
        for ncols in [8usize, 12, 16, 24, 32] {
            let mut cfg = CircuitConfig::default_with(LayoutChoices::optimized());
            cfg.num_cols = ncols;
            let plan = place(&sched, cfg).unwrap();
            prop_assert!(
                plan.stats.rows <= prev,
                "rows grew from {prev} to {} at {ncols} columns", plan.stats.rows
            );
            prev = plan.stats.rows;
        }
    }
}
