//! Commit-and-prove soundness at the circuit level: the proving key is
//! weight-independent (two weight sets of one architecture share it), and
//! a proof verifies only against the exact weight commitment it was proved
//! under — flipping a single weight after publication is caught.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_model::{Activation, Graph, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_tensor::{FixedPoint, Tensor};

fn small_mlp(seed: u64) -> Graph {
    let mut b = GraphBuilder::new("cw-mlp", seed);
    let x = b.input(vec![1, 6], "x");
    let w1 = b.weight(vec![6, 8], "w1");
    let b1 = b.weight(vec![8], "b1");
    let h = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Relu),
        },
        &[x, w1, b1],
        "fc1",
    );
    let w2 = b.weight(vec![8, 4], "w2");
    let b2 = b.weight(vec![4], "b2");
    let y = b.op(Op::FullyConnected { activation: None }, &[h, w2, b2], "fc2");
    b.finish(vec![y])
}

fn inputs(g: &Graph, seed: u64, fp: FixedPoint) -> Vec<Tensor<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    g.inputs
        .iter()
        .map(|id| {
            let shape = g.shape(*id).to_vec();
            let n: usize = shape.iter().product();
            Tensor::new(
                shape,
                (0..n)
                    .map(|_| fp.quantize(rng.gen_range(-1.0..1.0)))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn proving_key_is_weight_independent_and_commitment_binds_the_proof() {
    let graph_a = small_mlp(77);
    // Tamper: flip one weight. Architecture (and thus circuit layout) is
    // unchanged; the committed values are not.
    let mut graph_b = graph_a.clone();
    let slot = graph_b
        .weights
        .iter_mut()
        .flatten()
        .next()
        .expect("model has weights");
    slot.data_mut()[0] += 0.25;
    assert_eq!(graph_a.arch_hash(), graph_b.arch_hash());
    assert_ne!(graph_a.content_hash(), graph_b.content_hash());

    let mut config = CircuitConfig::default_with(LayoutChoices::optimized());
    config.num_cols = 16;
    let fp = FixedPoint::new(config.numeric.scale_bits);
    let xs = inputs(&graph_a, 1, fp);
    let a = compile(&graph_a, &xs, config).unwrap();
    let b = compile(&graph_b, &xs, config).unwrap();
    assert!(a.has_committed(), "weights must lower to committed columns");
    assert_eq!(
        a.circuit_digest(),
        b.circuit_digest(),
        "the circuit identity must not depend on weight values"
    );
    assert_ne!(
        a.committed_values_digest(),
        b.committed_values_digest(),
        "the committed values digest must detect the flipped weight"
    );

    let mut rng = StdRng::seed_from_u64(42);
    let params = Params::setup(Backend::Kzg, a.k, &mut rng);
    // One keygen serves both weight sets: preprocessing excludes the
    // committed columns entirely.
    let pk = a.keygen(&params).unwrap();

    let (wc_a, weights_a) = a.commit_weights(&params).unwrap();
    let (wc_b, weights_b) = b.commit_weights(&params).unwrap();
    assert_ne!(wc_a.digest, wc_b.digest);

    let proof_a = a
        .prove_with_weights(&params, &pk, &mut rng, &[], &weights_a)
        .unwrap();
    a.verify_with_commitment(&params, &pk.vk, &proof_a, &[], &wc_a)
        .expect("honest proof verifies against its own commitment");
    // The same proof against the tampered commitment must be rejected.
    assert!(
        a.verify_with_commitment(&params, &pk.vk, &proof_a, &[], &wc_b)
            .is_err(),
        "a proof must not verify against a different weight commitment"
    );

    // The tampered model proves fine with the SAME pk — and its proof binds
    // to its own commitment, not the original one.
    let proof_b = b
        .prove_with_weights(&params, &pk, &mut rng, &[], &weights_b)
        .unwrap();
    b.verify_with_commitment(&params, &pk.vk, &proof_b, &[], &wc_b)
        .expect("the shared pk proves the tampered weight set too");
    assert!(
        b.verify_with_commitment(&params, &pk.vk, &proof_b, &[], &wc_a)
            .is_err(),
        "the tampered proof must not pass as the published model"
    );
}
