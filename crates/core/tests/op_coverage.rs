//! Per-operator coverage: for every graph op, a minimal model is compiled
//! and the circuit's witness outputs are checked against the fixed-point
//! reference executor. This covers ops the zoo models don't reach.

use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_model::{execute_fixed, Activation, Graph, GraphBuilder, Op, Padding, TensorId};
use zkml_tensor::{FixedPoint, Tensor};

fn check(g: &Graph, inputs: &[Tensor<i64>]) {
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let compiled =
        compile(g, inputs, cfg).unwrap_or_else(|e| panic!("{}: compile failed: {e}", g.name));
    let reference = execute_fixed(g, inputs, fp).outputs(g);
    assert_eq!(compiled.outputs, reference, "{}: witness mismatch", g.name);
}

fn input_2x3(b: &mut GraphBuilder) -> TensorId {
    b.input(vec![2, 3], "x")
}

fn t_2x3(vals: [i64; 6]) -> Tensor<i64> {
    Tensor::new(vec![2, 3], vals.to_vec())
}

fn unary(name: &str, op: Op, input: Tensor<i64>) {
    let mut b = GraphBuilder::new(name, 1);
    let x = b.input(input.shape().to_vec(), "x");
    let y = b.op(op, &[x], name);
    let g = b.finish(vec![y]);
    check(&g, &[input]);
}

#[test]
fn shape_ops() {
    let x = t_2x3([1, -2, 3, -4, 5, -6]);
    unary("reshape", Op::Reshape { shape: vec![3, 2] }, x.clone());
    unary("transpose", Op::Transpose { perm: vec![1, 0] }, x.clone());
    unary(
        "slice",
        Op::Slice {
            starts: vec![0, 1],
            ends: vec![2, 3],
        },
        x.clone(),
    );
    unary(
        "pad",
        Op::Pad {
            pads: vec![(1, 0), (0, 2)],
        },
        x.clone(),
    );
    unary("expand", Op::ExpandDims { axis: 0 }, x.clone());
    unary("flatten", Op::Flatten, x.clone());
    unary(
        "broadcast",
        Op::BroadcastTo {
            shape: vec![2, 2, 3],
        },
        x.clone(),
    );
    unary(
        "squeeze",
        Op::Squeeze { axis: 0 },
        Tensor::new(vec![1, 4], vec![5, 6, 7, 8]),
    );
    unary(
        "upsample",
        Op::Upsample2x,
        Tensor::new(vec![1, 2, 2, 1], vec![1, 2, 3, 4]),
    );
}

#[test]
fn concat_op() {
    let mut b = GraphBuilder::new("concat", 1);
    let x = input_2x3(&mut b);
    let y = b.input(vec![2, 2], "y");
    let z = b.op(Op::Concat { axis: 1 }, &[x, y], "cat");
    let g = b.finish(vec![z]);
    check(
        &g,
        &[
            t_2x3([1, 2, 3, 4, 5, 6]),
            Tensor::new(vec![2, 2], vec![7, 8, 9, 10]),
        ],
    );
}

#[test]
fn arithmetic_ops() {
    for (name, op) in [
        ("add", Op::Add),
        ("sub", Op::Sub),
        ("mul", Op::Mul),
        ("sqdiff", Op::SquaredDifference),
    ] {
        let mut b = GraphBuilder::new(name, 1);
        let x = input_2x3(&mut b);
        let y = b.input(vec![2, 3], "y");
        let z = b.op(op, &[x, y], name);
        let g = b.finish(vec![z]);
        check(
            &g,
            &[
                t_2x3([60, -120, 3, 4, 900, -6]),
                t_2x3([9, 8, -70, 600, 5, 4]),
            ],
        );
    }
    let x = t_2x3([64, -128, 300, 0, 77, -1]);
    unary("square", Op::Square, x.clone());
    unary("divconst", Op::DivConst { divisor: 2.5 }, x.clone());
    unary(
        "sum",
        Op::Sum {
            axis: 1,
            keep_dims: false,
        },
        x.clone(),
    );
    unary(
        "mean",
        Op::Mean {
            axis: 0,
            keep_dims: true,
        },
        x,
    );
}

#[test]
fn pointwise_ops() {
    // Keep inputs small so lookup/exponential domains are respected.
    let x = t_2x3([64, -32, 0, 127, -128, 5]);
    for act in [
        Activation::Relu,
        Activation::Relu6,
        Activation::LeakyRelu(0.1),
        Activation::Elu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Gelu,
        Activation::Silu,
    ] {
        unary(act.name(), Op::Act(act), x.clone());
    }
    // Non-negative domains.
    let pos = t_2x3([1, 4, 64, 256, 100, 9]);
    unary("sqrt", Op::Sqrt, pos.clone());
    unary("rsqrt", Op::Rsqrt, pos);
    // Exp needs inputs bounded above to keep outputs in the table.
    unary("exp", Op::Exp, t_2x3([0, -64, -128, 32, 64, -300]));
}

#[test]
fn pooling_ops() {
    let img = Tensor::new(
        vec![1, 4, 4, 1],
        (0..16).map(|i| (i * 7 % 23) - 11).collect(),
    );
    unary(
        "maxpool",
        Op::MaxPool2D {
            ksize: (2, 2),
            stride: (2, 2),
        },
        img.clone(),
    );
    unary(
        "avgpool",
        Op::AvgPool2D {
            ksize: (2, 2),
            stride: (2, 2),
        },
        img.clone(),
    );
    unary("gap", Op::GlobalAvgPool, img);
}

#[test]
fn linear_ops() {
    // FC without bias.
    let mut b = GraphBuilder::new("fc-nobias", 2);
    let x = b.input(vec![1, 4], "x");
    let w = b.weight(vec![4, 3], "w");
    let y = b.op(Op::FullyConnected { activation: None }, &[x, w], "fc");
    let g = b.finish(vec![y]);
    check(&g, &[Tensor::new(vec![1, 4], vec![64, -32, 16, 8])]);

    // Conv2D with VALID padding.
    let mut b = GraphBuilder::new("conv-valid", 3);
    let x = b.input(vec![1, 4, 4, 2], "x");
    let w = b.weight(vec![2, 2, 2, 3], "w");
    let bias = b.weight(vec![3], "b");
    let y = b.op(
        Op::Conv2D {
            stride: (1, 1),
            padding: Padding::Valid,
            activation: Some(Activation::Relu),
        },
        &[x, w, bias],
        "conv",
    );
    let g = b.finish(vec![y]);
    check(
        &g,
        &[Tensor::new(
            vec![1, 4, 4, 2],
            (0..32).map(|i| (i * 13 % 64) - 32).collect(),
        )],
    );

    // Depthwise conv.
    let mut b = GraphBuilder::new("dwconv", 4);
    let x = b.input(vec![1, 4, 4, 3], "x");
    let w = b.weight(vec![3, 3, 3, 1], "w");
    let bias = b.weight(vec![3], "b");
    let y = b.op(
        Op::DepthwiseConv2D {
            stride: (2, 2),
            padding: Padding::Same,
            activation: None,
        },
        &[x, w, bias],
        "dw",
    );
    let g = b.finish(vec![y]);
    check(
        &g,
        &[Tensor::new(
            vec![1, 4, 4, 3],
            (0..48).map(|i| (i * 11 % 50) - 25).collect(),
        )],
    );

    // Batched matmul.
    let mut b = GraphBuilder::new("bmm", 5);
    let x = b.input(vec![2, 2, 3], "x");
    let y = b.input(vec![2, 3, 2], "y");
    let z = b.op(Op::BatchMatMul, &[x, y], "bmm");
    let g = b.finish(vec![z]);
    check(
        &g,
        &[
            Tensor::new(vec![2, 2, 3], (0..12).map(|i| i * 10 - 60).collect()),
            Tensor::new(vec![2, 3, 2], (0..12).map(|i| 30 - i * 5).collect()),
        ],
    );
}

#[test]
fn normalization_ops() {
    // Softmax.
    unary("softmax", Op::Softmax, t_2x3([64, -64, 0, 128, 127, -128]));

    // LayerNorm.
    let mut b = GraphBuilder::new("layernorm", 6);
    let x = input_2x3(&mut b);
    let gamma = b.weight_with(Tensor::from_vec(vec![1.0f32, 0.5, 2.0]), "g");
    let beta = b.weight_with(Tensor::from_vec(vec![0.0f32, 0.1, -0.1]), "b");
    let y = b.op(Op::LayerNorm { eps: 1e-5 }, &[x, gamma, beta], "ln");
    let g = b.finish(vec![y]);
    check(&g, &[t_2x3([64, -32, 96, 10, 20, 30])]);

    // BatchNorm (folded affine).
    let mut b = GraphBuilder::new("batchnorm", 7);
    let x = input_2x3(&mut b);
    let scale = b.weight_with(Tensor::from_vec(vec![0.5f32, 1.0, 2.0]), "s");
    let offset = b.weight_with(Tensor::from_vec(vec![0.1f32, -0.1, 0.0]), "o");
    let y = b.op(Op::BatchNorm, &[x, scale, offset], "bn");
    let g = b.finish(vec![y]);
    check(&g, &[t_2x3([64, -32, 96, 10, 20, 30])]);
}
