//! Property tests: gadget value semantics match the quantized reference
//! operations for arbitrary in-range inputs, under every layout choice.

use proptest::prelude::*;
use zkml::{builder::CircuitBuilder, CircuitConfig, Gadget, LayoutChoices};
use zkml_model::qops;

fn builder(packs: usize) -> CircuitBuilder {
    let mut choices = LayoutChoices::optimized();
    choices.lookup_packs = packs;
    let mut cfg = CircuitConfig::default_with(choices);
    cfg.num_cols = 14;
    CircuitBuilder::new(cfg)
}

// Inputs stay inside the non-linearity table domain (2^11 at the default
// numeric config).
fn in_domain() -> impl Strategy<Value = i64> {
    -2000i64..2000
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_matches_integer_dot(xs in prop::collection::vec(in_domain(), 1..40),
                               packs in 1usize..4) {
        let mut b = builder(packs);
        let ys: Vec<i64> = xs.iter().map(|x| (x * 3) % 100).collect();
        let xc = b.load_values(&xs);
        let yc = b.load_values(&ys);
        let z = b.dot(&xc, &yc, None).unwrap();
        let expect: i64 = xs.iter().zip(&ys).map(|(a, c)| a * c).sum();
        prop_assert_eq!(z.v, expect);
    }

    #[test]
    fn sum_matches(xs in prop::collection::vec(in_domain(), 1..60)) {
        let mut b = builder(2);
        let xc = b.load_values(&xs);
        let s = b.sum(&xc).unwrap();
        prop_assert_eq!(s.v, xs.iter().sum::<i64>());
    }

    #[test]
    fn rescale_matches_div_round(xs in prop::collection::vec(-200_000i64..200_000, 1..20)) {
        let mut b = builder(2);
        let sf = b.scale();
        let xc = b.load_values(&xs);
        let ys = b.rescale(&xc).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert_eq!(y.v, qops::div_round(*x, sf));
        }
    }

    #[test]
    fn max_tree_matches(xs in prop::collection::vec(in_domain(), 1..30)) {
        let mut b = builder(2);
        let xc = b.load_values(&xs);
        let m = b.max_tree(&xc).unwrap();
        prop_assert_eq!(m.v, *xs.iter().max().unwrap());
    }

    #[test]
    fn var_div_matches(nums in prop::collection::vec(0i64..1000, 1..12),
                       den in 1i64..1500) {
        let mut b = builder(2);
        let sf = b.scale();
        let nc = b.load_values(&nums);
        let dc = b.load_values(&[den]);
        let out = b.var_div(&nc, dc[0], 1500).unwrap();
        for (n, o) in nums.iter().zip(&out) {
            prop_assert_eq!(o.v, qops::var_div_scaled(*n, den, sf));
        }
    }

    #[test]
    fn relu_impls_agree(xs in prop::collection::vec(in_domain(), 1..30)) {
        let run = |relu: zkml::ReluImpl, xs: &[i64]| -> Vec<i64> {
            let mut choices = LayoutChoices::optimized();
            choices.relu = relu;
            let mut cfg = CircuitConfig::default_with(choices);
            cfg.num_cols = 16;
            let mut b = CircuitBuilder::new(cfg);
            let xc = b.load_values(xs);
            b.relu(&xc).unwrap().iter().map(|v| v.v).collect()
        };
        let lookup = run(zkml::ReluImpl::Lookup, &xs);
        let bits = run(zkml::ReluImpl::BitDecompose, &xs);
        prop_assert_eq!(&lookup, &bits);
        for (x, y) in xs.iter().zip(&lookup) {
            prop_assert_eq!(*y, (*x).max(0));
        }
    }

    #[test]
    fn arith_packs_match(pairs in prop::collection::vec((in_domain(), in_domain()), 1..20)) {
        let mut b = builder(2);
        let pcs: Vec<(zkml::AValue, zkml::AValue)> = pairs
            .iter()
            .map(|(x, y)| {
                let c = b.load_values(&[*x, *y]);
                (c[0], c[1])
            })
            .collect();
        let add = b.arith_pack(Gadget::AddPack, &pcs).unwrap();
        let sub = b.arith_pack(Gadget::SubPack, &pcs).unwrap();
        let mul = b.arith_pack(Gadget::MulPack, &pcs).unwrap();
        for (i, (x, y)) in pairs.iter().enumerate() {
            prop_assert_eq!(add[i].v, x + y);
            prop_assert_eq!(sub[i].v, x - y);
            prop_assert_eq!(mul[i].v, x * y);
        }
    }
}
