//! Fast smoke: every zoo model compiles under the default config in real
//! mode (exercising witness range checks) with small inputs.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_tensor::{FixedPoint, Tensor};

#[test]
fn zoo_compiles_real_mode() {
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    for g in zkml_model::zoo::all_models() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let inputs: Vec<Tensor<i64>> = g
            .inputs
            .iter()
            .map(|id| {
                let shape = g.shape(*id).to_vec();
                let n: usize = shape.iter().product();
                Tensor::new(
                    shape,
                    (0..n)
                        .map(|_| fp.quantize(rng.gen_range(-1.0..1.0)))
                        .collect(),
                )
            })
            .collect();
        let c = compile(&g, &inputs, cfg).unwrap_or_else(|e| panic!("{}: {e}", g.name));
        eprintln!("{:<12} k={} rows={}", g.name, c.k, c.stats.rows);
    }
}
