//! Property tests for schedule segmentation: over randomized schedules and
//! segment counts, the balanced cutter must always produce a true
//! partition of the compute ops, the boundary tensors of adjacent segments
//! must chain exactly (same global ids, same evaluated values), and
//! planning must be fully deterministic — the same schedule always yields
//! byte-identical cuts.

use proptest::prelude::*;
use zkml::schedule::OpSchedule;
use zkml::{cut_schedule, eval_schedule, Gadget, NumericConfig, ScheduleBuilder, SegmentPlan};

/// Opcode stream interpreted by [`build_schedule`]; magnitudes stay far
/// from i64 overflow because every multiplicative op is rescale-contracted
/// (mirroring how `lower_graph` emits them).
fn build_schedule(loads: &[i64], opcodes: &[u8]) -> OpSchedule {
    let mut sb = ScheduleBuilder::new(NumericConfig::default_nano());
    let initial = sb.load_values(loads);
    let mut pool = initial.clone();
    for &code in opcodes {
        let take = ((code as usize >> 3) % pool.len()).max(1);
        let window: Vec<_> = pool[pool.len() - take..].to_vec();
        match code % 6 {
            0 => pool.extend(sb.relu(&window)),
            1 => {
                let pairs: Vec<_> = window.iter().map(|v| (*v, initial[0])).collect();
                pool.extend(sb.arith_pack(Gadget::AddPack, &pairs));
            }
            2 => {
                let pairs: Vec<_> = window.iter().map(|v| (*v, initial[0])).collect();
                pool.extend(sb.arith_pack(Gadget::SubPack, &pairs));
            }
            3 => pool.push(sb.sum(&window)),
            4 => {
                // Dot against the (small) initial loads, then rescale, so
                // magnitudes grow at most geometrically with a tiny base.
                let ys: Vec<_> = window.iter().map(|_| initial[0]).collect();
                let d = sb.dot(&window, &ys, None);
                pool.extend(sb.rescale(&[d]));
            }
            _ => pool.push(sb.max_tree(&window)),
        }
        // Bound the live set so `take` windows stay small.
        if pool.len() > 24 {
            let excess = pool.len() - 24;
            pool.drain(..excess);
        }
    }
    let out = *pool.last().unwrap();
    sb.finish(vec![(vec![1], vec![out])])
}

fn loads_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-8i64..8, 2..10)
}

fn opcodes_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cuts are strictly increasing inside `(0, num_ops)`, so the
    /// natural index ranges tile the op list; consequently every compute
    /// op lands in exactly one segment (loads/consts may rematerialize).
    #[test]
    fn balanced_partitions_cover_every_compute_op_exactly_once(
        loads in loads_strategy(),
        opcodes in opcodes_strategy(),
        nsegs in 1usize..6,
    ) {
        let sched = build_schedule(&loads, &opcodes);
        let plan = SegmentPlan::balanced(&sched, nsegs);
        prop_assert!(plan.num_segments() <= nsegs.max(1));
        let mut prev = 0usize;
        for &c in &plan.cuts {
            prop_assert!(c > prev, "cuts must be strictly increasing: {:?}", plan.cuts);
            prop_assert!(c < sched.num_ops(), "cut {c} outside the schedule");
            prev = c;
        }
        let segs = cut_schedule(&sched, &plan).unwrap();
        prop_assert_eq!(segs.len(), plan.num_segments());
        let per_segment: usize = segs.iter().map(|s| s.schedule.num_compute_ops()).sum();
        let monolithic = sched.num_compute_ops();
        prop_assert_eq!(per_segment, monolithic, "compute ops must partition");
    }

    /// Adjacent segments agree on their shared boundary: same global value
    /// ids, and — when each segment is evaluated independently — the same
    /// concrete values in the producing segment's instance tail as in the
    /// consuming segment's instance head. The last segment's tail must
    /// reproduce the monolithic outputs.
    #[test]
    fn segment_boundaries_chain(
        loads in loads_strategy(),
        opcodes in opcodes_strategy(),
        nsegs in 2usize..6,
    ) {
        let sched = build_schedule(&loads, &opcodes);
        let plan = SegmentPlan::balanced(&sched, nsegs);
        let segs = cut_schedule(&sched, &plan).unwrap();
        let evals: Vec<Vec<i64>> = segs.iter().map(|s| eval_schedule(&s.schedule)).collect();
        for i in 0..segs.len() - 1 {
            prop_assert_eq!(
                &segs[i].boundary_out_ids, &segs[i + 1].boundary_in_ids,
                "segment {} boundary ids do not chain", i
            );
            let tail: Vec<i64> = segs[i].schedule.outputs()[1]
                .1
                .iter()
                .map(|v| evals[i][*v as usize])
                .collect();
            let head: Vec<i64> = segs[i + 1].schedule.outputs()[0]
                .1
                .iter()
                .map(|v| evals[i + 1][*v as usize])
                .collect();
            prop_assert_eq!(tail, head, "segment {} boundary values do not chain", i);
        }
        let mono = eval_schedule(&sched);
        let expect: Vec<i64> = sched
            .outputs()
            .iter()
            .flat_map(|(_, ids)| ids.iter().map(|v| mono[*v as usize]))
            .collect();
        let last = segs.len() - 1;
        let got: Vec<i64> = segs[last].schedule.outputs()[1..]
            .iter()
            .flat_map(|(_, ids)| ids.iter().map(|v| evals[last][*v as usize]))
            .collect();
        prop_assert_eq!(got, expect, "final segment must reproduce model outputs");
    }

    /// Planning is a pure function of the schedule: rebuilding the same
    /// schedule and re-planning yields byte-identical cuts (and identical
    /// segment schedules), which the artifact cache and the bundle format
    /// both rely on.
    #[test]
    fn replanning_is_byte_stable(
        loads in loads_strategy(),
        opcodes in opcodes_strategy(),
        nsegs in 1usize..6,
    ) {
        let a = build_schedule(&loads, &opcodes);
        let b = build_schedule(&loads, &opcodes);
        let plan_a = SegmentPlan::balanced(&a, nsegs);
        let plan_b = SegmentPlan::balanced(&b, nsegs);
        prop_assert_eq!(&plan_a, &plan_b);
        let segs_a = cut_schedule(&a, &plan_a).unwrap();
        let segs_b = cut_schedule(&b, &plan_b).unwrap();
        prop_assert_eq!(segs_a.len(), segs_b.len());
        for (sa, sb_) in segs_a.iter().zip(&segs_b) {
            prop_assert_eq!(format!("{:?}", sa.schedule), format!("{:?}", sb_.schedule));
            prop_assert_eq!(&sa.boundary_in_ids, &sb_.boundary_in_ids);
            prop_assert_eq!(&sa.boundary_out_ids, &sb_.boundary_out_ids);
        }
    }
}
