//! Soundness tests for the Freivalds-checked matrix multiplication path:
//! forged outputs on a Freivalds-compiled model must be rejected, and the
//! phase-1 machinery must be exercised (challenge-dependent witness).

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml::{compile, CircuitConfig, LayoutChoices, MatmulImpl};
use zkml_ff::Fr;
use zkml_model::{Activation, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_plonk::verify_proof;
use zkml_tensor::{FixedPoint, Tensor};

fn fc_model() -> zkml_model::Graph {
    let mut gb = GraphBuilder::new("freivalds-forgery", 3);
    let x = gb.input(vec![1, 6], "x");
    let w = gb.weight(vec![6, 6], "w");
    let b = gb.weight(vec![6], "b");
    let y = gb.op(
        Op::FullyConnected {
            activation: Some(Activation::Relu),
        },
        &[x, w, b],
        "fc",
    );
    gb.finish(vec![y])
}

#[test]
fn forged_output_on_freivalds_model_rejected() {
    let g = fc_model();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    assert!(matches!(cfg.choices.matmul, MatmulImpl::Freivalds));
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let input = fp.quantize_tensor(&Tensor::new(
        vec![1, 6],
        vec![0.3f32, -0.1, 0.8, 0.0, -0.6, 0.4],
    ));
    let compiled = compile(&g, &[input], cfg).unwrap();
    // Phase-1 columns must exist (Freivalds is in use).
    assert!(compiled.cs.num_challenges > 0, "challenge phase expected");
    let mut rng = StdRng::seed_from_u64(9);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).unwrap();
    let proof = compiled.prove(&params, &pk, &mut rng).unwrap();
    compiled.verify(&params, &pk.vk, &proof).unwrap();

    // Forge each of the first few output positions; all must be rejected.
    for i in 0..compiled.instance()[0].len().min(3) {
        let mut forged = compiled.instance()[0].clone();
        forged[i] += Fr::ONE;
        assert!(
            verify_proof(&params, &pk.vk, &[forged], &proof).is_err(),
            "forged output {i} accepted"
        );
    }
}

#[test]
fn proofs_differ_per_input_but_share_keys() {
    let g = fc_model();
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let in1 = fp.quantize_tensor(&Tensor::new(vec![1, 6], vec![0.5f32; 6]));
    let in2 = fp.quantize_tensor(&Tensor::new(vec![1, 6], vec![-0.5f32; 6]));
    let c1 = compile(&g, &[in1], cfg).unwrap();
    let c2 = compile(&g, &[in2], cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let params = Params::setup(Backend::Kzg, c1.k, &mut rng);
    let pk1 = c1.keygen(&params).unwrap();
    let pk2 = c2.keygen(&params).unwrap();
    // Circuit structure is input-independent: same keys.
    assert_eq!(pk1.vk.digest, pk2.vk.digest);
    // Proofs for different inputs verify only against their own outputs.
    let p1 = c1.prove(&params, &pk1, &mut rng).unwrap();
    let p2 = c2.prove(&params, &pk2, &mut rng).unwrap();
    c1.verify(&params, &pk1.vk, &p1).unwrap();
    c2.verify(&params, &pk1.vk, &p2).unwrap();
    assert!(c1.verify(&params, &pk1.vk, &p2).is_err());
    assert!(c2.verify(&params, &pk1.vk, &p1).is_err());
}
