//! Integration: a proof verifies against a verifying key that went through
//! bytes (the standalone-verifier flow of §8), and keys from different
//! models do not cross-verify.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml::{compile, CircuitConfig, LayoutChoices};
use zkml_model::{Activation, GraphBuilder, Op};
use zkml_pcs::{Backend, Params};
use zkml_plonk::VerifyingKey;
use zkml_tensor::{FixedPoint, Tensor};

fn model(hidden: usize) -> zkml_model::Graph {
    let mut b = GraphBuilder::new(format!("ser-{hidden}"), hidden as u64);
    let x = b.input(vec![1, 4], "x");
    let w = b.weight(vec![4, hidden], "w");
    let bias = b.weight(vec![hidden], "b");
    let y = b.op(
        Op::FullyConnected {
            activation: Some(Activation::Relu),
        },
        &[x, w, bias],
        "fc",
    );
    b.finish(vec![y])
}

#[test]
fn proof_verifies_against_deserialized_vk() {
    let g = model(6);
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let input = fp.quantize_tensor(&Tensor::new(vec![1, 4], vec![0.2f32, -0.4, 0.9, 0.0]));
    let compiled = compile(&g, &[input], cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let params = Params::setup(Backend::Kzg, compiled.k, &mut rng);
    let pk = compiled.keygen(&params).unwrap();
    let proof = compiled.prove(&params, &pk, &mut rng).unwrap();

    let bytes = pk.vk.to_bytes();
    let vk2 = VerifyingKey::from_bytes(&bytes).expect("vk roundtrip");
    assert_eq!(vk2.digest, pk.vk.digest);
    // Weights lower into committed columns, so the standalone verifier needs
    // the (deterministic) weight commitment alongside the deserialized vk.
    let (wc, _weights) = compiled.commit_weights(&params).unwrap();
    let verification = zkml_plonk::verify_proof_committed(
        &params,
        &vk2,
        compiled.instance(),
        &proof,
        &[],
        Some(&wc),
    )
    .expect("verify with deserialized vk");
    assert!(verification.settle(&params), "pairing check failed");

    // Serialization is deterministic.
    assert_eq!(bytes, VerifyingKey::from_bytes(&bytes).unwrap().to_bytes());
}

#[test]
fn wrong_models_key_rejects_proof() {
    let cfg = CircuitConfig::default_with(LayoutChoices::optimized());
    let fp = FixedPoint::new(cfg.numeric.scale_bits);
    let input = fp.quantize_tensor(&Tensor::new(vec![1, 4], vec![0.1f32, 0.2, 0.3, 0.4]));

    let g1 = model(6);
    let g2 = model(7); // different architecture -> different circuit
    let c1 = compile(&g1, std::slice::from_ref(&input), cfg).unwrap();
    let c2 = compile(&g2, &[input], cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let k = c1.k.max(c2.k);
    let params = Params::setup(Backend::Kzg, k, &mut rng);
    let pk1 = c1.keygen(&params).unwrap();
    let pk2 = c2.keygen(&params).unwrap();
    assert_ne!(pk1.vk.digest, pk2.vk.digest);
    let proof = c1.prove(&params, &pk1, &mut rng).unwrap();
    // Verifying a g1 proof under g2's key (and g2's weight commitment) must
    // fail (different circuit and instance length).
    let (wc2, _) = c2.commit_weights(&params).unwrap();
    let accepted = zkml_plonk::verify_proof_committed(
        &params,
        &pk2.vk,
        c2.instance(),
        &proof,
        &[],
        Some(&wc2),
    )
    .map(|v| v.settle(&params))
    .unwrap_or(false);
    assert!(!accepted, "cross-model proof must be rejected");
}
