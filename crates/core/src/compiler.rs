//! Stages 2 and 3 of the compile pipeline, plus keygen/prove/verify.
//!
//! Stage 2 — **placement** ([`place`]) — replays an
//! [`crate::schedule::OpSchedule`] through a placer builder
//! and captures the result as a [`LayoutPlan`]: the row count, layout
//! statistics, and constraint-system skeleton of one candidate
//! configuration, with no witness attached. Plans are what the optimizer
//! sweeps and compares.
//!
//! Stage 3 — **synthesis** ([`synthesize`], [`compile`]) — replays the
//! same schedule through a real builder to assign the witness. When a
//! plan is supplied, synthesis cross-checks that it reproduced exactly
//! the structure the plan promised (same `k`, statistics, and constraint
//! system), so a stale or mismatched plan surfaces as
//! [`ZkmlError::PlanMismatch`] instead of an unsound circuit.

use crate::builder::{AValue, BuildError, CircuitBuilder, LayoutStats};
use crate::config::CircuitConfig;
use crate::freivalds::{fill_jobs, FreivaldsJob};
use crate::schedule::{run_schedule, OpSchedule};
use rand::RngCore;
use zkml_analyze::{AnalysisInput, AnalysisReport, RegionSpan};
use zkml_ff::Fr;
use zkml_model::Graph;
use zkml_pcs::Params;
use zkml_plonk::{
    commit_weights, create_proof_bound, create_proof_committed, create_proof_with_rng, keygen,
    verify_proof, verify_proof_committed, CommittedWeights, ConstraintSystem, PlonkError,
    Preprocessed, ProvingKey, VerifyingKey, WeightCommitment, WitnessSource, BLINDING_FACTORS,
};
use zkml_tensor::Tensor;

/// Errors from compilation, planning, or proving.
#[derive(Debug)]
pub enum ZkmlError {
    /// Circuit construction failed.
    Build(BuildError),
    /// Proving-system failure.
    Plonk(PlonkError),
    /// The optimizer found no layout that fits within the row budget.
    NoFeasibleLayout {
        /// The largest `k` the sweep was allowed to consider.
        max_k: u32,
    },
    /// Synthesis produced a different circuit than the supplied plan.
    PlanMismatch(String),
    /// The static analyzer found advice cells not uniquely determined by
    /// the circuit inputs (see [`CompiledCircuit::ensure_determined`]).
    Underconstrained {
        /// How many free cells were reported.
        free_cells: usize,
        /// The analyzer's rendered report.
        detail: String,
    },
}

impl std::fmt::Display for ZkmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZkmlError::Build(e) => write!(f, "{e}"),
            ZkmlError::Plonk(e) => write!(f, "{e}"),
            ZkmlError::NoFeasibleLayout { max_k } => {
                write!(f, "no feasible layout found within max_k = {max_k}")
            }
            ZkmlError::PlanMismatch(s) => write!(f, "plan mismatch: {s}"),
            ZkmlError::Underconstrained { free_cells, detail } => {
                write!(
                    f,
                    "underconstrained circuit ({free_cells} free cells): {detail}"
                )
            }
        }
    }
}
impl std::error::Error for ZkmlError {}
impl From<BuildError> for ZkmlError {
    fn from(e: BuildError) -> Self {
        ZkmlError::Build(e)
    }
}
impl From<PlonkError> for ZkmlError {
    fn from(e: PlonkError) -> Self {
        ZkmlError::Plonk(e)
    }
}

/// Stage 2's output: the complete physical layout of one candidate
/// configuration, without a witness.
///
/// A plan is cheap to hold (the constraint system plus a handful of
/// numbers) and is the unit the optimizer ranks, caches, and finally
/// hands to [`synthesize`]. Its [`digest`](LayoutPlan::digest) is
/// byte-identical to [`CompiledCircuit::circuit_digest`] for the circuit
/// synthesis will produce, so artifact caches can be keyed before any
/// witness exists.
#[derive(Clone, Debug)]
pub struct LayoutPlan {
    /// The configuration the plan was placed under.
    pub cfg: CircuitConfig,
    /// Rows: log2 of the grid height.
    pub k: u32,
    /// Structure statistics (for the cost model and reports).
    pub stats: LayoutStats,
    /// The constraint-system skeleton synthesis must reproduce.
    pub cs: ConstraintSystem,
}

impl LayoutPlan {
    /// Digest pinning the exact circuit identity this plan describes.
    ///
    /// Byte-identical to [`CompiledCircuit::circuit_digest`] of the
    /// synthesized circuit; anything caching proving keys can key on the
    /// plan alone.
    pub fn digest(&self) -> [u8; 32] {
        identity_digest(&self.cfg, self.k, &self.cs)
    }
}

/// Shared digest over (configuration, k, constraint system) — the circuit
/// identity. Used by both [`LayoutPlan::digest`] and
/// [`CompiledCircuit::circuit_digest`] so the two always agree.
fn identity_digest(cfg: &CircuitConfig, k: u32, cs: &ConstraintSystem) -> [u8; 32] {
    let mut w = zkml_pcs::Writer::new();
    w.u32(k);
    let c = &cfg.choices;
    for v in [
        c.relu as u64,
        c.matmul as u64,
        c.dot as u64,
        c.arith as u64,
        c.lookup_packs as u64,
        cfg.num_cols as u64,
        cfg.numeric.scale_bits as u64,
        cfg.numeric.clip_bits as u64,
    ] {
        w.u64(v);
    }
    zkml_plonk::serialize::write_cs(&mut w, cs);
    let mut h = zkml_transcript::Blake2b::new();
    h.update(b"zkml-circuit-digest-v1");
    h.update(&w.finish());
    let digest = h.finalize();
    let mut out = [0u8; 32];
    out.copy_from_slice(&digest[..32]);
    out
}

/// A compiled circuit with its witness, ready for keygen/prove/verify.
pub struct CompiledCircuit {
    /// The configuration it was compiled under.
    pub cfg: CircuitConfig,
    /// Rows: log2 of the grid height.
    pub k: u32,
    /// Structure statistics (for the cost model and reports).
    pub stats: LayoutStats,
    /// The constraint system.
    pub cs: ConstraintSystem,
    /// Fixed columns and copy constraints.
    pub pre: Preprocessed,
    /// Quantized model outputs (the public values).
    pub outputs: Vec<Tensor<i64>>,
    instance: Vec<Vec<Fr>>,
    advice0: Vec<(usize, Vec<Fr>)>,
    p1_cols: Vec<usize>,
    p1_rows: usize,
    jobs: Vec<FreivaldsJob>,
    assigned: Vec<zkml_plonk::CellRef>,
    inputs: Vec<zkml_plonk::CellRef>,
    regions: Vec<RegionSpan>,
}

struct ZkmlWitness<'a> {
    c: &'a CompiledCircuit,
}

impl WitnessSource for ZkmlWitness<'_> {
    fn instance(&self) -> Vec<Vec<Fr>> {
        self.c.instance.clone()
    }
    fn advice(&self, phase: u8, challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
        if phase == 0 {
            self.c.advice0.clone()
        } else {
            fill_jobs(&self.c.jobs, &self.c.p1_cols, challenges, self.c.p1_rows)
        }
    }
}

fn check_numeric(sched: &OpSchedule, cfg: &CircuitConfig) -> Result<(), ZkmlError> {
    if sched.numeric != cfg.numeric {
        return Err(ZkmlError::PlanMismatch(format!(
            "schedule numeric config {:?} != circuit config {:?}",
            sched.numeric, cfg.numeric
        )));
    }
    Ok(())
}

/// Stage 2: places a schedule under one candidate configuration, producing
/// its [`LayoutPlan`] row-exactly without assigning a witness
/// (GeneratePhysicalLayout, §7.3).
pub fn place(sched: &OpSchedule, cfg: CircuitConfig) -> Result<LayoutPlan, ZkmlError> {
    check_numeric(sched, &cfg)?;
    let mut bld = CircuitBuilder::placer(cfg);
    let outs = run_schedule(&mut bld, sched)?;
    let flat: Vec<AValue> = outs.iter().flat_map(|t| t.data().iter().copied()).collect();
    bld.expose(&flat);
    let k = bld.min_k();
    let stats = bld.stats();
    let (cs, ..) = bld.take_parts();
    Ok(LayoutPlan { cfg, k, stats, cs })
}

/// Stage 3: synthesizes the witness for a schedule under a chosen plan.
///
/// The schedule is replayed exactly once through a real builder; the
/// resulting structure is checked against the plan and any drift is a
/// [`ZkmlError::PlanMismatch`].
pub fn synthesize(sched: &OpSchedule, plan: &LayoutPlan) -> Result<CompiledCircuit, ZkmlError> {
    let c = synthesize_schedule(sched, plan.cfg)?;
    if c.k != plan.k {
        return Err(ZkmlError::PlanMismatch(format!(
            "planned k = {} but synthesis needed k = {}",
            plan.k, c.k
        )));
    }
    if c.stats != plan.stats {
        return Err(ZkmlError::PlanMismatch(format!(
            "planned stats {:?} != synthesized stats {:?}",
            plan.stats, c.stats
        )));
    }
    if c.cs != plan.cs {
        return Err(ZkmlError::PlanMismatch(
            "synthesized constraint system differs from plan".into(),
        ));
    }
    Ok(c)
}

/// Compiles a graph (with quantized inputs) straight through: lower once,
/// synthesize under `cfg`. Convenience path for callers that don't sweep
/// layouts; the optimizer uses [`place`] + [`synthesize`] instead.
pub fn compile(
    graph: &Graph,
    inputs: &[Tensor<i64>],
    cfg: CircuitConfig,
) -> Result<CompiledCircuit, ZkmlError> {
    let sched = crate::layers::lower_graph(graph, inputs, cfg.numeric);
    synthesize_schedule(&sched, cfg)
}

/// Single-pass synthesis of a schedule (no plan cross-check).
fn synthesize_schedule(
    sched: &OpSchedule,
    cfg: CircuitConfig,
) -> Result<CompiledCircuit, ZkmlError> {
    check_numeric(sched, &cfg)?;
    let mut bld = CircuitBuilder::new(cfg);
    let outs = run_schedule(&mut bld, sched)?;
    finalize(bld, outs)
}

/// Compiles a hand-written synthesis closure instead of a model graph.
///
/// The closure builds any circuit it likes against the gadget API and
/// returns the values to expose as public outputs. This is how the testkit
/// drives individual gadgets through the mock checker without constructing
/// a model around each one. The closure runs twice — once through a placer
/// builder and once for real — which exercises the same
/// placement/synthesis consistency invariant the optimizer relies on, for
/// every gadget case in the suite.
pub fn compile_with<F>(cfg: CircuitConfig, synthesize: F) -> Result<CompiledCircuit, ZkmlError>
where
    F: Fn(&mut CircuitBuilder) -> Result<Vec<AValue>, BuildError>,
{
    // Placement pass. Value-dependent range checks are placer-skipped, so
    // a closure that fails only on witness values errors in the second
    // pass instead — same error either way.
    let mut p = CircuitBuilder::placer(cfg);
    let vals = synthesize(&mut p)?;
    p.expose(&vals);
    let plan = LayoutPlan {
        cfg,
        k: p.min_k(),
        stats: p.stats(),
        cs: {
            let (cs, ..) = p.take_parts();
            cs
        },
    };

    // Synthesis pass.
    let mut bld = CircuitBuilder::new(cfg);
    let vals = synthesize(&mut bld)?;
    let outs = vec![Tensor::new(vec![vals.len()], vals)];
    let c = finalize(bld, outs)?;
    if c.k != plan.k || c.stats != plan.stats || c.cs != plan.cs {
        return Err(ZkmlError::PlanMismatch(
            "placer and synthesis disagree on closure circuit".into(),
        ));
    }
    Ok(c)
}

/// Shared back half of synthesis: expose outputs, pad tables, and pack the
/// builder state into a [`CompiledCircuit`].
fn finalize(
    mut bld: CircuitBuilder,
    outs: Vec<Tensor<AValue>>,
) -> Result<CompiledCircuit, ZkmlError> {
    let cfg = bld.cfg;
    let flat: Vec<AValue> = outs.iter().flat_map(|t| t.data().iter().copied()).collect();
    bld.expose(&flat);

    let k = bld.min_k();
    let usable = (1usize << k) - BLINDING_FACTORS - 1;
    let stats = bld.stats();
    let outputs: Vec<Tensor<i64>> = outs.iter().map(|t| t.map(|a| a.v)).collect();

    // Pad lookup-table columns to the usable height with valid entries so
    // the padding rows do not weaken the table (see builder docs).
    bld.write_range_table();
    let pads = bld.table_pad_info();
    for (cols, len, defaults) in &pads {
        for (col, default) in cols.iter().zip(defaults) {
            for row in *len..usable {
                bld.set_fixed_pub(*col, row, zkml_ff::PrimeField::from_i64(*default));
            }
        }
    }

    let p1_rows = bld.p1_rows_used();
    let assigned = bld.take_assigned();
    let inputs = bld.take_inputs();
    let mut regions = bld.take_regions();
    let jobs = bld.take_freivalds_jobs();
    let grid: Vec<usize> = bld.grid_cols().to_vec();
    let p1_cols: Vec<usize> = bld.p1_cols().to_vec();
    if let (Some(first), Some(last)) = (p1_cols.first(), p1_cols.last()) {
        if p1_rows > 0 {
            regions.push(RegionSpan {
                label: "freivalds".to_string(),
                columns: *first..*last + 1,
                rows: 0..p1_rows,
            });
        }
    }
    let num_fixed = bld.num_fixed_cols();
    let (cs, mut fixed_vals, advice_vals, copies, instance_vals, committed_vals) = bld.take_parts();

    fixed_vals.resize(num_fixed, Vec::new());
    let pre = Preprocessed {
        fixed: fixed_vals,
        copies,
        committed: committed_vals,
    };
    let advice0: Vec<(usize, Vec<Fr>)> = grid
        .iter()
        .map(|c| (*c, advice_vals.get(*c).cloned().unwrap_or_default()))
        .collect();

    Ok(CompiledCircuit {
        cfg,
        k,
        stats,
        cs,
        pre,
        outputs,
        instance: vec![instance_vals],
        advice0,
        p1_cols,
        p1_rows,
        jobs,
        assigned,
        inputs,
        regions,
    })
}

/// Synthesizes a schedule under a plan and runs the static analyzer over
/// the result — the optimizer-sweep entry point for checking that a
/// *candidate* layout (not just the winner) is fully constrained.
pub fn analyze_plan(sched: &OpSchedule, plan: &LayoutPlan) -> Result<AnalysisReport, ZkmlError> {
    Ok(synthesize(sched, plan)?.analyze())
}

impl CompiledCircuit {
    /// A digest pinning this compilation's exact circuit identity: the
    /// configuration (gadget choices, column count, numerics), the row
    /// count, and the serialized constraint system.
    ///
    /// The optimizer picks the configuration using machine- and
    /// run-dependent timing measurements, so two compilations of the same
    /// model can legitimately produce different circuits that share a `k`.
    /// Anything caching keys derived from a compiled circuit must key on
    /// this digest (in addition to the model hash), not on `k` alone.
    /// Byte-identical to [`LayoutPlan::digest`] for the plan this circuit
    /// was synthesized from.
    pub fn circuit_digest(&self) -> [u8; 32] {
        identity_digest(&self.cfg, self.k, &self.cs)
    }

    /// Whether this circuit carries committed (weight) columns.
    pub fn has_committed(&self) -> bool {
        self.cs.num_committed > 0
    }

    /// A digest over the raw committed-column (weight) values — pure
    /// hashing, no MSM. Comparing this against the digest recorded when a
    /// model's [`WeightCommitment`] was published detects a weight swap
    /// before any proving work starts.
    pub fn committed_values_digest(&self) -> [u8; 32] {
        use zkml_ff::PrimeField;
        let mut h = zkml_transcript::Blake2b::new();
        h.update(b"zkml-committed-values-v1");
        h.update(&(self.pre.committed.len() as u64).to_le_bytes());
        for col in &self.pre.committed {
            h.update(&(col.len() as u64).to_le_bytes());
            for v in col {
                h.update(&v.to_bytes());
            }
        }
        let digest = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&digest[..32]);
        out
    }

    /// Generates proving and verifying keys.
    ///
    /// For committed circuits the keys cover only the weight-free
    /// structure — the same pk serves every model sharing the
    /// architecture; weights are bound per proof through the
    /// [`WeightCommitment`].
    pub fn keygen(&self, params: &Params) -> Result<ProvingKey, ZkmlError> {
        Ok(keygen(params, &self.cs, &self.pre, self.k)?)
    }

    /// Commits this circuit's weight (committed-column) values: one KZG
    /// commitment per committed column plus the binding digest, and the
    /// prover-side encodings reusable across proofs.
    pub fn commit_weights(
        &self,
        params: &Params,
    ) -> Result<(WeightCommitment, CommittedWeights), ZkmlError> {
        Ok(commit_weights(
            params,
            &self.cs,
            &self.pre.committed,
            self.k,
        )?)
    }

    /// Produces a proof for this circuit's witness. Committed circuits
    /// encode and commit their weights inline; callers proving repeatedly
    /// under one published commitment should use
    /// [`CompiledCircuit::prove_with_weights`] instead.
    pub fn prove(
        &self,
        params: &Params,
        pk: &ProvingKey,
        rng: &mut impl RngCore,
    ) -> Result<Vec<u8>, ZkmlError> {
        if self.has_committed() {
            let (_, weights) = self.commit_weights(params)?;
            return self.prove_with_weights(params, pk, rng, &[], &weights);
        }
        let witness = ZkmlWitness { c: self };
        Ok(create_proof_with_rng(params, pk, &witness, rng)?)
    }

    /// Produces a proof bound to a context string (see
    /// [`zkml_plonk::create_proof_bound`]). Segmented proving binds each
    /// segment proof to the bundle's chain digest and position.
    pub fn prove_bound(
        &self,
        params: &Params,
        pk: &ProvingKey,
        rng: &mut impl RngCore,
        binding: &[u8],
    ) -> Result<Vec<u8>, ZkmlError> {
        if self.has_committed() {
            let (_, weights) = self.commit_weights(params)?;
            return self.prove_with_weights(params, pk, rng, binding, &weights);
        }
        let witness = ZkmlWitness { c: self };
        Ok(create_proof_bound(params, pk, &witness, rng, binding)?)
    }

    /// Produces a proof reusing pre-encoded committed weights (the
    /// commit-once/prove-many path: no weight re-encoding, no keygen).
    pub fn prove_with_weights(
        &self,
        params: &Params,
        pk: &ProvingKey,
        rng: &mut impl RngCore,
        binding: &[u8],
        weights: &CommittedWeights,
    ) -> Result<Vec<u8>, ZkmlError> {
        let witness = ZkmlWitness { c: self };
        Ok(create_proof_committed(
            params, pk, &witness, rng, binding, weights,
        )?)
    }

    /// Verifies a proof against this circuit's public outputs. Committed
    /// circuits recompute the weight commitment from the compiled values;
    /// verifying against an externally *published* commitment is
    /// [`CompiledCircuit::verify_with_commitment`].
    pub fn verify(
        &self,
        params: &Params,
        vk: &VerifyingKey,
        proof: &[u8],
    ) -> Result<(), ZkmlError> {
        if self.has_committed() {
            let (wc, _) = self.commit_weights(params)?;
            return self.verify_with_commitment(params, vk, proof, &[], &wc);
        }
        Ok(verify_proof(params, vk, &self.instance, proof)?)
    }

    /// Verifies a proof against a published [`WeightCommitment`]: the
    /// proof is valid only for the exact weights behind that commitment.
    pub fn verify_with_commitment(
        &self,
        params: &Params,
        vk: &VerifyingKey,
        proof: &[u8],
        binding: &[u8],
        wc: &WeightCommitment,
    ) -> Result<(), ZkmlError> {
        let v = verify_proof_committed(params, vk, &self.instance, proof, binding, Some(wc))?;
        if v.settle(params) {
            Ok(())
        } else {
            Err(ZkmlError::Plonk(PlonkError::Verify(
                "pairing check failed".into(),
            )))
        }
    }

    /// The public-input columns (model outputs as field elements).
    pub fn instance(&self) -> &[Vec<Fr>] {
        &self.instance
    }

    /// Synthesizes this circuit's witness into a [`zkml_plonk::MockProver`]
    /// for row-exact constraint checking (no commitments, no keys).
    pub fn mock(&self) -> Result<zkml_plonk::MockProver, ZkmlError> {
        let witness = ZkmlWitness { c: self };
        Ok(zkml_plonk::MockProver::run(
            self.k, &self.cs, &self.pre, &witness,
        )?)
    }

    /// Runs the static underconstrained-circuit analyzer over this
    /// circuit: proves every assigned advice cell is uniquely determined
    /// by the instance/fixed data and the declared input cells, or reports
    /// the cells that are not (see `zkml-analyze` for the rule set).
    pub fn analyze(&self) -> AnalysisReport {
        let assigned = self.assigned_cells();
        zkml_analyze::analyze(&AnalysisInput {
            cs: &self.cs,
            pre: &self.pre,
            k: self.k,
            assigned: &assigned,
            inputs: &self.inputs,
            regions: &self.regions,
        })
    }

    /// Fails with [`ZkmlError::Underconstrained`] unless
    /// [`analyze`](CompiledCircuit::analyze) comes back clean. The service
    /// runs this before proving so a layout bug surfaces as a typed
    /// compile error instead of an unsound proof.
    pub fn ensure_determined(&self) -> Result<(), ZkmlError> {
        let report = self.analyze();
        if report.is_clean() {
            Ok(())
        } else {
            Err(ZkmlError::Underconstrained {
                free_cells: report.free.len(),
                detail: report.to_string(),
            })
        }
    }

    /// The declared input home cells (written by `load_values`).
    pub fn input_cells(&self) -> &[zkml_plonk::CellRef] {
        &self.inputs
    }

    /// Labelled layout regions (gadget rows, input rows, the Freivalds
    /// phase-1 plane) for attributing cells to gadgets.
    pub fn regions(&self) -> &[RegionSpan] {
        &self.regions
    }

    /// Every witness cell assigned during synthesis: the phase-0 cells the
    /// builder wrote (advice home/gadget cells plus exposed instance cells)
    /// and the phase-1 cells the Freivalds jobs fill at proving time. This
    /// is the mutation surface for the adversarial soundness harness.
    pub fn assigned_cells(&self) -> Vec<zkml_plonk::CellRef> {
        let mut out = self.assigned.clone();
        for job in &self.jobs {
            for (col, row, _) in &job.cells {
                out.push(zkml_plonk::CellRef {
                    column: zkml_plonk::Column::Advice(*col),
                    row: *row,
                });
            }
        }
        out.sort_by_key(|c| (c.column, c.row));
        out.dedup();
        out
    }
}
