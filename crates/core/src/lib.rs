//! ZKML: an optimizing compiler from ML model graphs to halo2-style
//! ZK-SNARK circuits — a from-scratch reproduction of the EuroSys '24 paper.
//!
//! The crate mirrors the paper's two components (§4):
//!
//! * **Gadgets** ([`builder`]): efficient single-row constraint patterns for
//!   ML operations — packed arithmetic, dot products with two accumulation
//!   strategies, lookup non-linearities, max, rounded variable division,
//!   bit-decomposition ReLU, and Freivalds-checked matrix multiplication
//!   using multi-phase challenges ([`freivalds`]).
//! * **Optimizer** ([`optimizer`]): generates logical layouts (gadget
//!   choices), places each candidate row-exactly at each column count, and
//!   picks the cheapest layout under a hardware-calibrated cost model
//!   ([`cost`]) following Eq. (1)–(2) of the paper.
//!
//! Compilation is a three-stage pipeline:
//!
//! 1. **Schedule** ([`schedule`], built by [`layers::lower_graph`]): the
//!    model is lowered **once** into an [`OpSchedule`] — the ordered,
//!    backend-independent gadget invocations, with no rows or columns
//!    chosen.
//! 2. **Placement** ([`compiler::place`]): the schedule is replayed
//!    through a placer [`CircuitBuilder`] per candidate configuration,
//!    producing a [`LayoutPlan`] (row count, statistics, constraint-system
//!    skeleton) without a witness. The optimizer sweeps plans in parallel.
//! 3. **Synthesis** ([`compiler::synthesize`]): the winning plan's
//!    configuration drives one real replay that assigns the witness; the
//!    result is cross-checked against the plan. Keys, proofs (KZG or IPA),
//!    and verification hang off the resulting [`CompiledCircuit`].

pub mod builder;
pub mod compiler;
pub mod config;
pub mod cost;
pub mod freivalds;
pub mod layers;
pub mod optimizer;
pub mod schedule;
pub mod segment;
pub mod tables;

pub use builder::{AValue, BuildError, CircuitBuilder, Gadget, LayoutStats};
pub use compiler::{
    analyze_plan, compile, compile_with, place, synthesize, CompiledCircuit, LayoutPlan, ZkmlError,
};
pub use config::{
    ArithImpl, CircuitConfig, DotImpl, LayoutChoices, MatmulImpl, NumericConfig, Objective,
    ReluImpl, Target,
};
pub use cost::{CostEstimate, HardwareStats};
pub use optimizer::{optimize, optimize_schedule, OptimizerOptions, OptimizerReport};
pub use schedule::{schedules_built, OpSchedule, ScheduleBuilder};
pub use segment::{cut_schedule, eval_schedule, SegmentError, SegmentPlan, SegmentSchedule};
