//! ZKML: an optimizing compiler from ML model graphs to halo2-style
//! ZK-SNARK circuits — a from-scratch reproduction of the EuroSys '24 paper.
//!
//! The crate mirrors the paper's two components (§4):
//!
//! * **Gadgets** ([`builder`]): efficient single-row constraint patterns for
//!   ML operations — packed arithmetic, dot products with two accumulation
//!   strategies, lookup non-linearities, max, rounded variable division,
//!   bit-decomposition ReLU, and Freivalds-checked matrix multiplication
//!   using multi-phase challenges ([`freivalds`]).
//! * **Optimizer** ([`optimizer`]): generates logical layouts (gadget
//!   choices), simulates physical layouts row-exactly at each column count
//!   (the builder doubles as the simulator), and picks the cheapest layout
//!   under a hardware-calibrated cost model ([`cost`]) following Eq. (1)–(2)
//!   of the paper.
//!
//! [`compiler`] ties everything together: it lowers a [`zkml_model::Graph`]
//! to a circuit, produces keys, proofs (KZG or IPA backend) and verifies
//! them.

pub mod builder;
pub mod compiler;
pub mod config;
pub mod cost;
pub mod freivalds;
pub mod layers;
pub mod optimizer;
pub mod tables;

pub use builder::{AValue, BuildError, CircuitBuilder, Gadget, LayoutStats};
pub use compiler::{compile, compile_with, CompiledCircuit, ZkmlError};
pub use config::{
    ArithImpl, CircuitConfig, DotImpl, LayoutChoices, MatmulImpl, NumericConfig, Objective,
    ReluImpl, Target,
};
pub use cost::{CostEstimate, HardwareStats};
pub use optimizer::{optimize, OptimizerOptions, OptimizerReport};
