//! Freivalds-checked matrix multiplication (§6.1).
//!
//! The product `C = A · B` is witnessed directly in phase-0 cells; a
//! phase-1 region then verifies `A·(B·r) == C·r` for the random vector
//! `r = (χ, χ², …)` derived from the transcript challenge χ, turning an
//! `O(s·k·t)` in-circuit computation into `O(s·k + k·t + s·t)` cells.
//!
//! The region's *structure* (rows, selectors, copy constraints) is laid out
//! at build time; its *values* depend on χ and are produced by
//! [`fill_jobs`] when the prover reaches phase 1. Every phase-1 cell is
//! recorded at build time with a [`Vs`] value spec, so fill is a direct
//! evaluation with no layout replay.

use crate::builder::{AValue, BuildError, CircuitBuilder, Gadget};
use std::collections::HashMap;
use zkml_ff::{Fr, PrimeField};
use zkml_plonk::{CellRef, Column};

/// How a phase-1 cell's value is derived from the challenge.
#[derive(Clone, Copy, Debug)]
pub enum Vs {
    /// A literal (copied phase-0 operand).
    Lit(i64),
    /// `χ^e`.
    Power(u64),
    /// Prefix of a dot product: the sum of its first `upto` terms
    /// (`usize::MAX` = the full dot value).
    Partial {
        /// Which dot product.
        dot: DotId,
        /// Number of terms included.
        upto: usize,
    },
}

/// Identifies one of the region's dot products.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DotId {
    /// `u_i = B_i · r` (row `i` of B against the power vector).
    U(usize),
    /// `v_i = C_i · r`.
    V(usize),
    /// `v'_i = A_i · u`.
    Vp(usize),
}

/// A deferred phase-1 witness job for one matrix multiplication.
pub struct FreivaldsJob {
    /// Rows of A (s x k).
    pub a: Vec<i64>,
    /// Rows of B (k x t).
    pub b: Vec<i64>,
    /// Rows of C (s x t), the claimed raw product.
    pub c: Vec<i64>,
    /// (s, k, t).
    pub dims: (usize, usize, usize),
    /// Cell assignments: (constraint-system column, row, value spec).
    pub cells: Vec<(usize, usize, Vs)>,
}

/// The value spec for the y-side operand of a dot's `idx`-th term.
fn y_spec(dot: DotId, idx: usize) -> Vs {
    match dot {
        DotId::U(_) | DotId::V(_) => Vs::Power(idx as u64 + 1),
        DotId::Vp(_) => Vs::Partial {
            dot: DotId::U(idx),
            upto: usize::MAX,
        },
    }
}

/// Lays out a Freivalds-checked matmul. `a_cells` is `s x k` row-major,
/// `b_cells` is `k x t`; returns the raw product cells (`s x t`, at double
/// scale — callers rescale).
pub fn freivalds_matmul(
    bld: &mut CircuitBuilder,
    a_cells: &[AValue],
    b_cells: &[AValue],
    s: usize,
    k: usize,
    t: usize,
) -> Result<Vec<AValue>, BuildError> {
    assert_eq!(a_cells.len(), s * k);
    assert_eq!(b_cells.len(), k * t);
    let n = bld.cfg.num_cols;
    if n < 5 {
        return Err(BuildError::Layout("freivalds needs >= 5 columns".into()));
    }
    bld.ensure_phase1();

    // Witness the raw product in phase-0 home cells.
    let mut c_vals = vec![0i64; s * t];
    for i in 0..s {
        for j in 0..t {
            let mut acc = 0i64;
            for l in 0..k {
                acc = acc
                    .checked_add(a_cells[i * k + l].v * b_cells[l * t + j].v)
                    .expect("freivalds product overflow");
            }
            c_vals[i * t + j] = acc;
        }
    }
    let c_cells = bld.load_values(&c_vals);

    let mut job = FreivaldsJob {
        a: a_cells.iter().map(|x| x.v).collect(),
        b: b_cells.iter().map(|x| x.v).collect(),
        c: c_vals,
        dims: (s, k, t),
        cells: Vec::new(),
    };
    let p1_cols: Vec<usize> = bld.p1_cols().to_vec();

    // --- Challenge powers (r_e = χ^e for e = 1..) ------------------------
    // Each ChalPow row is a full chain c_j = c_0 * χ^j; the carry c_0 is
    // copied from the previous row's last cell (or the constant 1).
    let per_row = n - 1;
    let rp = t.div_ceil(per_row);
    let one = bld.constant(1);
    let p1_start = *bld.p1_row_cursor();
    for i in 0..rp {
        let row = {
            let r = *bld.p1_row_cursor();
            *bld.p1_row_cursor() += 1;
            let sel = bld.selector_pub(Gadget::ChalPow);
            bld.set_fixed_pub(sel, r, Fr::ONE);
            r
        };
        let base = (i * per_row) as u64;
        for (j, col) in p1_cols.iter().enumerate() {
            job.cells.push((*col, row, Vs::Power(base + j as u64)));
        }
        let carry_cell = CellRef {
            column: Column::Advice(p1_cols[0]),
            row,
        };
        if i == 0 {
            bld.copy_pub(one.cell, carry_cell);
        } else {
            bld.copy_pub(
                CellRef {
                    column: Column::Advice(p1_cols[n - 1]),
                    row: row - 1,
                },
                carry_cell,
            );
        }
    }
    let power_cellref = |e: u64| -> CellRef {
        debug_assert!(e >= 1, "power exponents start at 1");
        let idx = (e - 1) as usize;
        CellRef {
            column: Column::Advice(p1_cols[1 + idx % per_row]),
            row: p1_start + idx / per_row,
        }
    };

    // --- Bias-chained phase-1 dot products ---------------------------------
    let m = (n - 2) / 2;
    let zero = bld.constant(0);
    let p1_dot = |bld: &mut CircuitBuilder,
                  job: &mut FreivaldsJob,
                  dot: DotId,
                  xs: &[(CellRef, i64)],
                  ys: &[CellRef]|
     -> CellRef {
        let len = xs.len();
        debug_assert_eq!(len, ys.len());
        let mut prev_z: Option<CellRef> = None;
        let mut consumed = 0usize;
        for chunk_start in (0..len).step_by(m) {
            let chunk_len = m.min(len - chunk_start);
            let row = {
                let r = *bld.p1_row_cursor();
                *bld.p1_row_cursor() += 1;
                let sel = bld.selector_pub(Gadget::DotBias(true));
                bld.set_fixed_pub(sel, r, Fr::ONE);
                r
            };
            for j in 0..chunk_len {
                let (src, lit) = xs[chunk_start + j];
                let xcell = CellRef {
                    column: Column::Advice(p1_cols[j]),
                    row,
                };
                job.cells.push((p1_cols[j], row, Vs::Lit(lit)));
                bld.copy_pub(src, xcell);
                let ycell = CellRef {
                    column: Column::Advice(p1_cols[m + j]),
                    row,
                };
                job.cells
                    .push((p1_cols[m + j], row, y_spec(dot, chunk_start + j)));
                bld.copy_pub(ys[chunk_start + j], ycell);
            }
            let bias_cell = CellRef {
                column: Column::Advice(p1_cols[n - 2]),
                row,
            };
            job.cells.push((
                p1_cols[n - 2],
                row,
                Vs::Partial {
                    dot,
                    upto: consumed,
                },
            ));
            match prev_z {
                None => bld.copy_pub(zero.cell, bias_cell),
                Some(z) => bld.copy_pub(z, bias_cell),
            }
            consumed += chunk_len;
            let zcell = CellRef {
                column: Column::Advice(p1_cols[n - 1]),
                row,
            };
            job.cells.push((
                p1_cols[n - 1],
                row,
                Vs::Partial {
                    dot,
                    upto: consumed,
                },
            ));
            prev_z = Some(zcell);
        }
        prev_z.expect("at least one chunk")
    };

    // u_i = B_i . r  (length-t dots).
    let mut u_cells = Vec::with_capacity(k);
    for i in 0..k {
        let xs: Vec<(CellRef, i64)> = (0..t)
            .map(|j| (b_cells[i * t + j].cell, b_cells[i * t + j].v))
            .collect();
        let ys: Vec<CellRef> = (1..=t as u64).map(power_cellref).collect();
        u_cells.push(p1_dot(bld, &mut job, DotId::U(i), &xs, &ys));
    }
    // v_i = C_i . r and v'_i = A_i . u must agree.
    for i in 0..s {
        let xs: Vec<(CellRef, i64)> = (0..t)
            .map(|j| (c_cells[i * t + j].cell, c_cells[i * t + j].v))
            .collect();
        let ys: Vec<CellRef> = (1..=t as u64).map(power_cellref).collect();
        let v = p1_dot(bld, &mut job, DotId::V(i), &xs, &ys);
        let xs: Vec<(CellRef, i64)> = (0..k)
            .map(|j| (a_cells[i * k + j].cell, a_cells[i * k + j].v))
            .collect();
        let vp = p1_dot(bld, &mut job, DotId::Vp(i), &xs, &u_cells);
        bld.copy_pub(v, vp);
    }

    bld.push_freivalds_job(job);
    Ok(c_cells)
}

/// Computes all phase-1 column values for the recorded jobs.
///
/// Jobs are independent, so their cell values are evaluated in parallel on
/// the `zkml-par` pool; the writes are then scattered serially (each job
/// owns disjoint rows, and every cell value is a pure function of the job
/// and the challenge, so the result is thread-count independent).
///
/// Returns `(cs_column, values)` pairs, each of length `rows`.
pub fn fill_jobs(
    jobs: &[FreivaldsJob],
    p1_cols: &[usize],
    challenges: &[Fr],
    rows: usize,
) -> Vec<(usize, Vec<Fr>)> {
    let chi = challenges[0];
    let mut columns: Vec<(usize, Vec<Fr>)> =
        p1_cols.iter().map(|c| (*c, vec![Fr::ZERO; rows])).collect();
    let col_index: HashMap<usize, usize> =
        p1_cols.iter().enumerate().map(|(i, c)| (*c, i)).collect();

    let assignments: Vec<Vec<(usize, usize, Fr)>> = zkml_par::par_map(jobs.len(), |job_idx| {
        let job = &jobs[job_idx];
        eval_job_cells(job, chi)
    });
    for job_cells in assignments {
        for (col, row, v) in job_cells {
            columns[col_index[&col]].1[row] = v;
        }
    }
    columns
}

/// Evaluates every recorded cell of one job against the challenge.
fn eval_job_cells(job: &FreivaldsJob, chi: Fr) -> Vec<(usize, usize, Fr)> {
    let mut out = Vec::with_capacity(job.cells.len());
    {
        let (_, k, t) = job.dims;
        let max_e = job
            .cells
            .iter()
            .filter_map(|(_, _, vs)| match vs {
                Vs::Power(e) => Some(*e),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut powers = Vec::with_capacity(max_e as usize + 1);
        let mut cur = Fr::ONE;
        for _ in 0..=max_e {
            powers.push(cur);
            cur *= chi;
        }
        let u: Vec<Fr> = (0..k)
            .map(|i| {
                (0..t)
                    .map(|j| Fr::from_i64(job.b[i * t + j]) * powers[j + 1])
                    .sum()
            })
            .collect();
        let dot_terms = |dot: DotId| -> Vec<Fr> {
            match dot {
                DotId::U(i) => (0..t)
                    .map(|j| Fr::from_i64(job.b[i * t + j]) * powers[j + 1])
                    .collect(),
                DotId::V(i) => (0..t)
                    .map(|j| Fr::from_i64(job.c[i * t + j]) * powers[j + 1])
                    .collect(),
                DotId::Vp(i) => (0..k)
                    .map(|j| Fr::from_i64(job.a[i * k + j]) * u[j])
                    .collect(),
            }
        };
        let mut prefix_cache: HashMap<DotId, Vec<Fr>> = HashMap::new();
        for (col, row, vs) in &job.cells {
            let v = match vs {
                Vs::Lit(x) => Fr::from_i64(*x),
                Vs::Power(e) => powers[*e as usize],
                Vs::Partial { dot, upto } => {
                    let prefixes = prefix_cache.entry(*dot).or_insert_with(|| {
                        let terms = dot_terms(*dot);
                        let mut p = Vec::with_capacity(terms.len() + 1);
                        let mut acc = Fr::ZERO;
                        p.push(acc);
                        for term in terms {
                            acc += term;
                            p.push(acc);
                        }
                        p
                    });
                    let idx = (*upto).min(prefixes.len() - 1);
                    prefixes[idx]
                }
            };
            out.push((*col, *row, v));
        }
    }
    out
}
