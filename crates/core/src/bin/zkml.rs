//! The ZKML command-line interface (§8 of the paper): optimize, prove, and
//! verify model inferences. Verification loads only the serialized
//! verifying key, public values and proof — the standalone-verifier flow.
//!
//! ```text
//! zkml models
//! zkml optimize mnist --backend kzg
//! zkml prove mnist --dir /tmp/mnist-proof [--backend kzg] [--seed 7]
//! zkml verify --dir /tmp/mnist-proof
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use zkml::{compile, optimizer, OptimizerOptions};
use zkml_ff::{Fr, PrimeField};
use zkml_model::Graph;
use zkml_pcs::{Backend, Params, Reader, Writer};
use zkml_plonk::VerifyingKey;
use zkml_tensor::{FixedPoint, Tensor};

fn model_by_name(name: &str) -> Option<Graph> {
    Some(match name.to_ascii_lowercase().as_str() {
        "mnist" => zkml_model::zoo::mnist_cnn(),
        "vgg16" | "vgg" => zkml_model::zoo::vgg16(),
        "resnet18" | "resnet" => zkml_model::zoo::resnet18(),
        "mobilenet" => zkml_model::zoo::mobilenet_v2(),
        "dlrm" => zkml_model::zoo::dlrm(),
        "twitter" | "masknet" => zkml_model::zoo::twitter_masknet(),
        "gpt2" | "gpt" => zkml_model::zoo::gpt2(),
        "diffusion" => zkml_model::zoo::diffusion(),
        _ => return None,
    })
}

fn parse_backend(args: &[String]) -> Backend {
    match flag_value(args, "--backend").as_deref() {
        Some("ipa") => Backend::Ipa,
        _ => Backend::Kzg,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zkml models\n  zkml export <model> --file <path.zkml>\n  \
         zkml optimize <model|path.zkml> [--backend kzg|ipa] [--max-k K]\n  \
         zkml prove <model|path.zkml> --dir <out-dir> [--backend kzg|ipa] [--seed N]\n  \
         zkml verify --dir <dir>"
    );
    ExitCode::FAILURE
}

/// Resolves a model argument: a zoo name or a `.zkml` model file.
fn resolve_model(arg: &str) -> Option<Graph> {
    if arg.ends_with(".zkml") || Path::new(arg).exists() {
        let bytes = std::fs::read(arg).ok()?;
        return Graph::from_bytes(&bytes).ok();
    }
    model_by_name(arg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => {
            println!("{:<12} {:>10} {:>12}", "model", "params", "flops");
            for g in zkml_model::zoo::all_models() {
                let s = zkml_model::stats(&g);
                println!(
                    "{:<12} {:>10} {:>12}",
                    g.name,
                    zkml_model::stats::human(s.params),
                    zkml_model::stats::human(s.flops)
                );
            }
            ExitCode::SUCCESS
        }
        Some("export") => {
            let Some(name) = args.get(1) else { return usage() };
            let Some(g) = model_by_name(name) else {
                eprintln!("unknown model '{name}' (try `zkml models`)");
                return ExitCode::FAILURE;
            };
            let Some(file) = flag_value(&args, "--file") else { return usage() };
            std::fs::write(&file, g.to_bytes()).expect("write model file");
            println!("wrote {} ({} nodes) to {file}", g.name, g.nodes.len());
            ExitCode::SUCCESS
        }
        Some("optimize") => {
            let Some(name) = args.get(1) else { return usage() };
            let Some(g) = resolve_model(name) else {
                eprintln!("unknown model '{name}' (try `zkml models`)");
                return ExitCode::FAILURE;
            };
            let backend = parse_backend(&args);
            let max_k: u32 = flag_value(&args, "--max-k")
                .and_then(|v| v.parse().ok())
                .unwrap_or(15);
            let hw = zkml::cost::HardwareStats::cached();
            let opts = OptimizerOptions::new(backend, max_k);
            let report = optimizer::optimize(&g, &opts, hw);
            println!(
                "{} ({backend}): {} layouts evaluated ({} pruned) in {:?}",
                g.name, report.evaluated, report.pruned, report.elapsed
            );
            println!(
                "best: 2^{} rows x {} columns, {:?}",
                report.best_k, report.best.num_cols, report.best.choices
            );
            println!(
                "estimated proving {:.2}s (fft {:.2}s, msm {:.2}s, lookup {:.2}s), proof ~{} B",
                report.best_cost.proving_s,
                report.best_cost.fft_s,
                report.best_cost.msm_s,
                report.best_cost.lookup_s,
                report.best_cost.proof_bytes
            );
            ExitCode::SUCCESS
        }
        Some("prove") => {
            let Some(name) = args.get(1) else { return usage() };
            let Some(g) = resolve_model(name) else {
                eprintln!("unknown model '{name}'");
                return ExitCode::FAILURE;
            };
            let Some(dir) = flag_value(&args, "--dir") else { return usage() };
            let backend = parse_backend(&args);
            let seed: u64 = flag_value(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            prove_flow(&g, backend, seed, Path::new(&dir))
        }
        Some("verify") => {
            let Some(dir) = flag_value(&args, "--dir") else { return usage() };
            verify_flow(Path::new(&dir))
        }
        _ => usage(),
    }
}

fn prove_flow(g: &Graph, backend: Backend, seed: u64, dir: &Path) -> ExitCode {
    std::fs::create_dir_all(dir).expect("create output dir");
    let hw = zkml::cost::HardwareStats::cached();
    let opts = OptimizerOptions::new(backend, 15);
    let report = optimizer::optimize(g, &opts, hw);
    println!(
        "optimizer chose 2^{} x {} cols in {:?}",
        report.best_k, report.best.num_cols, report.elapsed
    );
    let fp = FixedPoint::new(report.best.numeric.scale_bits);
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<Tensor<i64>> = g
        .inputs
        .iter()
        .map(|id| {
            let shape = g.shape(*id).to_vec();
            let n: usize = shape.iter().product();
            Tensor::new(
                shape,
                (0..n).map(|_| fp.quantize(rng.gen_range(-1.0..1.0))).collect(),
            )
        })
        .collect();

    let t = Instant::now();
    let compiled = compile(g, &inputs, report.best, false).expect("compile");
    println!("compiled in {:?} (rows {})", t.elapsed(), compiled.stats.rows);
    let mut srs_rng = StdRng::seed_from_u64(0x5151);
    let params = Params::setup(backend, compiled.k, &mut srs_rng);
    let pk = compiled.keygen(&params).expect("keygen");
    let t = Instant::now();
    let proof = compiled.prove(&params, &pk, &mut rng).expect("prove");
    println!("proved in {:?} ({} bytes)", t.elapsed(), proof.len());

    std::fs::write(dir.join("proof.bin"), &proof).expect("write proof");
    std::fs::write(dir.join("vk.bin"), pk.vk.to_bytes()).expect("write vk");
    let mut w = Writer::new();
    w.u32(match backend {
        Backend::Kzg => 0,
        Backend::Ipa => 1,
    });
    w.u64(compiled.instance()[0].len() as u64);
    for v in &compiled.instance()[0] {
        w.scalar(v);
    }
    std::fs::write(dir.join("public.bin"), w.finish()).expect("write public values");
    println!("wrote proof.bin, vk.bin, public.bin to {}", dir.display());
    ExitCode::SUCCESS
}

fn verify_flow(dir: &Path) -> ExitCode {
    let load = |name: &str| -> Vec<u8> {
        std::fs::read(PathBuf::from(dir).join(name))
            .unwrap_or_else(|e| panic!("read {name}: {e}"))
    };
    let vk = VerifyingKey::from_bytes(&load("vk.bin")).expect("parse vk");
    let public = load("public.bin");
    let mut r = Reader::new(&public);
    let backend = if r.u32().expect("backend tag") == 0 {
        Backend::Kzg
    } else {
        Backend::Ipa
    };
    let n = r.u64().expect("instance length") as usize;
    let instance: Vec<Fr> = (0..n)
        .map(|_| r.scalar().expect("instance value"))
        .collect();
    let proof = load("proof.bin");
    // The SRS is a public artifact; this reproduction regenerates it from
    // the fixed test seed (see DESIGN.md on the trusted-setup substitution).
    let mut srs_rng = StdRng::seed_from_u64(0x5151);
    let params = Params::setup(backend, vk.k, &mut srs_rng);
    let t = Instant::now();
    match zkml_plonk::verify_proof(&params, &vk, &[instance.clone()], &proof) {
        Ok(()) => {
            println!(
                "proof VERIFIED in {:?} ({} public values, {} byte proof)",
                t.elapsed(),
                instance.len(),
                proof.len()
            );
            // Show the first few outputs as fixed-point values.
            let preview: Vec<i128> = instance.iter().take(8).map(|v| v.to_signed_i128()).collect();
            println!("public outputs (quantized): {preview:?}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("proof REJECTED: {e}");
            ExitCode::FAILURE
        }
    }
}
