//! Lookup-table construction for pointwise non-linearities and range checks.

use crate::config::NumericConfig;
use zkml_model::{qops, Activation};

/// Identifies a lookup table function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TableFn {
    /// A pointwise activation.
    Act(ActKey),
    /// Scaled exponential (softmax numerator).
    Exp,
    /// Reciprocal square root (layer norm).
    Rsqrt,
    /// Square root.
    Sqrt,
}

/// Hashable activation key (LeakyRelu's f32 slope is bit-cast).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActKey(pub &'static str, pub u32);

impl ActKey {
    /// Builds a key from an activation.
    pub fn of(a: Activation) -> Self {
        match a {
            Activation::LeakyRelu(s) => ActKey("leaky_relu", s.to_bits()),
            other => ActKey(other.name_static(), 0),
        }
    }

    /// Recovers the activation.
    pub fn activation(&self) -> Activation {
        match self.0 {
            "relu" => Activation::Relu,
            "relu6" => Activation::Relu6,
            "leaky_relu" => Activation::LeakyRelu(f32::from_bits(self.1)),
            "elu" => Activation::Elu,
            "sigmoid" => Activation::Sigmoid,
            "tanh" => Activation::Tanh,
            "gelu" => Activation::Gelu,
            "silu" => Activation::Silu,
            other => panic!("unknown activation key {other}"),
        }
    }
}

/// Extension trait providing a `'static` name for activations.
pub trait ActName {
    /// The static name.
    fn name_static(&self) -> &'static str;
}

impl ActName for Activation {
    fn name_static(&self) -> &'static str {
        self.name()
    }
}

/// Evaluates a table function on a quantized input.
pub fn table_eval(f: TableFn, x: i64, scale: i64) -> i64 {
    match f {
        TableFn::Act(key) => qops::act_q(key.activation(), x, scale),
        TableFn::Exp => qops::exp_q(x, scale),
        TableFn::Rsqrt => qops::rsqrt_q(x, scale),
        TableFn::Sqrt => qops::sqrt_q(x, scale),
    }
}

/// Generates the (input, output) entries of a non-linearity table.
///
/// The domain is the signed range `[-2^(tb-1), 2^(tb-1))` where
/// `tb = numeric.table_bits()`; this is the coupling between fixed-point
/// precision and grid size described in §5.1.
pub fn nonlin_entries(f: TableFn, numeric: &NumericConfig) -> Vec<(i64, i64)> {
    let half = 1i64 << (numeric.table_bits() - 1);
    let scale = numeric.scale();
    (-half..half)
        .map(|x| (x, table_eval(f, x, scale)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_table_is_correct() {
        let numeric = NumericConfig {
            scale_bits: 4,
            clip_bits: 2,
        };
        let entries = nonlin_entries(TableFn::Act(ActKey::of(Activation::Relu)), &numeric);
        assert_eq!(entries.len(), 64);
        for (x, y) in entries {
            assert_eq!(y, x.max(0));
        }
    }

    #[test]
    fn exp_table_monotone() {
        let numeric = NumericConfig {
            scale_bits: 6,
            clip_bits: 3,
        };
        let entries = nonlin_entries(TableFn::Exp, &numeric);
        for w in entries.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // exp(0) = 1.0 = SF.
        let zero = entries.iter().find(|(x, _)| *x == 0).unwrap();
        assert_eq!(zero.1, numeric.scale());
    }

    #[test]
    fn act_key_roundtrip() {
        for a in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::LeakyRelu(0.2),
            Activation::Gelu,
        ] {
            let k = ActKey::of(a);
            assert_eq!(k.activation(), a);
        }
    }
}
