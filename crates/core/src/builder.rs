//! The circuit builder: gadget registry, row-exact layout, and witness
//! assignment.
//!
//! One code path serves stages 2 and 3 of the compile pipeline. A
//! *placer* builder ([`CircuitBuilder::placer`], the paper's circuit
//! simulator, §7.3) creates the identical constraint-system structure and
//! advances the identical row and copy cursors as real synthesis
//! ([`CircuitBuilder::new`]) but skips witness/fixed-value writes, which
//! is what makes the optimizer's placement pass row-exact by
//! construction. Both modes are driven by replaying an
//! [`crate::schedule::OpSchedule`] (or a hand-written closure in the
//! testkit) over the gadget methods below.

use crate::config::CircuitConfig;
use crate::tables::{nonlin_entries, TableFn};
use std::collections::HashMap;
use zkml_analyze::RegionSpan;
use zkml_ff::{Fr, PrimeField};
use zkml_plonk::{CellRef, Column, ConstraintSystem, Expression, Rotation, BLINDING_FACTORS};

/// A constrained grid cell carrying its quantized witness value.
#[derive(Clone, Copy, Debug)]
pub struct AValue {
    /// The cell.
    pub cell: CellRef,
    /// The fixed-point value.
    pub v: i64,
}

/// Errors during circuit construction.
#[derive(Debug)]
pub enum BuildError {
    /// The configuration cannot express the circuit (e.g. too few columns).
    Layout(String),
    /// A witness value fell outside a lookup-table domain.
    Range(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Layout(s) => write!(f, "layout error: {s}"),
            BuildError::Range(s) => write!(f, "range error: {s}"),
        }
    }
}
impl std::error::Error for BuildError {}

/// Gadget identity within the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gadget {
    /// Dot product with bias chaining; `true` = phase-1 plane.
    DotBias(bool),
    /// Dot product without bias.
    DotPlain,
    /// Row sum.
    Sum,
    /// Packed addition triples.
    AddPack,
    /// Packed subtraction triples.
    SubPack,
    /// Packed multiplication triples.
    MulPack,
    /// Packed squaring pairs.
    SquarePack,
    /// Packed squared-difference triples.
    SqDiffPack,
    /// Fixed-point rescale (DivRound by the scale factor).
    DivRound,
    /// Pointwise non-linearity lookup.
    Nonlin(TableFn),
    /// Packed max triples.
    MaxPack,
    /// Rounded variable division (softmax).
    VarDiv,
    /// Bit-decomposition ReLU.
    BitDecomp,
    /// Challenge power chain (phase-1).
    ChalPow,
}

struct TableCols {
    cols: Vec<usize>,
    len: usize,
    /// Default (input, output, ...) tuple guaranteed in-table.
    defaults: Vec<i64>,
}

/// Aggregate structure statistics used by the cost model.
///
/// Derives equality so a [`crate::compiler::LayoutPlan`]'s statistics can
/// be checked against what synthesis actually produced.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Rows consumed (max over planes, tables and constants).
    pub rows: usize,
    /// Instance columns.
    pub num_instance: usize,
    /// Advice columns (both phases).
    pub num_advice: usize,
    /// Fixed columns (selectors, tables, constants).
    pub num_fixed: usize,
    /// Lookup arguments.
    pub num_lookups: usize,
    /// Columns in the permutation argument.
    pub num_perm_columns: usize,
    /// Global constraint degree.
    pub degree: usize,
    /// Total polynomial constraints.
    pub num_constraints: usize,
    /// Copy constraints recorded (counted identically in placement mode).
    pub num_copies: usize,
    /// Committed (weight) columns.
    pub num_committed: usize,
    /// Column-count-independent row floor: constants, lookup tables, the
    /// range table, and exposed instance rows. No candidate at any column
    /// count can use fewer rows than this, which lets the optimizer prove
    /// a `k` plateau is permanent before pruning the rest of a sweep.
    pub rows_floor: usize,
}

/// The circuit builder.
pub struct CircuitBuilder {
    /// The configuration being compiled under.
    pub cfg: CircuitConfig,
    count_only: bool,
    /// The constraint system under construction.
    pub cs: ConstraintSystem,
    grid: Vec<usize>,
    p1: Vec<usize>,
    committed: Vec<usize>,
    instance_col: usize,
    const_col: usize,
    row: usize,
    p1_row: usize,
    committed_row: usize,
    const_row: usize,
    advice_vals: Vec<Vec<Fr>>,
    committed_vals: Vec<Vec<Fr>>,
    fixed_vals: Vec<Vec<Fr>>,
    copies: Vec<(CellRef, CellRef)>,
    instance_vals: Vec<Fr>,
    const_rows: HashMap<i64, usize>,
    selectors: HashMap<Gadget, usize>,
    tables: HashMap<TableFn, usize>,
    table_infos: Vec<TableCols>,
    range_table: Option<usize>,
    range_needed: i64,
    /// Challenge index, once phase-1 machinery is instantiated.
    pub challenge: Option<usize>,
    max_table_len: usize,
    copy_count: usize,
    freivalds_jobs: Vec<crate::freivalds::FreivaldsJob>,
    /// Every advice/instance cell written during real synthesis, in write
    /// order — the mutation surface for the adversarial soundness harness.
    assigned: Vec<CellRef>,
    /// Home cells created by [`CircuitBuilder::load_values`] — the circuit
    /// inputs the static analyzer exempts from its determinism requirement
    /// (they are constrained at use sites through copies).
    inputs: Vec<CellRef>,
    /// Labelled layout regions (gadget rows, input rows) for attributing
    /// analyzer findings back to the gadget that allocated the cell.
    regions: Vec<RegionSpan>,
}

impl CircuitBuilder {
    /// Creates a synthesis builder: gadget calls assign real witness and
    /// fixed values.
    pub fn new(cfg: CircuitConfig) -> Self {
        Self::with_mode(cfg, false)
    }

    /// Creates a placement builder (the paper's circuit simulator, §7.3):
    /// gadget calls create the full constraint-system structure and
    /// advance every row/copy cursor, but skip value writes and
    /// value-dependent range checks. This is stage 2's engine — the
    /// optimizer sweeps candidate layouts with placer builders only.
    pub fn placer(cfg: CircuitConfig) -> Self {
        Self::with_mode(cfg, true)
    }

    fn with_mode(cfg: CircuitConfig, count_only: bool) -> Self {
        let mut cs = ConstraintSystem::new();
        let instance_col = cs.instance_column();
        cs.enable_equality(Column::Instance(instance_col));
        let const_col = cs.fixed_column();
        cs.enable_equality(Column::Fixed(const_col));
        let grid: Vec<usize> = (0..cfg.num_cols)
            .map(|_| {
                let c = cs.advice_column(0);
                cs.enable_equality(Column::Advice(c));
                c
            })
            .collect();
        Self {
            cfg,
            count_only,
            cs,
            grid,
            p1: Vec::new(),
            committed: Vec::new(),
            instance_col,
            const_col,
            row: 0,
            p1_row: 0,
            committed_row: 0,
            const_row: 0,
            advice_vals: Vec::new(),
            committed_vals: Vec::new(),
            fixed_vals: Vec::new(),
            copies: Vec::new(),
            instance_vals: Vec::new(),
            const_rows: HashMap::new(),
            selectors: HashMap::new(),
            tables: HashMap::new(),
            table_infos: Vec::new(),
            range_table: None,
            range_needed: 0,
            challenge: None,
            max_table_len: 0,
            copy_count: 0,
            freivalds_jobs: Vec::new(),
            assigned: Vec::new(),
            inputs: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// The fixed-point scale factor.
    pub fn scale(&self) -> i64 {
        self.cfg.numeric.scale()
    }

    /// Registers a requirement that the range table cover `[0, bound)`.
    fn require_range(&mut self, bound: i64) {
        self.range_needed = self.range_needed.max(bound);
    }

    /// Current size of the range table (`[0, next_pow2(needed))`).
    pub fn range_size(&self) -> usize {
        (self.range_needed.max(2) as usize).next_power_of_two()
    }

    // --- low-level cell plumbing -----------------------------------------

    fn set_advice(&mut self, cs_col: usize, row: usize, v: Fr) {
        if self.count_only {
            return;
        }
        self.assigned.push(CellRef {
            column: Column::Advice(cs_col),
            row,
        });
        if self.advice_vals.len() <= cs_col {
            self.advice_vals.resize(cs_col + 1, Vec::new());
        }
        let col = &mut self.advice_vals[cs_col];
        if col.len() <= row {
            col.resize(row + 1, Fr::ZERO);
        }
        col[row] = v;
    }

    fn set_fixed(&mut self, cs_col: usize, row: usize, v: Fr) {
        if self.count_only {
            return;
        }
        if self.fixed_vals.len() <= cs_col {
            self.fixed_vals.resize(cs_col + 1, Vec::new());
        }
        let col = &mut self.fixed_vals[cs_col];
        if col.len() <= row {
            col.resize(row + 1, Fr::ZERO);
        }
        col[row] = v;
    }

    fn copy(&mut self, a: CellRef, b: CellRef) {
        // Counted in both modes so placement statistics are copy-exact.
        self.copy_count += 1;
        if self.count_only {
            return;
        }
        self.copies.push((a, b));
    }

    /// Writes `src` into grid cell (`col_j`, `row`) with a copy constraint.
    fn place(&mut self, col_j: usize, row: usize, src: &AValue) -> CellRef {
        let cell = CellRef {
            column: Column::Advice(self.grid[col_j]),
            row,
        };
        self.set_advice(self.grid[col_j], row, Fr::from_i64(src.v));
        self.copy(src.cell, cell);
        cell
    }

    /// Writes a fresh value into grid cell (`col_j`, `row`).
    fn fresh(&mut self, col_j: usize, row: usize, v: i64) -> AValue {
        let cell = CellRef {
            column: Column::Advice(self.grid[col_j]),
            row,
        };
        self.set_advice(self.grid[col_j], row, Fr::from_i64(v));
        AValue { cell, v }
    }

    /// Records a labelled grid row for analyzer attribution. Rows are
    /// allocated in ascending order, so runs of the same label merge into
    /// one span. Skipped in placement mode (plans carry no witness to
    /// analyze).
    fn note_region(&mut self, label: &str, row: usize) {
        if self.count_only {
            return;
        }
        let columns = self.grid[0]..self.grid[self.grid.len() - 1] + 1;
        if let Some(last) = self.regions.last_mut() {
            if last.rows.end == row && last.label == label && last.columns == columns {
                last.rows.end = row + 1;
                return;
            }
        }
        self.regions.push(RegionSpan {
            label: label.to_string(),
            columns,
            rows: row..row + 1,
        });
    }

    fn alloc_row(&mut self, gadget: Gadget) -> usize {
        let r = self.row;
        self.row += 1;
        let sel = self.selector(gadget);
        self.set_fixed(sel, r, Fr::ONE);
        self.note_region(&format!("{gadget:?}"), r);
        r
    }

    /// Allocates a constraint-free row (home cells for inputs/weights and
    /// Freivalds product witnesses).
    fn alloc_free_row(&mut self) -> usize {
        let r = self.row;
        self.row += 1;
        self.note_region("inputs", r);
        r
    }

    /// Returns a pinned constant cell (creating it on first use).
    pub fn constant(&mut self, v: i64) -> AValue {
        if let Some(&row) = self.const_rows.get(&v) {
            return AValue {
                cell: CellRef {
                    column: Column::Fixed(self.const_col),
                    row,
                },
                v,
            };
        }
        let row = self.const_row;
        self.const_row += 1;
        self.const_rows.insert(v, row);
        self.set_fixed(self.const_col, row, Fr::from_i64(v));
        AValue {
            cell: CellRef {
                column: Column::Fixed(self.const_col),
                row,
            },
            v,
        }
    }

    /// Loads raw values into home cells (no constraints; constrained at use
    /// sites through copies).
    pub fn load_values(&mut self, values: &[i64]) -> Vec<AValue> {
        let n = self.cfg.num_cols;
        let mut out = Vec::with_capacity(values.len());
        for chunk in values.chunks(n) {
            let row = self.alloc_free_row();
            for (j, &v) in chunk.iter().enumerate() {
                let a = self.fresh(j, row, v);
                self.inputs.push(a.cell);
                out.push(a);
            }
        }
        out
    }

    /// Ensures the committed (weight) column plane exists. Created lazily
    /// so weight-free circuits keep `num_committed = 0` and an unchanged
    /// constraint-system digest.
    fn ensure_committed(&mut self) {
        if !self.committed.is_empty() {
            return;
        }
        self.committed = (0..self.cfg.num_cols)
            .map(|_| {
                let c = self.cs.committed_column();
                self.cs.enable_equality(Column::Committed(c));
                c
            })
            .collect();
    }

    fn set_committed(&mut self, cs_col: usize, row: usize, v: Fr) {
        if self.count_only {
            return;
        }
        if self.committed_vals.len() <= cs_col {
            self.committed_vals.resize(cs_col + 1, Vec::new());
        }
        let col = &mut self.committed_vals[cs_col];
        if col.len() <= row {
            col.resize(row + 1, Fr::ZERO);
        }
        col[row] = v;
    }

    /// Loads model weights into home cells of the *committed* column plane.
    ///
    /// Like [`CircuitBuilder::load_values`] the cells carry no gate
    /// constraints — they are constrained at use sites through copies (the
    /// CP-SNARK link). Unlike advice, committed columns are committed once
    /// per model (`commit_weights`) and bound to the transcript by digest,
    /// so the same published commitment serves every proof.
    pub fn load_weights(&mut self, values: &[i64]) -> Vec<AValue> {
        self.ensure_committed();
        let n = self.cfg.num_cols;
        let mut out = Vec::with_capacity(values.len());
        for chunk in values.chunks(n) {
            let row = self.committed_row;
            self.committed_row += 1;
            for (j, &v) in chunk.iter().enumerate() {
                let cell = CellRef {
                    column: Column::Committed(self.committed[j]),
                    row,
                };
                self.set_committed(self.committed[j], row, Fr::from_i64(v));
                out.push(AValue { cell, v });
            }
        }
        out
    }

    /// Exposes values as public outputs (instance column).
    pub fn expose(&mut self, values: &[AValue]) {
        for v in values {
            let row = self.instance_vals.len();
            let inst = CellRef {
                column: Column::Instance(self.instance_col),
                row,
            };
            if !self.count_only {
                self.instance_vals.push(Fr::from_i64(v.v));
                self.assigned.push(inst);
            }
            self.copy(v.cell, inst);
        }
        if self.count_only {
            // Track instance length for sizing.
            self.instance_vals
                .resize(self.instance_vals.len() + values.len(), Fr::ZERO);
        }
    }

    // --- gadget registry ---------------------------------------------------

    fn q(&self, sel: usize) -> Expression {
        Expression::Fixed(sel, Rotation::cur())
    }

    fn a(&self, col_j: usize) -> Expression {
        Expression::Advice(self.grid[col_j], Rotation::cur())
    }

    fn a1(&self, col_j: usize) -> Expression {
        Expression::Advice(self.p1[col_j], Rotation::cur())
    }

    /// Ensures phase-1 columns and the challenge exist (Freivalds).
    pub fn ensure_phase1(&mut self) {
        if self.challenge.is_some() {
            return;
        }
        self.challenge = Some(self.cs.challenge());
        self.p1 = (0..self.cfg.num_cols)
            .map(|_| {
                let c = self.cs.advice_column(1);
                self.cs.enable_equality(Column::Advice(c));
                c
            })
            .collect();
    }

    /// Creates the range-check table column on first use. Its entries are
    /// written at finalization (`write_range_table`) once all gadget bounds
    /// are known; rows beyond the final size stay zero, which is harmless
    /// because 0 is itself a range member.
    fn ensure_range_table(&mut self) -> usize {
        if let Some(col) = self.range_table {
            return col;
        }
        let col = self.cs.fixed_column();
        self.range_table = Some(col);
        col
    }

    /// Writes the range table entries `[0, range_size)`.
    pub(crate) fn write_range_table(&mut self) {
        if let Some(col) = self.range_table {
            for i in 0..self.range_size() {
                self.set_fixed(col, i, Fr::from_u64(i as u64));
            }
        }
    }

    fn ensure_nonlin_table(&mut self, f: TableFn) -> (usize, usize, i64, i64) {
        if let Some(&idx) = self.tables.get(&f) {
            let t = &self.table_infos[idx];
            return (t.cols[0], t.cols[1], t.defaults[0], t.defaults[1]);
        }
        let in_col = self.cs.fixed_column();
        let out_col = self.cs.fixed_column();
        let entries = nonlin_entries(f, &self.cfg.numeric);
        let mut default = (0i64, 0i64);
        for (i, (x, y)) in entries.iter().enumerate() {
            if *x == 0 {
                default = (*x, *y);
            }
            self.set_fixed(in_col, i, Fr::from_i64(*x));
            self.set_fixed(out_col, i, Fr::from_i64(*y));
        }
        self.max_table_len = self.max_table_len.max(entries.len());
        self.table_infos.push(TableCols {
            cols: vec![in_col, out_col],
            len: entries.len(),
            defaults: vec![default.0, default.1],
        });
        self.tables.insert(f, self.table_infos.len() - 1);
        (in_col, out_col, default.0, default.1)
    }

    /// Gates an expression toward an in-table default when the selector is
    /// off: `q * (e - d) + d`.
    fn gated(&self, sel: usize, e: Expression, d: i64) -> Expression {
        self.q(sel) * (e - Expression::Constant(Fr::from_i64(d)))
            + Expression::Constant(Fr::from_i64(d))
    }

    /// Returns (creating on demand) the selector column for a gadget,
    /// registering its gate and lookups.
    fn selector(&mut self, g: Gadget) -> usize {
        if let Some(&s) = self.selectors.get(&g) {
            return s;
        }
        let sel = self.cs.fixed_column();
        self.selectors.insert(g, sel);
        let n = self.cfg.num_cols;
        let packs = self.cfg.choices.lookup_packs.min(n / 3).max(1);
        let sf = Fr::from_i64(self.scale());
        match g {
            Gadget::DotBias(p1_plane) => {
                let m = (n - 2) / 2;
                let col = |j: usize| {
                    if p1_plane {
                        self.a1(j)
                    } else {
                        self.a(j)
                    }
                };
                let mut acc = col(n - 1) - col(n - 2); // z - b
                for i in 0..m {
                    acc = acc - col(i) * col(m + i);
                }
                self.cs
                    .create_gate(format!("dot_bias(p1={p1_plane})"), vec![self.q(sel) * acc]);
            }
            Gadget::DotPlain => {
                let m = (n - 1) / 2;
                let mut acc = self.a(n - 1);
                for i in 0..m {
                    acc = acc - self.a(i) * self.a(m + i);
                }
                self.cs.create_gate("dot_plain", vec![self.q(sel) * acc]);
            }
            Gadget::Sum => {
                let mut acc = self.a(n - 1);
                for i in 0..n - 1 {
                    acc = acc - self.a(i);
                }
                self.cs.create_gate("sum", vec![self.q(sel) * acc]);
            }
            Gadget::AddPack | Gadget::SubPack | Gadget::MulPack | Gadget::SqDiffPack => {
                let slots = n / 3;
                let mut polys = Vec::with_capacity(slots);
                for s in 0..slots {
                    let (a, b, c) = (self.a(3 * s), self.a(3 * s + 1), self.a(3 * s + 2));
                    let e = match g {
                        Gadget::AddPack => a + b - c,
                        Gadget::SubPack => a - b - c,
                        Gadget::MulPack => a * b - c,
                        Gadget::SqDiffPack => (a.clone() - b.clone()) * (a - b) - c,
                        _ => unreachable!(),
                    };
                    polys.push(self.q(sel) * e);
                }
                self.cs.create_gate(format!("{g:?}"), polys);
            }
            Gadget::SquarePack => {
                let slots = n / 2;
                let mut polys = Vec::with_capacity(slots);
                for s in 0..slots {
                    let (a, b) = (self.a(2 * s), self.a(2 * s + 1));
                    polys.push(self.q(sel) * (a.clone() * a - b));
                }
                self.cs.create_gate("square", polys);
            }
            Gadget::DivRound => {
                let range = self.ensure_range_table();
                self.require_range(2 * self.scale());
                let two_sf = Fr::from_i64(2 * self.scale());
                let mut polys = Vec::with_capacity(packs);
                for s in 0..packs {
                    let (x, y, r) = (self.a(3 * s), self.a(3 * s + 1), self.a(3 * s + 2));
                    polys.push(
                        self.q(sel)
                            * (x.clone() + x + Expression::Constant(sf)
                                - y * Expression::Constant(two_sf)
                                - r),
                    );
                }
                self.cs.create_gate("div_round", polys);
                for s in 0..packs {
                    let r = self.a(3 * s + 2);
                    let hi = Expression::Constant(Fr::from_i64(2 * self.scale() - 1)) - r.clone();
                    let in_r = self.gated(sel, r, 0);
                    let in_hi = self.gated(sel, hi, 2 * self.scale() - 1);
                    self.cs.create_lookup(
                        format!("div_round_r{s}"),
                        vec![in_r],
                        vec![Expression::Fixed(range, Rotation::cur())],
                    );
                    self.cs.create_lookup(
                        format!("div_round_hi{s}"),
                        vec![in_hi],
                        vec![Expression::Fixed(range, Rotation::cur())],
                    );
                }
            }
            Gadget::Nonlin(f) => {
                let (t_in, t_out, d_in, d_out) = self.ensure_nonlin_table(f);
                for s in 0..self.nonlin_packs() {
                    let x = self.gated(sel, self.a(2 * s), d_in);
                    let y = self.gated(sel, self.a(2 * s + 1), d_out);
                    self.cs.create_lookup(
                        format!("nonlin{f:?}#{s}"),
                        vec![x, y],
                        vec![
                            Expression::Fixed(t_in, Rotation::cur()),
                            Expression::Fixed(t_out, Rotation::cur()),
                        ],
                    );
                }
            }
            Gadget::MaxPack => {
                let range = self.ensure_range_table();
                // Differences of in-domain values fit the value range.
                self.require_range(1 << self.cfg.numeric.table_bits());
                let mut polys = Vec::with_capacity(packs);
                for s in 0..packs {
                    let (a, b, c) = (self.a(3 * s), self.a(3 * s + 1), self.a(3 * s + 2));
                    polys.push(self.q(sel) * (c.clone() - a) * (c - b));
                }
                self.cs.create_gate("max", polys);
                for s in 0..packs {
                    let (a, b, c) = (self.a(3 * s), self.a(3 * s + 1), self.a(3 * s + 2));
                    let ca = self.gated(sel, c.clone() - a, 0);
                    let cb = self.gated(sel, c - b, 0);
                    self.cs.create_lookup(
                        format!("max_ca{s}"),
                        vec![ca],
                        vec![Expression::Fixed(range, Rotation::cur())],
                    );
                    self.cs.create_lookup(
                        format!("max_cb{s}"),
                        vec![cb],
                        vec![Expression::Fixed(range, Rotation::cur())],
                    );
                }
            }
            Gadget::VarDiv => {
                let range = self.ensure_range_table();
                let slots = (n / 4).min(packs).max(1);
                let mut polys = Vec::with_capacity(slots);
                for s in 0..slots {
                    let (nv, a, c, r) = (
                        self.a(4 * s),
                        self.a(4 * s + 1),
                        self.a(4 * s + 2),
                        self.a(4 * s + 3),
                    );
                    // 2*SF*n + a - 2*a*c - r = 0  <=>  c = round(n*SF / a).
                    polys.push(
                        self.q(sel)
                            * (nv * Expression::Constant(sf + sf) + a.clone()
                                - (a * c) * Expression::Constant(Fr::from_u64(2))
                                - r),
                    );
                }
                self.cs.create_gate("var_div", polys);
                for s in 0..slots {
                    let (a, r) = (self.a(4 * s + 1), self.a(4 * s + 3));
                    let in_r = self.gated(sel, r.clone(), 0);
                    // r < 2a  <=>  2a - 1 - r in [0, 2^rb).
                    let hi = a.clone() + a - Expression::Constant(Fr::ONE) - r;
                    // Default when inactive: a = r = 0 -> hi = -1, not in
                    // table; gate the whole expression to 0 instead.
                    let in_hi = self.q(sel) * hi;
                    self.cs.create_lookup(
                        format!("var_div_r{s}"),
                        vec![in_r],
                        vec![Expression::Fixed(range, Rotation::cur())],
                    );
                    self.cs.create_lookup(
                        format!("var_div_hi{s}"),
                        vec![in_hi],
                        vec![Expression::Fixed(range, Rotation::cur())],
                    );
                }
            }
            Gadget::BitDecomp => {
                let tb = self.cfg.numeric.table_bits() as usize;
                let mut polys = Vec::new();
                let x = self.a(0);
                let y = self.a(1);
                // Offset-binary: x + 2^(tb-1) = sum 2^i b_i.
                let mut recompose = x.clone() + Expression::Constant(Fr::from_i64(1 << (tb - 1)));
                for i in 0..tb {
                    let b = self.a(2 + i);
                    polys.push(
                        self.q(sel) * b.clone() * (b.clone() - Expression::Constant(Fr::ONE)),
                    );
                    recompose = recompose - b * Fr::from_u64(1u64 << i);
                }
                polys.push(self.q(sel) * recompose);
                // Top bit = 1 iff x >= 0; y = x * top.
                let top = self.a(2 + tb - 1);
                polys.push(self.q(sel) * (y - x * top));
                self.cs.create_gate("relu_bits", polys);
            }
            Gadget::ChalPow => {
                let chi = Expression::Challenge(self.challenge.expect("phase1 enabled"));
                let mut polys = Vec::with_capacity(n - 1);
                for j in 0..n - 1 {
                    polys.push(self.q(sel) * (self.a1(j + 1) - self.a1(j) * chi.clone()));
                }
                self.cs.create_gate("challenge_powers", polys);
            }
        }
        sel
    }

    /// Lookup packing for nonlinearity rows (2 cells per slot).
    pub fn nonlin_packs(&self) -> usize {
        self.cfg
            .choices
            .lookup_packs
            .min(self.cfg.num_cols / 2)
            .max(1)
    }

    /// Packing for 3-cell lookup gadgets (DivRound, Max).
    pub fn pack3(&self) -> usize {
        self.cfg
            .choices
            .lookup_packs
            .min(self.cfg.num_cols / 3)
            .max(1)
    }

    // --- mid-level gadget invocations ------------------------------------

    /// Computes a dot product `sum x_i y_i (+ init)`, returning the result
    /// cell. Handles arbitrary lengths by chunking across rows.
    pub fn dot(
        &mut self,
        xs: &[AValue],
        ys: &[AValue],
        init: Option<AValue>,
    ) -> Result<AValue, BuildError> {
        assert_eq!(xs.len(), ys.len(), "dot operand length mismatch");
        if self.cfg.num_cols < 5 {
            return Err(BuildError::Layout("dot needs >= 5 columns".into()));
        }
        match self.cfg.choices.dot {
            crate::config::DotImpl::BiasChain => self.dot_bias_chain(xs, ys, init),
            crate::config::DotImpl::PartialsThenSum => {
                let partials = self.dot_partials(xs, ys)?;
                let mut all = partials;
                if let Some(b) = init {
                    all.push(b);
                }
                self.sum(&all)
            }
        }
    }

    fn dot_bias_chain(
        &mut self,
        xs: &[AValue],
        ys: &[AValue],
        init: Option<AValue>,
    ) -> Result<AValue, BuildError> {
        let n = self.cfg.num_cols;
        let m = (n - 2) / 2;
        let zero = self.constant(0);
        let mut carry = init.unwrap_or(zero);
        let mut out = carry;
        for (cx, cy) in xs.chunks(m).zip(ys.chunks(m)) {
            let row = self.alloc_row(Gadget::DotBias(false));
            for (i, (x, y)) in cx.iter().zip(cy).enumerate() {
                self.place(i, row, x);
                self.place(m + i, row, y);
            }
            // Unused slots stay zero (0*0 contributes nothing).
            self.place(n - 2, row, &carry);
            let z: i64 = carry.v
                + cx.iter()
                    .zip(cy)
                    .map(|(x, y)| x.v.checked_mul(y.v).expect("dot overflow"))
                    .sum::<i64>();
            out = self.fresh(n - 1, row, z);
            carry = out;
        }
        Ok(out)
    }

    fn dot_partials(&mut self, xs: &[AValue], ys: &[AValue]) -> Result<Vec<AValue>, BuildError> {
        let n = self.cfg.num_cols;
        let m = (n - 1) / 2;
        let mut partials = Vec::new();
        for (cx, cy) in xs.chunks(m).zip(ys.chunks(m)) {
            let row = self.alloc_row(Gadget::DotPlain);
            for (i, (x, y)) in cx.iter().zip(cy).enumerate() {
                self.place(i, row, x);
                self.place(m + i, row, y);
            }
            let z: i64 = cx.iter().zip(cy).map(|(x, y)| x.v * y.v).sum();
            partials.push(self.fresh(n - 1, row, z));
        }
        Ok(partials)
    }

    /// Sums a list of values (tree of sum rows).
    pub fn sum(&mut self, xs: &[AValue]) -> Result<AValue, BuildError> {
        if self.cfg.num_cols < 3 {
            return Err(BuildError::Layout("sum needs >= 3 columns".into()));
        }
        if xs.is_empty() {
            return Ok(self.constant(0));
        }
        if xs.len() == 1 {
            return Ok(xs[0]);
        }
        let n = self.cfg.num_cols;
        let mut level: Vec<AValue> = xs.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(n - 1));
            for chunk in level.chunks(n - 1) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                    continue;
                }
                let row = self.alloc_row(Gadget::Sum);
                for (i, x) in chunk.iter().enumerate() {
                    self.place(i, row, x);
                }
                let z: i64 = chunk.iter().map(|x| x.v).sum();
                next.push(self.fresh(n - 1, row, z));
            }
            level = next;
        }
        Ok(level[0])
    }

    /// Packed binary arithmetic over pairs, returning the outputs.
    pub fn arith_pack(
        &mut self,
        kind: Gadget,
        pairs: &[(AValue, AValue)],
    ) -> Result<Vec<AValue>, BuildError> {
        if matches!(self.cfg.choices.arith, crate::config::ArithImpl::ViaDot) {
            return self.arith_via_dot(kind, pairs);
        }
        let n = self.cfg.num_cols;
        let slots = n / 3;
        if slots == 0 {
            return Err(BuildError::Layout("arith pack needs >= 3 columns".into()));
        }
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(slots) {
            let row = self.alloc_row(kind);
            for (s, (a, b)) in chunk.iter().enumerate() {
                self.place(3 * s, row, a);
                self.place(3 * s + 1, row, b);
                let c = match kind {
                    Gadget::AddPack => a.v + b.v,
                    Gadget::SubPack => a.v - b.v,
                    Gadget::MulPack => a.v * b.v,
                    Gadget::SqDiffPack => (a.v - b.v) * (a.v - b.v),
                    _ => unreachable!("not an arith pack gadget"),
                };
                out.push(self.fresh(3 * s + 2, row, c));
            }
        }
        Ok(out)
    }

    fn arith_via_dot(
        &mut self,
        kind: Gadget,
        pairs: &[(AValue, AValue)],
    ) -> Result<Vec<AValue>, BuildError> {
        let one = self.constant(1);
        let neg_one = self.constant(-1);
        let mut out = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            let r = match kind {
                Gadget::AddPack => self.dot(&[*a, *b], &[one, one], None)?,
                Gadget::SubPack => self.dot(&[*a, *b], &[one, neg_one], None)?,
                Gadget::MulPack => self.dot(&[*a], &[*b], None)?,
                Gadget::SqDiffPack => {
                    let d = self.dot(&[*a, *b], &[one, neg_one], None)?;
                    self.dot(&[d], &[d], None)?
                }
                _ => unreachable!("not an arith pack gadget"),
            };
            out.push(r);
        }
        Ok(out)
    }

    /// Packed squaring.
    pub fn square_pack(&mut self, xs: &[AValue]) -> Result<Vec<AValue>, BuildError> {
        if matches!(self.cfg.choices.arith, crate::config::ArithImpl::ViaDot) {
            let pairs: Vec<(AValue, AValue)> = xs.iter().map(|x| (*x, *x)).collect();
            return pairs
                .iter()
                .map(|(a, b)| self.dot(&[*a], &[*b], None))
                .collect();
        }
        let n = self.cfg.num_cols;
        let slots = n / 2;
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(slots) {
            let row = self.alloc_row(Gadget::SquarePack);
            for (s, x) in chunk.iter().enumerate() {
                self.place(2 * s, row, x);
                out.push(self.fresh(2 * s + 1, row, x.v * x.v));
            }
        }
        Ok(out)
    }

    /// Rescales double-scale values back to single scale (`DivRound` by SF).
    pub fn rescale(&mut self, xs: &[AValue]) -> Result<Vec<AValue>, BuildError> {
        let slots = self.pack3();
        let sf = self.scale();
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(slots) {
            let row = self.alloc_row(Gadget::DivRound);
            for (s, x) in chunk.iter().enumerate() {
                self.place(3 * s, row, x);
                let y = zkml_model::qops::div_round(x.v, sf);
                let r = 2 * x.v + sf - 2 * sf * y;
                debug_assert!((0..2 * sf).contains(&r), "divround remainder {r}");
                out.push(self.fresh(3 * s + 1, row, y));
                self.fresh(3 * s + 2, row, r);
            }
            // Unused slots: x=0 -> y=0, r=SF (must satisfy the relation).
            for s in chunk.len()..slots {
                self.fresh(3 * s + 2, row, sf);
            }
        }
        Ok(out)
    }

    /// Applies a lookup non-linearity pointwise.
    pub fn nonlin(&mut self, f: TableFn, xs: &[AValue]) -> Result<Vec<AValue>, BuildError> {
        let slots = self.nonlin_packs();
        let half = 1i64 << (self.cfg.numeric.table_bits() - 1);
        let scale = self.scale();
        let default_out = crate::tables::table_eval(f, 0, scale);
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(slots) {
            let row = self.alloc_row(Gadget::Nonlin(f));
            for (s, x) in chunk.iter().enumerate() {
                if !self.count_only && (x.v < -half || x.v >= half) {
                    return Err(BuildError::Range(format!(
                        "nonlinearity input {} outside table domain [{}, {})",
                        x.v, -half, half
                    )));
                }
                self.place(2 * s, row, x);
                let y = crate::tables::table_eval(f, x.v, scale);
                out.push(self.fresh(2 * s + 1, row, y));
            }
            // Unused slots must hold the default table entry (0, f(0)) —
            // (0, 0) is not in the table for functions with f(0) != 0.
            for s in chunk.len()..slots {
                self.fresh(2 * s + 1, row, default_out);
            }
        }
        Ok(out)
    }

    /// ReLU with the configured implementation.
    pub fn relu(&mut self, xs: &[AValue]) -> Result<Vec<AValue>, BuildError> {
        match self.cfg.choices.relu {
            crate::config::ReluImpl::Lookup => self.nonlin(
                TableFn::Act(crate::tables::ActKey::of(zkml_model::Activation::Relu)),
                xs,
            ),
            crate::config::ReluImpl::BitDecompose => self.relu_bits(xs),
        }
    }

    fn relu_bits(&mut self, xs: &[AValue]) -> Result<Vec<AValue>, BuildError> {
        let tb = self.cfg.numeric.table_bits() as usize;
        if self.cfg.num_cols < tb + 2 {
            return Err(BuildError::Layout(format!(
                "bit-decomposition ReLU needs {} columns, have {}",
                tb + 2,
                self.cfg.num_cols
            )));
        }
        let half = 1i64 << (tb - 1);
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            if !self.count_only && (x.v < -half || x.v >= half) {
                return Err(BuildError::Range(format!(
                    "ReLU input {} outside {tb}-bit domain",
                    x.v
                )));
            }
            let row = self.alloc_row(Gadget::BitDecomp);
            self.place(0, row, x);
            let y = x.v.max(0);
            out.push(self.fresh(1, row, y));
            let offset = (x.v + half) as u64;
            for i in 0..tb {
                self.fresh(2 + i, row, ((offset >> i) & 1) as i64);
            }
        }
        Ok(out)
    }

    /// Pairwise maximum (packed).
    pub fn max_pairs(&mut self, pairs: &[(AValue, AValue)]) -> Result<Vec<AValue>, BuildError> {
        let slots = self.pack3();
        let rb = 1i64 << self.cfg.numeric.table_bits();
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(slots) {
            let row = self.alloc_row(Gadget::MaxPack);
            for (s, (a, b)) in chunk.iter().enumerate() {
                let c = a.v.max(b.v);
                if !self.count_only && (c - a.v >= rb || c - b.v >= rb) {
                    return Err(BuildError::Range(format!(
                        "max difference exceeds range table ({} vs {})",
                        a.v, b.v
                    )));
                }
                self.place(3 * s, row, a);
                self.place(3 * s + 1, row, b);
                out.push(self.fresh(3 * s + 2, row, c));
            }
        }
        Ok(out)
    }

    /// Maximum of a list (tree of pairwise maxes).
    pub fn max_tree(&mut self, xs: &[AValue]) -> Result<AValue, BuildError> {
        assert!(!xs.is_empty(), "max of nothing");
        let mut level = xs.to_vec();
        while level.len() > 1 {
            let mut pairs = Vec::new();
            let mut carry = None;
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    pairs.push((pair[0], pair[1]));
                } else {
                    carry = Some(pair[0]);
                }
            }
            let mut next = self.max_pairs(&pairs)?;
            if let Some(c) = carry {
                next.push(c);
            }
            level = next;
        }
        Ok(level[0])
    }

    /// Rounded variable division with scaled numerators:
    /// `out_i = round(nums_i * SF / den)` (the softmax division, §6.1).
    ///
    /// `den_bound` is a static upper bound on the denominator (known from
    /// tensor shapes), used to size the range table identically in count
    /// and real modes.
    pub fn var_div(
        &mut self,
        nums: &[AValue],
        den: AValue,
        den_bound: i64,
    ) -> Result<Vec<AValue>, BuildError> {
        let slots = (self.cfg.num_cols / 4)
            .min(self.cfg.choices.lookup_packs)
            .max(1);
        let sf = self.scale();
        self.require_range(2 * den_bound);
        if !self.count_only {
            if den.v <= 0 {
                return Err(BuildError::Range(
                    "variable division by non-positive".into(),
                ));
            }
            if den.v > den_bound {
                return Err(BuildError::Range(format!(
                    "variable divisor {} exceeds static bound {den_bound}",
                    den.v
                )));
            }
        }
        let mut out = Vec::with_capacity(nums.len());
        for chunk in nums.chunks(slots) {
            let row = self.alloc_row(Gadget::VarDiv);
            for (s, nv) in chunk.iter().enumerate() {
                self.place(4 * s, row, nv);
                self.place(4 * s + 1, row, &den);
                let c = zkml_model::qops::var_div_scaled(nv.v, den.v, sf);
                let r = 2 * sf * nv.v + den.v - 2 * den.v * c;
                debug_assert!((0..2 * den.v).contains(&r) || self.count_only);
                out.push(self.fresh(4 * s + 2, row, c));
                self.fresh(4 * s + 3, row, r);
            }
            // Unused slots must still satisfy the constraint and range
            // checks with the selector on: n=0, a=1, c=0, r=1.
            for s in chunk.len()..slots {
                self.fresh(4 * s + 1, row, 1);
                self.fresh(4 * s + 3, row, 1);
            }
        }
        Ok(out)
    }

    // --- finalization ----------------------------------------------------

    /// Rows consumed by column-count-independent structure: constants,
    /// nonlinearity tables, the range table, and exposed instance values.
    /// These do not shrink as the sweep adds columns, so they bound the
    /// smallest `k` any candidate of this schedule can reach.
    pub fn rows_floor(&self) -> usize {
        let range_rows = if self.range_table.is_some() {
            self.range_size()
        } else {
            0
        };
        self.const_row
            .max(self.max_table_len)
            .max(range_rows)
            .max(self.instance_vals.len())
    }

    /// Total rows required (grid, phase-1 plane, constants, tables).
    pub fn rows_used(&self) -> usize {
        let range_rows = if self.range_table.is_some() {
            self.range_size()
        } else {
            0
        };
        // Exposed values copy-constrain rows of the instance column, so
        // the instance length bounds k too. Model outputs are few, but a
        // segment's boundary tensors can dominate a small segment circuit.
        self.row
            .max(self.p1_row)
            .max(self.committed_row)
            .max(self.const_row)
            .max(self.max_table_len)
            .max(range_rows)
            .max(self.instance_vals.len())
    }

    /// Minimal `k` for this circuit.
    pub fn min_k(&self) -> u32 {
        ((self.rows_used() + BLINDING_FACTORS + 1).next_power_of_two())
            .trailing_zeros()
            .max(3)
    }

    /// Structure statistics for the cost model.
    pub fn stats(&self) -> LayoutStats {
        LayoutStats {
            rows: self.rows_used(),
            num_instance: self.cs.num_instance,
            num_advice: self.cs.num_advice,
            num_fixed: self.cs.num_fixed,
            num_lookups: self.cs.lookups.len(),
            num_perm_columns: self.cs.permutation_columns.len(),
            degree: self.cs.degree(),
            num_constraints: self.cs.gates.iter().map(|g| g.polys.len()).sum(),
            num_copies: self.copy_count,
            num_committed: self.cs.num_committed,
            rows_floor: self.rows_floor(),
        }
    }

    // --- accessors for compiler/freivalds modules --------------------------

    pub(crate) fn grid_cols(&self) -> &[usize] {
        &self.grid
    }
    pub(crate) fn p1_cols(&self) -> &[usize] {
        &self.p1
    }
    pub(crate) fn p1_row_cursor(&mut self) -> &mut usize {
        &mut self.p1_row
    }
    pub(crate) fn copy_pub(&mut self, a: CellRef, b: CellRef) {
        self.copy(a, b);
    }
    pub(crate) fn selector_pub(&mut self, g: Gadget) -> usize {
        self.selector(g)
    }
    pub(crate) fn set_fixed_pub(&mut self, col: usize, row: usize, v: Fr) {
        self.set_fixed(col, row, v);
    }
    #[allow(clippy::type_complexity)]
    pub(crate) fn take_parts(
        self,
    ) -> (
        ConstraintSystem,
        Vec<Vec<Fr>>,
        Vec<Vec<Fr>>,
        Vec<(CellRef, CellRef)>,
        Vec<Fr>,
        Vec<Vec<Fr>>,
    ) {
        let mut committed_vals = self.committed_vals;
        // Pad the value grid to the full committed plane so the column
        // count always matches `cs.num_committed` even when trailing
        // columns were never written.
        if !self.committed.is_empty() {
            committed_vals.resize(self.committed.len(), Vec::new());
        }
        (
            self.cs,
            self.fixed_vals,
            self.advice_vals,
            self.copies,
            self.instance_vals,
            committed_vals,
        )
    }
    pub(crate) fn take_assigned(&mut self) -> Vec<CellRef> {
        std::mem::take(&mut self.assigned)
    }
    pub(crate) fn take_inputs(&mut self) -> Vec<CellRef> {
        std::mem::take(&mut self.inputs)
    }
    pub(crate) fn take_regions(&mut self) -> Vec<RegionSpan> {
        std::mem::take(&mut self.regions)
    }
    pub(crate) fn push_freivalds_job(&mut self, job: crate::freivalds::FreivaldsJob) {
        self.freivalds_jobs.push(job);
    }
    pub(crate) fn take_freivalds_jobs(&mut self) -> Vec<crate::freivalds::FreivaldsJob> {
        std::mem::take(&mut self.freivalds_jobs)
    }
    pub(crate) fn p1_rows_used(&self) -> usize {
        self.p1_row
    }
    pub(crate) fn num_fixed_cols(&self) -> usize {
        self.cs.num_fixed
    }
    pub(crate) fn table_pad_info(&self) -> Vec<(Vec<usize>, usize, Vec<i64>)> {
        self.table_infos
            .iter()
            .map(|t| (t.cols.clone(), t.len, t.defaults.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CircuitConfig, LayoutChoices};

    fn builder(n_cols: usize) -> CircuitBuilder {
        let mut cfg = CircuitConfig::default_with(LayoutChoices::optimized());
        cfg.num_cols = n_cols;
        CircuitBuilder::new(cfg)
    }

    #[test]
    fn dot_values_accumulate() {
        let mut b = builder(8);
        let xs = b.load_values(&[1, 2, 3, 4, 5, 6, 7]);
        let ys = b.load_values(&[2, 2, 2, 2, 2, 2, 2]);
        let z = b.dot(&xs, &ys, None).unwrap();
        assert_eq!(z.v, 2 * (1 + 2 + 3 + 4 + 5 + 6 + 7));
    }

    #[test]
    fn dot_with_init() {
        let mut b = builder(8);
        let xs = b.load_values(&[3]);
        let ys = b.load_values(&[4]);
        let init = b.load_values(&[100]);
        let z = b.dot(&xs, &ys, Some(init[0])).unwrap();
        assert_eq!(z.v, 112);
    }

    #[test]
    fn sum_tree() {
        let mut b = builder(4);
        let xs = b.load_values(&(1..=10).collect::<Vec<i64>>());
        let s = b.sum(&xs).unwrap();
        assert_eq!(s.v, 55);
    }

    #[test]
    fn rescale_rounds() {
        let mut b = builder(9);
        let sf = b.scale();
        let xs = b.load_values(&[sf * sf, sf * sf / 2, -3 * sf]);
        let ys = b.rescale(&xs).unwrap();
        assert_eq!(ys[0].v, sf);
        assert_eq!(ys[1].v, sf / 2);
        // round(-3*sf / sf)= -3.
        assert_eq!(ys[2].v, -3);
    }

    #[test]
    fn relu_both_impls_agree() {
        for relu in [
            crate::config::ReluImpl::Lookup,
            crate::config::ReluImpl::BitDecompose,
        ] {
            let mut choices = LayoutChoices::optimized();
            choices.relu = relu;
            let mut cfg = CircuitConfig::default_with(choices);
            cfg.num_cols = 16;
            let mut b = CircuitBuilder::new(cfg);
            let xs = b.load_values(&[-5, 0, 7, -128, 127]);
            let ys = b.relu(&xs).unwrap();
            let got: Vec<i64> = ys.iter().map(|y| y.v).collect();
            assert_eq!(got, vec![0, 0, 7, 0, 127], "{relu:?}");
        }
    }

    #[test]
    fn max_tree_finds_max() {
        let mut b = builder(9);
        let xs = b.load_values(&[3, -7, 22, 5, 21, 0, -1]);
        let m = b.max_tree(&xs).unwrap();
        assert_eq!(m.v, 22);
    }

    #[test]
    fn var_div_matches_qops() {
        let mut b = builder(8);
        let sf = b.scale();
        let nums = b.load_values(&[sf / 2, sf, 3]);
        let den = b.load_values(&[2 * sf]);
        let out = b.var_div(&nums, den[0], 2 * sf).unwrap();
        for (x, o) in [sf / 2, sf, 3].iter().zip(&out) {
            assert_eq!(o.v, zkml_model::qops::var_div_scaled(*x, 2 * sf, sf));
        }
    }

    #[test]
    fn placer_matches_synthesis_structure() {
        let build = |count: bool| -> LayoutStats {
            let mut cfg = CircuitConfig::default_with(LayoutChoices::optimized());
            cfg.num_cols = 10;
            let mut b = if count {
                CircuitBuilder::placer(cfg)
            } else {
                CircuitBuilder::new(cfg)
            };
            let xs = b.load_values(&(0..50).collect::<Vec<i64>>());
            let ys = b.load_values(&vec![3; 50]);
            let d = b.dot(&xs, &ys, None).unwrap();
            let r = b.rescale(&[d]).unwrap();
            let _ = b.relu(&r).unwrap();
            b.stats()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn arith_via_dot_matches_dedicated() {
        for arith in [
            crate::config::ArithImpl::Dedicated,
            crate::config::ArithImpl::ViaDot,
        ] {
            let mut choices = LayoutChoices::optimized();
            choices.arith = arith;
            let mut cfg = CircuitConfig::default_with(choices);
            cfg.num_cols = 12;
            let mut b = CircuitBuilder::new(cfg);
            let xs = b.load_values(&[5, -3]);
            let ys = b.load_values(&[2, 8]);
            let pairs = vec![(xs[0], ys[0]), (xs[1], ys[1])];
            let add = b.arith_pack(Gadget::AddPack, &pairs).unwrap();
            let mul = b.arith_pack(Gadget::MulPack, &pairs).unwrap();
            assert_eq!((add[0].v, add[1].v), (7, 5), "{arith:?}");
            assert_eq!((mul[0].v, mul[1].v), (10, -24), "{arith:?}");
        }
    }
}
