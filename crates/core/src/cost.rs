//! The cost model (§7.4, Eq. 1–2) and hardware calibration.
//!
//! Calibration takes several seconds, so [`HardwareStats::cached`]
//! persists the table to disk (see [`HardwareStats::save`]) and later
//! processes load it instead of re-benchmarking. Set `ZKML_HW_CACHE` to
//! choose the file, or to the empty string to disable persistence.

use crate::builder::LayoutStats;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use zkml_ff::{Field, Fr, PrimeField};
use zkml_pcs::Backend;

/// Measured per-operation costs for the proving hardware.
///
/// `BenchmarkOperations(hardware)` from Algorithm 1: produced once per
/// machine and cached; the optimizer consults it for every candidate layout
/// instead of proving anything.
#[derive(Clone, Debug)]
pub struct HardwareStats {
    /// `t_fft[k]` = seconds for one size-`2^k` NTT.
    pub t_fft: Vec<f64>,
    /// `t_msm[k]` = seconds for one size-`2^k` MSM.
    pub t_msm: Vec<f64>,
    /// `t_lookup[k]` = seconds to build one lookup's permuted columns.
    pub t_lookup: Vec<f64>,
    /// Seconds per field multiply-accumulate.
    pub t_field: f64,
}

const MAX_K: usize = 28;

impl HardwareStats {
    /// Measures the machine (a few seconds) and extrapolates to `2^28`.
    pub fn benchmark() -> Self {
        use zkml_poly::EvaluationDomain;
        let mut rng = rand::rngs::mock::StepRng::new(0x1234, 0x9e3779b97f4a7c15);
        // Field op throughput.
        let mut x = Fr::from_u64(3);
        let y = Fr::from_u64(12345);
        let start = Instant::now();
        const FIELD_ITERS: u32 = 1_000_000;
        for _ in 0..FIELD_ITERS {
            x = x * y + y;
        }
        let t_field = start.elapsed().as_secs_f64() / FIELD_ITERS as f64;
        std::hint::black_box(x);

        // FFTs at k = 10..=15, extrapolated by n log n beyond.
        let mut t_fft = vec![0.0f64; MAX_K + 1];
        for k in 10..=15u32 {
            let domain = EvaluationDomain::<Fr>::new(k);
            let mut vals: Vec<Fr> = (0..domain.n).map(|_| Fr::random(&mut rng)).collect();
            let start = Instant::now();
            domain.fft(&mut vals);
            t_fft[k as usize] = start.elapsed().as_secs_f64();
            std::hint::black_box(&vals);
        }
        for k in 0..10usize {
            t_fft[k] = t_fft[10] * (1 << k) as f64 / (1 << 10) as f64;
        }
        for k in 16..=MAX_K {
            // n log n scaling: doubling n slightly more than doubles time.
            t_fft[k] = t_fft[k - 1] * 2.0 * (k as f64) / (k as f64 - 1.0);
        }

        // MSMs at k = 10..=12, extrapolated linearly (Pippenger is ~n/log n
        // but bucket overheads make near-linear a good fit at these sizes).
        let mut t_msm = vec![0.0f64; MAX_K + 1];
        {
            let base = zkml_curves::G1Projective::generator();
            let scalars: Vec<Fr> = (0..(1usize << 12)).map(|_| Fr::random(&mut rng)).collect();
            let points = crate::cost::fixed_base_points(&base, &scalars);
            for k in 10..=12u32 {
                let n = 1usize << k;
                let start = Instant::now();
                let r = zkml_curves::msm(&points[..n], &scalars[..n]);
                t_msm[k as usize] = start.elapsed().as_secs_f64();
                std::hint::black_box(r);
            }
        }
        for k in 0..10usize {
            t_msm[k] = t_msm[10] * (1 << k) as f64 / (1 << 10) as f64;
        }
        for k in 13..=MAX_K {
            t_msm[k] = t_msm[k - 1] * 2.0;
        }

        // Lookup permuted-column construction (sort + multiset match).
        let mut t_lookup = vec![0.0f64; MAX_K + 1];
        for k in 10..=14u32 {
            let n = 1usize << k;
            let vals: Vec<Fr> = (0..n).map(|i| Fr::from_u64((i % 257) as u64)).collect();
            let start = Instant::now();
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let mut counts = std::collections::BTreeMap::new();
            for v in &sorted {
                *counts.entry(*v).or_insert(0usize) += 1;
            }
            std::hint::black_box(counts.len());
            t_lookup[k as usize] = start.elapsed().as_secs_f64();
        }
        for k in 0..10usize {
            t_lookup[k] = t_lookup[10] * (1 << k) as f64 / (1 << 10) as f64;
        }
        for k in 15..=MAX_K {
            t_lookup[k] = t_lookup[k - 1] * 2.0;
        }

        Self {
            t_fft,
            t_msm,
            t_lookup,
            t_field,
        }
    }

    /// A deterministic calibration table for tests and examples: smooth
    /// synthetic timings with the right growth shape, identical on every
    /// machine and run. Never measured, never persisted.
    pub fn fixture() -> Self {
        Self {
            t_fft: (0..=MAX_K).map(|k| 1e-6 * (1u64 << k) as f64).collect(),
            t_msm: (0..=MAX_K).map(|k| 4e-6 * (1u64 << k) as f64).collect(),
            t_lookup: (0..=MAX_K).map(|k| 5e-7 * (1u64 << k) as f64).collect(),
            t_field: 3e-8,
        }
    }

    /// Serializes the table to a text file, atomically (write to a
    /// temporary sibling, then rename). Floats are stored as `to_bits`
    /// hex so the round-trip is exact.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut body = String::from("zkml-hw-cache-v1\n");
        for row in [&self.t_fft, &self.t_msm, &self.t_lookup] {
            let line: Vec<String> = row
                .iter()
                .map(|v| format!("{:016x}", v.to_bits()))
                .collect();
            body.push_str(&line.join(" "));
            body.push('\n');
        }
        body.push_str(&format!("{:016x}\n", self.t_field.to_bits()));
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a table previously written by [`save`](Self::save). Returns
    /// `None` on any anomaly (missing file, wrong header, wrong arity) so
    /// callers fall back to benchmarking.
    pub fn load(path: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        if lines.next()? != "zkml-hw-cache-v1" {
            return None;
        }
        let parse_row = |line: &str| -> Option<Vec<f64>> {
            let vals: Vec<f64> = line
                .split_whitespace()
                .map(|tok| u64::from_str_radix(tok, 16).ok().map(f64::from_bits))
                .collect::<Option<Vec<f64>>>()?;
            (vals.len() == MAX_K + 1).then_some(vals)
        };
        let t_fft = parse_row(lines.next()?)?;
        let t_msm = parse_row(lines.next()?)?;
        let t_lookup = parse_row(lines.next()?)?;
        let t_field = f64::from_bits(u64::from_str_radix(lines.next()?.trim(), 16).ok()?);
        Some(Self {
            t_fft,
            t_msm,
            t_lookup,
            t_field,
        })
    }

    /// The on-disk cache location: `ZKML_HW_CACHE` if set (empty disables
    /// persistence entirely), else a fixed file under the workspace
    /// `target/` directory.
    fn cache_path() -> Option<PathBuf> {
        match std::env::var("ZKML_HW_CACHE") {
            Ok(s) if s.is_empty() => None,
            Ok(s) => Some(PathBuf::from(s)),
            Err(_) => Some(
                Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/zkml-hw-cache-v1.txt"),
            ),
        }
    }

    /// Returns the cached stats: the disk cache if present, otherwise one
    /// in-process measurement (persisted best-effort for the next
    /// process).
    pub fn cached() -> &'static HardwareStats {
        static STATS: std::sync::OnceLock<HardwareStats> = std::sync::OnceLock::new();
        STATS.get_or_init(|| {
            let path = Self::cache_path();
            if let Some(p) = &path {
                if let Some(stats) = Self::load(p) {
                    return stats;
                }
            }
            let stats = Self::benchmark();
            if let Some(p) = &path {
                let _ = stats.save(p);
            }
            stats
        })
    }
}

/// Generates many multiples of a base point quickly (for MSM calibration).
pub fn fixed_base_points(
    base: &zkml_curves::G1Projective,
    scalars: &[Fr],
) -> Vec<zkml_curves::G1Affine> {
    let proj: Vec<zkml_curves::G1Projective> = scalars
        .iter()
        .enumerate()
        .map(|(i, _)| base.mul_scalar(&Fr::from_u64(2 * i as u64 + 3)))
        .collect();
    zkml_curves::G1Projective::batch_to_affine(&proj)
}

/// A cost estimate for one physical layout.
#[derive(Clone, Copy, Debug)]
pub struct CostEstimate {
    /// Estimated proving time (seconds).
    pub proving_s: f64,
    /// FFT component.
    pub fft_s: f64,
    /// MSM component.
    pub msm_s: f64,
    /// Lookup construction component.
    pub lookup_s: f64,
    /// Residual (quotient evaluation and assorted field work).
    pub residual_s: f64,
    /// Estimated proof size in bytes.
    pub proof_bytes: usize,
}

/// Number of quotient pieces for a degree bound.
pub fn quotient_pieces(degree: usize) -> usize {
    (degree - 1).next_power_of_two()
}

/// Estimates proving cost for a circuit structure at `2^k` rows (Eq. 1–2).
pub fn estimate(stats: &LayoutStats, k: u32, backend: Backend, hw: &HardwareStats) -> CostEstimate {
    let d = stats.degree.max(3) as f64;
    let n_i = stats.num_instance as f64;
    let n_a = stats.num_advice as f64;
    let n_lk = stats.num_lookups as f64;
    let n_pm = stats.num_perm_columns as f64;

    // Eq. (2): number of base-size FFTs.
    let n_fft = n_i + n_a + n_lk * 3.0 + (n_pm + d - 3.0) / (d - 2.0);
    let n_fft_ext = n_fft + 1.0;
    let k_ext = k as usize
        + (stats.degree.max(3) - 1)
            .next_power_of_two()
            .trailing_zeros() as usize;
    let k_ext = k_ext.min(MAX_K);

    // Eq. (1).
    let fft_s = n_fft * hw.t_fft[k as usize] + n_fft_ext * hw.t_fft[k_ext];

    // MSMs: one per committed polynomial plus the quotient pieces.
    let extra = match backend {
        Backend::Kzg => d - 1.0,
        Backend::Ipa => d,
    };
    let msm_s = (n_fft + extra) * hw.t_msm[k as usize];

    let lookup_s = n_lk * hw.t_lookup[k as usize];

    // Residual: quotient evaluation over the extended domain.
    let residual_s = stats.num_constraints as f64 * (1u64 << k_ext) as f64 * hw.t_field * 4.0
        + n_pm * (1u64 << k) as f64 * hw.t_field;

    // Proof size.
    let z_count = if stats.num_perm_columns == 0 {
        0
    } else {
        stats
            .num_perm_columns
            .div_ceil((stats.degree.max(3) - 2).max(1))
    };
    let commits =
        stats.num_advice + 3 * stats.num_lookups + z_count + quotient_pieces(stats.degree.max(3));
    // Openings: one eval per plan entry; entries approximated from structure
    // (advice + fixed at rot 0, sigmas, 3 per perm-z minus last, 5 per
    // lookup, quotient pieces).
    let evals = stats.num_advice
        + stats.num_fixed
        + stats.num_perm_columns
        + z_count
            .saturating_mul(3)
            .saturating_sub(if z_count > 0 { 1 } else { 0 })
        + 5 * stats.num_lookups
        + quotient_pieces(stats.degree.max(3));
    let opening = match backend {
        Backend::Kzg => 4 * 32,
        Backend::Ipa => 4 * (2 * k as usize * 32 + 32),
    };
    let proof_bytes = 32 * (commits + evals) + opening;

    CostEstimate {
        proving_s: fft_s + msm_s + lookup_s + residual_s,
        fft_s,
        msm_s,
        lookup_s,
        residual_s,
        proof_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_stats() -> LayoutStats {
        LayoutStats {
            rows: 1000,
            num_instance: 1,
            num_advice: 16,
            num_fixed: 12,
            num_lookups: 4,
            num_perm_columns: 18,
            degree: 4,
            num_constraints: 30,
            num_copies: 5000,
            num_committed: 0,
            rows_floor: 100,
        }
    }

    fn fake_hw() -> HardwareStats {
        HardwareStats::fixture()
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let stats = HardwareStats::fixture();
        let path = std::env::temp_dir().join(format!("zkml-hw-rt-{}.txt", std::process::id()));
        stats.save(&path).unwrap();
        let back = HardwareStats::load(&path).expect("load saved table");
        assert_eq!(stats.t_fft, back.t_fft);
        assert_eq!(stats.t_msm, back.t_msm);
        assert_eq!(stats.t_lookup, back.t_lookup);
        assert_eq!(stats.t_field.to_bits(), back.t_field.to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_corrupt_files() {
        let dir = std::env::temp_dir();
        let missing = dir.join(format!("zkml-hw-missing-{}.txt", std::process::id()));
        assert!(HardwareStats::load(&missing).is_none());
        let bad = dir.join(format!("zkml-hw-bad-{}.txt", std::process::id()));
        std::fs::write(&bad, "zkml-hw-cache-v1\n12 34\n").unwrap();
        assert!(HardwareStats::load(&bad).is_none());
        std::fs::write(&bad, "not-a-cache\n").unwrap();
        assert!(HardwareStats::load(&bad).is_none());
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn cost_grows_with_k() {
        let hw = fake_hw();
        let s = toy_stats();
        let c10 = estimate(&s, 10, Backend::Kzg, &hw);
        let c12 = estimate(&s, 12, Backend::Kzg, &hw);
        assert!(c12.proving_s > 2.0 * c10.proving_s);
    }

    #[test]
    fn power_of_two_row_cliff() {
        // The paper: one extra row over a power of two nearly doubles cost.
        let hw = fake_hw();
        let s = toy_stats();
        let at_k = estimate(&s, 11, Backend::Kzg, &hw).proving_s;
        let next_k = estimate(&s, 12, Backend::Kzg, &hw).proving_s;
        assert!(next_k / at_k > 1.8);
    }

    #[test]
    fn lookups_and_columns_increase_cost() {
        let hw = fake_hw();
        let s = toy_stats();
        let mut more_lk = s.clone();
        more_lk.num_lookups += 4;
        assert!(
            estimate(&more_lk, 12, Backend::Kzg, &hw).proving_s
                > estimate(&s, 12, Backend::Kzg, &hw).proving_s
        );
        let mut more_cols = s.clone();
        more_cols.num_advice += 8;
        assert!(
            estimate(&more_cols, 12, Backend::Kzg, &hw).proving_s
                > estimate(&s, 12, Backend::Kzg, &hw).proving_s
        );
    }

    #[test]
    fn ipa_proofs_larger_than_kzg() {
        let hw = fake_hw();
        let s = toy_stats();
        let kzg = estimate(&s, 12, Backend::Kzg, &hw);
        let ipa = estimate(&s, 12, Backend::Ipa, &hw);
        assert!(ipa.proof_bytes > kzg.proof_bytes);
    }
}
