//! The backend-independent operation schedule: stage 1 of the compile
//! pipeline.
//!
//! `lower_graph` walks a model **once** and records every gadget invocation
//! as a `SchedOp` over abstract value ids — no rows, columns, or
//! constraint-system structure are chosen here. The resulting
//! [`OpSchedule`] is then *replayed* against a [`CircuitBuilder`] by
//! `run_schedule` (crate-private), either in placement mode (to produce a
//! [`crate::compiler::LayoutPlan`] row-exactly) or in synthesis mode (to
//! assign the witness). Because layout-sensitive decisions (dot chunking,
//! pack widths, ReLU/matmul implementation) live in the builder's gadget
//! methods, one schedule serves every candidate configuration the
//! optimizer sweeps.
//!
//! Scheduling has no value-dependent control flow: ops record operand
//! *ids* plus the raw data of `Load`/`Const` ops, and replay recomputes
//! every intermediate value through the gadgets themselves. A schedule
//! built from real inputs therefore yields identical layouts to one built
//! from zeros, while remaining directly synthesizable into a proof.

use crate::builder::{AValue, BuildError, CircuitBuilder, Gadget};
use crate::config::NumericConfig;
use crate::tables::TableFn;
use std::sync::atomic::{AtomicUsize, Ordering};
use zkml_tensor::Tensor;

/// An abstract scheduled value: an index into the schedule's value space.
///
/// The id is resolved to a concrete grid cell only when the schedule is
/// replayed against a builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SVal(pub(crate) u32);

/// One recorded gadget invocation.
///
/// Variants are semantic, not physical: `MatMul`, `Relu`, `Arith` and
/// `Dot` each cover every implementation choice in
/// [`crate::config::LayoutChoices`], because all implementations of a
/// gadget produce identical output *values* (only rows/columns differ).
#[derive(Clone, Debug)]
pub(crate) enum SchedOp {
    /// Raw values into home cells (inputs, Freivalds products).
    Load { values: Vec<i64> },
    /// Model weights into home cells of the committed column plane.
    LoadWeights { values: Vec<i64> },
    /// A pinned constant.
    Const { v: i64 },
    /// Dot product with optional accumulator init.
    Dot {
        xs: Vec<u32>,
        ys: Vec<u32>,
        init: Option<u32>,
    },
    /// Tree sum of a value list.
    Sum { xs: Vec<u32> },
    /// Packed binary arithmetic (`AddPack`/`SubPack`/`MulPack`/`SqDiffPack`).
    Arith {
        kind: Gadget,
        pairs: Vec<(u32, u32)>,
    },
    /// Packed squaring.
    Square { xs: Vec<u32> },
    /// Fixed-point rescale (DivRound by the scale factor).
    Rescale { xs: Vec<u32> },
    /// Pointwise non-linearity lookup.
    Nonlin { f: TableFn, xs: Vec<u32> },
    /// ReLU under whichever implementation the config selects.
    Relu { xs: Vec<u32> },
    /// Packed pairwise maximum (one max-tree level).
    MaxPairs { pairs: Vec<(u32, u32)> },
    /// Rounded variable division.
    VarDiv {
        nums: Vec<u32>,
        den: u32,
        den_bound: i64,
    },
    /// Matrix multiply `x (rows x k) @ w (k x t)` at double scale, with an
    /// optional double-scale bias; resolved to Freivalds or direct dots at
    /// replay time.
    MatMul {
        x: Vec<u32>,
        w: Vec<u32>,
        dims: (usize, usize, usize),
        bias2: Option<Vec<u32>>,
    },
}

impl SchedOp {
    /// Number of value ids the op produces.
    fn arity_out(&self) -> usize {
        match self {
            SchedOp::Load { values } | SchedOp::LoadWeights { values } => values.len(),
            SchedOp::Const { .. } | SchedOp::Dot { .. } | SchedOp::Sum { .. } => 1,
            SchedOp::Arith { pairs, .. } | SchedOp::MaxPairs { pairs } => pairs.len(),
            SchedOp::Square { xs }
            | SchedOp::Rescale { xs }
            | SchedOp::Nonlin { xs, .. }
            | SchedOp::Relu { xs } => xs.len(),
            SchedOp::VarDiv { nums, .. } => nums.len(),
            SchedOp::MatMul { dims, .. } => dims.0 * dims.2,
        }
    }
}

/// The ordered gadget invocations for one model at one numeric
/// configuration — stage 1's output, built once and replayed per candidate
/// layout.
#[derive(Clone, Debug)]
pub struct OpSchedule {
    /// The fixed-point configuration the schedule's constants and
    /// quantized weights were produced under. Placement and synthesis
    /// refuse configurations with a different numeric config.
    pub numeric: NumericConfig,
    pub(crate) ops: Vec<SchedOp>,
    pub(crate) num_vals: usize,
    /// Model outputs: (shape, value ids) per output tensor.
    pub(crate) outputs: Vec<(Vec<usize>, Vec<u32>)>,
}

impl OpSchedule {
    /// Number of recorded gadget invocations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of abstract values the schedule produces.
    pub fn num_values(&self) -> usize {
        self.num_vals
    }

    /// Number of compute ops — everything except `Load`/`Const`, which
    /// carry raw data and are rematerialized (not threaded) across segment
    /// boundaries. Segmentation partitions exactly these.
    pub fn num_compute_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| {
                !matches!(
                    o,
                    SchedOp::Load { .. } | SchedOp::LoadWeights { .. } | SchedOp::Const { .. }
                )
            })
            .count()
    }

    /// Model outputs as `(shape, value ids)` per output tensor (read-only
    /// view for tests and segmentation tooling).
    pub fn outputs(&self) -> &[(Vec<usize>, Vec<u32>)] {
        &self.outputs
    }
}

/// Process-wide count of schedules built (i.e. `lower_graph` executions).
///
/// Test instrumentation for the pipeline's central invariant: the
/// optimizer lowers a model exactly once regardless of how many candidate
/// layouts it sweeps.
static SCHEDULES_BUILT: AtomicUsize = AtomicUsize::new(0);

/// Reads the schedule-build counter (see `SCHEDULES_BUILT`).
pub fn schedules_built() -> usize {
    SCHEDULES_BUILT.load(Ordering::SeqCst)
}

/// Records one gadget invocation at a time, handing out value ids.
///
/// Mirrors the [`CircuitBuilder`] gadget API shape-for-shape so the graph
/// lowering in [`crate::layers`] reads the same as direct circuit
/// construction, but performs no layout work.
pub struct ScheduleBuilder {
    numeric: NumericConfig,
    ops: Vec<SchedOp>,
    next: u32,
    consts: std::collections::HashMap<i64, SVal>,
}

impl ScheduleBuilder {
    /// Creates an empty schedule under a numeric configuration.
    pub fn new(numeric: NumericConfig) -> Self {
        SCHEDULES_BUILT.fetch_add(1, Ordering::SeqCst);
        Self {
            numeric,
            ops: Vec::new(),
            next: 0,
            consts: std::collections::HashMap::new(),
        }
    }

    /// The fixed-point scale factor.
    pub fn scale(&self) -> i64 {
        self.numeric.scale()
    }

    fn alloc(&mut self, n: usize) -> Vec<SVal> {
        let start = self.next;
        self.next += n as u32;
        (start..self.next).map(SVal).collect()
    }

    fn push(&mut self, op: SchedOp) -> Vec<SVal> {
        let out = self.alloc(op.arity_out());
        self.ops.push(op);
        out
    }

    /// Loads raw values into home cells.
    pub fn load_values(&mut self, values: &[i64]) -> Vec<SVal> {
        self.push(SchedOp::Load {
            values: values.to_vec(),
        })
    }

    /// Loads model weights into home cells of the committed column plane
    /// (the CP-SNARK weight class — committed once per model, not per
    /// proof).
    pub fn load_weights(&mut self, values: &[i64]) -> Vec<SVal> {
        self.push(SchedOp::LoadWeights {
            values: values.to_vec(),
        })
    }

    /// Returns a pinned constant (deduplicated, like the builder's
    /// constant column).
    pub fn constant(&mut self, v: i64) -> SVal {
        if let Some(&s) = self.consts.get(&v) {
            return s;
        }
        let s = self.push(SchedOp::Const { v })[0];
        self.consts.insert(v, s);
        s
    }

    /// Dot product `sum x_i y_i (+ init)`.
    pub fn dot(&mut self, xs: &[SVal], ys: &[SVal], init: Option<SVal>) -> SVal {
        assert_eq!(xs.len(), ys.len(), "dot operand length mismatch");
        self.push(SchedOp::Dot {
            xs: ids(xs),
            ys: ids(ys),
            init: init.map(|s| s.0),
        })[0]
    }

    /// Sum of a value list.
    pub fn sum(&mut self, xs: &[SVal]) -> SVal {
        self.push(SchedOp::Sum { xs: ids(xs) })[0]
    }

    /// Packed binary arithmetic over pairs.
    pub fn arith_pack(&mut self, kind: Gadget, pairs: &[(SVal, SVal)]) -> Vec<SVal> {
        self.push(SchedOp::Arith {
            kind,
            pairs: pair_ids(pairs),
        })
    }

    /// Packed squaring.
    pub fn square_pack(&mut self, xs: &[SVal]) -> Vec<SVal> {
        self.push(SchedOp::Square { xs: ids(xs) })
    }

    /// Rescale double-scale values back to single scale.
    pub fn rescale(&mut self, xs: &[SVal]) -> Vec<SVal> {
        self.push(SchedOp::Rescale { xs: ids(xs) })
    }

    /// Pointwise non-linearity lookup.
    pub fn nonlin(&mut self, f: TableFn, xs: &[SVal]) -> Vec<SVal> {
        self.push(SchedOp::Nonlin { f, xs: ids(xs) })
    }

    /// ReLU (implementation chosen at replay time).
    pub fn relu(&mut self, xs: &[SVal]) -> Vec<SVal> {
        self.push(SchedOp::Relu { xs: ids(xs) })
    }

    /// Packed pairwise maximum.
    pub fn max_pairs(&mut self, pairs: &[(SVal, SVal)]) -> Vec<SVal> {
        self.push(SchedOp::MaxPairs {
            pairs: pair_ids(pairs),
        })
    }

    /// Maximum of a list; the tree expansion is configuration-independent,
    /// so it happens at schedule time (mirroring the builder's `max_tree`).
    pub fn max_tree(&mut self, xs: &[SVal]) -> SVal {
        assert!(!xs.is_empty(), "max of nothing");
        let mut level = xs.to_vec();
        while level.len() > 1 {
            let mut pairs = Vec::new();
            let mut carry = None;
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    pairs.push((pair[0], pair[1]));
                } else {
                    carry = Some(pair[0]);
                }
            }
            let mut next = self.max_pairs(&pairs);
            if let Some(c) = carry {
                next.push(c);
            }
            level = next;
        }
        level[0]
    }

    /// Rounded variable division with scaled numerators.
    pub fn var_div(&mut self, nums: &[SVal], den: SVal, den_bound: i64) -> Vec<SVal> {
        self.push(SchedOp::VarDiv {
            nums: ids(nums),
            den: den.0,
            den_bound,
        })
    }

    /// Matrix multiply producing raw (double-scale) outputs; the
    /// implementation (Freivalds vs. direct) is resolved at replay time.
    pub fn matmul_raw(
        &mut self,
        x: &[SVal],
        w: &[SVal],
        rows: usize,
        k: usize,
        t: usize,
        bias2: Option<&[SVal]>,
    ) -> Vec<SVal> {
        assert_eq!(x.len(), rows * k, "matmul lhs shape");
        assert_eq!(w.len(), k * t, "matmul rhs shape");
        self.push(SchedOp::MatMul {
            x: ids(x),
            w: ids(w),
            dims: (rows, k, t),
            bias2: bias2.map(ids),
        })
    }

    /// Seals the schedule with the model's output tensors.
    pub fn finish(self, outputs: Vec<(Vec<usize>, Vec<SVal>)>) -> OpSchedule {
        OpSchedule {
            numeric: self.numeric,
            ops: self.ops,
            num_vals: self.next as usize,
            outputs: outputs
                .into_iter()
                .map(|(shape, vals)| (shape, ids(&vals)))
                .collect(),
        }
    }
}

fn ids(xs: &[SVal]) -> Vec<u32> {
    xs.iter().map(|s| s.0).collect()
}

fn pair_ids(pairs: &[(SVal, SVal)]) -> Vec<(u32, u32)> {
    pairs.iter().map(|(a, b)| (a.0, b.0)).collect()
}

/// Stage 2/3 entry: replays a schedule against a builder (placement or
/// synthesis mode), returning the output cell tensors.
pub(crate) fn run_schedule(
    bld: &mut CircuitBuilder,
    sched: &OpSchedule,
) -> Result<Vec<Tensor<AValue>>, BuildError> {
    let mut vals: Vec<AValue> = Vec::with_capacity(sched.num_vals);
    for op in &sched.ops {
        match op {
            SchedOp::Load { values } => vals.extend(bld.load_values(values)),
            SchedOp::LoadWeights { values } => vals.extend(bld.load_weights(values)),
            SchedOp::Const { v } => {
                let c = bld.constant(*v);
                vals.push(c);
            }
            SchedOp::Dot { xs, ys, init } => {
                let x = gather(&vals, xs);
                let y = gather(&vals, ys);
                let r = bld.dot(&x, &y, init.map(|i| vals[i as usize]))?;
                vals.push(r);
            }
            SchedOp::Sum { xs } => {
                let x = gather(&vals, xs);
                let r = bld.sum(&x)?;
                vals.push(r);
            }
            SchedOp::Arith { kind, pairs } => {
                let p = gather_pairs(&vals, pairs);
                vals.extend(bld.arith_pack(*kind, &p)?);
            }
            SchedOp::Square { xs } => {
                let x = gather(&vals, xs);
                vals.extend(bld.square_pack(&x)?);
            }
            SchedOp::Rescale { xs } => {
                let x = gather(&vals, xs);
                vals.extend(bld.rescale(&x)?);
            }
            SchedOp::Nonlin { f, xs } => {
                let x = gather(&vals, xs);
                vals.extend(bld.nonlin(*f, &x)?);
            }
            SchedOp::Relu { xs } => {
                let x = gather(&vals, xs);
                vals.extend(bld.relu(&x)?);
            }
            SchedOp::MaxPairs { pairs } => {
                let p = gather_pairs(&vals, pairs);
                vals.extend(bld.max_pairs(&p)?);
            }
            SchedOp::VarDiv {
                nums,
                den,
                den_bound,
            } => {
                let n = gather(&vals, nums);
                let d = vals[*den as usize];
                vals.extend(bld.var_div(&n, d, *den_bound)?);
            }
            SchedOp::MatMul { x, w, dims, bias2 } => {
                let xv = gather(&vals, x);
                let wv = gather(&vals, w);
                let bv = bias2.as_ref().map(|b| gather(&vals, b));
                vals.extend(crate::layers::matmul_raw_entry(
                    bld,
                    &xv,
                    &wv,
                    dims.0,
                    dims.1,
                    dims.2,
                    bv.as_deref(),
                )?);
            }
        }
    }
    debug_assert_eq!(vals.len(), sched.num_vals, "schedule value count drift");
    Ok(sched
        .outputs
        .iter()
        .map(|(shape, out_ids)| {
            Tensor::new(
                shape.clone(),
                out_ids.iter().map(|i| vals[*i as usize]).collect(),
            )
        })
        .collect())
}

fn gather(vals: &[AValue], xs: &[u32]) -> Vec<AValue> {
    xs.iter().map(|i| vals[*i as usize]).collect()
}

fn gather_pairs(vals: &[AValue], pairs: &[(u32, u32)]) -> Vec<(AValue, AValue)> {
    pairs
        .iter()
        .map(|(a, b)| (vals[*a as usize], vals[*b as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut sb = ScheduleBuilder::new(NumericConfig::default_nano());
        let xs = sb.load_values(&[1, 2, 3]);
        assert_eq!(ids(&xs), vec![0, 1, 2]);
        let c = sb.constant(7);
        assert_eq!(c.0, 3);
        // Constant dedup hands back the same id.
        assert_eq!(sb.constant(7), c);
        let d = sb.dot(&xs, &xs, Some(c));
        assert_eq!(d.0, 4);
        let sched = sb.finish(vec![(vec![1], vec![d])]);
        assert_eq!(sched.num_values(), 5);
        assert_eq!(sched.num_ops(), 3);
    }

    #[test]
    fn build_counter_increments_once_per_schedule() {
        let before = schedules_built();
        let _ = ScheduleBuilder::new(NumericConfig::default_nano());
        assert!(schedules_built() > before);
    }
}
