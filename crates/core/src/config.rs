//! Compilation configuration: logical layout choices (gadget selection) and
//! physical layout parameters (column count), per §7 of the paper.

use zkml_pcs::Backend;

/// How ReLU is implemented in-circuit (§3, "Representing computations").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReluImpl {
    /// `(x, relu(x))` pairs checked against a lookup table.
    Lookup,
    /// Offset-binary bit decomposition with a sign-select product — the
    /// representation prior work uses (and the Table 9/11 baseline).
    BitDecompose,
}

/// How linear layers (matmul / conv im2col) are implemented (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatmulImpl {
    /// In-circuit dot products for every output element: `O(n^3)` cells.
    Direct,
    /// Freivalds' verification: the product is witnessed in phase 0 and
    /// checked against a phase-1 random projection: `O(n^2)` cells.
    Freivalds,
}

/// How long dot products accumulate across rows (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DotImpl {
    /// Dot-product-with-bias rows chained through the bias cell.
    BiasChain,
    /// Plain dot-product rows plus a separate sum row for the partials.
    PartialsThenSum,
}

/// How elementwise arithmetic (add/mul/square/...) is implemented.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithImpl {
    /// Dedicated packed gadgets (one constraint per packed slot).
    Dedicated,
    /// Reuse the dot-product constraint (fewer gate kinds, many more rows) —
    /// the "fixed set of gadgets" ablation of Table 11.
    ViaDot,
}

/// A logical circuit layout: which gadget implementation every layer uses.
///
/// Following the paper's pruning heuristic (§7.2), one choice applies to
/// every layer of a given kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayoutChoices {
    /// ReLU implementation.
    pub relu: ReluImpl,
    /// Linear-layer implementation.
    pub matmul: MatmulImpl,
    /// Dot-product accumulation style.
    pub dot: DotImpl,
    /// Elementwise arithmetic implementation.
    pub arith: ArithImpl,
    /// Lookup packing: parallel lookup arguments per row for pointwise
    /// non-linearities and range checks (more packs = fewer rows, more
    /// committed columns — the tradeoff in the paper's §3 toy example).
    pub lookup_packs: usize,
}

impl LayoutChoices {
    /// The default (fully optimized) gadget set.
    pub fn optimized() -> Self {
        Self {
            relu: ReluImpl::Lookup,
            matmul: MatmulImpl::Freivalds,
            dot: DotImpl::BiasChain,
            arith: ArithImpl::Dedicated,
            lookup_packs: 2,
        }
    }

    /// The prior-work-style gadget set (Tables 9 and 11): bit-decomposed
    /// ReLU, direct matrix multiplication, no dedicated arithmetic gadgets.
    pub fn prior_work() -> Self {
        Self {
            relu: ReluImpl::BitDecompose,
            matmul: MatmulImpl::Direct,
            dot: DotImpl::PartialsThenSum,
            arith: ArithImpl::ViaDot,
            lookup_packs: 1,
        }
    }

    /// Enumerates candidate logical layouts (GenerateLogicalLayouts, §7.2).
    pub fn candidates() -> Vec<Self> {
        let mut out = Vec::new();
        for relu in [ReluImpl::Lookup, ReluImpl::BitDecompose] {
            for matmul in [MatmulImpl::Freivalds, MatmulImpl::Direct] {
                for dot in [DotImpl::BiasChain, DotImpl::PartialsThenSum] {
                    for packs in [1usize, 2, 4] {
                        out.push(Self {
                            relu,
                            matmul,
                            dot,
                            arith: ArithImpl::Dedicated,
                            lookup_packs: packs,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Fixed-point numeric configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NumericConfig {
    /// log2 of the fixed-point scale factor.
    pub scale_bits: u32,
    /// Extra bits of headroom above the scale for activation magnitudes;
    /// non-linearity tables span `[-2^(scale_bits+clip_bits-1),
    /// 2^(scale_bits+clip_bits-1))`.
    pub clip_bits: u32,
}

impl NumericConfig {
    /// Default numeric configuration for the nano model zoo: scale factor
    /// 2^6 with activation headroom up to |x| < 32.0 (table domain 2^12).
    ///
    /// This is the §5.1 coupling in action: more fractional bits would mean
    /// larger non-linearity tables and therefore more rows.
    pub fn default_nano() -> Self {
        Self {
            scale_bits: 6,
            clip_bits: 6,
        }
    }

    /// Total bits of the non-linearity table domain.
    pub fn table_bits(&self) -> u32 {
        self.scale_bits + self.clip_bits
    }

    /// The fixed-point scale factor.
    pub fn scale(&self) -> i64 {
        1 << self.scale_bits
    }
}

/// A full compilation configuration: logical choices plus the physical
/// column count and numerics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CircuitConfig {
    /// Gadget choices.
    pub choices: LayoutChoices,
    /// Number of grid (advice) columns.
    pub num_cols: usize,
    /// Fixed-point parameters.
    pub numeric: NumericConfig,
}

impl CircuitConfig {
    /// A reasonable default physical configuration.
    pub fn default_with(choices: LayoutChoices) -> Self {
        Self {
            choices,
            num_cols: 16,
            numeric: NumericConfig::default_nano(),
        }
    }
}

/// What the optimizer minimizes (§9.4, Table 14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Minimize estimated proving time.
    ProvingTime,
    /// Minimize proof size.
    ProofSize,
}

/// The proving target: backend plus SRS ceiling.
#[derive(Clone, Copy, Debug)]
pub struct Target {
    /// Commitment backend.
    pub backend: Backend,
    /// Maximum supported `k` (the SRS / params size).
    pub max_k: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_space_size() {
        // 2 relu x 2 matmul x 2 dot x 3 packs = 24.
        assert_eq!(LayoutChoices::candidates().len(), 24);
    }

    #[test]
    fn presets_differ() {
        assert_ne!(LayoutChoices::optimized(), LayoutChoices::prior_work());
    }

    #[test]
    fn numeric_table_bits() {
        let n = NumericConfig {
            scale_bits: 7,
            clip_bits: 5,
        };
        assert_eq!(n.table_bits(), 12);
        assert_eq!(n.scale(), 128);
    }
}
