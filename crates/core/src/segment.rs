//! Schedule segmentation: cutting one [`OpSchedule`] at tensor boundaries
//! into chained sub-schedules for segmented proving.
//!
//! A cut partitions the schedule's compute ops into contiguous index
//! ranges. `Load` and `Const` ops carry raw data rather than depending on
//! earlier values, so they are *rematerialized* into every segment that
//! consumes them instead of being threaded through boundaries — weights
//! loaded up front by `lower_graph` land in the segment that uses them.
//! Every remaining value that crosses a cut becomes a **boundary tensor**:
//! the producing segment exposes it as public output, the consuming segment
//! loads it and exposes it as public input, and the aggregate verifier
//! checks the two instance slices are equal (see `zkml-shard`). Each
//! segment's single instance column is therefore laid out as
//! `[boundary-in values ++ boundary-out values]`, with the last segment
//! exposing the model's original outputs as its tail.
//!
//! Cut points are chosen by [`SegmentPlan::balanced`], a row-weight cost
//! model that balances estimated per-segment proving work so parallel
//! segment proving is not bottlenecked by one oversized segment.

use crate::schedule::{OpSchedule, SchedOp};
use crate::tables::table_eval;
use zkml_model::qops;

/// Errors from schedule segmentation.
#[derive(Debug)]
pub enum SegmentError {
    /// The cut list is not strictly increasing inside `(0, num_ops)`.
    InvalidCuts(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::InvalidCuts(s) => write!(f, "invalid segment cuts: {s}"),
        }
    }
}
impl std::error::Error for SegmentError {}

/// Where to cut a schedule: `cuts[i]` is the op index starting segment
/// `i + 1`. An empty cut list means one (monolithic) segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Strictly increasing op indices in `(0, num_ops)`.
    pub cuts: Vec<usize>,
}

impl SegmentPlan {
    /// Number of segments the plan produces.
    pub fn num_segments(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Picks cut points that balance the estimated proving work across
    /// `segments` segments.
    ///
    /// Per-op work is proxied by the row count the op occupies (loads by
    /// element count, packed gadgets by pack count, matmul by its
    /// dot-product volume); cuts land where the weight prefix sum crosses
    /// each `total * s / segments` threshold. When the schedule has fewer
    /// ops than requested segments (or one op dominates), fewer cuts come
    /// back — the plan never produces empty segments.
    pub fn balanced(sched: &OpSchedule, segments: usize) -> SegmentPlan {
        let n_ops = sched.ops.len();
        if segments <= 1 || n_ops < 2 {
            return SegmentPlan { cuts: Vec::new() };
        }
        let weights: Vec<u128> = sched.ops.iter().map(op_weight).collect();
        let total: u128 = weights.iter().sum();
        if total == 0 {
            return SegmentPlan { cuts: Vec::new() };
        }
        let mut cuts = Vec::new();
        let mut acc = 0u128;
        let mut next = 1usize;
        for (i, w) in weights.iter().enumerate() {
            acc += w;
            if next < segments
                && i + 1 < n_ops
                && acc * (segments as u128) >= total * (next as u128)
            {
                cuts.push(i + 1);
                next += 1;
            }
        }
        SegmentPlan { cuts }
    }
}

/// Row-count proxy for one op (the placement cost drivers, not exact rows).
fn op_weight(op: &SchedOp) -> u128 {
    let w = match op {
        SchedOp::Load { values } | SchedOp::LoadWeights { values } => values.len(),
        SchedOp::Const { .. } => 1,
        SchedOp::Dot { xs, .. } | SchedOp::Sum { xs } => xs.len(),
        SchedOp::Arith { pairs, .. } | SchedOp::MaxPairs { pairs } => pairs.len(),
        SchedOp::Square { xs }
        | SchedOp::Rescale { xs }
        | SchedOp::Nonlin { xs, .. }
        | SchedOp::Relu { xs } => xs.len(),
        SchedOp::VarDiv { nums, .. } => nums.len(),
        // Dominated by the rows * t dot products of length k.
        SchedOp::MatMul { dims, .. } => dims.0 * dims.2 * (1 + dims.1),
    };
    w as u128
}

/// One segment of a cut schedule, ready for the standard
/// `place()`/`synthesize()` pipeline.
///
/// The segment's instance column is `[boundary-in ++ tail]` where the tail
/// is the boundary-out values (intermediate segments) or the model's
/// original outputs (last segment). The `*_ids` fields are the *global*
/// value ids of the parent schedule, so callers can assert that segment
/// `i`'s `boundary_out_ids` equal segment `i + 1`'s `boundary_in_ids`.
#[derive(Clone, Debug)]
pub struct SegmentSchedule {
    /// The self-contained sub-schedule (local value-id space).
    pub schedule: OpSchedule,
    /// Global ids of the values entering this segment (empty for the first).
    pub boundary_in_ids: Vec<u32>,
    /// Global ids of the values leaving this segment (empty for the last).
    pub boundary_out_ids: Vec<u32>,
}

impl SegmentSchedule {
    /// Number of boundary values entering the segment — the length of the
    /// instance-column prefix.
    pub fn boundary_in_len(&self) -> usize {
        self.boundary_in_ids.len()
    }

    /// Number of public values after the boundary-in prefix: boundary-out
    /// values for intermediate segments, the flattened model outputs for
    /// the last.
    pub fn public_tail_len(&self) -> usize {
        self.schedule
            .outputs
            .iter()
            .skip(1)
            .map(|(_, ids)| ids.len())
            .sum()
    }
}

/// Evaluates every value of a schedule with the same integer semantics the
/// gadget builders use (overflow panics, like the builders' checked math).
///
/// This is how the cutter learns the concrete boundary values each segment
/// must load: segmentation happens before any circuit exists, so the
/// schedule is executed once here instead of through a builder replay.
pub fn eval_schedule(sched: &OpSchedule) -> Vec<i64> {
    let sf = sched.numeric.scale();
    let mut vals: Vec<i64> = Vec::with_capacity(sched.num_vals);
    for op in &sched.ops {
        match op {
            SchedOp::Load { values } | SchedOp::LoadWeights { values } => {
                vals.extend_from_slice(values)
            }
            SchedOp::Const { v } => vals.push(*v),
            SchedOp::Dot { xs, ys, init } => {
                let mut z = init.map(|i| vals[i as usize]).unwrap_or(0);
                for (x, y) in xs.iter().zip(ys) {
                    z += vals[*x as usize]
                        .checked_mul(vals[*y as usize])
                        .expect("dot overflow");
                }
                vals.push(z);
            }
            SchedOp::Sum { xs } => {
                vals.push(xs.iter().map(|x| vals[*x as usize]).sum());
            }
            SchedOp::Arith { kind, pairs } => {
                use crate::builder::Gadget;
                for (a, b) in pairs {
                    let (a, b) = (vals[*a as usize], vals[*b as usize]);
                    let c = match kind {
                        Gadget::AddPack => a + b,
                        Gadget::SubPack => a - b,
                        Gadget::MulPack => a.checked_mul(b).expect("mul overflow"),
                        Gadget::SqDiffPack => (a - b).checked_mul(a - b).expect("sqdiff overflow"),
                        other => unreachable!("non-arith gadget {other:?} in Arith op"),
                    };
                    vals.push(c);
                }
            }
            SchedOp::Square { xs } => {
                for x in xs {
                    let x = vals[*x as usize];
                    vals.push(x.checked_mul(x).expect("square overflow"));
                }
            }
            SchedOp::Rescale { xs } => {
                for x in xs {
                    vals.push(qops::div_round(vals[*x as usize], sf));
                }
            }
            SchedOp::Nonlin { f, xs } => {
                for x in xs {
                    vals.push(table_eval(*f, vals[*x as usize], sf));
                }
            }
            SchedOp::Relu { xs } => {
                for x in xs {
                    vals.push(vals[*x as usize].max(0));
                }
            }
            SchedOp::MaxPairs { pairs } => {
                for (a, b) in pairs {
                    vals.push(vals[*a as usize].max(vals[*b as usize]));
                }
            }
            SchedOp::VarDiv {
                nums,
                den,
                den_bound: _,
            } => {
                let d = vals[*den as usize];
                for n in nums {
                    vals.push(qops::var_div_scaled(vals[*n as usize], d, sf));
                }
            }
            SchedOp::MatMul { x, w, dims, bias2 } => {
                let (rows, kk, t) = *dims;
                for r in 0..rows {
                    for j in 0..t {
                        let mut z = bias2.as_ref().map(|b| vals[b[j % t] as usize]).unwrap_or(0);
                        for i in 0..kk {
                            z += vals[x[r * kk + i] as usize]
                                .checked_mul(vals[w[i * t + j] as usize])
                                .expect("matmul overflow");
                        }
                        vals.push(z);
                    }
                }
            }
        }
    }
    debug_assert_eq!(vals.len(), sched.num_vals, "eval value count drift");
    vals
}

/// Cuts a schedule into chained segments at the plan's op boundaries.
///
/// Each returned segment is a complete, independently compilable
/// [`OpSchedule`] that loads its boundary-in values first and exposes
/// `[boundary-in ++ boundary-out / model outputs]` as its instance column.
/// Segment `i`'s `boundary_out_ids` always equal segment `i + 1`'s
/// `boundary_in_ids`, and re-running the segments in order reproduces the
/// monolithic schedule's outputs exactly.
pub fn cut_schedule(
    sched: &OpSchedule,
    plan: &SegmentPlan,
) -> Result<Vec<SegmentSchedule>, SegmentError> {
    let n_ops = sched.ops.len();
    let mut prev = 0usize;
    for &c in &plan.cuts {
        if c <= prev || c >= n_ops {
            return Err(SegmentError::InvalidCuts(format!(
                "cut {c} out of range (must be strictly increasing inside 1..{n_ops})"
            )));
        }
        prev = c;
    }
    let nsegs = plan.num_segments();

    // Natural (index-range) segment of each op.
    let mut natural = vec![0usize; n_ops];
    {
        let mut seg = 0usize;
        for (i, nat) in natural.iter_mut().enumerate() {
            while seg < plan.cuts.len() && i >= plan.cuts[seg] {
                seg += 1;
            }
            *nat = seg;
        }
    }

    // Value id -> producing op (ids are allocated densely in op order).
    let mut producer = vec![0usize; sched.num_vals];
    {
        let mut next = 0usize;
        for (i, op) in sched.ops.iter().enumerate() {
            for _ in 0..op_arity_out(op) {
                producer[next] = i;
                next += 1;
            }
        }
        debug_assert_eq!(next, sched.num_vals);
    }

    // Consumer segments per value (compute ops only; Load/Const read
    // nothing), plus a virtual consumer in the last segment for every
    // model output so outputs flow through to the final instance column.
    let mut last_consumer: Vec<Option<usize>> = vec![None; sched.num_vals];
    for (i, op) in sched.ops.iter().enumerate() {
        let seg = natural[i];
        for v in op_operands(op) {
            let slot = &mut last_consumer[v as usize];
            *slot = Some(slot.map_or(seg, |s| s.max(seg)));
        }
    }
    for (_, ids) in &sched.outputs {
        for v in ids {
            let slot = &mut last_consumer[*v as usize];
            *slot = Some(slot.map_or(nsegs - 1, |s| s.max(nsegs - 1)));
        }
    }

    // Rematerialization targets: Load/Const ops are copied into every
    // segment consuming (or outputting) one of their values; an op nobody
    // reads stays in its natural segment. Compute ops keep their natural
    // segment, so producers always precede consumers.
    let mut consumed_in: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n_ops];
    for (i, op) in sched.ops.iter().enumerate() {
        let seg = natural[i];
        for v in op_operands(op) {
            consumed_in[producer[v as usize]].insert(seg);
        }
    }
    for (_, ids) in &sched.outputs {
        for v in ids {
            consumed_in[producer[*v as usize]].insert(nsegs - 1);
        }
    }
    let op_segments: Vec<Vec<usize>> = sched
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            if matches!(
                op,
                SchedOp::Load { .. } | SchedOp::LoadWeights { .. } | SchedOp::Const { .. }
            ) {
                if consumed_in[i].is_empty() {
                    vec![natural[i]]
                } else {
                    consumed_in[i].iter().copied().collect()
                }
            } else {
                vec![natural[i]]
            }
        })
        .collect();

    // Boundary sets: a computed value is live at boundary `b` when its
    // producer sits before the cut and some consumer (or the model output)
    // sits at or after it. Rematerialized Load/Const values never cross.
    let vals = eval_schedule(sched);
    let mut live: Vec<Vec<u32>> = vec![Vec::new(); nsegs + 1];
    for v in 0..sched.num_vals {
        let op = producer[v];
        if matches!(
            sched.ops[op],
            SchedOp::Load { .. } | SchedOp::LoadWeights { .. } | SchedOp::Const { .. }
        ) {
            continue;
        }
        let Some(last) = last_consumer[v] else {
            continue;
        };
        let born = natural[op];
        for bucket in live.iter_mut().take(last.min(nsegs - 1) + 1).skip(born + 1) {
            bucket.push(v as u32);
        }
    }

    let mut segments = Vec::with_capacity(nsegs);
    for s in 0..nsegs {
        let in_ids: Vec<u32> = live[s].clone();
        let out_ids: Vec<u32> = if s + 1 < nsegs {
            live[s + 1].clone()
        } else {
            Vec::new()
        };

        let mut local: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut next_local = 0u32;
        let mut ops: Vec<SchedOp> = Vec::new();

        if !in_ids.is_empty() {
            let values: Vec<i64> = in_ids.iter().map(|v| vals[*v as usize]).collect();
            ops.push(SchedOp::Load { values });
            for v in &in_ids {
                local.insert(*v, next_local);
                next_local += 1;
            }
        }

        let mut next_val = 0u32;
        for (i, op) in sched.ops.iter().enumerate() {
            let arity = op_arity_out(op) as u32;
            if op_segments[i].contains(&s) {
                ops.push(remap_op(op, &local));
                for v in next_val..next_val + arity {
                    local.insert(v, next_local);
                    next_local += 1;
                }
            }
            next_val += arity;
        }

        let lookup = |v: &u32| -> u32 {
            *local
                .get(v)
                .unwrap_or_else(|| panic!("segment {s}: value {v} not available"))
        };
        let mut outputs: Vec<(Vec<usize>, Vec<u32>)> = Vec::new();
        outputs.push((vec![in_ids.len()], in_ids.iter().map(lookup).collect()));
        if s + 1 < nsegs {
            outputs.push((vec![out_ids.len()], out_ids.iter().map(lookup).collect()));
        } else {
            for (shape, ids) in &sched.outputs {
                outputs.push((shape.clone(), ids.iter().map(lookup).collect()));
            }
        }

        segments.push(SegmentSchedule {
            schedule: OpSchedule {
                numeric: sched.numeric,
                ops,
                num_vals: next_local as usize,
                outputs,
            },
            boundary_in_ids: in_ids,
            boundary_out_ids: out_ids,
        });
    }
    Ok(segments)
}

/// Output arity of an op (mirrors `SchedOp::arity_out`, which is private
/// to the schedule module's builder path).
fn op_arity_out(op: &SchedOp) -> usize {
    match op {
        SchedOp::Load { values } | SchedOp::LoadWeights { values } => values.len(),
        SchedOp::Const { .. } | SchedOp::Dot { .. } | SchedOp::Sum { .. } => 1,
        SchedOp::Arith { pairs, .. } | SchedOp::MaxPairs { pairs } => pairs.len(),
        SchedOp::Square { xs }
        | SchedOp::Rescale { xs }
        | SchedOp::Nonlin { xs, .. }
        | SchedOp::Relu { xs } => xs.len(),
        SchedOp::VarDiv { nums, .. } => nums.len(),
        SchedOp::MatMul { dims, .. } => dims.0 * dims.2,
    }
}

/// Every value id an op reads.
fn op_operands(op: &SchedOp) -> Vec<u32> {
    match op {
        SchedOp::Load { .. } | SchedOp::LoadWeights { .. } | SchedOp::Const { .. } => Vec::new(),
        SchedOp::Dot { xs, ys, init } => {
            let mut v: Vec<u32> = xs.iter().chain(ys).copied().collect();
            v.extend(init.iter());
            v
        }
        SchedOp::Sum { xs }
        | SchedOp::Square { xs }
        | SchedOp::Rescale { xs }
        | SchedOp::Nonlin { xs, .. }
        | SchedOp::Relu { xs } => xs.clone(),
        SchedOp::Arith { pairs, .. } | SchedOp::MaxPairs { pairs } => {
            pairs.iter().flat_map(|(a, b)| [*a, *b]).collect()
        }
        SchedOp::VarDiv { nums, den, .. } => {
            let mut v = nums.clone();
            v.push(*den);
            v
        }
        SchedOp::MatMul { x, w, bias2, .. } => {
            let mut v: Vec<u32> = x.iter().chain(w).copied().collect();
            if let Some(b) = bias2 {
                v.extend(b);
            }
            v
        }
    }
}

/// Clones an op with operand ids translated through `local`.
fn remap_op(op: &SchedOp, local: &std::collections::HashMap<u32, u32>) -> SchedOp {
    let m = |v: &u32| -> u32 {
        *local
            .get(v)
            .unwrap_or_else(|| panic!("operand {v} not available in segment"))
    };
    match op {
        SchedOp::Load { values } => SchedOp::Load {
            values: values.clone(),
        },
        SchedOp::LoadWeights { values } => SchedOp::LoadWeights {
            values: values.clone(),
        },
        SchedOp::Const { v } => SchedOp::Const { v: *v },
        SchedOp::Dot { xs, ys, init } => SchedOp::Dot {
            xs: xs.iter().map(m).collect(),
            ys: ys.iter().map(m).collect(),
            init: init.as_ref().map(m),
        },
        SchedOp::Sum { xs } => SchedOp::Sum {
            xs: xs.iter().map(m).collect(),
        },
        SchedOp::Arith { kind, pairs } => SchedOp::Arith {
            kind: *kind,
            pairs: pairs.iter().map(|(a, b)| (m(a), m(b))).collect(),
        },
        SchedOp::Square { xs } => SchedOp::Square {
            xs: xs.iter().map(m).collect(),
        },
        SchedOp::Rescale { xs } => SchedOp::Rescale {
            xs: xs.iter().map(m).collect(),
        },
        SchedOp::Nonlin { f, xs } => SchedOp::Nonlin {
            f: *f,
            xs: xs.iter().map(m).collect(),
        },
        SchedOp::Relu { xs } => SchedOp::Relu {
            xs: xs.iter().map(m).collect(),
        },
        SchedOp::MaxPairs { pairs } => SchedOp::MaxPairs {
            pairs: pairs.iter().map(|(a, b)| (m(a), m(b))).collect(),
        },
        SchedOp::VarDiv {
            nums,
            den,
            den_bound,
        } => SchedOp::VarDiv {
            nums: nums.iter().map(m).collect(),
            den: m(den),
            den_bound: *den_bound,
        },
        SchedOp::MatMul { x, w, dims, bias2 } => SchedOp::MatMul {
            x: x.iter().map(m).collect(),
            w: w.iter().map(m).collect(),
            dims: *dims,
            bias2: bias2.as_ref().map(|b| b.iter().map(m).collect()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NumericConfig;
    use crate::schedule::ScheduleBuilder;
    use crate::Gadget;

    /// x -> relu -> dot with weights -> rescale, three clear stages.
    fn toy_schedule() -> OpSchedule {
        let mut sb = ScheduleBuilder::new(NumericConfig::default_nano());
        let xs = sb.load_values(&[3, -2, 5, 1]);
        let ws = sb.load_values(&[2, 2, 2, 2]);
        let r = sb.relu(&xs);
        let d = sb.dot(&r, &ws, None);
        let s = sb.arith_pack(Gadget::AddPack, &[(d, d)]);
        sb.finish(vec![(vec![1], vec![s[0]])])
    }

    #[test]
    fn eval_matches_gadget_semantics() {
        let sched = toy_schedule();
        let vals = eval_schedule(&sched);
        // relu: [3, 0, 5, 1]; dot with all-2 weights: 18; add: 36.
        assert_eq!(vals[vals.len() - 1], 36);
    }

    #[test]
    fn cut_segments_chain_and_reproduce_outputs() {
        let sched = toy_schedule();
        let vals = eval_schedule(&sched);
        let flat_out: Vec<i64> = sched
            .outputs
            .iter()
            .flat_map(|(_, ids)| ids.iter().map(|i| vals[*i as usize]))
            .collect();

        let plan = SegmentPlan { cuts: vec![3] };
        let segs = cut_schedule(&sched, &plan).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].boundary_in_ids.len(), 0);
        assert_eq!(segs[0].boundary_out_ids, segs[1].boundary_in_ids);
        assert!(!segs[1].boundary_in_ids.is_empty());

        // Each segment evaluates independently; the chained public values
        // line up and the final tail equals the monolithic outputs.
        let v0 = eval_schedule(&segs[0].schedule);
        let v1 = eval_schedule(&segs[1].schedule);
        let tail0: Vec<i64> = segs[0].schedule.outputs[1]
            .1
            .iter()
            .map(|i| v0[*i as usize])
            .collect();
        let head1: Vec<i64> = segs[1].schedule.outputs[0]
            .1
            .iter()
            .map(|i| v1[*i as usize])
            .collect();
        assert_eq!(tail0, head1, "boundary values must chain");
        let final_tail: Vec<i64> = segs[1]
            .schedule
            .outputs
            .iter()
            .skip(1)
            .flat_map(|(_, ids)| ids.iter().map(|i| v1[*i as usize]))
            .collect();
        assert_eq!(final_tail, flat_out);
    }

    #[test]
    fn loads_rematerialize_into_consuming_segment() {
        let sched = toy_schedule();
        let plan = SegmentPlan { cuts: vec![3] };
        let segs = cut_schedule(&sched, &plan).unwrap();
        // The weight load (op 1) is consumed only by the dot in segment 1,
        // so it must not inflate segment 0 or the boundary.
        let weight_like = |s: &SegmentSchedule| {
            s.schedule
                .ops
                .iter()
                .filter(|o| matches!(o, SchedOp::Load { values } if values == &vec![2, 2, 2, 2]))
                .count()
        };
        assert_eq!(weight_like(&segs[0]), 0);
        assert_eq!(weight_like(&segs[1]), 1);
        // Only the 4 relu outputs cross the boundary.
        assert_eq!(segs[0].boundary_out_ids.len(), 4);
    }

    #[test]
    fn balanced_plan_is_valid_and_respects_bounds() {
        let sched = toy_schedule();
        for n in 1..=4 {
            let plan = SegmentPlan::balanced(&sched, n);
            assert!(plan.num_segments() <= n.max(1));
            assert!(cut_schedule(&sched, &plan).is_ok());
        }
        assert_eq!(SegmentPlan::balanced(&sched, 1).cuts.len(), 0);
    }

    #[test]
    fn invalid_cuts_rejected() {
        let sched = toy_schedule();
        for cuts in [vec![0], vec![99], vec![2, 2], vec![3, 1]] {
            assert!(cut_schedule(&sched, &SegmentPlan { cuts }).is_err());
        }
    }
}
