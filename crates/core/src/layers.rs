//! Lowering of graph operators onto gadget compositions (§6) — stage 1 of
//! the compile pipeline.
//!
//! [`lower_graph`] walks the model **once** and records every gadget
//! invocation into an [`OpSchedule`]; it never touches a circuit builder.
//! Shape operators never reach the schedule at all: they rearrange value
//! ids, which is the paper's "free" shape-op property. Every arithmetic
//! output value is later produced by the gadgets themselves (during
//! schedule replay) with the same quantized semantics as
//! `zkml_model::exec::execute_fixed`, so the circuit witness and the
//! reference executor agree bit-for-bit (cross-checked in tests).
//!
//! The replay half — resolving implementation choices like Freivalds vs.
//! direct matmul against a concrete [`CircuitBuilder`] — lives in
//! `matmul_raw_entry` and `crate::schedule::run_schedule` (crate-private).

use crate::builder::{AValue, BuildError, CircuitBuilder, Gadget};
use crate::config::{MatmulImpl, NumericConfig};
use crate::freivalds::freivalds_matmul;
use crate::schedule::{OpSchedule, SVal, ScheduleBuilder};
use crate::tables::{ActKey, TableFn};
use zkml_model::{qops, Activation, Graph, Node, Op, Padding, TensorKind};
use zkml_tensor::{FixedPoint, Tensor};

/// Lowers an entire graph into an [`OpSchedule`] — run **once per model**
/// per numeric configuration; the schedule is then replayed per candidate
/// layout by the placer and once more by synthesis.
pub fn lower_graph(g: &Graph, inputs: &[Tensor<i64>], numeric: NumericConfig) -> OpSchedule {
    let fp = FixedPoint::new(numeric.scale_bits);
    let mut sb = ScheduleBuilder::new(numeric);
    let mut tensors: Vec<Option<Tensor<SVal>>> = vec![None; g.tensors.len()];

    // Load inputs.
    assert_eq!(inputs.len(), g.inputs.len(), "input count mismatch");
    for (id, t) in g.inputs.iter().zip(inputs) {
        assert_eq!(g.shape(*id), t.shape(), "input shape mismatch");
        let cells = sb.load_values(t.data());
        tensors[*id] = Some(Tensor::new(t.shape().to_vec(), cells));
    }
    // Load weights (single-scale). Biases are re-quantized at double scale
    // per use site by `load_bias2`, so a weight consumed *only* as the bias
    // input of a linear layer must not be loaded here: the single-scale
    // copy would have no consumer, leaving dead unconstrained cells that
    // the static analyzer rightly flags as underconstrained.
    let mut non_bias_use = vec![false; g.tensors.len()];
    for id in &g.outputs {
        non_bias_use[*id] = true;
    }
    for node in &g.nodes {
        for (i, id) in node.inputs.iter().enumerate() {
            let bias_slot = i == 2
                && matches!(
                    node.op,
                    Op::FullyConnected { .. } | Op::Conv2D { .. } | Op::DepthwiseConv2D { .. }
                );
            if !bias_slot {
                non_bias_use[*id] = true;
            }
        }
    }
    for (id, meta) in g.tensors.iter().enumerate() {
        if meta.kind == TensorKind::Weight && non_bias_use[id] {
            let w = g.weights[id].as_ref().expect("weight values");
            let q = fp.quantize_tensor(w);
            let cells = sb.load_weights(q.data());
            tensors[id] = Some(Tensor::new(q.shape().to_vec(), cells));
        }
    }

    for node in &g.nodes {
        let out = lower_node(&mut sb, g, node, &tensors);
        tensors[node.output] = Some(out);
    }

    let outputs = g
        .outputs
        .iter()
        .map(|id| {
            let t = tensors[*id].clone().expect("output computed");
            (t.shape().to_vec(), t.data().to_vec())
        })
        .collect();
    sb.finish(outputs)
}

/// Loads a bias weight at double scale (`round(b * SF^2)`), for addition to
/// unrescaled accumulators.
fn load_bias2(sb: &mut ScheduleBuilder, g: &Graph, id: zkml_model::TensorId) -> Vec<SVal> {
    let sf = sb.scale() as f64;
    let w = g.weights[id].as_ref().expect("bias weight");
    let vals: Vec<i64> = w
        .data()
        .iter()
        .map(|x| ((*x as f64) * sf * sf).round() as i64)
        .collect();
    sb.load_weights(&vals)
}

fn apply_act(sb: &mut ScheduleBuilder, act: Option<Activation>, xs: &[SVal]) -> Vec<SVal> {
    match act {
        None => xs.to_vec(),
        Some(Activation::Relu) => sb.relu(xs),
        Some(a) => sb.nonlin(TableFn::Act(ActKey::of(a)), xs),
    }
}

/// Mean by rounded division: `round(sum / count)` via the variable-division
/// gadget with constant denominator `count * SF`.
fn mean_of(sb: &mut ScheduleBuilder, xs: &[SVal], count: i64) -> SVal {
    let s = sb.sum(xs);
    let den_v = count * sb.scale();
    let den = sb.constant(den_v);
    sb.var_div(&[s], den, den_v)[0]
}

/// Lowers one node into schedule ops.
pub fn lower_node(
    sb: &mut ScheduleBuilder,
    g: &Graph,
    node: &Node,
    tensors: &[Option<Tensor<SVal>>],
) -> Tensor<SVal> {
    let input =
        |i: usize| -> &Tensor<SVal> { tensors[node.inputs[i]].as_ref().expect("input lowered") };
    let sf = sb.scale();
    let out_shape = g.shape(node.output).to_vec();

    let result: Tensor<SVal> = match &node.op {
        // ---- free shape ops -------------------------------------------
        Op::Reshape { shape } => input(0).reshape(shape.clone()),
        Op::Transpose { perm } => input(0).transpose(perm),
        Op::Slice { starts, ends } => input(0).slice(starts, ends),
        Op::Concat { axis } => {
            let parts: Vec<&Tensor<SVal>> = node
                .inputs
                .iter()
                .map(|i| tensors[*i].as_ref().expect("lowered"))
                .collect();
            Tensor::concat(&parts, *axis)
        }
        Op::Pad { pads } => {
            let zero = sb.constant(0);
            input(0).pad(pads, zero)
        }
        Op::Squeeze { axis } => input(0).squeeze(*axis),
        Op::ExpandDims { axis } => input(0).expand_dims(*axis),
        Op::Flatten => {
            let t = input(0);
            let n: usize = t.shape()[1..].iter().product();
            t.reshape(vec![t.shape()[0], n])
        }
        Op::BroadcastTo { shape } => input(0).broadcast_to(shape),
        Op::Upsample2x => {
            let x = input(0);
            let (n, h, w, c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
            let mut out = Vec::with_capacity(n * 4 * h * w * c);
            for b in 0..n {
                for i in 0..2 * h {
                    for j in 0..2 * w {
                        for ch in 0..c {
                            out.push(*x.get(&[b, i / 2, j / 2, ch]));
                        }
                    }
                }
            }
            Tensor::new(vec![n, 2 * h, 2 * w, c], out)
        }

        // ---- arithmetic -------------------------------------------------
        Op::Add | Op::Sub => {
            let pairs = input(0).zip(input(1), |a, b| (*a, *b));
            let kind = if matches!(node.op, Op::Add) {
                Gadget::AddPack
            } else {
                Gadget::SubPack
            };
            let out = sb.arith_pack(kind, pairs.data());
            Tensor::new(pairs.shape().to_vec(), out)
        }
        Op::Mul => {
            let pairs = input(0).zip(input(1), |a, b| (*a, *b));
            let raw = sb.arith_pack(Gadget::MulPack, pairs.data());
            let out = sb.rescale(&raw);
            Tensor::new(pairs.shape().to_vec(), out)
        }
        Op::SquaredDifference => {
            let pairs = input(0).zip(input(1), |a, b| (*a, *b));
            let raw = sb.arith_pack(Gadget::SqDiffPack, pairs.data());
            let out = sb.rescale(&raw);
            Tensor::new(pairs.shape().to_vec(), out)
        }
        Op::Square => {
            let raw = sb.square_pack(input(0).data());
            let out = sb.rescale(&raw);
            Tensor::new(input(0).shape().to_vec(), out)
        }
        Op::DivConst { divisor } => {
            let c_q = ((*divisor as f64) * sf as f64).round() as i64;
            let den = sb.constant(c_q);
            let out = sb.var_div(input(0).data(), den, c_q);
            Tensor::new(input(0).shape().to_vec(), out)
        }
        Op::Sum { axis, keep_dims } | Op::Mean { axis, keep_dims } => {
            let x = input(0);
            let shape = x.shape().to_vec();
            let mut red_shape = shape.clone();
            red_shape[*axis] = 1;
            let n_out: usize = red_shape.iter().product();
            let mut groups: Vec<Vec<SVal>> = vec![Vec::new(); n_out];
            for off in 0..x.len() {
                let mut idx = zkml_tensor::shape::unflatten_index(&shape, off);
                idx[*axis] = 0;
                groups[zkml_tensor::shape::flatten_index(&red_shape, &idx)].push(x.data()[off]);
            }
            let mean = matches!(node.op, Op::Mean { .. });
            let mut out = Vec::with_capacity(n_out);
            for gvals in &groups {
                let v = if mean {
                    mean_of(sb, gvals, shape[*axis] as i64)
                } else {
                    sb.sum(gvals)
                };
                out.push(v);
            }
            let t = Tensor::new(red_shape, out);
            if *keep_dims {
                t
            } else {
                t.squeeze(*axis)
            }
        }

        // ---- linear layers ---------------------------------------------
        Op::FullyConnected { activation } => {
            let x = input(0);
            let w = input(1);
            let k = w.shape()[0];
            let t = w.shape()[1];
            let rows = x.len() / k;
            let bias2 = node.inputs.get(2).map(|id| load_bias2(sb, g, *id));
            let raw = sb.matmul_raw(x.data(), w.data(), rows, k, t, bias2.as_deref());
            let scaled = sb.rescale(&raw);
            let out = apply_act(sb, *activation, &scaled);
            Tensor::new(out_shape, out)
        }
        Op::Conv2D {
            stride,
            padding,
            activation,
        } => conv2d(sb, g, node, tensors, *stride, *padding, *activation, false),
        Op::DepthwiseConv2D {
            stride,
            padding,
            activation,
        } => conv2d(sb, g, node, tensors, *stride, *padding, *activation, true),
        Op::BatchMatMul => {
            let a = input(0);
            let b = input(1);
            let ar = a.shape().len();
            let (m, k) = (a.shape()[ar - 2], a.shape()[ar - 1]);
            let t = b.shape()[b.shape().len() - 1];
            let batch: usize = a.shape()[..ar - 2].iter().product();
            let mut out = Vec::with_capacity(batch * m * t);
            for bt in 0..batch {
                let ax = a.data()[bt * m * k..(bt + 1) * m * k].to_vec();
                let bx = b.data()[bt * k * t..(bt + 1) * k * t].to_vec();
                let raw = sb.matmul_raw(&ax, &bx, m, k, t, None);
                out.extend(sb.rescale(&raw));
            }
            Tensor::new(out_shape, out)
        }
        Op::AvgPool2D { ksize, stride } | Op::MaxPool2D { ksize, stride } => {
            let x = input(0);
            let (n, h, w, c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
            let oh = (h - ksize.0) / stride.0 + 1;
            let ow = (w - ksize.1) / stride.1 + 1;
            let avg = matches!(node.op, Op::AvgPool2D { .. });
            let mut out = Vec::with_capacity(n * oh * ow * c);
            for b in 0..n {
                for oi in 0..oh {
                    for oj in 0..ow {
                        for ch in 0..c {
                            let window: Vec<SVal> = (0..ksize.0)
                                .flat_map(|ki| (0..ksize.1).map(move |kj| (ki, kj)))
                                .map(|(ki, kj)| {
                                    *x.get(&[b, oi * stride.0 + ki, oj * stride.1 + kj, ch])
                                })
                                .collect();
                            let v = if avg {
                                mean_of(sb, &window, (ksize.0 * ksize.1) as i64)
                            } else {
                                sb.max_tree(&window)
                            };
                            out.push(v);
                        }
                    }
                }
            }
            Tensor::new(vec![n, oh, ow, c], out)
        }
        Op::GlobalAvgPool => {
            let x = input(0);
            let (n, h, w, c) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
            let mut out = Vec::with_capacity(n * c);
            for b in 0..n {
                for ch in 0..c {
                    let vals: Vec<SVal> = (0..h)
                        .flat_map(|i| (0..w).map(move |j| (i, j)))
                        .map(|(i, j)| *x.get(&[b, i, j, ch]))
                        .collect();
                    out.push(mean_of(sb, &vals, (h * w) as i64));
                }
            }
            Tensor::new(vec![n, c], out)
        }

        // ---- softmax / normalization -------------------------------------
        Op::Softmax => {
            let x = input(0);
            let d = *x.shape().last().unwrap();
            let mut out = Vec::with_capacity(x.len());
            for row in x.data().chunks(d) {
                let m = sb.max_tree(row);
                let pairs: Vec<(SVal, SVal)> = row.iter().map(|v| (*v, m)).collect();
                let shifted = sb.arith_pack(Gadget::SubPack, &pairs);
                let exps = sb.nonlin(TableFn::Exp, &shifted);
                let total = sb.sum(&exps);
                // Each scaled exp is at most SF (inputs are max-shifted).
                out.extend(sb.var_div(&exps, total, d as i64 * sf));
            }
            Tensor::new(x.shape().to_vec(), out)
        }
        Op::LayerNorm { .. } => {
            let x = input(0);
            let gamma = input(1);
            let beta = input(2);
            let d = *x.shape().last().unwrap();
            let mut out = Vec::with_capacity(x.len());
            for row in x.data().chunks(d) {
                let mean = mean_of(sb, row, d as i64);
                let pairs: Vec<(SVal, SVal)> = row.iter().map(|v| (*v, mean)).collect();
                let sq_raw = sb.arith_pack(Gadget::SqDiffPack, &pairs);
                let sq = sb.rescale(&sq_raw);
                let var = mean_of(sb, &sq, d as i64);
                let r = sb.nonlin(TableFn::Rsqrt, &[var])[0];
                let d_vals = sb.arith_pack(Gadget::SubPack, &pairs);
                let norm_raw: Vec<(SVal, SVal)> = d_vals.iter().map(|v| (*v, r)).collect();
                let norm_raw = sb.arith_pack(Gadget::MulPack, &norm_raw);
                let norm = sb.rescale(&norm_raw);
                let g_pairs: Vec<(SVal, SVal)> = norm
                    .iter()
                    .zip(gamma.data())
                    .map(|(a, b)| (*a, *b))
                    .collect();
                let scaled_raw = sb.arith_pack(Gadget::MulPack, &g_pairs);
                let scaled = sb.rescale(&scaled_raw);
                let b_pairs: Vec<(SVal, SVal)> = scaled
                    .iter()
                    .zip(beta.data())
                    .map(|(a, b)| (*a, *b))
                    .collect();
                out.extend(sb.arith_pack(Gadget::AddPack, &b_pairs));
            }
            Tensor::new(x.shape().to_vec(), out)
        }
        Op::BatchNorm => {
            let x = input(0);
            let scale = input(1);
            let offset = input(2);
            let c = *x.shape().last().unwrap();
            let pairs: Vec<(SVal, SVal)> = x
                .data()
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, scale.data()[i % c]))
                .collect();
            let raw = sb.arith_pack(Gadget::MulPack, &pairs);
            let scaled = sb.rescale(&raw);
            let o_pairs: Vec<(SVal, SVal)> = scaled
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, offset.data()[i % c]))
                .collect();
            let out = sb.arith_pack(Gadget::AddPack, &o_pairs);
            Tensor::new(x.shape().to_vec(), out)
        }

        // ---- pointwise ----------------------------------------------------
        Op::Act(a) => {
            let out = apply_act(sb, Some(*a), input(0).data());
            Tensor::new(input(0).shape().to_vec(), out)
        }
        Op::Rsqrt => {
            let out = sb.nonlin(TableFn::Rsqrt, input(0).data());
            Tensor::new(input(0).shape().to_vec(), out)
        }
        Op::Sqrt => {
            let out = sb.nonlin(TableFn::Sqrt, input(0).data());
            Tensor::new(input(0).shape().to_vec(), out)
        }
        Op::Exp => {
            let out = sb.nonlin(TableFn::Exp, input(0).data());
            Tensor::new(input(0).shape().to_vec(), out)
        }
    };
    debug_assert_eq!(result.shape(), g.shape(node.output), "{}", node.op.name());
    result
}

/// Convolution via im2col + the configured matmul implementation.
#[allow(clippy::too_many_arguments)]
fn conv2d(
    sb: &mut ScheduleBuilder,
    g: &Graph,
    node: &Node,
    tensors: &[Option<Tensor<SVal>>],
    stride: (usize, usize),
    padding: Padding,
    activation: Option<Activation>,
    depthwise: bool,
) -> Tensor<SVal> {
    let x = tensors[node.inputs[0]].as_ref().expect("input lowered");
    let w = tensors[node.inputs[1]].as_ref().expect("weights lowered");
    let (n, h, wid, cin) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (kh, kw) = (w.shape()[0], w.shape()[1]);
    let cout = if depthwise { cin } else { w.shape()[3] };
    let (oh, ph, _) = zkml_model::op::conv_output_dim(h, kh, stride.0, padding);
    let (ow, pw, _) = zkml_model::op::conv_output_dim(wid, kw, stride.1, padding);
    let bias2 = node.inputs.get(2).map(|id| load_bias2(sb, g, *id));
    let zero = sb.constant(0);

    if depthwise {
        // Small per-channel dots; always direct.
        let mut out = Vec::with_capacity(n * oh * ow * cout);
        for b in 0..n {
            for oi in 0..oh {
                for oj in 0..ow {
                    for ch in 0..cout {
                        let mut xs = Vec::with_capacity(kh * kw);
                        let mut ws = Vec::with_capacity(kh * kw);
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let ii = (oi * stride.0 + ki) as isize - ph as isize;
                                let jj = (oj * stride.1 + kj) as isize - pw as isize;
                                let cell =
                                    if ii < 0 || jj < 0 || ii >= h as isize || jj >= wid as isize {
                                        zero
                                    } else {
                                        *x.get(&[b, ii as usize, jj as usize, ch])
                                    };
                                xs.push(cell);
                                ws.push(*w.get(&[ki, kj, ch, 0]));
                            }
                        }
                        let raw = sb.dot(&xs, &ws, bias2.as_ref().map(|bb| bb[ch]));
                        out.push(raw);
                    }
                }
            }
        }
        let scaled = sb.rescale(&out);
        let act = apply_act(sb, activation, &scaled);
        return Tensor::new(vec![n, oh, ow, cout], act);
    }

    // im2col: patches [n*oh*ow, kh*kw*cin], weights [kh*kw*cin, cout].
    let k = kh * kw * cin;
    let rows = n * oh * ow;
    let mut patches = Vec::with_capacity(rows * k);
    for b in 0..n {
        for oi in 0..oh {
            for oj in 0..ow {
                for ki in 0..kh {
                    for kj in 0..kw {
                        let ii = (oi * stride.0 + ki) as isize - ph as isize;
                        let jj = (oj * stride.1 + kj) as isize - pw as isize;
                        for ci in 0..cin {
                            let cell = if ii < 0 || jj < 0 || ii >= h as isize || jj >= wid as isize
                            {
                                zero
                            } else {
                                *x.get(&[b, ii as usize, jj as usize, ci])
                            };
                            patches.push(cell);
                        }
                    }
                }
            }
        }
    }
    // Weight layout [KH, KW, Cin, Cout] is already row-major [k, cout].
    let raw = sb.matmul_raw(&patches, w.data(), rows, k, cout, bias2.as_deref());
    let scaled = sb.rescale(&raw);
    let act = apply_act(sb, activation, &scaled);
    Tensor::new(vec![n, oh, ow, cout], act)
}

/// Replay-side matrix multiply `x (rows x k) @ w (k x t)` producing RAW
/// (double-scale) outputs, honoring the configured implementation. This is
/// the point where a semantic `MatMul` schedule op is resolved against a
/// concrete layout choice.
pub(crate) fn matmul_raw_entry(
    bld: &mut CircuitBuilder,
    x: &[AValue],
    w: &[AValue],
    rows: usize,
    k: usize,
    t: usize,
    bias2: Option<&[AValue]>,
) -> Result<Vec<AValue>, BuildError> {
    match bld.cfg.choices.matmul {
        MatmulImpl::Freivalds => {
            let raw = freivalds_matmul(bld, x, w, rows, k, t)?;
            match bias2 {
                None => Ok(raw),
                Some(b) => {
                    let pairs: Vec<(AValue, AValue)> = raw
                        .iter()
                        .enumerate()
                        .map(|(i, r)| (*r, b[i % t]))
                        .collect();
                    bld.arith_pack(Gadget::AddPack, &pairs)
                }
            }
        }
        MatmulImpl::Direct => {
            let mut out = Vec::with_capacity(rows * t);
            for r in 0..rows {
                let xr: Vec<AValue> = (0..k).map(|i| x[r * k + i]).collect();
                for j in 0..t {
                    let wc: Vec<AValue> = (0..k).map(|i| w[i * t + j]).collect();
                    out.push(bld.dot(&xr, &wc, bias2.map(|b| b[j]))?);
                }
            }
            Ok(out)
        }
    }
}

/// Sanity helper used by tests: dequantized value of a cell tensor.
pub fn values_of(t: &Tensor<AValue>) -> Tensor<i64> {
    t.map(|a| a.v)
}

#[allow(unused_imports)]
use qops as _qops_used_in_docs;
