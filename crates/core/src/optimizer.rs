//! The circuit-layout optimizer (Algorithm 1 of the paper).
//!
//! Enumerates logical layouts (gadget choices), simulates each physical
//! layout row-exactly by running the builder in count-only mode across a
//! range of column counts, picks the minimal `k` per layout, estimates cost
//! with the hardware-calibrated model, and returns the cheapest plan.

use crate::compiler::compile;
use crate::config::{CircuitConfig, LayoutChoices, NumericConfig, Objective};
use crate::cost::{estimate, CostEstimate, HardwareStats};
use std::time::{Duration, Instant};
use zkml_model::Graph;
use zkml_pcs::Backend;
use zkml_tensor::Tensor;

/// Options controlling the search.
#[derive(Clone)]
pub struct OptimizerOptions {
    /// What to minimize.
    pub objective: Objective,
    /// Commitment backend being targeted.
    pub backend: Backend,
    /// Largest `k` the params/SRS support.
    pub max_k: u32,
    /// Inclusive column-count sweep range (`N_min..=N_max`).
    pub n_cols_range: (usize, usize),
    /// Enable the pruning heuristics (Table 12 ablation toggles this).
    pub prune: bool,
    /// Logical layouts to consider; `None` = the full candidate set.
    pub candidates: Option<Vec<LayoutChoices>>,
    /// Fixed-point configuration.
    pub numeric: NumericConfig,
}

impl OptimizerOptions {
    /// Sensible defaults for a backend.
    pub fn new(backend: Backend, max_k: u32) -> Self {
        Self {
            objective: Objective::ProvingTime,
            backend,
            max_k,
            n_cols_range: (8, 40),
            prune: true,
            candidates: None,
            numeric: NumericConfig::default_nano(),
        }
    }
}

/// One evaluated physical layout.
#[derive(Clone, Debug)]
pub struct EvaluatedLayout {
    /// The configuration.
    pub cfg: CircuitConfig,
    /// Chosen grid height.
    pub k: u32,
    /// Estimated cost.
    pub cost: CostEstimate,
}

/// The optimizer's result.
pub struct OptimizerReport {
    /// The winning configuration.
    pub best: CircuitConfig,
    /// Its grid height.
    pub best_k: u32,
    /// Its estimated cost.
    pub best_cost: CostEstimate,
    /// Number of physical layouts simulated.
    pub evaluated: usize,
    /// Number of (layout, column) points skipped by pruning.
    pub pruned: usize,
    /// Wall-clock optimizer runtime.
    pub elapsed: Duration,
    /// Every evaluated layout (for cost-model accuracy studies, §9.5).
    pub all: Vec<EvaluatedLayout>,
}

/// Zero-valued inputs with the graph's declared shapes (the simulator's
/// layouts are input-independent).
pub fn zero_inputs(g: &Graph) -> Vec<Tensor<i64>> {
    g.inputs
        .iter()
        .map(|id| Tensor::full(g.shape(*id).to_vec(), 0i64))
        .collect()
}

fn score(objective: Objective, c: &CostEstimate) -> f64 {
    match objective {
        Objective::ProvingTime => c.proving_s,
        Objective::ProofSize => c.proof_bytes as f64,
    }
}

/// Runs Algorithm 1.
pub fn optimize(g: &Graph, opts: &OptimizerOptions, hw: &HardwareStats) -> OptimizerReport {
    let start = Instant::now();
    let inputs = zero_inputs(g);
    let candidates = opts
        .candidates
        .clone()
        .unwrap_or_else(LayoutChoices::candidates);

    let mut best: Option<EvaluatedLayout> = None;
    let mut all = Vec::new();
    let mut evaluated = 0usize;
    let mut pruned = 0usize;

    for choices in candidates {
        let mut prev_k: Option<u32> = None;
        let mut worse_streak = 0usize;
        let mut ncols = opts.n_cols_range.0;
        while ncols <= opts.n_cols_range.1 {
            let cfg = CircuitConfig {
                choices,
                num_cols: ncols,
                numeric: opts.numeric,
            };
            let compiled = match compile(g, &inputs, cfg, true) {
                Ok(c) => c,
                Err(_) => {
                    // Configuration cannot express the model (e.g. too few
                    // columns for bit decomposition).
                    ncols += 1;
                    continue;
                }
            };
            evaluated += 1;
            if compiled.k > opts.max_k {
                // Needs more rows than the params support; more columns can
                // only help, so keep sweeping.
                prev_k = Some(compiled.k);
                ncols += 1;
                continue;
            }
            let cost = estimate(&compiled.stats, compiled.k, opts.backend, hw);
            let entry = EvaluatedLayout {
                cfg,
                k: compiled.k,
                cost,
            };
            all.push(entry.clone());
            let better = best
                .as_ref()
                .map(|b| score(opts.objective, &cost) < score(opts.objective, &b.cost))
                .unwrap_or(true);
            if better {
                best = Some(entry);
                worse_streak = 0;
            } else {
                worse_streak += 1;
            }
            // Pruning heuristic: once k has stopped dropping, adding columns
            // at the same k strictly increases FFT/MSM counts — stop after a
            // couple of confirmations.
            if opts.prune {
                if let Some(pk) = prev_k {
                    if compiled.k >= pk && worse_streak >= 2 {
                        pruned += opts.n_cols_range.1 - ncols;
                        break;
                    }
                }
            }
            prev_k = Some(compiled.k);
            ncols += 1;
        }
    }

    let best = best.expect("no feasible layout found — raise max_k");
    OptimizerReport {
        best: best.cfg,
        best_k: best.k,
        best_cost: best.cost,
        evaluated,
        pruned,
        elapsed: start.elapsed(),
        all,
    }
}
