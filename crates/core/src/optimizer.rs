//! The circuit-layout optimizer (Algorithm 1 of the paper).
//!
//! Runs the three-stage pipeline: the model is lowered to an
//! [`OpSchedule`] **once**, then every (logical layout, column count)
//! candidate is placed row-exactly with [`place`] — in parallel over the
//! logical layouts via [`zkml_par::par_map`] — costed with the
//! hardware-calibrated model, and the cheapest [`LayoutPlan`] is kept.
//! The winner is never re-lowered: [`OptimizerReport::synthesize_best`]
//! replays the already-built schedule under the winning plan.
//!
//! # Determinism
//!
//! The sweep is bit-identical at any `ZKML_THREADS`. Each logical layout
//! is swept independently with *layout-local* pruning state (so no
//! candidate's pruning depends on another candidate's results), results
//! are collected in candidate order, and the winner is reduced with a
//! strict less-than in that order — the earliest candidate wins ties,
//! exactly as a serial left-to-right sweep would.

use crate::compiler::{place, synthesize, CompiledCircuit, LayoutPlan, ZkmlError};
use crate::config::{CircuitConfig, LayoutChoices, NumericConfig, Objective};
use crate::cost::{estimate, CostEstimate, HardwareStats};
use crate::layers::lower_graph;
use crate::schedule::OpSchedule;
use std::time::{Duration, Instant};
use zkml_model::Graph;
use zkml_pcs::Backend;
use zkml_tensor::Tensor;

/// Options controlling the search.
#[derive(Clone)]
pub struct OptimizerOptions {
    /// What to minimize.
    pub objective: Objective,
    /// Commitment backend being targeted.
    pub backend: Backend,
    /// Largest `k` the params/SRS support.
    pub max_k: u32,
    /// Inclusive column-count sweep range (`N_min..=N_max`).
    pub n_cols_range: (usize, usize),
    /// Enable the pruning heuristics (Table 12 ablation toggles this).
    pub prune: bool,
    /// Logical layouts to consider; `None` = the full candidate set.
    pub candidates: Option<Vec<LayoutChoices>>,
    /// Fixed-point configuration.
    pub numeric: NumericConfig,
}

impl OptimizerOptions {
    /// Sensible defaults for a backend.
    pub fn new(backend: Backend, max_k: u32) -> Self {
        Self {
            objective: Objective::ProvingTime,
            backend,
            max_k,
            n_cols_range: (8, 40),
            prune: true,
            candidates: None,
            numeric: NumericConfig::default_nano(),
        }
    }
}

/// One evaluated physical layout.
#[derive(Clone, Debug)]
pub struct EvaluatedLayout {
    /// The configuration.
    pub cfg: CircuitConfig,
    /// Chosen grid height.
    pub k: u32,
    /// Estimated cost.
    pub cost: CostEstimate,
}

/// The optimizer's result.
pub struct OptimizerReport {
    /// The winning configuration.
    pub best: CircuitConfig,
    /// Its grid height.
    pub best_k: u32,
    /// Its estimated cost.
    pub best_cost: CostEstimate,
    /// The winning physical layout, ready for [`synthesize`] — final
    /// compilation reuses it instead of re-lowering the model.
    pub best_plan: LayoutPlan,
    /// The schedule the sweep (and final synthesis) replayed; built by
    /// exactly one `lower_graph` execution.
    pub schedule: OpSchedule,
    /// Number of physical layouts simulated.
    pub evaluated: usize,
    /// Number of (layout, column) points skipped by pruning.
    pub pruned: usize,
    /// Wall-clock optimizer runtime.
    pub elapsed: Duration,
    /// Every evaluated layout (for cost-model accuracy studies, §9.5).
    pub all: Vec<EvaluatedLayout>,
}

impl OptimizerReport {
    /// Stage 3 for the sweep winner: synthesizes the witness by replaying
    /// the stored schedule under the winning plan. No second lowering and
    /// no re-placement happen; the plan's structure is cross-checked
    /// against what synthesis produces.
    pub fn synthesize_best(&self) -> Result<CompiledCircuit, ZkmlError> {
        synthesize(&self.schedule, &self.best_plan)
    }

    /// Runs the static underconstrained-circuit analyzer over **every**
    /// layout the sweep evaluated — not just the winner — by re-placing
    /// each evaluated configuration (placement is deterministic, so this
    /// reproduces the exact candidate plan), synthesizing it, and
    /// analyzing the result. Layouts are processed in parallel on the
    /// `zkml-par` pool; results come back in sweep order as
    /// `(configuration, report)` pairs.
    ///
    /// This is the gadget-zoo guarantee extended to the optimizer: a
    /// layout bug that only manifests at one column count or gadget mix
    /// cannot hide in a candidate the cost model happened to reject.
    pub fn analyze_all_layouts(
        &self,
    ) -> Result<Vec<(CircuitConfig, zkml_analyze::AnalysisReport)>, ZkmlError> {
        let results = zkml_par::par_map(self.all.len(), |i| {
            let cfg = self.all[i].cfg;
            let plan = place(&self.schedule, cfg)?;
            Ok((cfg, crate::compiler::analyze_plan(&self.schedule, &plan)?))
        });
        results.into_iter().collect()
    }
}

/// Zero-valued inputs with the graph's declared shapes. Layouts are
/// input-independent, so these are enough for sweeps that never prove.
pub fn zero_inputs(g: &Graph) -> Vec<Tensor<i64>> {
    g.inputs
        .iter()
        .map(|id| Tensor::full(g.shape(*id).to_vec(), 0i64))
        .collect()
}

fn score(objective: Objective, c: &CostEstimate) -> f64 {
    match objective {
        Objective::ProvingTime => c.proving_s,
        Objective::ProofSize => c.proof_bytes as f64,
    }
}

/// Smallest `k` able to hold `rows` usable rows (mirrors the builder's
/// `min_k`).
fn min_k_for_rows(rows: usize) -> u32 {
    ((rows + zkml_plonk::BLINDING_FACTORS + 1).next_power_of_two())
        .trailing_zeros()
        .max(3)
}

/// Per-candidate sweep result; merged in candidate order by [`optimize`].
struct CandidateSweep {
    all: Vec<EvaluatedLayout>,
    best: Option<(EvaluatedLayout, LayoutPlan)>,
    evaluated: usize,
    pruned: usize,
}

/// Sweeps one logical layout across the column range with layout-local
/// pruning, so the outcome is independent of every other candidate (the
/// parallel-determinism invariant).
fn sweep_candidate(
    sched: &OpSchedule,
    choices: LayoutChoices,
    opts: &OptimizerOptions,
    hw: &HardwareStats,
) -> CandidateSweep {
    let mut out = CandidateSweep {
        all: Vec::new(),
        best: None,
        evaluated: 0,
        pruned: 0,
    };
    let mut best_score = f64::INFINITY;
    let mut prev_k: Option<u32> = None;
    let mut worse_streak = 0usize;
    let mut ncols = opts.n_cols_range.0;
    while ncols <= opts.n_cols_range.1 {
        let cfg = CircuitConfig {
            choices,
            num_cols: ncols,
            numeric: opts.numeric,
        };
        let plan = match place(sched, cfg) {
            Ok(p) => p,
            Err(_) => {
                // Configuration cannot express the model (e.g. too few
                // columns for bit decomposition).
                ncols += 1;
                continue;
            }
        };
        out.evaluated += 1;
        if plan.k > opts.max_k {
            // Needs more rows than the params support; more columns can
            // only help, so keep sweeping.
            prev_k = Some(plan.k);
            ncols += 1;
            continue;
        }
        let plan_k = plan.k;
        let rows_floor = plan.stats.rows_floor;
        let cost = estimate(&plan.stats, plan_k, opts.backend, hw);
        let entry = EvaluatedLayout {
            cfg,
            k: plan_k,
            cost,
        };
        out.all.push(entry.clone());
        let s = score(opts.objective, &cost);
        if s < best_score {
            best_score = s;
            out.best = Some((entry, plan));
            worse_streak = 0;
        } else {
            worse_streak += 1;
        }
        // Pruning: at a fixed k, adding columns strictly increases
        // FFT/MSM counts, so after a couple of non-improving candidates
        // the only way a later column count can win is by dropping k.
        // The column-independent row floor (constants, tables, instance)
        // bounds the smallest k any candidate can reach; once the floor
        // pins k at the current plateau, the rest of the sweep is
        // provably worse and can be skipped without changing the winner.
        if opts.prune {
            if let Some(pk) = prev_k {
                if plan_k >= pk && worse_streak >= 2 && min_k_for_rows(rows_floor) >= plan_k {
                    out.pruned += opts.n_cols_range.1 - ncols;
                    break;
                }
            }
        }
        prev_k = Some(plan_k);
        ncols += 1;
    }
    out
}

/// Runs Algorithm 1: lowers the model once, sweeps every candidate layout
/// in parallel, and returns the cheapest plan (or
/// [`ZkmlError::NoFeasibleLayout`] if nothing fits within `max_k`).
///
/// `inputs` are the quantized model inputs; pass [`zero_inputs`] when the
/// winner will not be synthesized. Supplying real inputs lets
/// [`OptimizerReport::synthesize_best`] produce a provable circuit from
/// the same single lowering.
pub fn optimize(
    g: &Graph,
    inputs: &[Tensor<i64>],
    opts: &OptimizerOptions,
    hw: &HardwareStats,
) -> Result<OptimizerReport, ZkmlError> {
    let sched = lower_graph(g, inputs, opts.numeric);
    optimize_schedule(sched, opts, hw)
}

/// Runs the layout sweep over an already-built schedule.
///
/// Segmented proving cuts one lowering into several sub-schedules and
/// optimizes each independently; this entry skips `lower_graph` so the
/// "lower exactly once" invariant holds across all segments of a model.
pub fn optimize_schedule(
    sched: OpSchedule,
    opts: &OptimizerOptions,
    hw: &HardwareStats,
) -> Result<OptimizerReport, ZkmlError> {
    let start = Instant::now();
    let candidates = opts
        .candidates
        .clone()
        .unwrap_or_else(LayoutChoices::candidates);

    let sweeps = zkml_par::par_map(candidates.len(), |i| {
        sweep_candidate(&sched, candidates[i], opts, hw)
    });

    // Serial-order reduction: strict less-than keeps the earliest
    // candidate on ties, matching a left-to-right serial sweep.
    let mut best: Option<(EvaluatedLayout, LayoutPlan)> = None;
    let mut all = Vec::new();
    let mut evaluated = 0usize;
    let mut pruned = 0usize;
    for sweep in sweeps {
        all.extend(sweep.all);
        evaluated += sweep.evaluated;
        pruned += sweep.pruned;
        if let Some((entry, plan)) = sweep.best {
            let better = best
                .as_ref()
                .map(|(b, _)| score(opts.objective, &entry.cost) < score(opts.objective, &b.cost))
                .unwrap_or(true);
            if better {
                best = Some((entry, plan));
            }
        }
    }

    let (best, best_plan) = best.ok_or(ZkmlError::NoFeasibleLayout { max_k: opts.max_k })?;
    Ok(OptimizerReport {
        best: best.cfg,
        best_k: best.k,
        best_cost: best.cost,
        best_plan,
        schedule: sched,
        evaluated,
        pruned,
        elapsed: start.elapsed(),
        all,
    })
}
