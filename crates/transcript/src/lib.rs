//! Fiat–Shamir transcript for the ZKML proving stack.
//!
//! The transcript is a running BLAKE2b chain: every absorbed message hashes
//! the previous 64-byte state together with a length-prefixed label and the
//! message bytes; squeezing a challenge ratchets the state and reduces the
//! full 512-bit output uniformly into the scalar field.

pub mod blake2b;

pub use blake2b::Blake2b;
use zkml_ff::PrimeField;

/// A Fiat–Shamir transcript.
///
/// Prover and verifier build identical transcripts from the public protocol
/// messages, so the challenges they derive agree.
#[derive(Clone)]
pub struct Transcript {
    state: [u8; 64],
}

impl Transcript {
    /// Creates a transcript seeded with a domain-separation label.
    pub fn new(domain: &[u8]) -> Self {
        let mut h = Blake2b::new();
        h.update(b"zkml-transcript-v1");
        h.update(&(domain.len() as u64).to_le_bytes());
        h.update(domain);
        Self {
            state: h.finalize(),
        }
    }

    /// Absorbs labelled bytes into the transcript.
    pub fn absorb(&mut self, label: &'static [u8], data: &[u8]) {
        let mut h = Blake2b::new();
        h.update(&self.state);
        h.update(&[0x01]);
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        h.update(&(data.len() as u64).to_le_bytes());
        h.update(data);
        self.state = h.finalize();
    }

    /// Absorbs a field element (canonical 32-byte encoding).
    pub fn absorb_scalar<F: PrimeField>(&mut self, label: &'static [u8], v: &F) {
        self.absorb(label, &v.to_bytes());
    }

    /// Squeezes a uniformly distributed field element challenge.
    pub fn challenge<F: PrimeField>(&mut self, label: &'static [u8]) -> F {
        let mut h = Blake2b::new();
        h.update(&self.state);
        h.update(&[0x02]);
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        self.state = h.finalize();
        let mut lo = [0u64; 4];
        let mut hi = [0u64; 4];
        for i in 0..4 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.state[i * 8..(i + 1) * 8]);
            lo[i] = u64::from_le_bytes(b);
            b.copy_from_slice(&self.state[32 + i * 8..32 + (i + 1) * 8]);
            hi[i] = u64::from_le_bytes(b);
        }
        F::from_u512(lo, hi)
    }

    /// Squeezes raw challenge bytes (for non-field uses such as seeding).
    pub fn challenge_bytes(&mut self, label: &'static [u8]) -> [u8; 64] {
        let mut h = Blake2b::new();
        h.update(&self.state);
        h.update(&[0x03]);
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        self.state = h.finalize();
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_ff::{Field, Fr};

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut t1 = Transcript::new(b"test");
        let mut t2 = Transcript::new(b"test");
        t1.absorb(b"a", &[1, 2, 3]);
        t2.absorb(b"a", &[1, 2, 3]);
        let c1: Fr = t1.challenge(b"c");
        let c2: Fr = t2.challenge(b"c");
        assert_eq!(c1, c2);

        let mut t3 = Transcript::new(b"test");
        t3.absorb(b"a", &[3, 2, 1]);
        let c3: Fr = t3.challenge(b"c");
        assert_ne!(c1, c3);
    }

    #[test]
    fn domain_separation() {
        let mut t1 = Transcript::new(b"proto-a");
        let mut t2 = Transcript::new(b"proto-b");
        let c1: Fr = t1.challenge(b"c");
        let c2: Fr = t2.challenge(b"c");
        assert_ne!(c1, c2);
    }

    #[test]
    fn successive_challenges_differ() {
        let mut t = Transcript::new(b"test");
        let c1: Fr = t.challenge(b"c");
        let c2: Fr = t.challenge(b"c");
        assert_ne!(c1, c2);
        assert!(!c1.is_zero());
    }

    #[test]
    fn reordered_absorptions_change_every_challenge() {
        // Same absorptions in the same order reproduce the same challenge
        // stream; ANY reordering must change it (Fiat-Shamir soundness).
        let run = |order: &[(&'static [u8], &'static [u8])]| -> Vec<Fr> {
            let mut t = Transcript::new(b"test");
            for (label, data) in order {
                t.absorb(label, data);
            }
            (0..3).map(|_| t.challenge(b"c")).collect()
        };
        let a: (&'static [u8], &'static [u8]) = (b"a", b"first");
        let b: (&'static [u8], &'static [u8]) = (b"b", b"second");
        let c: (&'static [u8], &'static [u8]) = (b"c", b"third");
        let base = run(&[a, b, c]);
        assert_eq!(base, run(&[a, b, c]), "same absorptions, same challenges");
        for reordered in [[a, c, b], [b, a, c], [b, c, a], [c, a, b], [c, b, a]] {
            let other = run(&reordered);
            assert_ne!(base, other, "reordering went unnoticed: {reordered:?}");
            // Not just the stream as a whole: every challenge must differ.
            for (x, y) in base.iter().zip(&other) {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn length_prefixing_prevents_concatenation_ambiguity() {
        // ("ab", "c") must differ from ("a", "bc").
        let mut t1 = Transcript::new(b"test");
        t1.absorb(b"x", b"ab");
        t1.absorb(b"x", b"c");
        let mut t2 = Transcript::new(b"test");
        t2.absorb(b"x", b"a");
        t2.absorb(b"x", b"bc");
        let c1: Fr = t1.challenge(b"c");
        let c2: Fr = t2.challenge(b"c");
        assert_ne!(c1, c2);
    }
}
