//! BLAKE2b-512 (RFC 7693), unkeyed sequential mode.

/// Initialization vector (fractional parts of sqrt of the first 8 primes).
const IV: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Message schedule permutations for the 12 rounds (rows repeat after 10).
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

/// Streaming BLAKE2b-512 hasher.
#[derive(Clone)]
pub struct Blake2b {
    h: [u64; 8],
    buf: [u8; 128],
    buf_len: usize,
    counter: u128,
}

impl Default for Blake2b {
    fn default() -> Self {
        Self::new()
    }
}

impl Blake2b {
    /// Creates a new unkeyed hasher with 64-byte output.
    pub fn new() -> Self {
        let mut h = IV;
        // Parameter block: digest_length=64, key_length=0, fanout=1, depth=1.
        h[0] ^= 0x0101_0000 ^ 64;
        Self {
            h,
            buf: [0u8; 128],
            buf_len: 0,
            counter: 0,
        }
    }

    /// Creates a keyed hasher (MAC mode, RFC 7693 §2.9): the key, padded to
    /// a full 128-byte block, is processed as the first message block.
    ///
    /// Panics if `key` is longer than 64 bytes (the BLAKE2b maximum).
    pub fn new_keyed(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 64,
            "BLAKE2b key must be 1..=64 bytes"
        );
        let mut h = IV;
        // Parameter block: digest_length=64, key_length, fanout=1, depth=1.
        h[0] ^= 0x0101_0000 ^ ((key.len() as u64) << 8) ^ 64;
        let mut hasher = Self {
            h,
            buf: [0u8; 128],
            buf_len: 0,
            counter: 0,
        };
        let mut block = [0u8; 128];
        block[..key.len()].copy_from_slice(key);
        // Buffered like ordinary data: if no message follows, the key block
        // is finalized as the last (and only) block, per the RFC.
        hasher.update(&block);
        hasher
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        // Fill the partial block first; only compress when we know more data
        // follows (the final block must be compressed with the last flag).
        while !data.is_empty() {
            if self.buf_len == 128 {
                self.counter += 128;
                let block = self.buf;
                self.compress(&block, self.counter, false);
                self.buf_len = 0;
            }
            let take = (128 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
        }
    }

    /// Finalizes and returns the 64-byte digest.
    pub fn finalize(mut self) -> [u8; 64] {
        self.counter += self.buf_len as u128;
        for b in self.buf[self.buf_len..].iter_mut() {
            *b = 0;
        }
        let block = self.buf;
        self.compress(&block, self.counter, true);
        let mut out = [0u8; 64];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Convenience: hash `data` in one shot.
    pub fn digest(data: &[u8]) -> [u8; 64] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; 128], counter: u128, last: bool) {
        let mut m = [0u64; 16];
        for (i, word) in m.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&block[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        let mut v = [0u64; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= counter as u64;
        v[13] ^= (counter >> 64) as u64;
        if last {
            v[14] ^= u64::MAX;
        }

        #[inline(always)]
        fn g(v: &mut [u64; 16], a: usize, b: usize, c: usize, d: usize, x: u64, y: u64) {
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
            v[d] = (v[d] ^ v[a]).rotate_right(32);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(24);
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
            v[d] = (v[d] ^ v[a]).rotate_right(16);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(63);
        }

        for round in 0..12 {
            let s = &SIGMA[round % 10];
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }

        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc7693_abc_vector() {
        // Appendix A of RFC 7693.
        let d = Blake2b::digest(b"abc");
        assert_eq!(
            hex(&d),
            "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d1\
             7d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923"
        );
    }

    #[test]
    fn empty_input_vector() {
        let d = Blake2b::digest(b"");
        assert_eq!(
            hex(&d),
            "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419\
             d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Blake2b::digest(&data);
        for chunk_size in [1usize, 7, 64, 127, 128, 129, 333] {
            let mut h = Blake2b::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk_size={chunk_size}");
        }
    }

    fn keyed(key: &[u8], data: &[u8]) -> String {
        let mut h = Blake2b::new_keyed(key);
        h.update(data);
        hex(&h.finalize())
    }

    #[test]
    fn keyed_known_answers() {
        // Official BLAKE2b KAT key: 0x00..0x3f (64 bytes). The empty-input
        // and 255-byte entries are from the reference blake2b-kat.txt; the
        // others were cross-checked against Python's hashlib.blake2b.
        let kat_key: Vec<u8> = (0u8..64).collect();
        assert_eq!(
            keyed(&kat_key, b""),
            "10ebb67700b1868efb4417987acf4690ae9d972fb7a590c2f02871799aaa4786\
             b5e996e8f0f4eb981fc214b005f42d2ff4233499391653df7aefcbc13fc51568"
        );
        assert_eq!(
            keyed(&kat_key, b"abc"),
            "06bbc3dedf13a31139498655251b7588ccd3bb5aaa071b2d44d8e0a04095579e\
             d590fbfdcf941f4370ce5ce623624e7a76d33e7a8109dcda9b57d72f8f8efa51"
        );
        let kat255: Vec<u8> = (0..255u32).map(|i| (i % 256) as u8).collect();
        assert_eq!(
            keyed(&kat_key, &kat255),
            "142709d62e28fcccd0af97fad0f8465b971e82201dc51070faa0372aa43e9248\
             4be1c1e73ba10906d5d1853db6a4106e0a7bf9800d373d6dee2d46d62ef2a461"
        );
        // Short (non-block-length) key.
        assert_eq!(
            keyed(b"short-key", b"abc"),
            "3cc9a7ad38a80d1bc5028478e8eaf74d3a8c51b2bad273422911d67500d2d022\
             7b1914cdea2e766d3b30914974a70531d87710f6ddbd98e3684be480dff9db90"
        );
    }

    #[test]
    fn keyed_differs_from_unkeyed_and_streams() {
        let key = [7u8; 32];
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let mut h = Blake2b::new_keyed(&key);
        h.update(&data);
        let oneshot = h.finalize();
        assert_ne!(&oneshot[..], &Blake2b::digest(&data)[..]);
        for chunk_size in [1usize, 64, 128, 129] {
            let mut h = Blake2b::new_keyed(&key);
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn multi_block_input() {
        // Exactly 128 and 256 bytes exercise the block boundary logic.
        let d128 = Blake2b::digest(&[0x42u8; 128]);
        let d256 = Blake2b::digest(&[0x42u8; 256]);
        assert_ne!(d128, d256);
        let mut h = Blake2b::new();
        h.update(&[0x42u8; 128]);
        h.update(&[0x42u8; 128]);
        assert_eq!(h.finalize(), d256);
    }
}
