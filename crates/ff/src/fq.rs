//! The BN254 base field `Fq`.
//!
//! `q = 21888242871839275222246405745257275088696311157297823662689037894645226208583`
//!
//! `q ≡ 3 (mod 4)`, so square roots are computed as `x^((q+1)/4)`.

use crate::field::Field;
use crate::impl_prime_field;
use std::sync::OnceLock;

impl_prime_field!(
    pub struct Fq,
    modulus = [
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ],
    generator = 3,
    num_bits = 254,
    doc = "An element of the BN254 base field `Fq` (Montgomery form)."
);

impl Fq {
    /// Computes a square root if one exists (`q ≡ 3 mod 4`).
    pub fn sqrt(&self) -> Option<Self> {
        static EXP: OnceLock<[u64; 4]> = OnceLock::new();
        let exp = EXP.get_or_init(|| {
            // (q + 1) / 4
            crate::bigint::BigUint::from_limbs(&Fq::MODULUS)
                .add(&crate::bigint::BigUint::one())
                .shr(2)
                .to_fixed::<4>()
        });
        let cand = self.pow_vartime(exp);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }

    /// Returns true if this element is a quadratic residue (or zero).
    pub fn is_square(&self) -> bool {
        self.is_zero() || self.sqrt().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn q_is_3_mod_4() {
        assert_eq!(Fq::MODULUS[0] % 4, 3);
    }

    #[test]
    fn sqrt_of_squares() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == -a);
        }
    }

    #[test]
    fn non_residues_have_no_root() {
        // 3 generates the multiplicative group, so it is a non-residue
        // (since (q-1)/2 is odd times...); verify via Euler's criterion
        // directly instead of assuming.
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_nonresidue = false;
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            let has_root = a.sqrt().is_some();
            if !has_root {
                seen_nonresidue = true;
            }
            // Euler criterion: a^((q-1)/2) == 1 iff QR.
            let exp = crate::bigint::BigUint::from_limbs(&Fq::MODULUS)
                .sub(&crate::bigint::BigUint::one())
                .shr(1);
            let euler = a.pow(exp.limbs());
            assert_eq!(euler == Fq::ONE, has_root);
        }
        assert!(seen_nonresidue, "expected some non-residues in 20 samples");
    }

    #[test]
    fn field_axioms_spot_checks() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = Fq::random(&mut rng);
            let b = Fq::random(&mut rng);
            let c = Fq::random(&mut rng);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a + (-a), Fq::ZERO);
        }
    }
}
