//! Minimal arbitrary-precision unsigned integers.
//!
//! Used for one-time setup computations that need exponents wider than the
//! field modulus (e.g. the final-exponentiation hard part `(p^4 - p^2 + 1)/r`
//! of the BN254 pairing) and as a slow-but-obviously-correct reference in
//! tests. Little-endian `u64` limbs; not performance sensitive.

use crate::arith::{adc, mac, sbb};

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Creates a value from little-endian limbs.
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut v = Self {
            limbs: limbs.to_vec(),
        };
        v.normalize();
        v
    }

    /// Creates a value from a `u64`.
    pub fn from_u64(x: u64) -> Self {
        Self::from_limbs(&[x])
    }

    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: vec![] }
    }

    /// The value one.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Compares two values.
    pub fn cmp_big(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Computes `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d, c) = adc(a, b, carry);
            out.push(d);
            carry = c;
        }
        out.push(carry);
        Self::from_limbs(&out)
    }

    /// Computes `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_big(other) != std::cmp::Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d, bo) = sbb(self.limbs[i], b, borrow);
            out.push(d);
            borrow = bo;
        }
        debug_assert_eq!(borrow, 0);
        Self::from_limbs(&out)
    }

    /// Computes `self * other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let (d, c) = mac(out[i + j], a, b, carry);
                out[i + j] = d;
                carry = c;
            }
            out[i + other.limbs.len()] = carry;
        }
        Self::from_limbs(&out)
    }

    /// Shifts left by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        Self::from_limbs(&out)
    }

    /// Shifts right by `n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 64;
        let mut out = vec![0u64; self.limbs.len() - limb_shift];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift != 0 && i + limb_shift + 1 < self.limbs.len() {
                *o |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        Self::from_limbs(&out)
    }

    /// Computes `(self / other, self % other)` by binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Self) -> (Self, Self) {
        assert!(!other.is_zero(), "division by zero");
        if self.cmp_big(other) == std::cmp::Ordering::Less {
            return (Self::zero(), self.clone());
        }
        let bits = self.bits();
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = Self::zero();
        for i in (0..bits).rev() {
            rem = rem.shl(1);
            if self.bit(i) {
                rem = rem.add(&Self::one());
            }
            if rem.cmp_big(other) != std::cmp::Ordering::Less {
                rem = rem.sub(other);
                quotient[i / 64] |= 1 << (i % 64);
            }
        }
        (Self::from_limbs(&quotient), rem)
    }

    /// Computes `self % other`.
    pub fn rem(&self, other: &Self) -> Self {
        self.div_rem(other).1
    }

    /// Copies the low limbs into a fixed-size array (high limbs must be zero).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `N` limbs.
    pub fn to_fixed<const N: usize>(&self) -> [u64; N] {
        assert!(self.limbs.len() <= N, "BigUint too large for {N} limbs");
        let mut out = [0u64; N];
        out[..self.limbs.len()].copy_from_slice(&self.limbs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic() {
        let a = BigUint::from_u64(1_000_000_007);
        let b = BigUint::from_u64(998_244_353);
        assert_eq!(a.add(&b), BigUint::from_u64(1_998_244_360));
        assert_eq!(a.sub(&b), BigUint::from_u64(1_755_654));
        let p = a.mul(&b);
        assert_eq!(
            p,
            BigUint::from_limbs(&[(1_000_000_007u128 * 998_244_353u128) as u64, 0])
        );
    }

    #[test]
    fn wide_mul_div_roundtrip() {
        let a = BigUint::from_limbs(&[u64::MAX, u64::MAX, 12345]);
        let b = BigUint::from_limbs(&[0xdeadbeef, 77]);
        let prod = a.mul(&b);
        let (q, r) = prod.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
        let prod1 = prod.add(&BigUint::from_u64(13));
        let (q1, r1) = prod1.div_rem(&b);
        assert_eq!(q1, a);
        assert_eq!(r1, BigUint::from_u64(13));
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(1);
        assert_eq!(a.shl(100).shr(100), a);
        assert_eq!(a.shl(64).limbs(), &[0, 1]);
        assert_eq!(a.shl(65).limbs(), &[0, 2]);
    }

    #[test]
    fn bits_and_bit() {
        let a = BigUint::from_limbs(&[0, 0b1010]);
        assert_eq!(a.bits(), 64 + 4);
        assert!(a.bit(65));
        assert!(!a.bit(64));
        assert!(a.bit(67));
    }
}
