//! The BN254 scalar field `Fr`.
//!
//! `r = 21888242871839275222246405745257275088548364400416034343698204186575808495617`
//!
//! `r - 1 = 2^28 * t` with `t` odd, so `Fr` supports radix-2 FFTs up to size
//! `2^28` — exactly the ceiling of the Perpetual-Powers-of-Tau trusted setup
//! the paper uses.

use crate::field::{FftField, Field, PrimeField};
use crate::impl_prime_field;
use std::sync::OnceLock;

impl_prime_field!(
    pub struct Fr,
    modulus = [
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ],
    generator = 5,
    num_bits = 254,
    doc = "An element of the BN254 scalar field `Fr` (Montgomery form)."
);

impl FftField for Fr {
    const TWO_ADICITY: u32 = 28;

    fn multiplicative_generator() -> Self {
        Self::from_u64(Self::GENERATOR_U64)
    }

    fn root_of_unity() -> Self {
        static ROOT: OnceLock<Fr> = OnceLock::new();
        *ROOT.get_or_init(|| {
            // g^((r-1) / 2^28)
            let mut exp = crate::bigint::BigUint::from_limbs(&Fr::MODULUS);
            exp = exp.sub(&crate::bigint::BigUint::one());
            exp = exp.shr(Self::TWO_ADICITY as usize);
            Fr::multiplicative_generator().pow(exp.limbs())
        })
    }
}

impl Fr {
    /// The coset separator `delta = g^(2^TWO_ADICITY)` used by the
    /// permutation argument: the cosets `delta^i * H` for distinct small `i`
    /// are pairwise disjoint for every power-of-two subgroup `H`.
    pub fn delta() -> Self {
        static DELTA: OnceLock<Fr> = OnceLock::new();
        *DELTA.get_or_init(|| {
            let mut exp = crate::bigint::BigUint::one();
            exp = exp.shl(<Fr as FftField>::TWO_ADICITY as usize);
            Fr::multiplicative_generator().pow(exp.limbs())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::BigUint;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn r_big() -> BigUint {
        BigUint::from_limbs(&Fr::MODULUS)
    }

    #[test]
    fn constants_are_consistent() {
        // R = 2^256 mod r equals one() by construction.
        assert_eq!(Fr::ONE.to_canonical(), [1, 0, 0, 0]);
        // INV * r[0] == -1 mod 2^64
        assert_eq!(Fr::INV.wrapping_mul(Fr::MODULUS[0]), u64::MAX);
        // R2 round trip: from_u64(1) must be ONE.
        assert_eq!(Fr::from_u64(1), Fr::ONE);
        assert_eq!(Fr::from_u64(0), Fr::ZERO);
    }

    #[test]
    fn small_integer_arithmetic() {
        let a = Fr::from_u64(1234567);
        let b = Fr::from_u64(7654321);
        assert_eq!(a + b, Fr::from_u64(1234567 + 7654321));
        assert_eq!(a * b, Fr::from_u128(1234567u128 * 7654321u128));
        assert_eq!(b - a, Fr::from_u64(7654321 - 1234567));
        assert_eq!(a - b, -(b - a));
        assert_eq!(a.double(), a + a);
        assert_eq!(a.square(), a * a);
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0i64, 1, -1, 12345, -98765, i64::MAX, i64::MIN + 1] {
            assert_eq!(Fr::from_i64(v).to_signed_i128(), v as i128);
        }
        assert_eq!(
            Fr::from_i128(-(1i128 << 100)).to_signed_i128(),
            -(1i128 << 100)
        );
    }

    #[test]
    fn mul_matches_bigint_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        let r = r_big();
        for _ in 0..200 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            let prod = a * b;
            let ref_prod = BigUint::from_limbs(&a.to_canonical())
                .mul(&BigUint::from_limbs(&b.to_canonical()))
                .rem(&r);
            assert_eq!(prod.to_canonical(), ref_prod.to_fixed::<4>());
            let sum = a + b;
            let ref_sum = BigUint::from_limbs(&a.to_canonical())
                .add(&BigUint::from_limbs(&b.to_canonical()))
                .rem(&r);
            assert_eq!(sum.to_canonical(), ref_sum.to_fixed::<4>());
        }
    }

    #[test]
    fn inversion() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(Fr::ZERO.invert(), None);
        for _ in 0..20 {
            let a = Fr::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.invert().unwrap(), Fr::ONE);
        }
    }

    #[test]
    fn batch_inversion_matches_single() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<Fr> = (0..33).map(|_| Fr::from_u64(rng.next_u64() | 1)).collect();
        let mut batched = vals.clone();
        crate::field::batch_invert(&mut batched);
        for (v, b) in vals.iter().zip(batched.iter()) {
            assert_eq!(v.invert().unwrap(), *b);
        }
    }

    #[test]
    fn two_adic_root_of_unity() {
        let w = Fr::root_of_unity();
        // w^(2^28) == 1 and w^(2^27) != 1.
        let mut x = w;
        for _ in 0..27 {
            x = x.square();
        }
        assert_ne!(x, Fr::ONE);
        assert_eq!(x.square(), Fr::ONE);
        // In fact w^(2^27) must be -1.
        assert_eq!(x, -Fr::ONE);
    }

    #[test]
    fn delta_has_odd_order_coset() {
        // delta is in the odd-order part: delta^(2^k) never hits 1 for any k
        // unless delta == 1; check delta != 1 and delta^t == 1 where
        // t = (r-1)/2^28.
        let d = Fr::delta();
        assert_ne!(d, Fr::ONE);
        let mut exp = r_big().sub(&BigUint::one());
        exp = exp.shr(28);
        assert_eq!(d.pow(exp.limbs()), Fr::ONE);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let a = Fr::random(&mut rng);
            assert_eq!(Fr::from_bytes(&a.to_bytes()), Some(a));
        }
        // The modulus itself must not decode.
        let mut bytes = [0u8; 32];
        for (i, l) in Fr::MODULUS.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&l.to_le_bytes());
        }
        assert_eq!(Fr::from_bytes(&bytes), None);
    }

    #[test]
    fn from_u512_is_uniform_reduction() {
        // lo + hi*2^256 mod r
        let lo = [5u64, 0, 0, 0];
        let hi = [3u64, 0, 0, 0];
        let expect = BigUint::from_u64(3)
            .shl(256)
            .add(&BigUint::from_u64(5))
            .rem(&r_big());
        assert_eq!(Fr::from_u512(lo, hi).to_canonical(), expect.to_fixed::<4>());
    }

    #[test]
    fn ordering_is_canonical() {
        assert!(Fr::from_u64(3) < Fr::from_u64(5));
        assert!(-Fr::ONE > Fr::from_u64(1_000_000));
    }
}
