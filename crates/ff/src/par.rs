//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The proving stack parallelizes at coarse granularity (per-polynomial FFTs,
//! MSM bucket windows, per-column commitments), so a simple scoped fork-join
//! over chunks is all we need — no work-stealing runtime.

/// Number of worker threads to use (`available_parallelism`, capped at 32).
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(32))
        .unwrap_or(1)
}

/// Applies `f` to each element of `items` in parallel, in place.
///
/// Falls back to a serial loop for small inputs.
pub fn par_for_each_mut<T: Send, F: Fn(usize, &mut T) + Sync>(items: &mut [T], f: F) {
    let threads = num_threads();
    if threads <= 1 || items.len() < 2 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (i, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + i, item);
                }
            });
        }
    });
}

/// Maps `f` over `0..n` in parallel and collects the results in order.
pub fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    par_for_each_mut(&mut out, |i, slot| *slot = Some(f(i)));
    out.into_iter()
        .map(|x| x.expect("par_map slot filled"))
        .collect()
}

/// Splits `data` into `pieces` contiguous chunks and processes each in
/// parallel with `f(chunk_index, chunk_start, chunk)`.
pub fn par_chunks_mut<T: Send, F: Fn(usize, usize, &mut [T]) + Sync>(
    data: &mut [T],
    min_chunk: usize,
    f: F,
) {
    let threads = num_threads();
    let chunk = (data.len().div_ceil(threads)).max(min_chunk).max(1);
    if threads <= 1 || data.len() <= chunk {
        f(0, 0, data);
        return;
    }
    std::thread::scope(|s| {
        for (c, slice) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(c, c * chunk, slice));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(1000, |i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_for_each_mut_touches_all() {
        let mut v = vec![0usize; 777];
        par_for_each_mut(&mut v, |i, x| *x = i + 1);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn par_chunks_offsets_are_correct() {
        let mut v = vec![0usize; 513];
        par_chunks_mut(&mut v, 1, |_, start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }
}
