//! Field traits and the prime-field implementation macro.

use rand::RngCore;
use std::fmt::Debug;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of a finite field.
pub trait Field:
    Copy
    + Clone
    + Debug
    + Default
    + PartialEq
    + Eq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Returns true if this is the additive identity.
    fn is_zero(&self) -> bool;
    /// Squares this element.
    fn square(&self) -> Self;
    /// Doubles this element.
    fn double(&self) -> Self;
    /// Computes the multiplicative inverse, if this element is nonzero.
    fn invert(&self) -> Option<Self>;
    /// Raises this element to the power given by little-endian `u64` limbs.
    fn pow(&self, exp: &[u64]) -> Self;
    /// Samples a uniformly random element.
    fn random(rng: &mut impl RngCore) -> Self;
}

/// A prime-order field with canonical integer representation.
pub trait PrimeField: Field + Ord + std::hash::Hash {
    /// The modulus as little-endian limbs.
    const MODULUS: [u64; 4];
    /// Number of bits needed to represent the modulus.
    const NUM_BITS: u32;
    /// A fixed multiplicative generator of the field.
    const GENERATOR_U64: u64;

    /// Converts a `u64` into a field element.
    fn from_u64(v: u64) -> Self;
    /// Converts a `u128` into a field element (reduced mod p).
    fn from_u128(v: u128) -> Self;
    /// Converts a signed integer (negative values map to `p - |v|`).
    fn from_i64(v: i64) -> Self;
    /// Converts a signed 128-bit integer (negative values map to `p - |v|`).
    fn from_i128(v: i128) -> Self;
    /// Returns the canonical (non-Montgomery) little-endian limbs, `< p`.
    fn to_canonical(&self) -> [u64; 4];
    /// Builds an element from canonical limbs; `None` if `>= p`.
    fn from_canonical(limbs: [u64; 4]) -> Option<Self>;
    /// Canonical little-endian byte encoding (32 bytes).
    fn to_bytes(&self) -> [u8; 32];
    /// Decodes a canonical little-endian byte encoding.
    fn from_bytes(bytes: &[u8; 32]) -> Option<Self>;
    /// Reduces a 512-bit little-endian integer (for uniform hashing to field).
    fn from_u512(lo: [u64; 4], hi: [u64; 4]) -> Self;
    /// Interprets the element as a signed integer in `(-p/2, p/2]`.
    ///
    /// Fixed-point tensor values are small in magnitude, so this decodes
    /// them exactly; values with magnitude `>= 2^127` are saturated.
    fn to_signed_i128(&self) -> i128;
}

/// A prime field with a large power-of-two multiplicative subgroup (for FFTs).
pub trait FftField: PrimeField {
    /// `2^TWO_ADICITY` divides `p - 1`.
    const TWO_ADICITY: u32;
    /// A fixed multiplicative generator of the full group.
    fn multiplicative_generator() -> Self;
    /// A primitive `2^TWO_ADICITY`-th root of unity.
    fn root_of_unity() -> Self;
}

/// Inverts a slice of field elements in place using Montgomery's batch trick.
///
/// # Panics
///
/// Panics if any element is zero.
pub fn batch_invert<F: Field>(values: &mut [F]) {
    batch_invert_with_scratch(values, &mut Vec::new());
}

/// [`batch_invert`] with a caller-owned scratch buffer, so hot loops that
/// invert in rounds (the batch-affine MSM scheduler, chunked prover passes)
/// reuse one allocation instead of allocating a prefix-product vector per
/// round. `scratch` is cleared and left empty (capacity retained).
///
/// # Panics
///
/// Panics if any element is zero.
pub fn batch_invert_with_scratch<F: Field>(values: &mut [F], scratch: &mut Vec<F>) {
    if values.is_empty() {
        return;
    }
    scratch.clear();
    scratch.reserve(values.len());
    let mut acc = F::one();
    for v in values.iter() {
        scratch.push(acc);
        acc *= *v;
    }
    let mut inv = acc.invert().expect("batch_invert: zero element");
    for (v, p) in values.iter_mut().zip(scratch.drain(..)).rev() {
        let tmp = inv * *v;
        *v = inv * p;
        inv = tmp;
    }
}

/// Implements a 4-limb Montgomery-form prime field.
///
/// All derived constants (`R`, `R2`, `R3`, `INV`) are computed by `const fn`
/// from the modulus literal alone, eliminating constant-transcription risk.
#[macro_export]
macro_rules! impl_prime_field {
    ($vis:vis struct $name:ident, modulus = $modulus:expr, generator = $generator:expr, num_bits = $num_bits:expr, doc = $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Copy, Default)]
        $vis struct $name(pub(crate) [u64; 4]);

        impl $name {
            /// The modulus as little-endian limbs.
            pub const MODULUS: [u64; 4] = $modulus;
            /// `-p^{-1} mod 2^64`.
            pub const INV: u64 = $crate::field::mont::compute_inv(Self::MODULUS[0]);
            /// `2^256 mod p` (the Montgomery radix; also `one()`).
            pub const R: [u64; 4] = $crate::field::mont::compute_pow2_mod(&Self::MODULUS, 256);
            /// `2^512 mod p`.
            pub const R2: [u64; 4] = $crate::field::mont::compute_pow2_mod(&Self::MODULUS, 512);
            /// `2^768 mod p`.
            pub const R3: [u64; 4] = $crate::field::mont::compute_pow2_mod(&Self::MODULUS, 768);
            /// `p - 2` (inversion exponent).
            pub const MODULUS_MINUS_2: [u64; 4] =
                $crate::field::mont::sub_small(&Self::MODULUS, 2);

            /// The zero element (usable in const contexts).
            pub const ZERO: Self = Self([0, 0, 0, 0]);
            /// The one element (usable in const contexts).
            pub const ONE: Self = Self(Self::R);

            #[inline(always)]
            fn add_impl(&self, rhs: &Self) -> Self {
                use $crate::arith::adc;
                let (d0, c) = adc(self.0[0], rhs.0[0], 0);
                let (d1, c) = adc(self.0[1], rhs.0[1], c);
                let (d2, c) = adc(self.0[2], rhs.0[2], c);
                let (d3, _) = adc(self.0[3], rhs.0[3], c);
                Self($crate::field::mont::sub_p_if_ge(&[d0, d1, d2, d3], &Self::MODULUS))
            }

            #[inline(always)]
            fn sub_impl(&self, rhs: &Self) -> Self {
                use $crate::arith::{adc, sbb};
                let (d0, b) = sbb(self.0[0], rhs.0[0], 0);
                let (d1, b) = sbb(self.0[1], rhs.0[1], b);
                let (d2, b) = sbb(self.0[2], rhs.0[2], b);
                let (d3, b) = sbb(self.0[3], rhs.0[3], b);
                // Add p back if the subtraction underflowed.
                let mask = b; // 0 or u64::MAX
                let (d0, c) = adc(d0, Self::MODULUS[0] & mask, 0);
                let (d1, c) = adc(d1, Self::MODULUS[1] & mask, c);
                let (d2, c) = adc(d2, Self::MODULUS[2] & mask, c);
                let (d3, _) = adc(d3, Self::MODULUS[3] & mask, c);
                Self([d0, d1, d2, d3])
            }

            #[inline(always)]
            fn mul_impl(&self, rhs: &Self) -> Self {
                let wide = $crate::field::mont::mul_wide(&self.0, &rhs.0);
                Self($crate::field::mont::mont_reduce(
                    wide,
                    &Self::MODULUS,
                    Self::INV,
                ))
            }

            /// Raises to a power given as little-endian limbs (const-capable).
            pub fn pow_vartime(&self, exp: &[u64]) -> Self {
                let mut res = Self::ONE;
                for e in exp.iter().rev() {
                    for i in (0..64).rev() {
                        res = res.mul_impl(&res);
                        if (*e >> i) & 1 == 1 {
                            res = res.mul_impl(self);
                        }
                    }
                }
                res
            }
        }

        impl $crate::field::Field for $name {
            #[inline]
            fn zero() -> Self {
                Self::ZERO
            }
            #[inline]
            fn one() -> Self {
                Self::ONE
            }
            #[inline]
            fn is_zero(&self) -> bool {
                self.0 == [0, 0, 0, 0]
            }
            #[inline]
            fn square(&self) -> Self {
                self.mul_impl(self)
            }
            #[inline]
            fn double(&self) -> Self {
                self.add_impl(self)
            }
            fn invert(&self) -> Option<Self> {
                if $crate::field::Field::is_zero(self) {
                    None
                } else {
                    Some(self.pow_vartime(&Self::MODULUS_MINUS_2))
                }
            }
            fn pow(&self, exp: &[u64]) -> Self {
                self.pow_vartime(exp)
            }
            fn random(rng: &mut impl rand::RngCore) -> Self {
                // Rejection sampling over the minimal bit width.
                let top_mask = if $num_bits % 64 == 0 {
                    u64::MAX
                } else {
                    (1u64 << ($num_bits % 64)) - 1
                };
                loop {
                    let mut limbs = [0u64; 4];
                    for l in limbs.iter_mut() {
                        *l = rng.next_u64();
                    }
                    limbs[3] &= top_mask;
                    if $crate::field::mont::lt(&limbs, &Self::MODULUS) {
                        // Convert to Montgomery form.
                        let wide = $crate::field::mont::mul_wide(&limbs, &Self::R2);
                        return Self($crate::field::mont::mont_reduce(
                            wide,
                            &Self::MODULUS,
                            Self::INV,
                        ));
                    }
                }
            }
        }

        impl $crate::field::PrimeField for $name {
            const MODULUS: [u64; 4] = Self::MODULUS;
            const NUM_BITS: u32 = $num_bits;
            const GENERATOR_U64: u64 = $generator;

            fn from_u64(v: u64) -> Self {
                let wide = $crate::field::mont::mul_wide(&[v, 0, 0, 0], &Self::R2);
                Self($crate::field::mont::mont_reduce(
                    wide,
                    &Self::MODULUS,
                    Self::INV,
                ))
            }

            fn from_u128(v: u128) -> Self {
                let limbs = [v as u64, (v >> 64) as u64, 0, 0];
                let wide = $crate::field::mont::mul_wide(&limbs, &Self::R2);
                Self($crate::field::mont::mont_reduce(
                    wide,
                    &Self::MODULUS,
                    Self::INV,
                ))
            }

            fn from_i64(v: i64) -> Self {
                if v >= 0 {
                    Self::from_u64(v as u64)
                } else {
                    -Self::from_u64(v.unsigned_abs())
                }
            }

            fn from_i128(v: i128) -> Self {
                if v >= 0 {
                    Self::from_u128(v as u128)
                } else {
                    -Self::from_u128(v.unsigned_abs())
                }
            }

            fn to_canonical(&self) -> [u64; 4] {
                // Montgomery reduce [a, 0..0] to divide by R.
                let mut wide = [0u64; 8];
                wide[..4].copy_from_slice(&self.0);
                $crate::field::mont::mont_reduce(wide, &Self::MODULUS, Self::INV)
            }

            fn from_canonical(limbs: [u64; 4]) -> Option<Self> {
                if !$crate::field::mont::lt(&limbs, &Self::MODULUS) {
                    return None;
                }
                let wide = $crate::field::mont::mul_wide(&limbs, &Self::R2);
                Some(Self($crate::field::mont::mont_reduce(
                    wide,
                    &Self::MODULUS,
                    Self::INV,
                )))
            }

            fn to_bytes(&self) -> [u8; 32] {
                let limbs = self.to_canonical();
                let mut out = [0u8; 32];
                for (i, l) in limbs.iter().enumerate() {
                    out[i * 8..(i + 1) * 8].copy_from_slice(&l.to_le_bytes());
                }
                out
            }

            fn from_bytes(bytes: &[u8; 32]) -> Option<Self> {
                let mut limbs = [0u64; 4];
                for (i, l) in limbs.iter_mut().enumerate() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
                    *l = u64::from_le_bytes(b);
                }
                Self::from_canonical(limbs)
            }

            fn from_u512(lo: [u64; 4], hi: [u64; 4]) -> Self {
                // lo*R2/R + hi*R3/R = (lo + hi*2^256)*R mod p.
                let a = $crate::field::mont::mont_reduce(
                    $crate::field::mont::mul_wide(&lo, &Self::R2),
                    &Self::MODULUS,
                    Self::INV,
                );
                let b = $crate::field::mont::mont_reduce(
                    $crate::field::mont::mul_wide(&hi, &Self::R3),
                    &Self::MODULUS,
                    Self::INV,
                );
                Self(a).add_impl(&Self(b))
            }

            fn to_signed_i128(&self) -> i128 {
                let c = self.to_canonical();
                let neg = (-*self).to_canonical();
                let small = |l: &[u64; 4]| l[2] == 0 && l[3] == 0 && l[1] >> 63 == 0;
                if small(&c) {
                    (c[0] as u128 | ((c[1] as u128) << 64)) as i128
                } else if small(&neg) {
                    -((neg[0] as u128 | ((neg[1] as u128) << 64)) as i128)
                } else if $crate::field::mont::lt(&neg, &c) {
                    i128::MIN
                } else {
                    i128::MAX
                }
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl Eq for $name {}

        impl std::hash::Hash for $name {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                self.0.hash(state)
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                let a = $crate::field::PrimeField::to_canonical(self);
                let b = $crate::field::PrimeField::to_canonical(other);
                for i in (0..4).rev() {
                    match a[i].cmp(&b[i]) {
                        std::cmp::Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                std::cmp::Ordering::Equal
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let c = $crate::field::PrimeField::to_canonical(self);
                write!(
                    f,
                    "0x{:016x}{:016x}{:016x}{:016x}",
                    c[3], c[2], c[1], c[0]
                )
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(self, f)
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.add_impl(&rhs)
            }
        }
        impl std::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.sub_impl(&rhs)
            }
        }
        impl std::ops::Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.mul_impl(&rhs)
            }
        }
        impl std::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self::ZERO.sub_impl(&self)
            }
        }
        impl std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = self.add_impl(&rhs);
            }
        }
        impl std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.sub_impl(&rhs);
            }
        }
        impl std::ops::MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = self.mul_impl(&rhs);
            }
        }
        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }
        impl std::iter::Product for $name {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ONE, |a, b| a * b)
            }
        }
        impl<'a> std::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + *b)
            }
        }
        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                <Self as $crate::field::PrimeField>::from_u64(v)
            }
        }
    };
}

/// Const helpers for Montgomery arithmetic, shared by the field macro.
pub mod mont {
    use crate::arith::{adc, mac, sbb};

    /// Computes `-m0^{-1} mod 2^64` by Newton iteration.
    pub const fn compute_inv(m0: u64) -> u64 {
        // x_{k+1} = x_k (2 - m0 x_k) doubles correct low bits each step.
        let mut x = 1u64;
        let mut i = 0;
        while i < 6 {
            x = x.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(x)));
            i += 1;
        }
        x.wrapping_neg()
    }

    /// Returns true if `a < b` (little-endian limbs).
    pub const fn lt(a: &[u64; 4], b: &[u64; 4]) -> bool {
        let mut i = 3;
        loop {
            if a[i] < b[i] {
                return true;
            }
            if a[i] > b[i] {
                return false;
            }
            if i == 0 {
                return false;
            }
            i -= 1;
        }
    }

    /// Computes `a - small` for a small `u64` subtrahend (no full underflow).
    pub const fn sub_small(a: &[u64; 4], small: u64) -> [u64; 4] {
        let (d0, b) = sbb(a[0], small, 0);
        let (d1, b) = sbb(a[1], 0, b);
        let (d2, b) = sbb(a[2], 0, b);
        let (d3, _) = sbb(a[3], 0, b);
        [d0, d1, d2, d3]
    }

    /// Subtracts `p` from `v` if `v >= p` (v known `< 2p`, no carry-out).
    pub const fn sub_p_if_ge(v: &[u64; 4], p: &[u64; 4]) -> [u64; 4] {
        if lt(v, p) {
            *v
        } else {
            let (d0, b) = sbb(v[0], p[0], 0);
            let (d1, b) = sbb(v[1], p[1], b);
            let (d2, b) = sbb(v[2], p[2], b);
            let (d3, _) = sbb(v[3], p[3], b);
            [d0, d1, d2, d3]
        }
    }

    /// Computes `2^bits mod p` by repeated doubling (const-capable).
    pub const fn compute_pow2_mod(p: &[u64; 4], bits: u32) -> [u64; 4] {
        let mut v = [1u64, 0, 0, 0];
        let mut i = 0;
        while i < bits {
            // Double; p < 2^255 so no overflow of the 256-bit container as
            // long as v < p.
            let (d0, c) = adc(v[0], v[0], 0);
            let (d1, c) = adc(v[1], v[1], c);
            let (d2, c) = adc(v[2], v[2], c);
            let (d3, _) = adc(v[3], v[3], c);
            v = sub_p_if_ge(&[d0, d1, d2, d3], p);
            i += 1;
        }
        v
    }

    /// Full 256x256 -> 512-bit schoolbook multiplication.
    #[inline(always)]
    pub const fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
        let (t0, carry) = mac(0, a[0], b[0], 0);
        let (t1, carry) = mac(0, a[0], b[1], carry);
        let (t2, carry) = mac(0, a[0], b[2], carry);
        let (t3, t4) = mac(0, a[0], b[3], carry);

        let (t1, carry) = mac(t1, a[1], b[0], 0);
        let (t2, carry) = mac(t2, a[1], b[1], carry);
        let (t3, carry) = mac(t3, a[1], b[2], carry);
        let (t4, t5) = mac(t4, a[1], b[3], carry);

        let (t2, carry) = mac(t2, a[2], b[0], 0);
        let (t3, carry) = mac(t3, a[2], b[1], carry);
        let (t4, carry) = mac(t4, a[2], b[2], carry);
        let (t5, t6) = mac(t5, a[2], b[3], carry);

        let (t3, carry) = mac(t3, a[3], b[0], 0);
        let (t4, carry) = mac(t4, a[3], b[1], carry);
        let (t5, carry) = mac(t5, a[3], b[2], carry);
        let (t6, t7) = mac(t6, a[3], b[3], carry);

        [t0, t1, t2, t3, t4, t5, t6, t7]
    }

    /// Montgomery reduction of a 512-bit value: returns `t / 2^256 mod p`.
    #[inline(always)]
    pub const fn mont_reduce(t: [u64; 8], m: &[u64; 4], inv: u64) -> [u64; 4] {
        let [r0, r1, r2, r3, r4, r5, r6, r7] = t;

        let k = r0.wrapping_mul(inv);
        let (_, carry) = mac(r0, k, m[0], 0);
        let (r1, carry) = mac(r1, k, m[1], carry);
        let (r2, carry) = mac(r2, k, m[2], carry);
        let (r3, carry) = mac(r3, k, m[3], carry);
        let (r4, carry2) = adc(r4, 0, carry);

        let k = r1.wrapping_mul(inv);
        let (_, carry) = mac(r1, k, m[0], 0);
        let (r2, carry) = mac(r2, k, m[1], carry);
        let (r3, carry) = mac(r3, k, m[2], carry);
        let (r4, carry) = mac(r4, k, m[3], carry);
        let (r5, carry2) = adc(r5, carry2, carry);

        let k = r2.wrapping_mul(inv);
        let (_, carry) = mac(r2, k, m[0], 0);
        let (r3, carry) = mac(r3, k, m[1], carry);
        let (r4, carry) = mac(r4, k, m[2], carry);
        let (r5, carry) = mac(r5, k, m[3], carry);
        let (r6, carry2) = adc(r6, carry2, carry);

        let k = r3.wrapping_mul(inv);
        let (_, carry) = mac(r3, k, m[0], 0);
        let (r4, carry) = mac(r4, k, m[1], carry);
        let (r5, carry) = mac(r5, k, m[2], carry);
        let (r6, carry) = mac(r6, k, m[3], carry);
        let (r7, _) = adc(r7, carry2, carry);

        sub_p_if_ge(&[r4, r5, r6, r7], m)
    }
}
