//! Low-level 64-bit limb arithmetic helpers.
//!
//! These follow the conventions of the `ff`/`bls12_381` crates: carries are
//! plain `u64` values, borrows are encoded in the top bit of the borrow word
//! (so `u64::MAX` means "borrow pending").

/// Computes `a + b + carry`, returning the result and the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let ret = (a as u128) + (b as u128) + (carry as u128);
    (ret as u64, (ret >> 64) as u64)
}

/// Computes `a - (b + borrow)`, returning the result and the new borrow.
///
/// The incoming borrow is interpreted through its top bit, and the outgoing
/// borrow is `u64::MAX` when the subtraction underflowed, `0` otherwise.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let ret = (a as u128).wrapping_sub((b as u128) + ((borrow >> 63) as u128));
    (ret as u64, (ret >> 64) as u64)
}

/// Computes `a + b * c + carry`, returning the result and the new carry.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let ret = (a as u128) + ((b as u128) * (c as u128)) + (carry as u128);
    (ret as u64, (ret >> 64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 3), (6, 0));
    }

    #[test]
    fn sbb_borrows() {
        let (d, b) = sbb(0, 1, 0);
        assert_eq!(d, u64::MAX);
        assert_eq!(b, u64::MAX);
        let (d, b) = sbb(5, 3, 0);
        assert_eq!((d, b), (2, 0));
        // A pending borrow subtracts one more.
        let (d, b) = sbb(5, 3, u64::MAX);
        assert_eq!((d, b), (1, 0));
    }

    #[test]
    fn mac_wide() {
        let (lo, hi) = mac(1, u64::MAX, u64::MAX, 0);
        // (2^64-1)^2 + 1 = 2^128 - 2^65 + 2
        assert_eq!(lo, 2);
        assert_eq!(hi, u64::MAX - 1);
    }
}
