//! Prime-field arithmetic for the ZKML reproduction.
//!
//! This crate provides the BN254 scalar field [`Fr`] and base field [`Fq`]
//! in 4-limb Montgomery form, a tiny arbitrary-precision integer type for
//! one-time setup math, and the [`Field`]/[`PrimeField`]/[`FftField`] traits
//! the rest of the workspace builds on.
//!
//! All Montgomery constants are derived from the modulus literal by `const fn`
//! (see [`field::mont`]), so only the two modulus literals are transcribed
//! from the curve specification; everything else is computed and then
//! cross-checked against a big-integer reference implementation in tests.

pub mod arith;
pub mod bigint;
pub mod field;
mod fq;
mod fr;

pub use field::{batch_invert, batch_invert_with_scratch, FftField, Field, PrimeField};
pub use fq::Fq;
pub use fr::Fr;

#[cfg(test)]
mod proptests {
    use crate::bigint::BigUint;
    use crate::{Field, Fr, PrimeField};
    use proptest::prelude::*;

    fn arb_fr() -> impl Strategy<Value = Fr> {
        any::<[u64; 4]>().prop_map(|l| Fr::from_u512(l, [0, 0, 0, 0]))
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn mul_commutes(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn mul_distributes(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn sub_add_roundtrip(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a - b + b, a);
        }

        #[test]
        fn invert_is_inverse(a in arb_fr()) {
            if !a.is_zero() {
                prop_assert_eq!(a * a.invert().unwrap(), Fr::one());
            }
        }

        #[test]
        fn mul_matches_reference(a in arb_fr(), b in arb_fr()) {
            let r = BigUint::from_limbs(&Fr::MODULUS);
            let expect = BigUint::from_limbs(&a.to_canonical())
                .mul(&BigUint::from_limbs(&b.to_canonical()))
                .rem(&r);
            prop_assert_eq!((a * b).to_canonical(), expect.to_fixed::<4>());
        }

        #[test]
        fn pow_add_law(a in arb_fr(), e1 in 0u64..1000, e2 in 0u64..1000) {
            prop_assert_eq!(a.pow(&[e1]) * a.pow(&[e2]), a.pow(&[e1 + e2]));
        }

        #[test]
        fn bytes_roundtrip(a in arb_fr()) {
            prop_assert_eq!(Fr::from_bytes(&a.to_bytes()), Some(a));
        }
    }
}
