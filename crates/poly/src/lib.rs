//! Polynomial arithmetic for the ZKML proving stack.
//!
//! Provides power-of-two [`EvaluationDomain`]s with (coset) NTTs, dense
//! polynomials in coefficient ([`Coeffs`]) and evaluation ([`Evals`]) form,
//! and the Kate division used by the KZG opening procedure.

pub mod domain;
pub mod fft;
pub mod poly;

pub use domain::EvaluationDomain;
pub use poly::{Coeffs, Evals};
