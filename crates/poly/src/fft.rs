//! In-place radix-2 decimation-in-time NTT.
//!
//! Butterfly stages run in parallel on the `zkml-par` pool: early stages
//! (many independent blocks) split across blocks, late stages (few, wide
//! blocks) split the lo/hi halves of each block into paired chunks. Every
//! butterfly computes the same exact field values regardless of which thread
//! runs it, so results are bit-identical at any thread count.

use zkml_ff::FftField;

/// Minimum transform size worth scheduling on the pool; below this the
/// butterflies are cheaper than task dispatch.
const PAR_FFT_MIN: usize = 4096;

/// Minimum elements per parallel chunk inside a stage.
const PAR_CHUNK_MIN: usize = 1024;

/// Reverses the low `bits` bits of `n`.
#[inline]
pub fn bitreverse(n: usize, bits: u32) -> usize {
    n.reverse_bits() >> (usize::BITS - bits)
}

/// Fills `out` with `1, w, w^2, ...`, chunked across the pool. Each chunk
/// seeds itself with `w^start`, so the table is identical to the serial one.
fn powers_into<F: FftField>(out: &mut [F], w: F) {
    zkml_par::par_chunks_mut(out, PAR_CHUNK_MIN, |_, start, chunk| {
        let mut acc = w.pow(&[start as u64]);
        for slot in chunk.iter_mut() {
            *slot = acc;
            acc *= w;
        }
    });
}

/// One butterfly over paired `lo`/`hi` halves of a block, using twiddles
/// `twiddles[(offset + i) * stride]`.
#[inline]
fn butterfly<F: FftField>(
    lo: &mut [F],
    hi: &mut [F],
    twiddles: &[F],
    offset: usize,
    stride: usize,
) {
    for i in 0..lo.len() {
        let t = hi[i] * twiddles[(offset + i) * stride];
        let u = lo[i];
        lo[i] = u + t;
        hi[i] = u - t;
    }
}

/// Performs an in-place FFT of `a` (length `2^k`) using `omega` as the
/// primitive `2^k`-th root of unity.
///
/// # Panics
///
/// Panics if `a.len() != 2^k`.
pub fn fft_in_place<F: FftField>(a: &mut [F], omega: F, k: u32) {
    let n = a.len();
    assert_eq!(n, 1 << k, "fft length must equal 2^k");
    if n == 1 {
        return;
    }

    for i in 0..n {
        let ri = bitreverse(i, k);
        if i < ri {
            a.swap(i, ri);
        }
    }

    // Precompute twiddles for the largest stage once; smaller stages stride
    // through the same table.
    let half = n / 2;
    let mut twiddles = vec![F::one(); half];
    if n >= PAR_FFT_MIN && zkml_par::current_threads() > 1 {
        powers_into(&mut twiddles, omega);
    } else {
        let mut w = F::one();
        for slot in twiddles.iter_mut() {
            *slot = w;
            w *= omega;
        }
    }

    let parallel = n >= PAR_FFT_MIN && zkml_par::current_threads() > 1;
    let mut m = 1;
    while m < n {
        let stride = half / m;
        if !parallel {
            for start in (0..n).step_by(2 * m) {
                let (lo, hi) = a[start..start + 2 * m].split_at_mut(m);
                butterfly(lo, hi, &twiddles, 0, stride);
            }
        } else if m <= n / 4 {
            // Many independent blocks: one task per group of blocks.
            let blocks: Vec<&mut [F]> = a.chunks_mut(2 * m).collect();
            let blocks_per_task = (PAR_CHUNK_MIN / (2 * m)).max(1);
            let mut grouped: Vec<Vec<&mut [F]>> = Vec::new();
            let mut iter = blocks.into_iter();
            loop {
                let group: Vec<&mut [F]> = iter.by_ref().take(blocks_per_task).collect();
                if group.is_empty() {
                    break;
                }
                grouped.push(group);
            }
            let tw = &twiddles;
            zkml_par::par_for_each_mut(&mut grouped, |_, group| {
                for block in group.iter_mut() {
                    let (lo, hi) = block.split_at_mut(m);
                    butterfly(lo, hi, tw, 0, stride);
                }
            });
        } else {
            // Few wide blocks (final stages): split each block's halves into
            // paired chunks and process the pairs in parallel.
            let tw = &twiddles;
            let mut pairs: Vec<(usize, &mut [F], &mut [F])> = Vec::new();
            for block in a.chunks_mut(2 * m) {
                let (lo, hi) = block.split_at_mut(m);
                for (off, (lc, hc)) in lo
                    .chunks_mut(PAR_CHUNK_MIN)
                    .zip(hi.chunks_mut(PAR_CHUNK_MIN))
                    .enumerate()
                {
                    pairs.push((off * PAR_CHUNK_MIN, lc, hc));
                }
            }
            zkml_par::par_for_each_mut(&mut pairs, |_, (offset, lc, hc)| {
                butterfly(lc, hc, tw, *offset, stride);
            });
        }
        m *= 2;
    }
}

/// Performs an in-place inverse FFT (includes the `1/n` scaling).
pub fn ifft_in_place<F: FftField>(a: &mut [F], omega_inv: F, n_inv: F, k: u32) {
    fft_in_place(a, omega_inv, k);
    if a.len() >= PAR_FFT_MIN && zkml_par::current_threads() > 1 {
        zkml_par::par_chunks_mut(a, PAR_CHUNK_MIN, |_, _, chunk| {
            for v in chunk.iter_mut() {
                *v *= n_inv;
            }
        });
    } else {
        for v in a.iter_mut() {
            *v *= n_inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkml_ff::{FftField, Field, Fr, PrimeField};

    fn omega_for(k: u32) -> Fr {
        let mut w = Fr::root_of_unity();
        for _ in 0..(Fr::TWO_ADICITY - k) {
            w = w.square();
        }
        w
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in 0..7u32 {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);
            let mut evals = coeffs.clone();
            fft_in_place(&mut evals, omega, k);
            for (i, e) in evals.iter().enumerate() {
                // Naive evaluation at omega^i.
                let x = omega.pow(&[i as u64]);
                let mut acc = Fr::zero();
                for c in coeffs.iter().rev() {
                    acc = acc * x + *c;
                }
                assert_eq!(*e, acc, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 0..10u32 {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);
            let omega_inv = omega.invert().unwrap();
            let n_inv = Fr::from_u64(n as u64).invert().unwrap();
            let mut work = coeffs.clone();
            fft_in_place(&mut work, omega, k);
            ifft_in_place(&mut work, omega_inv, n_inv, k);
            assert_eq!(work, coeffs);
        }
    }

    /// Large-enough transforms take the parallel path; the result must be
    /// bit-identical to the serial pool at every stage shape.
    #[test]
    fn parallel_path_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in [12u32, 13] {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);

            let serial = zkml_par::with_pool(&zkml_par::Pool::new(1), || {
                let mut v = coeffs.clone();
                fft_in_place(&mut v, omega, k);
                v
            });
            for threads in [2usize, 4] {
                let pool = zkml_par::Pool::new(threads);
                let par = zkml_par::with_pool(&pool, || {
                    let mut v = coeffs.clone();
                    fft_in_place(&mut v, omega, k);
                    v
                });
                assert_eq!(serial, par, "k={k} threads={threads}");
            }
        }
    }
}
