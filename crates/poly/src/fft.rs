//! In-place radix-2 decimation-in-time NTT with cached twiddle tables and a
//! cache-blocked four-step layout for large transforms.
//!
//! The twiddle table (`1, ω, ω², …, ω^{n/2-1}`) is built once per domain via
//! [`build_twiddles`] and shared across every call through
//! [`fft_in_place_with`]; smaller stages and the four-step sub-transforms
//! stride through the same table, so no call recomputes powers.
//!
//! Transforms of size `2^k` with `k >=` [`FOUR_STEP_MIN_K`] use the
//! four-step (Bailey) decomposition `n = n1 * n2`: transpose, `n2` row FFTs
//! of size `n1`, a twiddle pass, transpose, `n1` row FFTs of size `n2`, and
//! a final reordering transpose. Each row fits in cache, unlike the late
//! stages of a monolithic radix-2 transform whose butterfly strides exceed
//! it. Field arithmetic is exact, so the four-step output is bit-identical
//! to the radix-2 one.
//!
//! Butterfly stages, row FFTs and transposes run in parallel on the
//! `zkml-par` pool with fixed chunk boundaries; every path computes the same
//! exact field values regardless of which thread runs it, so results are
//! bit-identical at any thread count.

use zkml_ff::FftField;

/// Minimum transform size worth scheduling on the pool; below this the
/// butterflies are cheaper than task dispatch.
const PAR_FFT_MIN: usize = 4096;

/// Minimum elements per parallel chunk inside a stage.
const PAR_CHUNK_MIN: usize = 1024;

/// Transforms of `2^k` elements with `k` at or above this use the four-step
/// cache-blocked layout.
pub const FOUR_STEP_MIN_K: u32 = 16;

/// Tile edge for the cache-blocked transpose.
const TILE: usize = 32;

/// Reverses the low `bits` bits of `n`.
#[inline]
pub fn bitreverse(n: usize, bits: u32) -> usize {
    n.reverse_bits() >> (usize::BITS - bits)
}

/// Builds the twiddle table `1, ω, ω², …, ω^{n/2-1}` for a size-`n`
/// transform. Domains cache this and pass it to [`fft_in_place_with`].
///
/// This runs inside the domains' `OnceLock` twiddle-cache initializers, so it
/// must stay strictly serial: scheduling pool tasks from a `get_or_init`
/// closure lets the initializing thread help-steal a sibling task that hits
/// the same cold cache and re-enter the `OnceLock`, which deadlocks the pool.
/// The build is a one-time per-domain cost; caching, not parallelism, is
/// what makes it cheap.
pub fn build_twiddles<F: FftField>(omega: F, n: usize) -> Vec<F> {
    let mut tw = Vec::with_capacity(n / 2);
    let mut acc = F::one();
    for _ in 0..n / 2 {
        tw.push(acc);
        acc *= omega;
    }
    tw
}

/// One butterfly over paired `lo`/`hi` halves of a block, using twiddles
/// `twiddles[(offset + i) * stride]`.
#[inline]
fn butterfly<F: FftField>(
    lo: &mut [F],
    hi: &mut [F],
    twiddles: &[F],
    offset: usize,
    stride: usize,
) {
    for i in 0..lo.len() {
        let t = hi[i] * twiddles[(offset + i) * stride];
        let u = lo[i];
        lo[i] = u + t;
        hi[i] = u - t;
    }
}

/// Serial radix-2 core. `stride0` maps sub-transform twiddle indices into
/// the full-size table: the transform's root is `ω^stride0`, so twiddle `j`
/// of the sub-transform is `twiddles[j * stride0]`.
fn radix2_serial<F: FftField>(a: &mut [F], k: u32, twiddles: &[F], stride0: usize) {
    let n = a.len();
    if n == 1 {
        return;
    }
    for i in 0..n {
        let ri = bitreverse(i, k);
        if i < ri {
            a.swap(i, ri);
        }
    }
    let half = n / 2;
    let mut m = 1;
    while m < n {
        let stride = (half / m) * stride0;
        for start in (0..n).step_by(2 * m) {
            let (lo, hi) = a[start..start + 2 * m].split_at_mut(m);
            butterfly(lo, hi, twiddles, 0, stride);
        }
        m *= 2;
    }
}

/// Parallel radix-2 path for mid-size transforms (stage-level parallelism).
fn radix2_parallel<F: FftField>(a: &mut [F], k: u32, twiddles: &[F]) {
    let n = a.len();
    for i in 0..n {
        let ri = bitreverse(i, k);
        if i < ri {
            a.swap(i, ri);
        }
    }
    let half = n / 2;
    let mut m = 1;
    while m < n {
        let stride = half / m;
        if m <= n / 4 {
            // Many independent blocks: one task per group of blocks.
            let blocks: Vec<&mut [F]> = a.chunks_mut(2 * m).collect();
            let blocks_per_task = (PAR_CHUNK_MIN / (2 * m)).max(1);
            let mut grouped: Vec<Vec<&mut [F]>> = Vec::new();
            let mut iter = blocks.into_iter();
            loop {
                let group: Vec<&mut [F]> = iter.by_ref().take(blocks_per_task).collect();
                if group.is_empty() {
                    break;
                }
                grouped.push(group);
            }
            zkml_par::par_for_each_mut(&mut grouped, |_, group| {
                for block in group.iter_mut() {
                    let (lo, hi) = block.split_at_mut(m);
                    butterfly(lo, hi, twiddles, 0, stride);
                }
            });
        } else {
            // Few wide blocks (final stages): split each block's halves into
            // paired chunks and process the pairs in parallel.
            let mut pairs: Vec<(usize, &mut [F], &mut [F])> = Vec::new();
            for block in a.chunks_mut(2 * m) {
                let (lo, hi) = block.split_at_mut(m);
                for (off, (lc, hc)) in lo
                    .chunks_mut(PAR_CHUNK_MIN)
                    .zip(hi.chunks_mut(PAR_CHUNK_MIN))
                    .enumerate()
                {
                    pairs.push((off * PAR_CHUNK_MIN, lc, hc));
                }
            }
            zkml_par::par_for_each_mut(&mut pairs, |_, (offset, lc, hc)| {
                butterfly(lc, hc, twiddles, *offset, stride);
            });
        }
        m *= 2;
    }
}

/// Cache-blocked transpose: `src` is `rows x cols` row-major; `dst` becomes
/// `cols x rows` row-major. Parallel over bands of output rows with fixed
/// boundaries, so the result is identical at any thread count.
fn transpose<F: FftField>(src: &[F], dst: &mut [F], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    let band = rows * TILE.min(cols);
    zkml_par::for_each_chunk_exact(dst, band, |_, start, out| {
        let c0 = start / rows;
        for r0 in (0..rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(rows);
            for (ci, orow) in out.chunks_exact_mut(rows).enumerate() {
                let c = c0 + ci;
                for r in r0..r1 {
                    orow[r] = src[r * cols + c];
                }
            }
        }
    });
}

/// Runs an independent radix-2 FFT on every `2^krow`-element row of `buf`,
/// parallel over groups of rows.
fn row_ffts<F: FftField>(buf: &mut [F], krow: u32, twiddles: &[F], stride0: usize) {
    let row_len = 1usize << krow;
    let rows_per_task = (PAR_CHUNK_MIN / row_len).max(1);
    zkml_par::for_each_chunk_exact(buf, row_len * rows_per_task, |_, _, chunk| {
        for row in chunk.chunks_exact_mut(row_len) {
            radix2_serial(row, krow, twiddles, stride0);
        }
    });
}

/// Four-step (Bailey) FFT: `n = n1 * n2` with the input viewed as `n1` rows
/// of `n2` columns. Column FFTs (as row FFTs after a transpose), a twiddle
/// pass by `ω^{s2·t1}`, row FFTs, and a reordering transpose. Every
/// sub-transform reads the shared full-size twiddle table with a stride.
fn four_step<F: FftField>(a: &mut [F], k: u32, twiddles: &[F]) {
    let n = a.len();
    let k1 = k / 2;
    let k2 = k - k1;
    let (n1, n2) = (1usize << k1, 1usize << k2);
    let mut buf = vec![F::zero(); n];

    // Inner FFTs over the row index s1: after the transpose, row s2 of `buf`
    // holds a[.., s2]; its FFT uses ω_{n1} = ω^{n2}.
    transpose(a, &mut buf, n1, n2);
    row_ffts(&mut buf, k1, twiddles, n2);

    // Twiddle: buf[s2][t1] *= ω^{s2·t1}, running powers of twiddles[s2].
    let rows_per_task = (PAR_CHUNK_MIN / n1).max(1);
    zkml_par::for_each_chunk_exact(&mut buf, n1 * rows_per_task, |_, start, chunk| {
        for (s2, row) in (start / n1..).zip(chunk.chunks_exact_mut(n1)) {
            if s2 > 0 {
                let w = twiddles[s2];
                let mut acc = w;
                for v in row.iter_mut().skip(1) {
                    *v *= acc;
                    acc *= w;
                }
            }
        }
    });

    // Outer FFTs over s2: transpose back to n1 rows of n2 columns; each
    // row's FFT uses ω_{n2} = ω^{n1}.
    transpose(&buf, a, n2, n1);
    row_ffts(a, k2, twiddles, n1);

    // Reorder: X[t2·n1 + t1] = a[t1·n2 + t2].
    transpose(a, &mut buf, n1, n2);
    a.copy_from_slice(&buf);
}

/// Performs an in-place FFT of `a` (length `2^k`) using a precomputed
/// twiddle table from [`build_twiddles`].
///
/// # Panics
///
/// Panics if `a.len() != 2^k` or the table does not cover half the domain.
pub fn fft_in_place_with<F: FftField>(a: &mut [F], k: u32, twiddles: &[F]) {
    let n = a.len();
    assert_eq!(n, 1 << k, "fft length must equal 2^k");
    if n == 1 {
        return;
    }
    assert_eq!(
        twiddles.len(),
        n / 2,
        "twiddle table must cover half the domain"
    );
    if k >= FOUR_STEP_MIN_K {
        four_step(a, k, twiddles);
    } else if n >= PAR_FFT_MIN && zkml_par::current_threads() > 1 {
        radix2_parallel(a, k, twiddles);
    } else {
        radix2_serial(a, k, twiddles, 1);
    }
}

/// Performs an in-place FFT of `a` (length `2^k`) using `omega` as the
/// primitive `2^k`-th root of unity, building the twiddle table for this
/// call. Domain-level callers should cache the table and use
/// [`fft_in_place_with`].
///
/// # Panics
///
/// Panics if `a.len() != 2^k`.
pub fn fft_in_place<F: FftField>(a: &mut [F], omega: F, k: u32) {
    let n = a.len();
    assert_eq!(n, 1 << k, "fft length must equal 2^k");
    if n == 1 {
        return;
    }
    let twiddles = build_twiddles(omega, n);
    fft_in_place_with(a, k, &twiddles);
}

/// Scales every element by `n_inv`, chunked across the pool.
fn scale_all<F: FftField>(a: &mut [F], n_inv: F) {
    if a.len() >= PAR_FFT_MIN && zkml_par::current_threads() > 1 {
        zkml_par::par_chunks_mut(a, PAR_CHUNK_MIN, |_, _, chunk| {
            for v in chunk.iter_mut() {
                *v *= n_inv;
            }
        });
    } else {
        for v in a.iter_mut() {
            *v *= n_inv;
        }
    }
}

/// Performs an in-place inverse FFT (includes the `1/n` scaling) using a
/// precomputed table of `omega_inv` powers.
pub fn ifft_in_place_with<F: FftField>(a: &mut [F], k: u32, inv_twiddles: &[F], n_inv: F) {
    fft_in_place_with(a, k, inv_twiddles);
    scale_all(a, n_inv);
}

/// Performs an in-place inverse FFT (includes the `1/n` scaling), building
/// the inverse twiddle table for this call.
pub fn ifft_in_place<F: FftField>(a: &mut [F], omega_inv: F, n_inv: F, k: u32) {
    fft_in_place(a, omega_inv, k);
    scale_all(a, n_inv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkml_ff::{FftField, Field, Fr, PrimeField};

    fn omega_for(k: u32) -> Fr {
        let mut w = Fr::root_of_unity();
        for _ in 0..(Fr::TWO_ADICITY - k) {
            w = w.square();
        }
        w
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in 0..7u32 {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);
            let mut evals = coeffs.clone();
            fft_in_place(&mut evals, omega, k);
            for (i, e) in evals.iter().enumerate() {
                // Naive evaluation at omega^i.
                let x = omega.pow(&[i as u64]);
                let mut acc = Fr::zero();
                for c in coeffs.iter().rev() {
                    acc = acc * x + *c;
                }
                assert_eq!(*e, acc, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 0..10u32 {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);
            let omega_inv = omega.invert().unwrap();
            let n_inv = Fr::from_u64(n as u64).invert().unwrap();
            let mut work = coeffs.clone();
            fft_in_place(&mut work, omega, k);
            ifft_in_place(&mut work, omega_inv, n_inv, k);
            assert_eq!(work, coeffs);
        }
    }

    /// The four-step path must produce exactly the radix-2 result — field
    /// arithmetic is exact, so any butterfly association yields identical
    /// values.
    #[test]
    fn four_step_matches_radix2() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = FOUR_STEP_MIN_K;
        let n = 1usize << k;
        let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let omega = omega_for(k);
        let twiddles = build_twiddles(omega, n);

        let mut via_four_step = coeffs.clone();
        four_step(&mut via_four_step, k, &twiddles);
        let mut via_radix2 = coeffs;
        radix2_serial(&mut via_radix2, k, &twiddles, 1);
        assert_eq!(via_four_step, via_radix2);
    }

    /// Four-step also holds for odd k (n1 != n2) — checked against the
    /// serial core at a sub-threshold size by calling it directly.
    #[test]
    fn four_step_matches_radix2_odd_k() {
        let mut rng = StdRng::seed_from_u64(6);
        for k in [7u32, 9] {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);
            let twiddles = build_twiddles(omega, n);
            let mut a = coeffs.clone();
            four_step(&mut a, k, &twiddles);
            let mut b = coeffs;
            radix2_serial(&mut b, k, &twiddles, 1);
            assert_eq!(a, b, "k={k}");
        }
    }

    /// Round-trip through the four-step threshold size.
    #[test]
    fn fft_ifft_roundtrip_four_step() {
        let mut rng = StdRng::seed_from_u64(7);
        let k = FOUR_STEP_MIN_K;
        let n = 1usize << k;
        let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let omega = omega_for(k);
        let omega_inv = omega.invert().unwrap();
        let n_inv = Fr::from_u64(n as u64).invert().unwrap();
        let tw = build_twiddles(omega, n);
        let itw = build_twiddles(omega_inv, n);
        let mut work = coeffs.clone();
        fft_in_place_with(&mut work, k, &tw);
        ifft_in_place_with(&mut work, k, &itw, n_inv);
        assert_eq!(work, coeffs);
    }

    /// Large-enough transforms take the parallel path; the result must be
    /// bit-identical to the serial pool at every stage shape, including the
    /// four-step size.
    #[test]
    fn parallel_path_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in [12u32, 13, FOUR_STEP_MIN_K] {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);

            let serial = zkml_par::with_pool(&zkml_par::Pool::new(1), || {
                let mut v = coeffs.clone();
                fft_in_place(&mut v, omega, k);
                v
            });
            for threads in [2usize, 4] {
                let pool = zkml_par::Pool::new(threads);
                let par = zkml_par::with_pool(&pool, || {
                    let mut v = coeffs.clone();
                    fft_in_place(&mut v, omega, k);
                    v
                });
                assert_eq!(serial, par, "k={k} threads={threads}");
            }
        }
    }
}
