//! In-place radix-2 decimation-in-time NTT.

use zkml_ff::FftField;

/// Reverses the low `bits` bits of `n`.
#[inline]
pub fn bitreverse(n: usize, bits: u32) -> usize {
    n.reverse_bits() >> (usize::BITS - bits)
}

/// Performs an in-place FFT of `a` (length `2^k`) using `omega` as the
/// primitive `2^k`-th root of unity.
///
/// # Panics
///
/// Panics if `a.len() != 2^k`.
pub fn fft_in_place<F: FftField>(a: &mut [F], omega: F, k: u32) {
    let n = a.len();
    assert_eq!(n, 1 << k, "fft length must equal 2^k");
    if n == 1 {
        return;
    }

    for i in 0..n {
        let ri = bitreverse(i, k);
        if i < ri {
            a.swap(i, ri);
        }
    }

    // Precompute twiddles for the largest stage once; smaller stages stride
    // through the same table.
    let half = n / 2;
    let mut twiddles = Vec::with_capacity(half);
    let mut w = F::one();
    for _ in 0..half {
        twiddles.push(w);
        w *= omega;
    }

    let mut m = 1;
    while m < n {
        let stride = half / m;
        for start in (0..n).step_by(2 * m) {
            for i in 0..m {
                let t = a[start + m + i] * twiddles[i * stride];
                let u = a[start + i];
                a[start + i] = u + t;
                a[start + m + i] = u - t;
            }
        }
        m *= 2;
    }
}

/// Performs an in-place inverse FFT (includes the `1/n` scaling).
pub fn ifft_in_place<F: FftField>(a: &mut [F], omega_inv: F, n_inv: F, k: u32) {
    fft_in_place(a, omega_inv, k);
    for v in a.iter_mut() {
        *v *= n_inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkml_ff::{FftField, Field, Fr, PrimeField};

    fn omega_for(k: u32) -> Fr {
        let mut w = Fr::root_of_unity();
        for _ in 0..(Fr::TWO_ADICITY - k) {
            w = w.square();
        }
        w
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in 0..7u32 {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);
            let mut evals = coeffs.clone();
            fft_in_place(&mut evals, omega, k);
            for (i, e) in evals.iter().enumerate() {
                // Naive evaluation at omega^i.
                let x = omega.pow(&[i as u64]);
                let mut acc = Fr::zero();
                for c in coeffs.iter().rev() {
                    acc = acc * x + *c;
                }
                assert_eq!(*e, acc, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 0..10u32 {
            let n = 1usize << k;
            let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let omega = omega_for(k);
            let omega_inv = omega.invert().unwrap();
            let n_inv = Fr::from_u64(n as u64).invert().unwrap();
            let mut work = coeffs.clone();
            fft_in_place(&mut work, omega, k);
            ifft_in_place(&mut work, omega_inv, n_inv, k);
            assert_eq!(work, coeffs);
        }
    }
}
