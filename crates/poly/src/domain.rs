//! Power-of-two evaluation domains.

use crate::fft::{build_twiddles, fft_in_place_with, ifft_in_place_with};
use std::sync::{Arc, OnceLock};
use zkml_ff::{batch_invert, FftField};

/// Minimum chunk for parallel coset scaling; each chunk re-seeds with one
/// `pow`, so tiny chunks would spend more on seeding than scaling.
const SCALE_CHUNK_MIN: usize = 1024;

/// Multiplies `a[i] *= g^i` in place, chunked across the pool. Each chunk
/// seeds with `g^start`, so the products match the serial loop bit for bit.
fn scale_by_powers<F: FftField>(a: &mut [F], g: F) {
    zkml_par::par_chunks_mut(a, SCALE_CHUNK_MIN, |_, start, chunk| {
        let mut cur = g.pow(&[start as u64]);
        for v in chunk.iter_mut() {
            *v *= cur;
            cur *= g;
        }
    });
}

/// A multiplicative subgroup of order `2^k`, plus precomputed constants for
/// (coset) FFTs over it.
#[derive(Clone, Debug)]
pub struct EvaluationDomain<F: FftField> {
    /// log2 of the domain size.
    pub k: u32,
    /// Domain size `n = 2^k`.
    pub n: usize,
    /// Primitive `n`-th root of unity.
    pub omega: F,
    /// `omega^{-1}`.
    pub omega_inv: F,
    /// `n^{-1}` as a field element.
    pub n_inv: F,
    /// Coset generator `g` (the field's multiplicative generator).
    pub coset_gen: F,
    /// `g^{-1}`.
    pub coset_gen_inv: F,
    /// Forward twiddle table (`1, ω, …, ω^{n/2-1}`), built on first FFT and
    /// shared by every clone of this domain — all prover phases over the
    /// same domain reuse one table.
    twiddles: Arc<OnceLock<Arc<Vec<F>>>>,
    /// Inverse twiddle table (powers of `ω^{-1}`).
    inv_twiddles: Arc<OnceLock<Arc<Vec<F>>>>,
}

impl<F: FftField> EvaluationDomain<F> {
    /// Creates the domain of size `2^k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the field's two-adicity.
    pub fn new(k: u32) -> Self {
        assert!(
            k <= F::TWO_ADICITY,
            "domain size 2^{k} exceeds field 2-adicity {}",
            F::TWO_ADICITY
        );
        let mut omega = F::root_of_unity();
        for _ in 0..(F::TWO_ADICITY - k) {
            omega = omega.square();
        }
        let n = 1usize << k;
        let coset_gen = F::multiplicative_generator();
        Self {
            k,
            n,
            omega,
            omega_inv: omega.invert().expect("omega nonzero"),
            n_inv: F::from_u64(n as u64).invert().expect("n nonzero"),
            coset_gen,
            coset_gen_inv: coset_gen.invert().expect("generator nonzero"),
            twiddles: Arc::new(OnceLock::new()),
            inv_twiddles: Arc::new(OnceLock::new()),
        }
    }

    /// Returns the cached forward twiddle table, building it on first use.
    pub fn twiddles(&self) -> Arc<Vec<F>> {
        self.twiddles
            .get_or_init(|| Arc::new(build_twiddles(self.omega, self.n)))
            .clone()
    }

    /// Returns the cached inverse twiddle table, building it on first use.
    pub fn inv_twiddles(&self) -> Arc<Vec<F>> {
        self.inv_twiddles
            .get_or_init(|| Arc::new(build_twiddles(self.omega_inv, self.n)))
            .clone()
    }

    /// Returns the domain elements `omega^0, ..., omega^{n-1}`.
    pub fn elements(&self) -> Vec<F> {
        let mut out = vec![F::one(); self.n];
        scale_by_powers(&mut out, self.omega);
        out
    }

    /// Converts coefficients to evaluations over the domain, in place.
    ///
    /// The input is zero-padded (or must already be) to length `n`.
    pub fn fft(&self, a: &mut Vec<F>) {
        assert!(a.len() <= self.n, "too many coefficients for domain");
        a.resize(self.n, F::zero());
        fft_in_place_with(a, self.k, &self.twiddles());
    }

    /// Converts evaluations over the domain back to coefficients, in place.
    pub fn ifft(&self, a: &mut [F]) {
        assert_eq!(a.len(), self.n, "evaluations must cover the domain");
        ifft_in_place_with(a, self.k, &self.inv_twiddles(), self.n_inv);
    }

    /// Evaluates the polynomial over the coset `g * H`, in place.
    pub fn coset_fft(&self, a: &mut Vec<F>) {
        assert!(a.len() <= self.n, "too many coefficients for domain");
        a.resize(self.n, F::zero());
        scale_by_powers(a, self.coset_gen);
        fft_in_place_with(a, self.k, &self.twiddles());
    }

    /// Interpolates evaluations over the coset `g * H` back to coefficients.
    pub fn coset_ifft(&self, a: &mut [F]) {
        assert_eq!(a.len(), self.n, "evaluations must cover the domain");
        ifft_in_place_with(a, self.k, &self.inv_twiddles(), self.n_inv);
        scale_by_powers(a, self.coset_gen_inv);
    }

    /// Evaluates the vanishing polynomial `X^n - 1` at `x`.
    pub fn evaluate_vanishing(&self, x: F) -> F {
        x.pow(&[self.n as u64]) - F::one()
    }

    /// Returns `x * omega^rotation` (negative rotations use `omega^{-1}`).
    pub fn rotate(&self, x: F, rotation: i32) -> F {
        let w = if rotation >= 0 {
            self.omega.pow(&[rotation as u64])
        } else {
            self.omega_inv.pow(&[(-(rotation as i64)) as u64])
        };
        x * w
    }

    /// Evaluates every Lagrange basis polynomial `l_i` at the point `x`.
    ///
    /// Uses the barycentric formula
    /// `l_i(x) = (omega^i / n) * (x^n - 1) / (x - omega^i)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` lies inside the domain (callers evaluate at random
    /// challenges, which hit the domain with negligible probability).
    pub fn lagrange_evals(&self, x: F) -> Vec<F> {
        let zh = self.evaluate_vanishing(x);
        assert!(!zh.is_zero(), "lagrange_evals: point in domain");
        let mut denoms: Vec<F> = Vec::with_capacity(self.n);
        let mut w = F::one();
        for _ in 0..self.n {
            denoms.push(x - w);
            w *= self.omega;
        }
        batch_invert(&mut denoms);
        let scale = zh * self.n_inv;
        let mut out = Vec::with_capacity(self.n);
        let mut w = F::one();
        for d in denoms {
            out.push(scale * w * d);
            w *= self.omega;
        }
        out
    }

    /// Evaluates a single Lagrange basis polynomial `l_i` at `x`.
    pub fn lagrange_eval(&self, i: usize, x: F) -> F {
        let zh = self.evaluate_vanishing(x);
        let wi = self.omega.pow(&[i as u64]);
        let denom = (x - wi).invert().expect("point not in domain");
        zh * self.n_inv * wi * denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkml_ff::{Field, Fr, PrimeField};

    #[test]
    fn coset_fft_roundtrip_and_offset() {
        let mut rng = StdRng::seed_from_u64(9);
        let domain = EvaluationDomain::<Fr>::new(5);
        let coeffs: Vec<Fr> = (0..domain.n).map(|_| Fr::random(&mut rng)).collect();

        let mut evals = coeffs.clone();
        domain.coset_fft(&mut evals);
        // Spot-check evaluation at g * omega^3.
        let x = domain.coset_gen * domain.omega.pow(&[3]);
        let mut acc = Fr::zero();
        for c in coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        assert_eq!(evals[3], acc);

        let mut back = evals;
        domain.coset_ifft(&mut back);
        assert_eq!(back, coeffs);
    }

    #[test]
    fn vanishing_is_zero_on_domain_nonzero_on_coset() {
        let domain = EvaluationDomain::<Fr>::new(4);
        for e in domain.elements() {
            assert!(domain.evaluate_vanishing(e).is_zero());
        }
        assert!(!domain.evaluate_vanishing(domain.coset_gen).is_zero());
    }

    #[test]
    fn lagrange_interpolation_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let domain = EvaluationDomain::<Fr>::new(4);
        let evals: Vec<Fr> = (0..domain.n).map(|_| Fr::random(&mut rng)).collect();
        let mut coeffs = evals.clone();
        domain.ifft(&mut coeffs);

        let x = Fr::random(&mut rng);
        let mut horner = Fr::zero();
        for c in coeffs.iter().rev() {
            horner = horner * x + *c;
        }
        let ls = domain.lagrange_evals(x);
        let bary: Fr = ls.iter().zip(evals.iter()).map(|(l, e)| *l * *e).sum();
        assert_eq!(bary, horner);
        // Single-basis evaluation agrees with the batch.
        for i in [0usize, 1, 7, 15] {
            assert_eq!(domain.lagrange_eval(i, x), ls[i]);
        }
    }

    /// Regression: many pool tasks hitting a *cold* twiddle cache at once.
    /// The `OnceLock` initializer must never schedule pool tasks — the
    /// initializing worker would help-steal a sibling FFT task, re-enter the
    /// same `OnceLock`, and deadlock the whole pool. Exercises the
    /// commit-and-prove shape (fresh domain, immediate parallel column FFTs).
    #[test]
    fn cold_twiddle_cache_survives_concurrent_pool_ffts() {
        let pool = zkml_par::Pool::new(2);
        zkml_par::with_pool(&pool, || {
            for round in 0u64..25 {
                let d = EvaluationDomain::<Fr>::new(10);
                let reference = {
                    // A separate instance: its own cache, so `d` stays cold.
                    let warm = EvaluationDomain::<Fr>::new(10);
                    let mut v: Vec<Fr> = (0..d.n).map(|j| Fr::from(round + j as u64)).collect();
                    warm.fft(&mut v);
                    v
                };
                let cols = zkml_par::par_map(8, |_| {
                    let mut v: Vec<Fr> = (0..d.n).map(|j| Fr::from(round + j as u64)).collect();
                    d.fft(&mut v);
                    v
                });
                for col in cols {
                    assert_eq!(col, reference);
                }
            }
        });
    }

    /// Twiddle caches are shared by clones (one table per domain instance)
    /// but never leak across domains of different sizes.
    #[test]
    fn twiddle_cache_shared_across_clones_and_isolated_across_domains() {
        let d4 = EvaluationDomain::<Fr>::new(4);
        let d5 = EvaluationDomain::<Fr>::new(5);
        let t4 = d4.twiddles();
        // A clone shares the same table allocation; repeated access too.
        assert!(Arc::ptr_eq(&t4, &d4.clone().twiddles()));
        assert!(Arc::ptr_eq(&t4, &d4.twiddles()));
        // Domains of different size have distinct, correctly-sized tables.
        let t5 = d5.twiddles();
        assert_eq!(t4.len(), d4.n / 2);
        assert_eq!(t5.len(), d5.n / 2);
        assert_eq!(t4[1], d4.omega);
        assert_eq!(t5[1], d5.omega);
        assert_ne!(d4.omega, d5.omega);
        // Inverse tables are separate from forward ones.
        assert_eq!(d4.inv_twiddles()[1], d4.omega_inv);
        // Round-trips through both domains stay correct once the caches are
        // warm — no cross-domain contamination.
        let mut rng = StdRng::seed_from_u64(11);
        for d in [&d4, &d5] {
            let coeffs: Vec<Fr> = (0..d.n).map(|_| Fr::random(&mut rng)).collect();
            let mut work = coeffs.clone();
            d.fft(&mut work);
            d.ifft(&mut work);
            assert_eq!(work, coeffs, "k={}", d.k);
        }
    }

    #[test]
    fn rotate_matches_omega_powers() {
        let domain = EvaluationDomain::<Fr>::new(3);
        let x = Fr::from_u64(17);
        assert_eq!(domain.rotate(x, 1), x * domain.omega);
        assert_eq!(domain.rotate(x, -1), x * domain.omega_inv);
        assert_eq!(domain.rotate(x, 0), x);
        assert_eq!(
            domain.rotate(x, -2),
            x * domain.omega_inv * domain.omega_inv
        );
    }
}
