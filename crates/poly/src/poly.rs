//! Dense polynomial containers in coefficient and evaluation form.

use std::ops::{Add, Index, IndexMut, Mul, Sub};
use zkml_ff::Field;

/// A dense polynomial in coefficient form (`coeffs[i]` multiplies `X^i`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coeffs<F: Field> {
    /// Coefficients, lowest degree first. May contain leading zeros.
    pub values: Vec<F>,
}

/// A polynomial in evaluation form over some (implicit) evaluation domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evals<F: Field> {
    /// Evaluations at `omega^0, ..., omega^{n-1}`.
    pub values: Vec<F>,
}

impl<F: Field> Coeffs<F> {
    /// Creates a polynomial from coefficients.
    pub fn new(values: Vec<F>) -> Self {
        Self { values }
    }

    /// The zero polynomial padded to `n` coefficients.
    pub fn zero(n: usize) -> Self {
        Self {
            values: vec![F::zero(); n],
        }
    }

    /// Number of stored coefficients (including leading zeros).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no coefficients are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn evaluate(&self, x: F) -> F {
        let mut acc = F::zero();
        for c in self.values.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: F) -> Self {
        Self {
            values: self.values.iter().map(|c| *c * s).collect(),
        }
    }

    /// Divides by the linear factor `(X - z)`, returning the quotient.
    ///
    /// This is the "Kate division" used to open KZG commitments: if
    /// `p(z) = v`, then `p(X) - v = q(X) (X - z)` exactly. The remainder
    /// (which equals `p(z)`) is discarded.
    pub fn kate_divide(&self, z: F) -> Self {
        if self.values.is_empty() {
            return Self { values: vec![] };
        }
        let mut q = vec![F::zero(); self.values.len() - 1];
        let mut acc = F::zero();
        for i in (1..self.values.len()).rev() {
            acc = self.values[i] + acc * z;
            q[i - 1] = acc;
        }
        Self { values: q }
    }

    /// Naive multiplication (test/reference use only).
    pub fn mul_naive(&self, other: &Self) -> Self {
        if self.values.is_empty() || other.values.is_empty() {
            return Self { values: vec![] };
        }
        let mut out = vec![F::zero(); self.values.len() + other.values.len() - 1];
        for (i, a) in self.values.iter().enumerate() {
            for (j, b) in other.values.iter().enumerate() {
                out[i + j] += *a * *b;
            }
        }
        Self { values: out }
    }

    /// Degree of the polynomial ignoring leading zeros (zero poly -> 0).
    pub fn degree(&self) -> usize {
        self.values.iter().rposition(|c| !c.is_zero()).unwrap_or(0)
    }
}

impl<F: Field> Evals<F> {
    /// Creates evaluations from raw values.
    pub fn new(values: Vec<F>) -> Self {
        Self { values }
    }

    /// The all-zero evaluation vector of length `n`.
    pub fn zero(n: usize) -> Self {
        Self {
            values: vec![F::zero(); n],
        }
    }

    /// Number of evaluation points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no evaluations are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Scales every evaluation by `s`.
    pub fn scale(&self, s: F) -> Self {
        Self {
            values: self.values.iter().map(|c| *c * s).collect(),
        }
    }
}

macro_rules! impl_pointwise {
    ($ty:ident) => {
        impl<F: Field> Add for &$ty<F> {
            type Output = $ty<F>;
            fn add(self, rhs: Self) -> $ty<F> {
                assert_eq!(self.values.len(), rhs.values.len());
                $ty {
                    values: self
                        .values
                        .iter()
                        .zip(&rhs.values)
                        .map(|(a, b)| *a + *b)
                        .collect(),
                }
            }
        }
        impl<F: Field> Sub for &$ty<F> {
            type Output = $ty<F>;
            fn sub(self, rhs: Self) -> $ty<F> {
                assert_eq!(self.values.len(), rhs.values.len());
                $ty {
                    values: self
                        .values
                        .iter()
                        .zip(&rhs.values)
                        .map(|(a, b)| *a - *b)
                        .collect(),
                }
            }
        }
        impl<F: Field> Index<usize> for $ty<F> {
            type Output = F;
            fn index(&self, i: usize) -> &F {
                &self.values[i]
            }
        }
        impl<F: Field> IndexMut<usize> for $ty<F> {
            fn index_mut(&mut self, i: usize) -> &mut F {
                &mut self.values[i]
            }
        }
    };
}

impl_pointwise!(Coeffs);
impl_pointwise!(Evals);

impl<F: Field> Mul for &Evals<F> {
    type Output = Evals<F>;
    fn mul(self, rhs: Self) -> Evals<F> {
        assert_eq!(self.values.len(), rhs.values.len());
        Evals {
            values: self
                .values
                .iter()
                .zip(&rhs.values)
                .map(|(a, b)| *a * *b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkml_ff::{Fr, PrimeField};

    #[test]
    fn horner_evaluation() {
        // p(x) = 3 + 2x + x^2; p(5) = 3 + 10 + 25 = 38.
        let p = Coeffs::new(vec![Fr::from_u64(3), Fr::from_u64(2), Fr::from_u64(1)]);
        assert_eq!(p.evaluate(Fr::from_u64(5)), Fr::from_u64(38));
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn kate_division_identity() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Coeffs::new((0..17).map(|_| Fr::random(&mut rng)).collect());
        let z = Fr::random(&mut rng);
        let v = p.evaluate(z);
        let q = p.kate_divide(z);
        // Check p(X) - v == q(X) * (X - z) at a random point.
        let x = Fr::random(&mut rng);
        assert_eq!(p.evaluate(x) - v, q.evaluate(x) * (x - z));
    }

    #[test]
    fn pointwise_ops() {
        let a = Evals::new(vec![Fr::from_u64(1), Fr::from_u64(2)]);
        let b = Evals::new(vec![Fr::from_u64(10), Fr::from_u64(20)]);
        assert_eq!((&a + &b).values, vec![Fr::from_u64(11), Fr::from_u64(22)]);
        assert_eq!((&b - &a).values, vec![Fr::from_u64(9), Fr::from_u64(18)]);
        assert_eq!((&a * &b).values, vec![Fr::from_u64(10), Fr::from_u64(40)]);
        assert_eq!(a.scale(Fr::from_u64(3)).values[1], Fr::from_u64(6));
    }

    #[test]
    fn mul_naive_degree() {
        let a = Coeffs::new(vec![Fr::from_u64(1), Fr::from_u64(1)]); // 1 + x
        let sq = a.mul_naive(&a); // 1 + 2x + x^2
        assert_eq!(
            sq.values,
            vec![Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(1)]
        );
    }
}
