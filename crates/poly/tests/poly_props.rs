//! Property tests for polynomial arithmetic and evaluation domains.

use proptest::prelude::*;
use zkml_ff::{Field, Fr, PrimeField};
use zkml_poly::{Coeffs, EvaluationDomain};

fn fr() -> impl Strategy<Value = Fr> {
    any::<u64>().prop_map(Fr::from_u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fft_is_linear(k in 2u32..7, seed in any::<u64>()) {
        let domain = EvaluationDomain::<Fr>::new(k);
        let n = domain.n;
        let mk = |s: u64| -> Vec<Fr> {
            (0..n).map(|i| Fr::from_u64(s.wrapping_mul(i as u64 + 1))).collect()
        };
        let a = mk(seed);
        let b = mk(seed.wrapping_add(7));
        let sum: Vec<Fr> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        domain.fft(&mut fa);
        domain.fft(&mut fb);
        domain.fft(&mut fs);
        for i in 0..n {
            prop_assert_eq!(fs[i], fa[i] + fb[i]);
        }
    }

    #[test]
    fn kate_division_exact(coeffs in prop::collection::vec(fr(), 1..32), z in fr(), x in fr()) {
        let p = Coeffs::new(coeffs);
        let v = p.evaluate(z);
        let q = p.kate_divide(z);
        prop_assert_eq!(p.evaluate(x) - v, q.evaluate(x) * (x - z));
    }

    #[test]
    fn mul_naive_matches_evaluation(a in prop::collection::vec(fr(), 1..12),
                                    b in prop::collection::vec(fr(), 1..12),
                                    x in fr()) {
        let pa = Coeffs::new(a);
        let pb = Coeffs::new(b);
        let prod = pa.mul_naive(&pb);
        prop_assert_eq!(prod.evaluate(x), pa.evaluate(x) * pb.evaluate(x));
    }

    #[test]
    fn lagrange_basis_partition_of_unity(k in 2u32..6, x in fr()) {
        let domain = EvaluationDomain::<Fr>::new(k);
        prop_assume!(!domain.evaluate_vanishing(x).is_zero());
        let ls = domain.lagrange_evals(x);
        let total: Fr = ls.iter().copied().sum();
        // sum_i l_i(x) = 1 for any x.
        prop_assert_eq!(total, Fr::one());
    }

    #[test]
    fn coset_fft_matches_horner(k in 2u32..6, seed in any::<u64>(), idx in 0usize..16) {
        let domain = EvaluationDomain::<Fr>::new(k);
        let coeffs: Vec<Fr> = (0..domain.n)
            .map(|i| Fr::from_u64(seed.wrapping_mul(i as u64 * 31 + 17)))
            .collect();
        let idx = idx % domain.n;
        let mut evals = coeffs.clone();
        domain.coset_fft(&mut evals);
        let x = domain.coset_gen * domain.omega.pow(&[idx as u64]);
        prop_assert_eq!(evals[idx], Coeffs::new(coeffs).evaluate(x));
    }
}
