//! The generic dense tensor container.

use crate::shape::{
    broadcast_index, broadcast_shape, flatten_index, numel, strides, unflatten_index,
};

/// A dense row-major n-dimensional tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Clone> Tensor<T> {
    /// Creates a tensor from a shape and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn new(shape: Vec<usize>, data: Vec<T>) -> Self {
        assert_eq!(numel(&shape), data.len(), "shape/data mismatch");
        Self { shape, data }
    }

    /// Creates a tensor filled with a value.
    pub fn full(shape: Vec<usize>, value: T) -> Self {
        let n = numel(&shape);
        Self {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a rank-1 tensor.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self {
            shape: vec![data.len()],
            data,
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: T) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Element access by multi-index.
    pub fn get(&self, index: &[usize]) -> &T {
        &self.data[flatten_index(&self.shape, index)]
    }

    /// Mutable element access by multi-index.
    pub fn get_mut(&mut self, index: &[usize]) -> &mut T {
        let off = flatten_index(&self.shape, index);
        &mut self.data[off]
    }

    /// Reshapes without moving data.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Self {
        assert_eq!(numel(&shape), self.data.len(), "reshape volume mismatch");
        Self {
            shape,
            data: self.data.clone(),
        }
    }

    /// Permutes axes.
    pub fn transpose(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.shape.len(), "permutation rank mismatch");
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut data = Vec::with_capacity(self.data.len());
        for off in 0..self.data.len() {
            let new_idx = unflatten_index(&new_shape, off);
            let mut old_idx = vec![0usize; perm.len()];
            for (new_axis, &old_axis) in perm.iter().enumerate() {
                old_idx[old_axis] = new_idx[new_axis];
            }
            data.push(self.get(&old_idx).clone());
        }
        Self {
            shape: new_shape,
            data,
        }
    }

    /// Extracts the half-open box `[starts, ends)`.
    pub fn slice(&self, starts: &[usize], ends: &[usize]) -> Self {
        assert_eq!(starts.len(), self.shape.len());
        assert_eq!(ends.len(), self.shape.len());
        let new_shape: Vec<usize> = starts
            .iter()
            .zip(ends)
            .map(|(s, e)| {
                assert!(s <= e, "slice start after end");
                e - s
            })
            .collect();
        let mut data = Vec::with_capacity(numel(&new_shape));
        for off in 0..numel(&new_shape) {
            let rel = unflatten_index(&new_shape, off);
            let abs: Vec<usize> = rel.iter().zip(starts).map(|(r, s)| r + s).collect();
            data.push(self.get(&abs).clone());
        }
        Self {
            shape: new_shape,
            data,
        }
    }

    /// Concatenates tensors along an axis.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree off-axis or the list is empty.
    pub fn concat(parts: &[&Tensor<T>], axis: usize) -> Self {
        assert!(!parts.is_empty(), "concat of nothing");
        let mut shape = parts[0].shape.clone();
        for p in &parts[1..] {
            assert_eq!(p.shape.len(), shape.len(), "concat rank mismatch");
            for (d, (a, b)) in shape.iter().zip(&p.shape).enumerate() {
                assert!(d == axis || a == b, "concat off-axis shape mismatch");
            }
            shape[axis] += p.shape[axis];
        }
        let mut out = Vec::with_capacity(numel(&shape));
        for off in 0..numel(&shape) {
            let mut idx = unflatten_index(&shape, off);
            let mut k = idx[axis];
            let mut part = 0;
            while k >= parts[part].shape[axis] {
                k -= parts[part].shape[axis];
                part += 1;
            }
            idx[axis] = k;
            out.push(parts[part].get(&idx).clone());
        }
        Self { shape, data: out }
    }

    /// Pads with a constant value: `pads[axis] = (before, after)`.
    pub fn pad(&self, pads: &[(usize, usize)], value: T) -> Self {
        assert_eq!(pads.len(), self.shape.len());
        let shape: Vec<usize> = self
            .shape
            .iter()
            .zip(pads)
            .map(|(d, (b, a))| d + b + a)
            .collect();
        let mut data = Vec::with_capacity(numel(&shape));
        for off in 0..numel(&shape) {
            let idx = unflatten_index(&shape, off);
            let mut inner = Vec::with_capacity(idx.len());
            let mut inside = true;
            for ((i, (b, _)), d) in idx.iter().zip(pads).zip(&self.shape) {
                if *i < *b || *i >= b + d {
                    inside = false;
                    break;
                }
                inner.push(i - b);
            }
            data.push(if inside {
                self.get(&inner).clone()
            } else {
                value.clone()
            });
        }
        Self { shape, data }
    }

    /// Broadcasts to a larger shape (numpy rules).
    pub fn broadcast_to(&self, shape: &[usize]) -> Self {
        assert!(
            broadcast_shape(&self.shape, shape) == Some(shape.to_vec()),
            "cannot broadcast {:?} to {:?}",
            self.shape,
            shape
        );
        let mut data = Vec::with_capacity(numel(shape));
        for off in 0..numel(shape) {
            let idx = unflatten_index(shape, off);
            let src = broadcast_index(&self.shape, &idx);
            data.push(self.get(&src).clone());
        }
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Applies a function elementwise.
    pub fn map<U: Clone>(&self, f: impl Fn(&T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Combines two tensors elementwise with broadcasting.
    pub fn zip<U: Clone, V: Clone>(&self, other: &Tensor<U>, f: impl Fn(&T, &U) -> V) -> Tensor<V> {
        let shape = broadcast_shape(&self.shape, &other.shape)
            .unwrap_or_else(|| panic!("zip: {:?} vs {:?}", self.shape, other.shape));
        let mut data = Vec::with_capacity(numel(&shape));
        for off in 0..numel(&shape) {
            let idx = unflatten_index(&shape, off);
            let a = self.get(&broadcast_index(&self.shape, &idx));
            let b = other.get(&broadcast_index(&other.shape, &idx));
            data.push(f(a, b));
        }
        Tensor { shape, data }
    }

    /// Removes a size-1 axis.
    pub fn squeeze(&self, axis: usize) -> Self {
        assert_eq!(self.shape[axis], 1, "squeeze of non-unit axis");
        let mut shape = self.shape.clone();
        shape.remove(axis);
        Self {
            shape,
            data: self.data.clone(),
        }
    }

    /// Inserts a size-1 axis.
    pub fn expand_dims(&self, axis: usize) -> Self {
        let mut shape = self.shape.clone();
        shape.insert(axis, 1);
        Self {
            shape,
            data: self.data.clone(),
        }
    }

    /// Row-major strides for iteration helpers.
    pub fn strides(&self) -> Vec<usize> {
        strides(&self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t123() -> Tensor<i64> {
        Tensor::new(vec![2, 3], vec![1, 2, 3, 4, 5, 6])
    }

    #[test]
    fn indexing() {
        let t = t123();
        assert_eq!(*t.get(&[0, 0]), 1);
        assert_eq!(*t.get(&[1, 2]), 6);
    }

    #[test]
    fn transpose_2d() {
        let t = t123().transpose(&[1, 0]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn transpose_3d_roundtrip() {
        let t = Tensor::new(vec![2, 3, 4], (0..24i64).collect());
        let p = t.transpose(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(*p.get(&[3, 1, 2]), *t.get(&[1, 2, 3]));
        let back = p.transpose(&[1, 2, 0]);
        assert_eq!(back, t);
    }

    #[test]
    fn slicing() {
        let t = t123();
        let s = t.slice(&[0, 1], &[2, 3]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2, 3, 5, 6]);
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = t123();
        let b = t123();
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.shape(), &[4, 3]);
        assert_eq!(*c.get(&[3, 2]), 6);
        let d = Tensor::concat(&[&a, &b], 1);
        assert_eq!(d.shape(), &[2, 6]);
        assert_eq!(*d.get(&[1, 5]), 6);
        assert_eq!(*d.get(&[1, 2]), 6);
        assert_eq!(*d.get(&[1, 3]), 4);
    }

    #[test]
    fn padding() {
        let t = t123().pad(&[(1, 0), (0, 2)], 0);
        assert_eq!(t.shape(), &[3, 5]);
        assert_eq!(*t.get(&[0, 0]), 0);
        assert_eq!(*t.get(&[1, 0]), 1);
        assert_eq!(*t.get(&[2, 4]), 0);
        assert_eq!(*t.get(&[2, 2]), 6);
    }

    #[test]
    fn broadcast_and_zip() {
        let a = Tensor::new(vec![2, 1], vec![10i64, 20]);
        let b = Tensor::new(vec![3], vec![1i64, 2, 3]);
        let s = a.zip(&b, |x, y| x + y);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.data(), &[11, 12, 13, 21, 22, 23]);
    }

    #[test]
    fn squeeze_expand() {
        let t = Tensor::new(vec![1, 3], vec![1i64, 2, 3]);
        let s = t.squeeze(0);
        assert_eq!(s.shape(), &[3]);
        let e = s.expand_dims(1);
        assert_eq!(e.shape(), &[3, 1]);
    }

    #[test]
    #[should_panic(expected = "reshape volume mismatch")]
    fn bad_reshape_panics() {
        t123().reshape(vec![4, 2]);
    }
}
