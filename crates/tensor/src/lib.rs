//! n-dimensional tensors and fixed-point quantization.
//!
//! The same generic container backs f32 reference tensors, quantized i64
//! tensors, and (in the `zkml` core crate) tensors of circuit cell
//! references — which is what makes the paper's "shape operations are free"
//! property (§5.1) fall out naturally: shape ops only rearrange references.

pub mod fixed;
pub mod shape;
pub mod tensor;

pub use fixed::FixedPoint;
pub use tensor::Tensor;
