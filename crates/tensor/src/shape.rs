//! Shape utilities: strides, index arithmetic, broadcasting.

/// Computes row-major strides for a shape.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Total number of elements of a shape.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Converts a multi-index to a flat row-major offset.
///
/// # Panics
///
/// Panics if the index rank or any coordinate is out of range.
pub fn flatten_index(shape: &[usize], index: &[usize]) -> usize {
    assert_eq!(shape.len(), index.len(), "index rank mismatch");
    let mut off = 0;
    let st = strides(shape);
    for ((i, dim), s) in index.iter().zip(shape).zip(&st) {
        assert!(i < dim, "index {i} out of range for dim {dim}");
        off += i * s;
    }
    off
}

/// Converts a flat offset to a multi-index.
pub fn unflatten_index(shape: &[usize], mut off: usize) -> Vec<usize> {
    let st = strides(shape);
    let mut idx = Vec::with_capacity(shape.len());
    for s in &st {
        idx.push(off / s);
        off %= s;
    }
    idx
}

/// Computes the broadcast shape of two shapes (numpy rules).
///
/// Returns `None` if the shapes are incompatible.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = Vec::with_capacity(rank);
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        if da == db || da == 1 || db == 1 {
            out.push(da.max(db));
        } else {
            return None;
        }
    }
    Some(out)
}

/// Maps an index in the broadcast output back to an index in an input of
/// shape `src` (which broadcasts to `dst`).
pub fn broadcast_index(src: &[usize], dst_index: &[usize]) -> Vec<usize> {
    let offset = dst_index.len() - src.len();
    src.iter()
        .enumerate()
        .map(|(i, &d)| if d == 1 { 0 } else { dst_index[i + offset] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn flat_roundtrip() {
        let shape = [3, 4, 5];
        for off in [0usize, 1, 19, 59] {
            let idx = unflatten_index(&shape, off);
            assert_eq!(flatten_index(&shape, &idx), off);
        }
    }

    #[test]
    fn broadcasting_rules() {
        assert_eq!(broadcast_shape(&[3, 1], &[1, 4]), Some(vec![3, 4]));
        assert_eq!(broadcast_shape(&[5], &[2, 5]), Some(vec![2, 5]));
        assert_eq!(broadcast_shape(&[2, 3], &[3, 2]), None);
        assert_eq!(broadcast_shape(&[1], &[7]), Some(vec![7]));
    }

    #[test]
    fn broadcast_index_maps_ones_to_zero() {
        // src [3,1] -> dst [3,4]; dst index (2,3) -> src (2,0).
        assert_eq!(broadcast_index(&[3, 1], &[2, 3]), vec![2, 0]);
        // src [5] -> dst [2,5]; dst (1,4) -> src (4).
        assert_eq!(broadcast_index(&[5], &[1, 4]), vec![4]);
    }
}
