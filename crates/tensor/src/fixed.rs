//! Fixed-point quantization.
//!
//! ZKML represents every tensor value as a fixed-point integer with a
//! global, compiler-chosen scale factor `SF = 2^scale_bits` (§4.1). The
//! choice of `SF` couples to the circuit: pointwise non-linearities are
//! lookup tables over the input range, so larger scale factors force larger
//! tables and therefore more rows (§5.1) — one of the tradeoffs the
//! optimizer navigates.

use crate::tensor::Tensor;

/// Fixed-point format: values are stored as `round(x * 2^scale_bits)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedPoint {
    /// log2 of the scale factor.
    pub scale_bits: u32,
}

impl FixedPoint {
    /// Creates a format with the given fractional bits.
    pub fn new(scale_bits: u32) -> Self {
        assert!(scale_bits <= 30, "scale factor too large for i64 products");
        Self { scale_bits }
    }

    /// The scale factor `2^scale_bits`.
    pub fn scale(&self) -> i64 {
        1i64 << self.scale_bits
    }

    /// Quantizes a single value (round to nearest, ties away from zero).
    pub fn quantize(&self, x: f32) -> i64 {
        let v = (x as f64) * self.scale() as f64;
        v.round() as i64
    }

    /// Dequantizes a single value.
    pub fn dequantize(&self, q: i64) -> f32 {
        (q as f64 / self.scale() as f64) as f32
    }

    /// Quantizes a tensor.
    pub fn quantize_tensor(&self, t: &Tensor<f32>) -> Tensor<i64> {
        t.map(|x| self.quantize(*x))
    }

    /// Dequantizes a tensor.
    pub fn dequantize_tensor(&self, t: &Tensor<i64>) -> Tensor<f32> {
        t.map(|q| self.dequantize(*q))
    }

    /// Rescales a double-scaled product back to single scale with rounding
    /// (`DivRound(x, SF)` from Table 4 of the paper).
    pub fn rescale(&self, x: i64) -> i64 {
        div_round(x, self.scale())
    }
}

/// Rounded integer division `round(a / b)` with the paper's `DivRound`
/// gadget semantics: `floor((2a + b) / 2b)` — round-half-up, uniformly for
/// negative numerators (euclidean floor). This is exactly the relation the
/// in-circuit constraint `2a + b = 2b*q + r, r in [0, 2b)` enforces, so the
/// reference executor and the witness agree bit-for-bit.
pub fn div_round(a: i64, b: i64) -> i64 {
    assert!(b > 0, "div_round requires positive divisor");
    (2 * a + b).div_euclid(2 * b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_is_close() {
        let fp = FixedPoint::new(10);
        for x in [-3.25f32, 0.0, 0.001, 1.5, 100.125, -0.4999] {
            let q = fp.quantize(x);
            let back = fp.dequantize(q);
            assert!((back - x).abs() <= 1.0 / fp.scale() as f32, "{x} -> {back}");
        }
    }

    #[test]
    fn div_round_matches_float_half_up() {
        for a in -100i64..=100 {
            for b in [1i64, 2, 3, 7, 16] {
                // Round-half-up: floor(a/b + 1/2).
                let expect = ((a as f64 / b as f64) + 0.5).floor() as i64;
                let got = div_round(a, b);
                assert_eq!(got, expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn rescale_after_product() {
        let fp = FixedPoint::new(8);
        let a = fp.quantize(1.5);
        let b = fp.quantize(2.25);
        let prod = fp.rescale(a * b);
        assert!((fp.dequantize(prod) - 3.375).abs() < 0.01);
    }

    #[test]
    fn tensor_quantization() {
        let fp = FixedPoint::new(4);
        let t = Tensor::from_vec(vec![0.5f32, -0.25, 2.0]);
        let q = fp.quantize_tensor(&t);
        assert_eq!(q.data(), &[8, -4, 32]);
        let d = fp.dequantize_tensor(&q);
        assert_eq!(d.data(), &[0.5, -0.25, 2.0]);
    }
}
