//! A halo2-style Plonkish proving system.
//!
//! Implements the circuit model the ZKML paper compiles to (§3):
//!
//! * a 2D grid with a power-of-two number of rows;
//! * instance / advice / fixed columns, with advice split into two
//!   challenge *phases* (phase-1 columns may depend on transcript
//!   challenges — used by Freivalds-checked matrix multiplication);
//! * custom gates: arbitrary polynomial constraints over the columns of a
//!   row (rotations supported for the multi-row ablation of Table 13);
//! * copy constraints via a chunked PLONK permutation argument;
//! * lookup constraints via the permuted-input (plookup-style) argument;
//! * a vanishing argument with the quotient computed on an extended coset,
//!   opened through either the KZG or IPA commitment backend.
//!
//! The FFT/MSM counts of this prover follow Eq. (1)–(2) of the paper, which
//! is what makes the ZKML cost model (crate `zkml`, module `cost`)
//! transferable.

pub mod arena;
pub mod circuit;
pub mod expression;
pub mod keygen;
pub mod mock;
pub mod protocol;
pub mod prover;
pub mod serialize;
pub mod verifier;

pub use arena::PolyArena;
pub use circuit::{
    CellRef, ConstraintSystem, Gate, Lookup, Preprocessed, WitnessSource, BLINDING_FACTORS,
};
pub use expression::{Column, Expression, Linearity, Rotation};
pub use keygen::{
    commit_weights, keygen, keygens, weight_encodings, CommittedWeights, ExtendedDomain,
    ProvingKey, VerifyingKey, WeightCommitment,
};
pub use mock::{GridWitness, MockProver, VerifyFailure};
pub use prover::{create_proof, create_proof_bound, create_proof_committed, create_proof_with_rng};
pub use verifier::{verify_proof, verify_proof_committed, verify_proof_deferred};

/// Errors produced by key generation, proving, or verification.
#[derive(Debug)]
pub enum PlonkError {
    /// The circuit or witness is malformed.
    Synthesis(String),
    /// The proof failed verification.
    Verify(String),
    /// Proof bytes could not be parsed.
    Io(zkml_pcs::ReadError),
}

impl std::fmt::Display for PlonkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlonkError::Synthesis(s) => write!(f, "synthesis error: {s}"),
            PlonkError::Verify(s) => write!(f, "verification error: {s}"),
            PlonkError::Io(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for PlonkError {}

impl From<zkml_pcs::ReadError> for PlonkError {
    fn from(e: zkml_pcs::ReadError) -> Self {
        PlonkError::Io(e)
    }
}
