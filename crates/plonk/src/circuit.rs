//! Circuit structure: constraint system, gates, lookups and assignments.

use crate::expression::{Column, Expression, Rotation};
use zkml_ff::Fr;

/// A named family of polynomial constraints sharing a selector.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// Human-readable name (for diagnostics).
    pub name: String,
    /// The constraints; each must evaluate to zero on every active row.
    pub polys: Vec<Expression>,
}

/// A lookup argument: on every row, the tuple of input expressions must lie
/// in the table defined by the table expressions.
#[derive(Clone, Debug, PartialEq)]
pub struct Lookup {
    /// Human-readable name.
    pub name: String,
    /// Input expressions (gated so inactive rows produce an in-table default).
    pub inputs: Vec<Expression>,
    /// Table expressions (queries into fixed table columns).
    pub table: Vec<Expression>,
}

impl Lookup {
    /// True when every table expression is built from fixed columns and
    /// constants only, so the table's contents are part of the preprocessed
    /// circuit rather than the witness. All ZKML gadget tables satisfy
    /// this; static analyses rely on it to evaluate tables concretely.
    pub fn table_is_fixed_only(&self) -> bool {
        self.table.iter().all(|e| e.references_only_fixed())
    }
}

/// The static structure of a circuit.
///
/// Derives structural equality so a placement plan's skeleton can be
/// checked cheaply against the constraint system a later synthesis pass
/// reproduces (see the core compiler's plan-consistency invariant).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConstraintSystem {
    /// Number of instance (public-input) columns.
    pub num_instance: usize,
    /// Number of advice (witness) columns.
    pub num_advice: usize,
    /// Challenge phase of each advice column (0 or 1).
    pub advice_phase: Vec<u8>,
    /// Number of fixed columns (selectors, tables, constants).
    pub num_fixed: usize,
    /// Number of committed (weight) columns. Committed columns carry model
    /// parameters published once as a [`crate::keygen::WeightCommitment`];
    /// they are equality-enabled but never queried by gate expressions.
    pub num_committed: usize,
    /// Number of transcript challenges available to phase-1 columns.
    pub num_challenges: usize,
    /// Custom gates.
    pub gates: Vec<Gate>,
    /// Lookup arguments.
    pub lookups: Vec<Lookup>,
    /// Columns participating in the copy-constraint (permutation) argument.
    pub permutation_columns: Vec<Column>,
}

/// Number of trailing rows reserved for blinding (plus one `l_last` row).
pub const BLINDING_FACTORS: usize = 5;

impl ConstraintSystem {
    /// Creates an empty constraint system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an instance column, returning its index.
    pub fn instance_column(&mut self) -> usize {
        self.num_instance += 1;
        self.num_instance - 1
    }

    /// Adds an advice column in the given phase, returning its index.
    pub fn advice_column(&mut self, phase: u8) -> usize {
        assert!(phase <= 1, "only phases 0 and 1 are supported");
        self.num_advice += 1;
        self.advice_phase.push(phase);
        self.num_advice - 1
    }

    /// Adds a fixed column, returning its index.
    pub fn fixed_column(&mut self) -> usize {
        self.num_fixed += 1;
        self.num_fixed - 1
    }

    /// Adds a committed (weight) column, returning its index.
    pub fn committed_column(&mut self) -> usize {
        self.num_committed += 1;
        self.num_committed - 1
    }

    /// Registers a transcript challenge, returning its index.
    pub fn challenge(&mut self) -> usize {
        self.num_challenges += 1;
        self.num_challenges - 1
    }

    /// Adds a gate.
    pub fn create_gate(&mut self, name: impl Into<String>, polys: Vec<Expression>) {
        self.gates.push(Gate {
            name: name.into(),
            polys,
        });
    }

    /// Adds a lookup argument.
    pub fn create_lookup(
        &mut self,
        name: impl Into<String>,
        inputs: Vec<Expression>,
        table: Vec<Expression>,
    ) {
        assert_eq!(inputs.len(), table.len(), "lookup arity mismatch");
        self.lookups.push(Lookup {
            name: name.into(),
            inputs,
            table,
        });
    }

    /// Enables equality (copy constraints) on a column.
    pub fn enable_equality(&mut self, col: Column) {
        if !self.permutation_columns.contains(&col) {
            self.permutation_columns.push(col);
        }
    }

    /// The global constraint degree bound.
    ///
    /// Determined by the gates, the lookup product constraint, and a floor of
    /// 3 so that the permutation argument can use chunks of at least one
    /// column (`chunk = degree - 2`).
    pub fn degree(&self) -> usize {
        let gate_deg = self
            .gates
            .iter()
            .flat_map(|g| g.polys.iter())
            .map(|p| p.degree())
            .max()
            .unwrap_or(0);
        // Lookup product constraint:
        // l_active * (Z(wX)(A'+beta)(S'+gamma) - Z(X)(A+beta)(T+gamma))
        // has degree 2 + max(deg A + 1, deg T + 1, 2).
        let lookup_deg = self
            .lookups
            .iter()
            .map(|l| {
                let in_deg = l.inputs.iter().map(|e| e.degree()).max().unwrap_or(1);
                let t_deg = l.table.iter().map(|e| e.degree()).max().unwrap_or(1);
                2 + (in_deg + 1).max(t_deg + 1).max(2)
            })
            .max()
            .unwrap_or(0);
        gate_deg.max(lookup_deg).max(3)
    }

    /// Permutation chunk size (`degree - 2`).
    pub fn permutation_chunk(&self) -> usize {
        self.degree() - 2
    }

    /// Number of permutation grand-product polynomials.
    pub fn permutation_z_count(&self) -> usize {
        if self.permutation_columns.is_empty() {
            0
        } else {
            self.permutation_columns
                .len()
                .div_ceil(self.permutation_chunk())
        }
    }

    /// Number of usable (non-blinding) rows for a circuit with `2^k` rows.
    ///
    /// The last usable row is the `l_last` row; active rows (where gates are
    /// enforced) are those strictly before it.
    pub fn usable_rows(&self, n: usize) -> usize {
        assert!(
            n > BLINDING_FACTORS + 1,
            "circuit too small for blinding ({n} rows)"
        );
        n - (BLINDING_FACTORS + 1)
    }

    /// Every `(column, rotation)` query needed for evaluation, deduplicated.
    pub fn queries(&self) -> Vec<(Column, Rotation)> {
        let mut out = Vec::new();
        for g in &self.gates {
            for p in &g.polys {
                p.collect_queries(&mut out);
            }
        }
        for l in &self.lookups {
            for e in l.inputs.iter().chain(l.table.iter()) {
                e.collect_queries(&mut out);
            }
        }
        // Permutation product constraints query every permutation column at
        // the current rotation.
        for col in &self.permutation_columns {
            out.push((*col, Rotation::cur()));
        }
        // Ensure every committed column appears at least once so it is
        // evaluated and opened (unqueried columns would be unconstrained).
        for c in 0..self.num_advice {
            out.push((Column::Advice(c), Rotation::cur()));
        }
        for c in 0..self.num_fixed {
            out.push((Column::Fixed(c), Rotation::cur()));
        }
        for c in 0..self.num_instance {
            out.push((Column::Instance(c), Rotation::cur()));
        }
        for c in 0..self.num_committed {
            out.push((Column::Committed(c), Rotation::cur()));
        }
        out.sort_by_key(|(c, r)| (*c, r.0));
        out.dedup();
        out
    }

    /// Minimal `k` such that `2^k` rows can hold `rows` assigned rows plus
    /// blinding.
    pub fn min_k(&self, rows: usize) -> u32 {
        let needed = rows + BLINDING_FACTORS + 1;
        needed.next_power_of_two().trailing_zeros().max(3)
    }
}

/// A reference to one cell of the grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellRef {
    /// The column.
    pub column: Column,
    /// The absolute row.
    pub row: usize,
}

/// The preprocessed content of a circuit: fixed column values and copy
/// constraints. Produced once at keygen time.
#[derive(Clone, Debug, Default)]
pub struct Preprocessed {
    /// Fixed column values (column-major); padded to the domain at keygen.
    pub fixed: Vec<Vec<Fr>>,
    /// Committed (weight) column values (column-major). Excluded from the
    /// proving/verifying keys: they are committed separately by
    /// `commit_weights` and bound to the circuit via the copy argument.
    pub committed: Vec<Vec<Fr>>,
    /// Copy constraints between cells of permutation-enabled columns.
    pub copies: Vec<(CellRef, CellRef)>,
}

/// A witness source: provides instance and advice values per phase.
pub trait WitnessSource {
    /// Instance column values (column-major).
    fn instance(&self) -> Vec<Vec<Fr>>;
    /// Advice values for all columns of `phase`, as `(column, values)`.
    ///
    /// `challenges` holds all transcript challenges derived so far (empty
    /// for phase 0).
    fn advice(&self, phase: u8, challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_ff::Field;

    #[test]
    fn degree_floor_is_three() {
        let cs = ConstraintSystem::new();
        assert_eq!(cs.degree(), 3);
        assert_eq!(cs.permutation_chunk(), 1);
    }

    #[test]
    fn degree_tracks_gates_and_lookups() {
        let mut cs = ConstraintSystem::new();
        let q = cs.fixed_column();
        let a = cs.advice_column(0);
        let b = cs.advice_column(0);
        let c = cs.advice_column(0);
        // q * (a*b - c): degree 3.
        cs.create_gate(
            "mul",
            vec![
                Expression::Fixed(q, Rotation::cur())
                    * (Expression::Advice(a, Rotation::cur())
                        * Expression::Advice(b, Rotation::cur())
                        - Expression::Advice(c, Rotation::cur())),
            ],
        );
        assert_eq!(cs.degree(), 3);
        // Lookup with degree-2 input raises the bound to 2 + 3 = 5.
        let t = cs.fixed_column();
        cs.create_lookup(
            "lk",
            vec![Expression::Fixed(q, Rotation::cur()) * Expression::Advice(a, Rotation::cur())],
            vec![Expression::Fixed(t, Rotation::cur())],
        );
        assert_eq!(cs.degree(), 5);
        assert_eq!(cs.permutation_chunk(), 3);
    }

    #[test]
    fn permutation_z_count_chunks() {
        let mut cs = ConstraintSystem::new();
        for _ in 0..7 {
            let c = cs.advice_column(0);
            cs.enable_equality(Column::Advice(c));
        }
        // degree 3 -> chunk 1 -> 7 Z polynomials.
        assert_eq!(cs.permutation_z_count(), 7);
    }

    #[test]
    fn queries_deduplicate() {
        let mut cs = ConstraintSystem::new();
        let a = cs.advice_column(0);
        let q = cs.fixed_column();
        cs.create_gate(
            "g",
            vec![
                Expression::Fixed(q, Rotation::cur())
                    * Expression::Advice(a, Rotation::cur())
                    * Expression::Advice(a, Rotation::cur()),
            ],
        );
        let queries = cs.queries();
        let advice_queries: Vec<_> = queries
            .iter()
            .filter(|(c, _)| matches!(c, Column::Advice(_)))
            .collect();
        assert_eq!(advice_queries.len(), 1);
    }

    #[test]
    fn min_k_accounts_for_blinding() {
        let cs = ConstraintSystem::new();
        // 60 rows + 6 reserved = 66 -> 128 -> k = 7.
        assert_eq!(cs.min_k(60), 7);
        // 58 rows + 6 = 64 -> k = 6.
        assert_eq!(cs.min_k(58), 6);
    }

    #[test]
    fn cellref_equality() {
        let a = CellRef {
            column: Column::Advice(0),
            row: 5,
        };
        let b = CellRef {
            column: Column::Advice(0),
            row: 5,
        };
        assert_eq!(a, b);
        let _ = Fr::zero();
    }
}
