//! The opening plan shared by prover and verifier.
//!
//! Both sides must enumerate committed polynomials, evaluation points and
//! claimed evaluations in exactly the same order; this module is the single
//! source of truth for that order.

use crate::circuit::ConstraintSystem;
use crate::expression::Column;

/// Identifies a committed polynomial within a proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolyId {
    /// Advice column `i`.
    Advice(usize),
    /// Fixed column `i` (committed in the verifying key).
    Fixed(usize),
    /// Committed (weight) column `i` — committed in a standalone
    /// `WeightCommitment` published outside the verifying key.
    Committed(usize),
    /// Permutation sigma polynomial `i` (committed in the verifying key).
    Sigma(usize),
    /// Permutation grand-product polynomial for chunk `c`.
    PermZ(usize),
    /// Permuted lookup input for lookup `i`.
    LookupA(usize),
    /// Permuted lookup table for lookup `i`.
    LookupS(usize),
    /// Lookup grand-product polynomial for lookup `i`.
    LookupZ(usize),
    /// Quotient piece `j`.
    Quotient(usize),
}

/// One entry of the opening plan: evaluate `poly` at `x * omega^rotation`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanEntry {
    /// Which polynomial.
    pub poly: PolyId,
    /// Rotation relative to the evaluation challenge.
    pub rotation: i32,
}

/// Builds the canonical opening plan for a constraint system with `2^k` rows.
///
/// `usable` is the `l_last` row index (`n - BLINDING_FACTORS - 1`); the
/// permutation chunk-linking constraint evaluates the previous chunk's
/// grand product at `omega^usable * x`.
pub fn opening_plan(
    cs: &ConstraintSystem,
    usable: usize,
    quotient_pieces: usize,
) -> Vec<PlanEntry> {
    let mut plan = Vec::new();
    // 1. Column queries from gates/lookup expressions (instance columns are
    //    evaluated directly by the verifier and never opened).
    for (col, rot) in cs.queries() {
        match col {
            Column::Advice(i) => plan.push(PlanEntry {
                poly: PolyId::Advice(i),
                rotation: rot.0,
            }),
            Column::Fixed(i) => plan.push(PlanEntry {
                poly: PolyId::Fixed(i),
                rotation: rot.0,
            }),
            Column::Committed(i) => plan.push(PlanEntry {
                poly: PolyId::Committed(i),
                rotation: rot.0,
            }),
            Column::Instance(_) => {}
        }
    }
    // 2. Permutation openings.
    let z_count = cs.permutation_z_count();
    for i in 0..cs.permutation_columns.len() {
        plan.push(PlanEntry {
            poly: PolyId::Sigma(i),
            rotation: 0,
        });
    }
    for c in 0..z_count {
        plan.push(PlanEntry {
            poly: PolyId::PermZ(c),
            rotation: 0,
        });
        plan.push(PlanEntry {
            poly: PolyId::PermZ(c),
            rotation: 1,
        });
        // The next chunk's linking constraint reads this chunk at omega^usable.
        if c + 1 < z_count {
            plan.push(PlanEntry {
                poly: PolyId::PermZ(c),
                rotation: usable as i32,
            });
        }
    }
    // 3. Lookup openings.
    for i in 0..cs.lookups.len() {
        plan.push(PlanEntry {
            poly: PolyId::LookupA(i),
            rotation: 0,
        });
        plan.push(PlanEntry {
            poly: PolyId::LookupA(i),
            rotation: -1,
        });
        plan.push(PlanEntry {
            poly: PolyId::LookupS(i),
            rotation: 0,
        });
        plan.push(PlanEntry {
            poly: PolyId::LookupZ(i),
            rotation: 0,
        });
        plan.push(PlanEntry {
            poly: PolyId::LookupZ(i),
            rotation: 1,
        });
    }
    // 4. Quotient pieces.
    for j in 0..quotient_pieces {
        plan.push(PlanEntry {
            poly: PolyId::Quotient(j),
            rotation: 0,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::{Expression, Rotation};

    #[test]
    fn plan_covers_all_commitments() {
        let mut cs = ConstraintSystem::new();
        let q = cs.fixed_column();
        let a = cs.advice_column(0);
        let b = cs.advice_column(0);
        cs.enable_equality(Column::Advice(a));
        cs.enable_equality(Column::Advice(b));
        cs.create_gate(
            "g",
            vec![
                Expression::Fixed(q, Rotation::cur())
                    * (Expression::Advice(a, Rotation::cur())
                        - Expression::Advice(b, Rotation::cur())),
            ],
        );
        let t = cs.fixed_column();
        cs.create_lookup(
            "lk",
            vec![Expression::Advice(a, Rotation::cur())],
            vec![Expression::Fixed(t, Rotation::cur())],
        );
        let plan = opening_plan(&cs, 57, 4);
        // Every advice column, fixed column, sigma, and quotient appears.
        for i in 0..cs.num_advice {
            assert!(plan.iter().any(|e| e.poly == PolyId::Advice(i)));
        }
        for i in 0..cs.num_fixed {
            assert!(plan.iter().any(|e| e.poly == PolyId::Fixed(i)));
        }
        for i in 0..cs.permutation_columns.len() {
            assert!(plan.iter().any(|e| e.poly == PolyId::Sigma(i)));
        }
        for j in 0..4 {
            assert!(plan.iter().any(|e| e.poly == PolyId::Quotient(j)));
        }
        assert!(plan
            .iter()
            .any(|e| e.poly == PolyId::LookupA(0) && e.rotation == -1));
    }

    #[test]
    fn linking_rotation_only_for_non_last_chunks() {
        let mut cs = ConstraintSystem::new();
        for _ in 0..3 {
            let c = cs.advice_column(0);
            cs.enable_equality(Column::Advice(c));
        }
        // degree 3 -> chunk 1 -> 3 Z polys; chunks 0 and 1 get the usable
        // rotation, chunk 2 does not.
        let plan = opening_plan(&cs, 100, 2);
        let rot_100: Vec<_> = plan
            .iter()
            .filter(|e| e.rotation == 100)
            .map(|e| e.poly)
            .collect();
        assert_eq!(rot_100, vec![PolyId::PermZ(0), PolyId::PermZ(1)]);
    }
}
