//! Proof creation.

use crate::arena::PolyArena;
use crate::circuit::WitnessSource;
use crate::expression::{Column, Expression};
use crate::keygen::{CommittedWeights, ProvingKey};
use crate::protocol::{opening_plan, PolyId};
use crate::PlonkError;
use rand::RngCore;
use std::collections::BTreeMap;
use zkml_ff::{batch_invert, Field, Fr, PrimeField};
use zkml_pcs::{Params, Writer};
use zkml_poly::Coeffs;
use zkml_transcript::Transcript;

/// Minimum rows per parallel task in the row-indexed loops below.
const ROW_CHUNK: usize = 1024;

/// Fills `out[0] = seed`, `out[i+1] = out[i] * factors[i]` with a parallel
/// chunk-product scan: per-chunk products in parallel, a serial exclusive
/// prefix over the (few) chunk products, then a parallel fill seeded by the
/// prefix. Field multiplication is exact and associative, so the result is
/// bit-identical to the serial running product at any thread count.
fn scan_products(seed: Fr, factors: &[Fr], out: &mut [Fr]) {
    let m = factors.len();
    debug_assert!(out.len() > m);
    out[0] = seed;
    if m == 0 {
        return;
    }
    let nchunks = m.div_ceil(ROW_CHUNK);
    let prods = zkml_par::par_map(nchunks, |c| {
        factors[c * ROW_CHUNK..((c + 1) * ROW_CHUNK).min(m)]
            .iter()
            .fold(Fr::one(), |acc, f| acc * *f)
    });
    let mut prefix = Vec::with_capacity(nchunks);
    let mut acc = seed;
    for p in &prods {
        prefix.push(acc);
        acc *= *p;
    }
    zkml_par::for_each_chunk_exact(&mut out[1..=m], ROW_CHUNK, |c, start, slice| {
        let mut acc = prefix[c];
        for (i, slot) in slice.iter_mut().enumerate() {
            acc *= factors[start + i];
            *slot = acc;
        }
    });
}

/// Evaluates an expression on row `i` against value tables (wrapping rows).
fn eval_on_row(
    e: &Expression,
    i: usize,
    n: usize,
    instance: &[Vec<Fr>],
    advice: &[Vec<Fr>],
    fixed: &[Vec<Fr>],
    challenges: &[Fr],
) -> Fr {
    e.evaluate_on_grid(i, n, instance, advice, fixed, challenges)
}

/// Creates a proof for the given witness, using OS randomness for blinding.
pub fn create_proof(
    params: &Params,
    pk: &ProvingKey,
    witness: &dyn WitnessSource,
) -> Result<Vec<u8>, PlonkError> {
    create_proof_with_rng(params, pk, witness, &mut rand::rngs::OsRng)
}

/// Creates a proof with caller-supplied randomness (deterministic tests).
pub fn create_proof_with_rng(
    params: &Params,
    pk: &ProvingKey,
    witness: &dyn WitnessSource,
    rng: &mut impl RngCore,
) -> Result<Vec<u8>, PlonkError> {
    create_proof_bound(params, pk, witness, rng, &[])
}

/// Creates a proof bound to an application-chosen context string.
///
/// The binding is absorbed into the Fiat–Shamir transcript right after the
/// verifying-key digest, so the proof only verifies against the same bytes
/// (see [`crate::verify_proof_deferred`]). Segmented proving uses this to
/// pin each segment proof to its chain digest and position, making segments
/// non-interchangeable across bundles. An empty binding absorbs nothing and
/// is byte-identical to [`create_proof_with_rng`].
pub fn create_proof_bound(
    params: &Params,
    pk: &ProvingKey,
    witness: &dyn WitnessSource,
    rng: &mut impl RngCore,
    binding: &[u8],
) -> Result<Vec<u8>, PlonkError> {
    if pk.vk.cs.num_committed > 0 {
        return Err(PlonkError::Synthesis(
            "circuit has committed columns; use create_proof_committed with \
             the model's CommittedWeights"
                .into(),
        ));
    }
    create_proof_committed(
        params,
        pk,
        witness,
        rng,
        binding,
        &CommittedWeights::empty(),
    )
}

/// Creates a proof for a circuit with committed (weight) columns.
///
/// `weights` is the prover side of a [`crate::keygen::WeightCommitment`]
/// produced once per model by [`crate::keygen::commit_weights`]; its digest
/// is absorbed into the transcript right after the verifying-key digest, so
/// the proof verifies only against that exact published commitment. No
/// weight interpolation or commitment work happens here — the per-proof
/// weight cost is a handful of polynomial evaluations.
pub fn create_proof_committed(
    params: &Params,
    pk: &ProvingKey,
    witness: &dyn WitnessSource,
    rng: &mut impl RngCore,
    binding: &[u8],
    weights: &CommittedWeights,
) -> Result<Vec<u8>, PlonkError> {
    let cs = &pk.vk.cs;
    let domain = &pk.domains.domain;
    let n = domain.n;
    let usable = cs.usable_rows(n);
    if weights.values.len() != cs.num_committed {
        return Err(PlonkError::Synthesis(format!(
            "expected {} committed columns, got {}",
            cs.num_committed,
            weights.values.len()
        )));
    }
    for col in &weights.values {
        if col.len() != n {
            return Err(PlonkError::Synthesis(format!(
                "committed column has {} rows but n = {n}",
                col.len()
            )));
        }
    }
    let mut transcript = Transcript::new(b"zkml-plonk");
    transcript.absorb(b"vk", &pk.vk.digest);
    if cs.num_committed > 0 {
        transcript.absorb(b"weights", &weights.digest);
    }
    if !binding.is_empty() {
        transcript.absorb(b"bind", binding);
    }
    let mut proof = Writer::new();
    // Retired polynomial buffers are recycled through this arena across the
    // grand-product and quotient phases instead of round-tripping through
    // the allocator. Contents are always overwritten before reuse, so the
    // recycling can never change a proof byte.
    let arena = PolyArena::new();

    // --- Instance columns ------------------------------------------------
    let mut instance = witness.instance();
    if instance.len() != cs.num_instance {
        return Err(PlonkError::Synthesis(format!(
            "expected {} instance columns, got {}",
            cs.num_instance,
            instance.len()
        )));
    }
    for col in instance.iter_mut() {
        if col.len() > usable {
            return Err(PlonkError::Synthesis(
                "instance column exceeds usable rows".into(),
            ));
        }
        col.resize(n, Fr::zero());
        let mut bytes = Vec::with_capacity(col.len() * 32);
        for v in col.iter() {
            bytes.extend_from_slice(&v.to_bytes());
        }
        transcript.absorb(b"instance", &bytes);
    }
    let instance_polys: Vec<Coeffs<Fr>> = zkml_par::par_map(instance.len(), |c| {
        let mut v = instance[c].clone();
        domain.ifft(&mut v);
        Coeffs::new(v)
    });

    // --- Advice columns (two phases) --------------------------------------
    let mut advice_values: Vec<Option<Vec<Fr>>> = vec![None; cs.num_advice];
    let mut advice_polys: Vec<Option<Coeffs<Fr>>> = vec![None; cs.num_advice];
    let mut challenges: Vec<Fr> = Vec::new();

    let phases: &[u8] = if cs.num_challenges > 0 { &[0, 1] } else { &[0] };
    for &phase in phases {
        for (idx, mut vals) in witness.advice(phase, &challenges) {
            if idx >= cs.num_advice || cs.advice_phase[idx] != phase {
                return Err(PlonkError::Synthesis(format!(
                    "advice column {idx} not in phase {phase}"
                )));
            }
            if vals.len() > usable {
                return Err(PlonkError::Synthesis(format!(
                    "advice column {idx} has {} rows, usable is {usable}",
                    vals.len()
                )));
            }
            vals.resize(n, Fr::zero());
            for v in vals[usable + 1..].iter_mut() {
                *v = Fr::random(rng);
            }
            advice_values[idx] = Some(vals);
        }
        // Commit this phase's columns in column order.
        for c in 0..cs.num_advice {
            if cs.advice_phase[c] != phase {
                continue;
            }
            let vals = advice_values[c].as_ref().ok_or_else(|| {
                PlonkError::Synthesis(format!("advice column {c} missing in phase {phase}"))
            })?;
            let mut coeffs = vals.clone();
            domain.ifft(&mut coeffs);
            let poly = Coeffs::new(coeffs);
            let com = params.commit(&poly);
            transcript.absorb(b"advice", &com.to_bytes());
            proof.g1(&com);
            advice_polys[c] = Some(poly);
        }
        if phase == 0 {
            for _ in 0..cs.num_challenges {
                challenges.push(transcript.challenge(b"phase-challenge"));
            }
        }
    }
    let advice_values: Vec<Vec<Fr>> = advice_values
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| PlonkError::Synthesis("missing advice column".into()))?;
    let advice_polys: Vec<Coeffs<Fr>> = advice_polys
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .expect("advice polys follow values");

    // --- Lookup permuted columns ------------------------------------------
    let theta: Fr = transcript.challenge(b"theta");

    let compress = |exprs: &[Expression], i: usize| -> Fr {
        let mut acc = Fr::zero();
        let mut t = Fr::one();
        for e in exprs {
            acc += t * eval_on_row(
                e,
                i,
                n,
                &instance,
                &advice_values,
                &pk.fixed_values,
                &challenges,
            );
            t *= theta;
        }
        acc
    };

    struct LookupWitness {
        a_compressed: Vec<Fr>,
        t_compressed: Vec<Fr>,
        a_permuted: Vec<Fr>,
        s_permuted: Vec<Fr>,
        a_poly: Coeffs<Fr>,
        s_poly: Coeffs<Fr>,
    }

    let mut lookups = Vec::with_capacity(cs.lookups.len());
    for lk in &cs.lookups {
        let a_compressed: Vec<Fr> = zkml_par::par_map(n, |i| compress(&lk.inputs, i));
        let t_compressed: Vec<Fr> = zkml_par::par_map(n, |i| compress(&lk.table, i));

        // Sort the active-row inputs; lay the table out so each first
        // occurrence matches, filling repeats with leftover table values.
        let mut a_sorted = a_compressed[..usable].to_vec();
        a_sorted.sort_unstable();
        let mut t_counts: BTreeMap<Fr, usize> = BTreeMap::new();
        for t in &t_compressed[..usable] {
            *t_counts.entry(*t).or_insert(0) += 1;
        }
        let mut s_permuted = vec![None; usable];
        for i in 0..usable {
            if i == 0 || a_sorted[i] != a_sorted[i - 1] {
                let cnt = t_counts.get_mut(&a_sorted[i]).ok_or_else(|| {
                    PlonkError::Synthesis(format!(
                        "lookup '{}': input value not present in table",
                        lk.name
                    ))
                })?;
                *cnt -= 1;
                if *cnt == 0 {
                    t_counts.remove(&a_sorted[i]);
                }
                s_permuted[i] = Some(a_sorted[i]);
            }
        }
        let mut leftovers = t_counts
            .into_iter()
            .flat_map(|(v, c)| std::iter::repeat_n(v, c));
        let s_permuted: Vec<Fr> = s_permuted
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| leftovers.next().expect("table and input row counts match"))
            })
            .collect();

        let mut a_full = a_sorted.clone();
        a_full.resize(n, Fr::zero());
        let mut s_full = s_permuted.clone();
        s_full.resize(n, Fr::zero());
        for v in a_full[usable..].iter_mut() {
            *v = Fr::random(rng);
        }
        for v in s_full[usable..].iter_mut() {
            *v = Fr::random(rng);
        }
        let mut a_coeffs = a_full.clone();
        domain.ifft(&mut a_coeffs);
        let a_poly = Coeffs::new(a_coeffs);
        let mut s_coeffs = s_full.clone();
        domain.ifft(&mut s_coeffs);
        let s_poly = Coeffs::new(s_coeffs);
        let a_com = params.commit(&a_poly);
        let s_com = params.commit(&s_poly);
        transcript.absorb(b"lookup-a", &a_com.to_bytes());
        transcript.absorb(b"lookup-s", &s_com.to_bytes());
        proof.g1(&a_com);
        proof.g1(&s_com);
        lookups.push(LookupWitness {
            a_compressed,
            t_compressed,
            a_permuted: a_full,
            s_permuted: s_full,
            a_poly,
            s_poly,
        });
    }

    let beta: Fr = transcript.challenge(b"beta");
    let gamma: Fr = transcript.challenge(b"gamma");

    // --- Permutation grand products ----------------------------------------
    let perm_col_value = |col: Column, i: usize| -> Fr {
        match col {
            Column::Instance(c) => instance[c][i],
            Column::Advice(c) => advice_values[c][i],
            Column::Fixed(c) => pk.fixed_values[c][i],
            Column::Committed(c) => weights.values[c][i],
        }
    };
    let omega_powers = domain.elements();
    let delta = Fr::delta();
    let mut delta_powers = Vec::with_capacity(cs.permutation_columns.len());
    {
        let mut cur = Fr::one();
        for _ in 0..cs.permutation_columns.len() {
            delta_powers.push(cur);
            cur *= delta;
        }
    }
    let chunk_size = cs.permutation_chunk();
    let mut perm_z_values: Vec<Vec<Fr>> = Vec::new();
    let mut perm_z_polys: Vec<Coeffs<Fr>> = Vec::new();
    let mut carry = Fr::one();
    for (chunk_idx, cols) in cs.permutation_columns.chunks(chunk_size).enumerate() {
        let base = chunk_idx * chunk_size;
        // Each row's numerator/denominator multiplies column terms in the
        // same (ascending `j`) order as the serial loop, so the products are
        // bit-identical.
        let mut nd: Vec<(Fr, Fr)> = vec![(Fr::one(), Fr::one()); usable];
        zkml_par::par_for_each_mut(&mut nd, |i, pair| {
            for (j, col) in cols.iter().enumerate() {
                let global = base + j;
                let v = perm_col_value(*col, i);
                pair.0 *= v + beta * delta_powers[global] * omega_powers[i] + gamma;
                pair.1 *= v + beta * pk.sigma_values[global][i] + gamma;
            }
        });
        let (num, mut den): (Vec<Fr>, Vec<Fr>) = nd.into_iter().unzip();
        // Chunked batch inversion: every element's inverse is exact, so the
        // chunking cannot change any value.
        zkml_par::par_chunks_mut(&mut den, ROW_CHUNK, |_, _, chunk| batch_invert(chunk));
        let factors: Vec<Fr> = zkml_par::par_map(usable, |i| num[i] * den[i]);
        let mut z = arena.take_zeroed(n);
        scan_products(carry, &factors, &mut z);
        carry = z[usable];
        for v in z[usable + 1..].iter_mut() {
            *v = Fr::random(rng);
        }
        arena.put_all([num, den, factors]);
        perm_z_values.push(z);
    }
    if !cs.permutation_columns.is_empty() && carry != Fr::one() {
        return Err(PlonkError::Synthesis(
            "copy constraints unsatisfied (permutation product != 1)".into(),
        ));
    }
    for z in &perm_z_values {
        let mut coeffs = arena.take_copy(z);
        domain.ifft(&mut coeffs);
        let poly = Coeffs::new(coeffs);
        let com = params.commit(&poly);
        transcript.absorb(b"perm-z", &com.to_bytes());
        proof.g1(&com);
        perm_z_polys.push(poly);
    }

    // --- Lookup grand products ---------------------------------------------
    let mut lookup_z_values: Vec<Vec<Fr>> = Vec::new();
    let mut lookup_z_polys: Vec<Coeffs<Fr>> = Vec::new();
    for (lk, w) in cs.lookups.iter().zip(&lookups) {
        let mut den: Vec<Fr> = zkml_par::par_map(usable, |i| {
            (w.a_permuted[i] + beta) * (w.s_permuted[i] + gamma)
        });
        zkml_par::par_chunks_mut(&mut den, ROW_CHUNK, |_, _, chunk| batch_invert(chunk));
        let factors: Vec<Fr> = zkml_par::par_map(usable, |i| {
            (w.a_compressed[i] + beta) * (w.t_compressed[i] + gamma) * den[i]
        });
        let mut z = arena.take_zeroed(n);
        scan_products(Fr::one(), &factors, &mut z);
        if z[usable] != Fr::one() {
            return Err(PlonkError::Synthesis(format!(
                "lookup '{}' unsatisfied (product != 1)",
                lk.name
            )));
        }
        for v in z[usable + 1..].iter_mut() {
            *v = Fr::random(rng);
        }
        arena.put_all([den, factors]);
        let mut coeffs = arena.take_copy(&z);
        domain.ifft(&mut coeffs);
        let poly = Coeffs::new(coeffs);
        let com = params.commit(&poly);
        transcript.absorb(b"lookup-z", &com.to_bytes());
        proof.g1(&com);
        lookup_z_values.push(z);
        lookup_z_polys.push(poly);
    }

    let y: Fr = transcript.challenge(b"y");

    // --- Quotient ----------------------------------------------------------
    let ext = &pk.domains;
    let ext_n = ext.ext.n;
    // Extended-coset scratch vectors are `factor * n` elements each; pulling
    // them from the arena reuses the buffers the grand-product loops just
    // retired.
    let to_ext = |values: &[Fr]| -> Vec<Fr> {
        let mut c = arena.take_copy(values);
        domain.ifft(&mut c);
        ext.coset_ext(c)
    };
    let poly_to_ext = |p: &Coeffs<Fr>| ext.coset_ext(arena.take_copy(&p.values));

    let instance_ext: Vec<Vec<Fr>> =
        zkml_par::par_map(instance_polys.len(), |i| poly_to_ext(&instance_polys[i]));
    let advice_ext: Vec<Vec<Fr>> =
        zkml_par::par_map(advice_polys.len(), |i| poly_to_ext(&advice_polys[i]));
    let perm_z_ext: Vec<Vec<Fr>> =
        zkml_par::par_map(perm_z_values.len(), |i| to_ext(&perm_z_values[i]));
    let lookup_a_ext: Vec<Vec<Fr>> =
        zkml_par::par_map(lookups.len(), |i| poly_to_ext(&lookups[i].a_poly));
    let lookup_s_ext: Vec<Vec<Fr>> =
        zkml_par::par_map(lookups.len(), |i| poly_to_ext(&lookups[i].s_poly));
    let lookup_z_ext: Vec<Vec<Fr>> =
        zkml_par::par_map(lookup_z_values.len(), |i| to_ext(&lookup_z_values[i]));

    // Compressed lookup input/table on the extended coset.
    let eval_expr_ext = |e: &Expression, i: usize| -> Fr {
        e.evaluate(
            &|c| c,
            &|c, r| instance_ext[c][ext.rotated_index(i, r.0)],
            &|c, r| advice_ext[c][ext.rotated_index(i, r.0)],
            &|c, r| pk.fixed_ext[c][ext.rotated_index(i, r.0)],
            &|c| challenges[c],
        )
    };
    let compress_ext = |exprs: &[Expression], i: usize| -> Fr {
        let mut acc = Fr::zero();
        let mut t = Fr::one();
        for e in exprs {
            acc += t * eval_expr_ext(e, i);
            t *= theta;
        }
        acc
    };

    // Coset point values for the permutation "identity" side.
    let mut coset_points = arena.take_zeroed(ext_n);
    zkml_par::par_chunks_mut(&mut coset_points, ROW_CHUNK, |_, start, chunk| {
        let mut cur = ext.ext.coset_gen * ext.ext.omega.pow(&[start as u64]);
        for slot in chunk.iter_mut() {
            *slot = cur;
            cur *= ext.ext.omega;
        }
    });

    let mut combined = arena.take_zeroed(ext_n);
    let add_term = |term: &(dyn Fn(usize) -> Fr + Sync), combined: &mut Vec<Fr>| {
        zkml_par::par_for_each_mut(combined, |i, c| {
            *c = *c * y + term(i);
        });
    };

    // 1. Gates.
    for gate in &cs.gates {
        for poly in &gate.polys {
            add_term(&|i| eval_expr_ext(poly, i), &mut combined);
        }
    }
    // 2. Permutation.
    let z_count = perm_z_ext.len();
    if z_count > 0 {
        add_term(
            &|i| pk.l0_ext[i] * (Fr::one() - perm_z_ext[0][i]),
            &mut combined,
        );
        add_term(
            &|i| {
                let z = perm_z_ext[z_count - 1][i];
                pk.l_last_ext[i] * (z.square() - z)
            },
            &mut combined,
        );
        for c in 1..z_count {
            add_term(
                &|i| {
                    pk.l0_ext[i]
                        * (perm_z_ext[c][i]
                            - perm_z_ext[c - 1][ext.rotated_index(i, usable as i32)])
                },
                &mut combined,
            );
        }
        for (chunk_idx, cols) in cs.permutation_columns.chunks(chunk_size).enumerate() {
            let base = chunk_idx * chunk_size;
            add_term(
                &|i| {
                    let mut left = perm_z_ext[chunk_idx][ext.rotated_index(i, 1)];
                    let mut right = perm_z_ext[chunk_idx][i];
                    for (j, col) in cols.iter().enumerate() {
                        let global = base + j;
                        let v = match col {
                            Column::Instance(c) => instance_ext[*c][i],
                            Column::Advice(c) => advice_ext[*c][i],
                            Column::Fixed(c) => pk.fixed_ext[*c][i],
                            Column::Committed(c) => weights.ext[*c][i],
                        };
                        left *= v + beta * pk.sigma_ext[global][i] + gamma;
                        right *= v + beta * delta_powers[global] * coset_points[i] + gamma;
                    }
                    pk.l_active_ext[i] * (left - right)
                },
                &mut combined,
            );
        }
    }
    // 3. Lookups.
    for (lk_idx, lk) in cs.lookups.iter().enumerate() {
        add_term(
            &|i| pk.l0_ext[i] * (Fr::one() - lookup_z_ext[lk_idx][i]),
            &mut combined,
        );
        add_term(
            &|i| {
                let z = lookup_z_ext[lk_idx][i];
                pk.l_last_ext[i] * (z.square() - z)
            },
            &mut combined,
        );
        add_term(
            &|i| {
                let z_next = lookup_z_ext[lk_idx][ext.rotated_index(i, 1)];
                let z = lookup_z_ext[lk_idx][i];
                let a = compress_ext(&lk.inputs, i);
                let t = compress_ext(&lk.table, i);
                pk.l_active_ext[i]
                    * (z_next
                        * (lookup_a_ext[lk_idx][i] + beta)
                        * (lookup_s_ext[lk_idx][i] + gamma)
                        - z * (a + beta) * (t + gamma))
            },
            &mut combined,
        );
        add_term(
            &|i| pk.l0_ext[i] * (lookup_a_ext[lk_idx][i] - lookup_s_ext[lk_idx][i]),
            &mut combined,
        );
        add_term(
            &|i| {
                let a = lookup_a_ext[lk_idx][i];
                pk.l_active_ext[i]
                    * (a - lookup_s_ext[lk_idx][i])
                    * (a - lookup_a_ext[lk_idx][ext.rotated_index(i, -1)])
            },
            &mut combined,
        );
    }

    // Divide by the vanishing polynomial and interpolate.
    zkml_par::par_chunks_mut(&mut combined, ROW_CHUNK, |_, start, chunk| {
        for (i, c) in chunk.iter_mut().enumerate() {
            *c *= ext.zh_inv[(start + i) % ext.factor];
        }
    });
    ext.ext.coset_ifft(&mut combined);
    let pieces: Vec<Coeffs<Fr>> = combined
        .chunks(n)
        .map(|ch| Coeffs::new(ch.to_vec()))
        .collect();
    debug_assert_eq!(pieces.len(), ext.factor);
    let mut quotient_polys = Vec::with_capacity(pieces.len());
    for piece in pieces {
        let com = params.commit(&piece);
        transcript.absorb(b"quotient", &com.to_bytes());
        proof.g1(&com);
        quotient_polys.push(piece);
    }

    let x: Fr = transcript.challenge(b"x");

    // --- Evaluations ---------------------------------------------------------
    let plan = opening_plan(cs, usable, ext.factor);
    let poly_for = |id: PolyId| -> &Coeffs<Fr> {
        match id {
            PolyId::Advice(i) => &advice_polys[i],
            PolyId::Fixed(i) => &pk.fixed_polys[i],
            PolyId::Committed(i) => &weights.polys[i],
            PolyId::Sigma(i) => &pk.sigma_polys[i],
            PolyId::PermZ(i) => &perm_z_polys[i],
            PolyId::LookupA(i) => &lookups[i].a_poly,
            PolyId::LookupS(i) => &lookups[i].s_poly,
            PolyId::LookupZ(i) => &lookup_z_polys[i],
            PolyId::Quotient(i) => &quotient_polys[i],
        }
    };
    // Evaluate in parallel (Horner per opening), then absorb serially so the
    // transcript order is unchanged.
    let evals: Vec<(Fr, Fr)> = zkml_par::par_map(plan.len(), |idx| {
        let entry = &plan[idx];
        let point = domain.rotate(x, entry.rotation);
        (point, poly_for(entry.poly).evaluate(point))
    });
    let mut eval_points = Vec::with_capacity(plan.len());
    for (point, eval) in &evals {
        transcript.absorb_scalar(b"eval", eval);
        proof.scalar(eval);
        eval_points.push(*point);
    }

    // --- Multi-open -----------------------------------------------------------
    let queries: Vec<(&Coeffs<Fr>, Fr)> = plan
        .iter()
        .zip(&eval_points)
        .map(|(entry, point)| (poly_for(entry.poly), *point))
        .collect();
    let opening = params.open(&mut transcript, &queries);
    proof.bytes(&opening);

    Ok(proof.finish())
}
