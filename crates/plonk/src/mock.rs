//! A row-exact mock prover for circuit debugging and soundness testing.
//!
//! [`MockProver`] synthesizes a circuit into in-memory instance / advice /
//! fixed grids and checks every constraint directly — every custom gate at
//! every row, every copy constraint, and every lookup argument — without any
//! commitments or polynomial arithmetic. Failures are reported as structured
//! [`VerifyFailure`] values naming the gate, the row, and the offending cell
//! values, which is what makes underconstrained-gadget hunting tractable
//! (halo2's `MockProver` plays the same role).
//!
//! Semantics relative to the real prover:
//!
//! * Gates are checked on **all** `2^k` rows. The real vanishing argument
//!   also enforces gates on every row of the domain (the quotient division
//!   by `X^n - 1` is exact only if each gate vanishes on all of `H`); on
//!   blinding rows the mock grid holds zero padding where the real prover
//!   holds randomness, so a gate that is not selector-gated off the padding
//!   rows fails here exactly when it would fail (with overwhelming
//!   probability) in the real prover.
//! * Copy constraints are checked pairwise over the usable rows, mirroring
//!   the active range of the permutation grand product.
//! * Lookups are checked as raw tuple membership over the usable rows,
//!   mirroring the permuted-input argument without the `theta` compression.
//! * Challenges are derived from a mock transcript absorbing the instance
//!   and phase-0 advice, so phase-1 witnesses see challenges that change
//!   whenever phase-0 changes (the Fiat–Shamir property gadgets rely on).
//!   They are *frozen* at construction: mutating a cell afterwards models an
//!   adversary tampering with one committed value, not re-running synthesis.

use crate::circuit::{CellRef, ConstraintSystem, Preprocessed, WitnessSource, BLINDING_FACTORS};
use crate::expression::{Column, Expression, Rotation};
use crate::PlonkError;
use std::collections::{HashMap, HashSet};
use zkml_ff::{Field, Fr, PrimeField};
use zkml_transcript::Transcript;

/// One failed constraint, with enough context to locate the bug.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyFailure {
    /// A gate polynomial evaluated to a non-zero value on a row.
    Gate {
        /// Gate name.
        gate: String,
        /// Index of the gate in the constraint system.
        gate_index: usize,
        /// Index of the constraint within the gate.
        constraint_index: usize,
        /// The offending row.
        row: usize,
        /// The non-zero value the constraint evaluated to.
        value: Fr,
        /// Every cell the constraint queried, with its rotation and value.
        cells: Vec<(Column, Rotation, Fr)>,
    },
    /// A lookup input tuple on a row is not present in the table.
    Lookup {
        /// Lookup name.
        lookup: String,
        /// Index of the lookup in the constraint system.
        lookup_index: usize,
        /// The offending row.
        row: usize,
        /// The input tuple that is missing from the table.
        inputs: Vec<Fr>,
    },
    /// Two copy-constrained cells hold different values.
    CopyMismatch {
        /// First cell.
        a: CellRef,
        /// Second cell.
        b: CellRef,
        /// Value of the first cell.
        a_value: Fr,
        /// Value of the second cell.
        b_value: Fr,
    },
    /// A copy constraint references a column without equality enabled, so
    /// the real permutation argument would not enforce it.
    CopyColumnNotEnabled {
        /// The offending cell.
        cell: CellRef,
    },
    /// A copy constraint references a row outside the usable region, where
    /// the real permutation argument is inactive.
    CopyRowOutOfRange {
        /// The offending cell.
        cell: CellRef,
        /// Number of usable rows.
        usable: usize,
    },
}

impl std::fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyFailure::Gate {
                gate,
                gate_index,
                constraint_index,
                row,
                value,
                cells,
            } => {
                write!(
                    f,
                    "gate '{gate}' (index {gate_index}, constraint {constraint_index}) \
                     not satisfied on row {row}: evaluates to {value:?}; cells:"
                )?;
                for (col, rot, v) in cells {
                    write!(f, " {col:?}@{}={v:?}", rot.0)?;
                }
                Ok(())
            }
            VerifyFailure::Lookup {
                lookup,
                lookup_index,
                row,
                inputs,
            } => write!(
                f,
                "lookup '{lookup}' (index {lookup_index}) not satisfied on row {row}: \
                 input tuple {inputs:?} not in table"
            ),
            VerifyFailure::CopyMismatch {
                a,
                b,
                a_value,
                b_value,
            } => write!(
                f,
                "copy constraint violated: {a:?}={a_value:?} but {b:?}={b_value:?}"
            ),
            VerifyFailure::CopyColumnNotEnabled { cell } => write!(
                f,
                "copy constraint on {cell:?}: column does not have equality enabled"
            ),
            VerifyFailure::CopyRowOutOfRange { cell, usable } => write!(
                f,
                "copy constraint on {cell:?}: row outside the {usable} usable rows"
            ),
        }
    }
}

/// A circuit synthesized into concrete grids, ready for row-exact checking.
pub struct MockProver {
    k: u32,
    n: usize,
    usable: usize,
    cs: ConstraintSystem,
    copies: Vec<(CellRef, CellRef)>,
    instance: Vec<Vec<Fr>>,
    advice: Vec<Vec<Fr>>,
    fixed: Vec<Vec<Fr>>,
    committed: Vec<Vec<Fr>>,
    challenges: Vec<Fr>,
    /// Per-lookup set of table tuples (canonical bytes), rows `0..usable`.
    tables: Vec<HashSet<Vec<u8>>>,
    /// True when every lookup table expression queries only fixed columns
    /// (always the case for the ZKML gadget library); lets the incremental
    /// checker reuse cached table sets across advice mutations.
    tables_fixed_only: bool,
    /// Copy constraints indexed by the cells they touch.
    copy_index: HashMap<CellRef, Vec<usize>>,
    /// Largest |rotation| queried by any gate or lookup input.
    max_rotation: usize,
}

impl MockProver {
    /// Synthesizes `witness` against `(cs, pre)` into grids of `2^k` rows.
    ///
    /// Mirrors the real prover's assembly: validates column counts and
    /// usable-row bounds, derives mock challenges from the instance and
    /// phase-0 advice, then fills phase-1 columns.
    pub fn run(
        k: u32,
        cs: &ConstraintSystem,
        pre: &Preprocessed,
        witness: &dyn WitnessSource,
    ) -> Result<Self, PlonkError> {
        let n = 1usize << k;
        if n <= BLINDING_FACTORS + 1 {
            return Err(PlonkError::Synthesis(format!(
                "k = {k} leaves no usable rows"
            )));
        }
        let usable = cs.usable_rows(n);

        if pre.fixed.len() != cs.num_fixed {
            return Err(PlonkError::Synthesis(format!(
                "expected {} fixed columns, got {}",
                cs.num_fixed,
                pre.fixed.len()
            )));
        }
        let mut fixed = pre.fixed.clone();
        for col in fixed.iter_mut() {
            if col.len() > n {
                return Err(PlonkError::Synthesis(
                    "fixed column exceeds 2^k rows".into(),
                ));
            }
            col.resize(n, Fr::zero());
        }

        if pre.committed.len() != cs.num_committed {
            return Err(PlonkError::Synthesis(format!(
                "expected {} committed columns, got {}",
                cs.num_committed,
                pre.committed.len()
            )));
        }
        let mut committed = pre.committed.clone();
        for col in committed.iter_mut() {
            if col.len() > n {
                return Err(PlonkError::Synthesis(
                    "committed column exceeds 2^k rows".into(),
                ));
            }
            col.resize(n, Fr::zero());
        }

        let mut instance = witness.instance();
        if instance.len() != cs.num_instance {
            return Err(PlonkError::Synthesis(format!(
                "expected {} instance columns, got {}",
                cs.num_instance,
                instance.len()
            )));
        }
        let mut transcript = Transcript::new(b"zkml-mock");
        transcript.absorb(b"k", &k.to_le_bytes());
        for col in instance.iter_mut() {
            if col.len() > usable {
                return Err(PlonkError::Synthesis(
                    "instance column exceeds usable rows".into(),
                ));
            }
            col.resize(n, Fr::zero());
            absorb_column(&mut transcript, b"instance", col);
        }

        let mut advice: Vec<Option<Vec<Fr>>> = vec![None; cs.num_advice];
        let mut challenges: Vec<Fr> = Vec::new();
        let phases: &[u8] = if cs.num_challenges > 0 { &[0, 1] } else { &[0] };
        for &phase in phases {
            for (idx, mut vals) in witness.advice(phase, &challenges) {
                if idx >= cs.num_advice || cs.advice_phase[idx] != phase {
                    return Err(PlonkError::Synthesis(format!(
                        "advice column {idx} not in phase {phase}"
                    )));
                }
                if vals.len() > usable {
                    return Err(PlonkError::Synthesis(format!(
                        "advice column {idx} has {} rows, usable is {usable}",
                        vals.len()
                    )));
                }
                vals.resize(n, Fr::zero());
                advice[idx] = Some(vals);
            }
            for (c, slot) in advice.iter().enumerate() {
                if cs.advice_phase[c] != phase {
                    continue;
                }
                let vals = slot.as_ref().ok_or_else(|| {
                    PlonkError::Synthesis(format!("advice column {c} missing in phase {phase}"))
                })?;
                if phase == 0 {
                    absorb_column(&mut transcript, b"advice", vals);
                }
            }
            if phase == 0 {
                for _ in 0..cs.num_challenges {
                    challenges.push(transcript.challenge(b"mock-challenge"));
                }
            }
        }
        let advice: Vec<Vec<Fr>> = advice
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| PlonkError::Synthesis("missing advice column".into()))?;

        let tables_fixed_only = cs.lookups.iter().all(|l| {
            l.table.iter().all(|e| {
                let mut q = Vec::new();
                e.collect_queries(&mut q);
                q.iter().all(|(c, _)| matches!(c, Column::Fixed(_)))
            })
        });
        let mut copy_index: HashMap<CellRef, Vec<usize>> = HashMap::new();
        for (i, (a, b)) in pre.copies.iter().enumerate() {
            copy_index.entry(*a).or_default().push(i);
            copy_index.entry(*b).or_default().push(i);
        }
        let max_rotation = cs
            .queries()
            .iter()
            .map(|(_, r)| r.0.unsigned_abs() as usize)
            .max()
            .unwrap_or(0);

        let mut mock = MockProver {
            k,
            n,
            usable,
            cs: cs.clone(),
            copies: pre.copies.clone(),
            instance,
            advice,
            fixed,
            committed,
            challenges,
            tables: Vec::new(),
            tables_fixed_only,
            copy_index,
            max_rotation,
        };
        mock.rebuild_tables();
        Ok(mock)
    }

    /// The log2 number of rows.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The number of usable (non-blinding) rows.
    pub fn usable_rows(&self) -> usize {
        self.usable
    }

    /// The frozen transcript challenges.
    pub fn challenges(&self) -> &[Fr] {
        &self.challenges
    }

    /// Reads one cell of the grid.
    pub fn cell(&self, cell: CellRef) -> Fr {
        self.column(cell.column)[cell.row]
    }

    /// Overwrites one cell of the grid (for adversarial mutation testing).
    ///
    /// Challenges stay frozen; writes to fixed columns rebuild the cached
    /// lookup-table sets.
    pub fn set_cell(&mut self, cell: CellRef, value: Fr) {
        match cell.column {
            Column::Instance(c) => self.instance[c][cell.row] = value,
            Column::Advice(c) => self.advice[c][cell.row] = value,
            Column::Fixed(c) => {
                self.fixed[c][cell.row] = value;
                self.rebuild_tables();
            }
            Column::Committed(c) => self.committed[c][cell.row] = value,
        }
    }

    fn column(&self, col: Column) -> &Vec<Fr> {
        match col {
            Column::Instance(c) => &self.instance[c],
            Column::Advice(c) => &self.advice[c],
            Column::Fixed(c) => &self.fixed[c],
            Column::Committed(c) => &self.committed[c],
        }
    }

    fn rebuild_tables(&mut self) {
        self.tables = self
            .cs
            .lookups
            .iter()
            .map(|lk| {
                (0..self.usable)
                    .map(|row| self.tuple_bytes(&lk.table, row))
                    .collect()
            })
            .collect();
    }

    /// Evaluates an arbitrary expression against the grids at `row`
    /// (wrapping rotations), using the frozen challenges.
    pub fn eval_expr(&self, e: &Expression, row: usize) -> Fr {
        self.eval(e, row)
    }

    fn eval(&self, e: &Expression, row: usize) -> Fr {
        e.evaluate_on_grid(
            row,
            self.n,
            &self.instance,
            &self.advice,
            &self.fixed,
            &self.challenges,
        )
    }

    fn tuple_bytes(&self, exprs: &[Expression], row: usize) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(exprs.len() * 32);
        for e in exprs {
            bytes.extend_from_slice(&self.eval(e, row).to_bytes());
        }
        bytes
    }

    fn check_gates_at(&self, row: usize, failures: &mut Vec<VerifyFailure>) -> bool {
        let mut ok = true;
        for (gi, gate) in self.cs.gates.iter().enumerate() {
            for (ci, poly) in gate.polys.iter().enumerate() {
                let value = self.eval(poly, row);
                if !value.is_zero() {
                    ok = false;
                    let mut queries = Vec::new();
                    poly.collect_queries(&mut queries);
                    queries.sort_by_key(|(c, r)| (*c, r.0));
                    queries.dedup();
                    let cells = queries
                        .into_iter()
                        .map(|(col, rot)| {
                            let idx = (row as i64 + rot.0 as i64).rem_euclid(self.n as i64);
                            (col, rot, self.column(col)[idx as usize])
                        })
                        .collect();
                    failures.push(VerifyFailure::Gate {
                        gate: gate.name.clone(),
                        gate_index: gi,
                        constraint_index: ci,
                        row,
                        value,
                        cells,
                    });
                }
            }
        }
        ok
    }

    fn check_lookups_at(&self, row: usize, failures: &mut Vec<VerifyFailure>) -> bool {
        let mut ok = true;
        if row >= self.usable {
            return ok;
        }
        for (li, lk) in self.cs.lookups.iter().enumerate() {
            if !self.tables[li].contains(&self.tuple_bytes(&lk.inputs, row)) {
                ok = false;
                failures.push(VerifyFailure::Lookup {
                    lookup: lk.name.clone(),
                    lookup_index: li,
                    row,
                    inputs: lk.inputs.iter().map(|e| self.eval(e, row)).collect(),
                });
            }
        }
        ok
    }

    fn check_copy(&self, idx: usize, failures: &mut Vec<VerifyFailure>) -> bool {
        let (a, b) = self.copies[idx];
        let mut ok = true;
        for cell in [a, b] {
            if !self.cs.permutation_columns.contains(&cell.column) {
                failures.push(VerifyFailure::CopyColumnNotEnabled { cell });
                ok = false;
            }
            if cell.row >= self.usable {
                failures.push(VerifyFailure::CopyRowOutOfRange {
                    cell,
                    usable: self.usable,
                });
                ok = false;
            }
        }
        if !ok {
            return false;
        }
        let (av, bv) = (self.cell(a), self.cell(b));
        if av != bv {
            failures.push(VerifyFailure::CopyMismatch {
                a,
                b,
                a_value: av,
                b_value: bv,
            });
            return false;
        }
        true
    }

    /// Checks every gate on every row, every copy constraint, and every
    /// lookup argument, collecting all failures.
    pub fn verify(&self) -> Result<(), Vec<VerifyFailure>> {
        let mut failures = Vec::new();
        for row in 0..self.n {
            self.check_gates_at(row, &mut failures);
            self.check_lookups_at(row, &mut failures);
        }
        for idx in 0..self.copies.len() {
            self.check_copy(idx, &mut failures);
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }

    /// Like [`verify`](Self::verify) but stops at the first failure.
    pub fn is_satisfied(&self) -> bool {
        let mut sink = Vec::new();
        for row in 0..self.n {
            if !self.check_gates_at(row, &mut sink) || !self.check_lookups_at(row, &mut sink) {
                return false;
            }
        }
        (0..self.copies.len()).all(|idx| self.check_copy(idx, &mut sink))
    }

    /// Checks only the constraints that can observe `cell`: gates and lookup
    /// inputs on rows within rotation range of it, plus copy constraints
    /// touching it. Sound for instance/advice cells when lookup tables query
    /// only fixed columns (the common case); falls back to a full
    /// [`verify`](Self::verify) otherwise. Used by the mutation harness,
    /// where a full sweep per mutation would be quadratic.
    pub fn check_affected(&self, cell: CellRef) -> Vec<VerifyFailure> {
        if matches!(cell.column, Column::Fixed(_)) || !self.tables_fixed_only {
            return self.verify().err().unwrap_or_default();
        }
        let mut failures = Vec::new();
        let r = self.max_rotation as i64;
        for d in -r..=r {
            let row = (cell.row as i64 + d).rem_euclid(self.n as i64) as usize;
            self.check_gates_at(row, &mut failures);
            self.check_lookups_at(row, &mut failures);
        }
        if let Some(indices) = self.copy_index.get(&cell) {
            for &idx in indices {
                self.check_copy(idx, &mut failures);
            }
        }
        failures
    }

    /// Panics with a readable report if any constraint is violated.
    pub fn assert_satisfied(&self) {
        if let Err(failures) = self.verify() {
            let mut msg = format!("MockProver: {} failure(s)\n", failures.len());
            for f in &failures {
                msg.push_str(&format!("  {f}\n"));
            }
            panic!("{msg}");
        }
    }

    /// Snapshots the (possibly mutated) grids as a phase-0 witness source
    /// for cross-checking against the real prover and verifier.
    ///
    /// Returns `None` when the circuit uses challenges: phase-1 values in
    /// the grid are consistent with the frozen *mock* challenges, not the
    /// ones a real transcript would derive.
    pub fn to_witness(&self) -> Option<GridWitness> {
        if self.cs.num_challenges > 0 {
            return None;
        }
        Some(GridWitness {
            instance: self
                .instance
                .iter()
                .map(|c| c[..self.usable].to_vec())
                .collect(),
            advice: self
                .advice
                .iter()
                .map(|c| c[..self.usable].to_vec())
                .collect(),
        })
    }
}

fn absorb_column(t: &mut Transcript, label: &'static [u8], col: &[Fr]) {
    let mut bytes = Vec::with_capacity(col.len() * 32);
    for v in col {
        bytes.extend_from_slice(&v.to_bytes());
    }
    t.absorb(label, &bytes);
}

/// A concrete phase-0 witness captured from a [`MockProver`] grid.
pub struct GridWitness {
    instance: Vec<Vec<Fr>>,
    advice: Vec<Vec<Fr>>,
}

impl WitnessSource for GridWitness {
    fn instance(&self) -> Vec<Vec<Fr>> {
        self.instance.clone()
    }
    fn advice(&self, phase: u8, _challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
        if phase == 0 {
            self.advice.iter().cloned().enumerate().collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_ff::PrimeField;

    struct VecWitness {
        instance: Vec<Vec<Fr>>,
        advice: Vec<Vec<Fr>>,
    }
    impl WitnessSource for VecWitness {
        fn instance(&self) -> Vec<Vec<Fr>> {
            self.instance.clone()
        }
        fn advice(&self, phase: u8, _challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
            if phase == 0 {
                self.advice.iter().cloned().enumerate().collect()
            } else {
                Vec::new()
            }
        }
    }

    /// q * (a * b - c) with one copy of c into the instance column.
    fn mul_circuit() -> (ConstraintSystem, Preprocessed, VecWitness) {
        let mut cs = ConstraintSystem::new();
        let ic = cs.instance_column();
        let a = cs.advice_column(0);
        let b = cs.advice_column(0);
        let c = cs.advice_column(0);
        let q = cs.fixed_column();
        cs.create_gate(
            "mul",
            vec![
                Expression::Fixed(q, Rotation::cur())
                    * (Expression::Advice(a, Rotation::cur())
                        * Expression::Advice(b, Rotation::cur())
                        - Expression::Advice(c, Rotation::cur())),
            ],
        );
        cs.enable_equality(Column::Advice(c));
        cs.enable_equality(Column::Instance(ic));
        let pre = Preprocessed {
            committed: Vec::new(),
            fixed: vec![vec![Fr::one()]],
            copies: vec![(
                CellRef {
                    column: Column::Advice(c),
                    row: 0,
                },
                CellRef {
                    column: Column::Instance(ic),
                    row: 0,
                },
            )],
        };
        let witness = VecWitness {
            instance: vec![vec![Fr::from_u64(6)]],
            advice: vec![
                vec![Fr::from_u64(2)],
                vec![Fr::from_u64(3)],
                vec![Fr::from_u64(6)],
            ],
        };
        (cs, pre, witness)
    }

    #[test]
    fn satisfied_circuit_passes() {
        let (cs, pre, witness) = mul_circuit();
        let mock = MockProver::run(4, &cs, &pre, &witness).unwrap();
        mock.assert_satisfied();
        assert!(mock.is_satisfied());
    }

    #[test]
    fn gate_failure_names_gate_row_and_cells() {
        let (cs, pre, mut witness) = mul_circuit();
        witness.advice[1][0] = Fr::from_u64(4); // 2 * 4 != 6
        let mock = MockProver::run(4, &cs, &pre, &witness).unwrap();
        let failures = mock.verify().unwrap_err();
        let gate = failures
            .iter()
            .find_map(|f| match f {
                VerifyFailure::Gate {
                    gate, row, cells, ..
                } => Some((gate.clone(), *row, cells.clone())),
                _ => None,
            })
            .expect("expected a gate failure");
        assert_eq!(gate.0, "mul");
        assert_eq!(gate.1, 0);
        assert!(gate
            .2
            .iter()
            .any(|(c, _, v)| *c == Column::Advice(1) && *v == Fr::from_u64(4)));
        let display = format!("{}", failures[0]);
        assert!(display.contains("mul") && display.contains("row 0"));
    }

    #[test]
    fn copy_mismatch_reports_both_values() {
        let (cs, pre, mut witness) = mul_circuit();
        // 2 * 3 = 6 still holds, but the public claim is 7.
        witness.instance[0][0] = Fr::from_u64(7);
        let mock = MockProver::run(4, &cs, &pre, &witness).unwrap();
        let failures = mock.verify().unwrap_err();
        assert!(failures.iter().any(|f| matches!(
            f,
            VerifyFailure::CopyMismatch { a_value, b_value, .. }
                if *a_value == Fr::from_u64(6) && *b_value == Fr::from_u64(7)
        )));
    }

    #[test]
    fn lookup_failure_reports_missing_tuple() {
        let mut cs = ConstraintSystem::new();
        let a = cs.advice_column(0);
        let t = cs.fixed_column();
        cs.create_lookup(
            "range4",
            vec![Expression::Advice(a, Rotation::cur())],
            vec![Expression::Fixed(t, Rotation::cur())],
        );
        let pre = Preprocessed {
            committed: Vec::new(),
            fixed: vec![(0..4).map(Fr::from_u64).collect()],
            copies: vec![],
        };
        let witness = VecWitness {
            instance: vec![],
            advice: vec![vec![Fr::from_u64(3), Fr::from_u64(9)]],
        };
        let mock = MockProver::run(4, &cs, &pre, &witness).unwrap();
        let failures = mock.verify().unwrap_err();
        assert!(failures.iter().any(|f| matches!(
            f,
            VerifyFailure::Lookup { lookup, row: 1, inputs, .. }
                if lookup == "range4" && inputs[0] == Fr::from_u64(9)
        )));
        // Rows beyond the witness hold the padded zero, which is in-table.
        assert_eq!(failures.len(), 1);
    }

    #[test]
    fn check_affected_matches_full_verify() {
        let (cs, pre, witness) = mul_circuit();
        let mut mock = MockProver::run(4, &cs, &pre, &witness).unwrap();
        let cell = CellRef {
            column: Column::Advice(2),
            row: 0,
        };
        assert!(mock.check_affected(cell).is_empty());
        let orig = mock.cell(cell);
        mock.set_cell(cell, orig + Fr::one());
        let local = mock.check_affected(cell);
        let full = mock.verify().unwrap_err();
        assert!(!local.is_empty());
        assert_eq!(local.len(), full.len());
    }

    #[test]
    fn mock_challenges_depend_on_phase0() {
        let mut cs = ConstraintSystem::new();
        let a = cs.advice_column(0);
        let b = cs.advice_column(1);
        cs.challenge();
        let _ = (a, b);
        let pre = Preprocessed {
            committed: Vec::new(),
            fixed: vec![],
            copies: vec![],
        };
        struct W(u64);
        impl WitnessSource for W {
            fn instance(&self) -> Vec<Vec<Fr>> {
                vec![]
            }
            fn advice(&self, phase: u8, challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
                if phase == 0 {
                    vec![(0, vec![Fr::from_u64(self.0)])]
                } else {
                    vec![(1, vec![challenges[0]])]
                }
            }
        }
        let m1 = MockProver::run(4, &cs, &pre, &W(1)).unwrap();
        let m2 = MockProver::run(4, &cs, &pre, &W(1)).unwrap();
        let m3 = MockProver::run(4, &cs, &pre, &W(2)).unwrap();
        assert_eq!(m1.challenges(), m2.challenges());
        assert_ne!(m1.challenges()[0], m3.challenges()[0]);
    }
}
