//! Reusable scratch buffers for the prover's polynomial pipeline.
//!
//! The quotient pass materializes one extended-domain vector per committed
//! polynomial (instances, advice, permutation and lookup products), plus the
//! combined constraint vector — at extension factor 4 that is `4n` field
//! elements per vector, allocated and dropped within a single proof. The
//! arena keeps retired buffers on a free list so each prover phase reuses
//! the previous phase's allocations instead of returning them to the
//! allocator; on a `2^16`-row circuit this removes tens of multi-megabyte
//! allocations per proof.
//!
//! The arena hands out plain `Vec<Fr>`s — callers return them with
//! [`PolyArena::put`] when a phase retires them. Buffers are recycled by
//! capacity only; contents are always overwritten or zeroed before reuse,
//! so recycling can never change a proof byte.

use std::sync::Mutex;
use zkml_ff::{Field, Fr};

/// A free list of retired polynomial buffers.
#[derive(Default)]
pub struct PolyArena {
    free: Mutex<Vec<Vec<Fr>>>,
}

impl PolyArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops the retired buffer with the largest capacity, if any.
    fn pop(&self) -> Option<Vec<Fr>> {
        self.free.lock().expect("arena poisoned").pop()
    }

    /// Returns a buffer of exactly `n` zeros, reusing a retired allocation
    /// when one is available.
    pub fn take_zeroed(&self, n: usize) -> Vec<Fr> {
        match self.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(n, Fr::zero());
                buf
            }
            None => vec![Fr::zero(); n],
        }
    }

    /// Returns a buffer holding a copy of `src`, reusing a retired
    /// allocation when one is available.
    pub fn take_copy(&self, src: &[Fr]) -> Vec<Fr> {
        match self.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.extend_from_slice(src);
                buf
            }
            None => src.to_vec(),
        }
    }

    /// Retires a buffer into the free list for later reuse.
    pub fn put(&self, buf: Vec<Fr>) {
        if buf.capacity() == 0 {
            return;
        }
        self.free.lock().expect("arena poisoned").push(buf);
    }

    /// Retires every buffer in `bufs`.
    pub fn put_all<I: IntoIterator<Item = Vec<Fr>>>(&self, bufs: I) {
        let mut free = self.free.lock().expect("arena poisoned");
        free.extend(bufs.into_iter().filter(|b| b.capacity() > 0));
    }

    /// Number of buffers currently on the free list (for tests).
    pub fn free_count(&self) -> usize {
        self.free.lock().expect("arena poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_ff::PrimeField;

    #[test]
    fn reuses_capacity_and_zeroes_contents() {
        let arena = PolyArena::new();
        let mut a = arena.take_zeroed(16);
        a[3] = Fr::from_u64(7);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        arena.put(a);
        assert_eq!(arena.free_count(), 1);

        // Same allocation comes back, fully zeroed.
        let b = arena.take_zeroed(16);
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.capacity(), cap);
        assert!(b.iter().all(|v| v.is_zero()));
        assert_eq!(arena.free_count(), 0);
        arena.put(b);

        // take_copy reuses the allocation and copies exactly.
        let src: Vec<Fr> = (0..10).map(Fr::from_u64).collect();
        let c = arena.take_copy(&src);
        assert_eq!(c.as_ptr(), ptr);
        assert_eq!(c, src);
    }

    #[test]
    fn growing_take_still_works() {
        let arena = PolyArena::new();
        arena.put(Vec::with_capacity(4));
        // Requesting more than the retired capacity grows the buffer.
        let a = arena.take_zeroed(64);
        assert_eq!(a.len(), 64);
        let src: Vec<Fr> = (0..32).map(Fr::from_u64).collect();
        arena.put(a);
        let b = arena.take_copy(&src);
        assert_eq!(b, src);
    }
}
