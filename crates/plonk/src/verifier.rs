//! Proof verification.

use crate::expression::{Column, Expression, Rotation};
use crate::keygen::{VerifyingKey, WeightCommitment};
use crate::protocol::{opening_plan, PolyId};
use crate::PlonkError;
use zkml_curves::G1Affine;
use zkml_ff::{Field, Fr, PrimeField};
use zkml_pcs::{Params, Reader, Verification};
use zkml_poly::{Coeffs, EvaluationDomain};
use zkml_transcript::Transcript;

/// Verifies a proof against public inputs.
pub fn verify_proof(
    params: &Params,
    vk: &VerifyingKey,
    instance: &[Vec<Fr>],
    proof: &[u8],
) -> Result<(), PlonkError> {
    let v = verify_proof_deferred(params, vk, instance, proof, &[])?;
    if v.settle(params) {
        Ok(())
    } else {
        Err(PlonkError::Verify(
            "opening verification failed: KZG pairing check failed".into(),
        ))
    }
}

/// Verifies a proof bound to a context string, deferring the backend's
/// final check when possible.
///
/// Mirrors the prover's [`crate::create_proof_bound`]: the binding is
/// absorbed right after the verifying-key digest (nothing is absorbed when
/// empty), so a proof created under one binding fails under any other. On
/// the KZG backend the returned [`Verification`] carries the pending
/// pairing inputs; callers batch many of them through
/// [`zkml_pcs::batch_check`] to settle a whole proof bundle with one
/// multi-pairing. IPA verifies completely.
pub fn verify_proof_deferred(
    params: &Params,
    vk: &VerifyingKey,
    instance: &[Vec<Fr>],
    proof: &[u8],
    binding: &[u8],
) -> Result<Verification, PlonkError> {
    if vk.cs.num_committed > 0 {
        return Err(PlonkError::Verify(
            "circuit has committed columns; use verify_proof_committed with \
             the published WeightCommitment"
                .into(),
        ));
    }
    verify_proof_committed(params, vk, instance, proof, binding, None)
}

/// Verifies a proof for a circuit with committed (weight) columns against a
/// *published* [`WeightCommitment`], deferring the backend's final check.
///
/// Mirrors [`crate::prover::create_proof_committed`]: the commitment digest
/// is absorbed right after the verifying-key digest, so a proof created
/// under one weight commitment fails under any other — tampering with a
/// single weight after publication changes the column commitment, the
/// digest, and therefore every Fiat–Shamir challenge.
pub fn verify_proof_committed(
    params: &Params,
    vk: &VerifyingKey,
    instance: &[Vec<Fr>],
    proof: &[u8],
    binding: &[u8],
    weights: Option<&WeightCommitment>,
) -> Result<Verification, PlonkError> {
    let cs = &vk.cs;
    let wc = match weights {
        Some(wc) => {
            if wc.k != vk.k {
                return Err(PlonkError::Verify(format!(
                    "weight commitment is for k = {} but circuit has k = {}",
                    wc.k, vk.k
                )));
            }
            if wc.commitments.len() != cs.num_committed {
                return Err(PlonkError::Verify(format!(
                    "weight commitment has {} columns but circuit has {}",
                    wc.commitments.len(),
                    cs.num_committed
                )));
            }
            if wc.digest != WeightCommitment::compute_digest(wc.k, &wc.commitments) {
                return Err(PlonkError::Verify(
                    "weight commitment digest does not match its commitments".into(),
                ));
            }
            Some(wc)
        }
        None if cs.num_committed > 0 => {
            return Err(PlonkError::Verify(
                "circuit has committed columns but no weight commitment was supplied".into(),
            ));
        }
        None => None,
    };
    let domain = EvaluationDomain::<Fr>::new(vk.k);
    let n = domain.n;
    let usable = cs.usable_rows(n);
    let degree = cs.degree();
    let factor = (degree - 1).next_power_of_two();

    if instance.len() != cs.num_instance {
        return Err(PlonkError::Verify(format!(
            "expected {} instance columns, got {}",
            cs.num_instance,
            instance.len()
        )));
    }

    let mut transcript = Transcript::new(b"zkml-plonk");
    transcript.absorb(b"vk", &vk.digest);
    if let Some(wc) = wc {
        transcript.absorb(b"weights", &wc.digest);
    }
    if !binding.is_empty() {
        transcript.absorb(b"bind", binding);
    }
    let mut instance_padded: Vec<Vec<Fr>> = Vec::with_capacity(instance.len());
    for col in instance {
        if col.len() > usable {
            return Err(PlonkError::Verify(
                "instance column exceeds usable rows".into(),
            ));
        }
        let mut v = col.clone();
        v.resize(n, Fr::zero());
        let mut bytes = Vec::with_capacity(v.len() * 32);
        for x in &v {
            bytes.extend_from_slice(&x.to_bytes());
        }
        transcript.absorb(b"instance", &bytes);
        instance_padded.push(v);
    }

    let mut r = Reader::new(proof);

    // --- Commitments, mirroring the prover's transcript schedule ---------
    let mut advice_commitments: Vec<Option<G1Affine>> = vec![None; cs.num_advice];
    let mut challenges: Vec<Fr> = Vec::new();
    let phases: &[u8] = if cs.num_challenges > 0 { &[0, 1] } else { &[0] };
    for &phase in phases {
        for (c, slot) in advice_commitments.iter_mut().enumerate() {
            if cs.advice_phase[c] != phase {
                continue;
            }
            let com = r.g1()?;
            transcript.absorb(b"advice", &com.to_bytes());
            *slot = Some(com);
        }
        if phase == 0 {
            for _ in 0..cs.num_challenges {
                challenges.push(transcript.challenge(b"phase-challenge"));
            }
        }
    }
    let advice_commitments: Vec<G1Affine> = advice_commitments
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .expect("all advice commitments read");

    let theta: Fr = transcript.challenge(b"theta");

    let mut lookup_a = Vec::with_capacity(cs.lookups.len());
    let mut lookup_s = Vec::with_capacity(cs.lookups.len());
    for _ in &cs.lookups {
        let a = r.g1()?;
        let s = r.g1()?;
        transcript.absorb(b"lookup-a", &a.to_bytes());
        transcript.absorb(b"lookup-s", &s.to_bytes());
        lookup_a.push(a);
        lookup_s.push(s);
    }

    let beta: Fr = transcript.challenge(b"beta");
    let gamma: Fr = transcript.challenge(b"gamma");

    let z_count = cs.permutation_z_count();
    let mut perm_z = Vec::with_capacity(z_count);
    for _ in 0..z_count {
        let z = r.g1()?;
        transcript.absorb(b"perm-z", &z.to_bytes());
        perm_z.push(z);
    }
    let mut lookup_z = Vec::with_capacity(cs.lookups.len());
    for _ in &cs.lookups {
        let z = r.g1()?;
        transcript.absorb(b"lookup-z", &z.to_bytes());
        lookup_z.push(z);
    }

    let y: Fr = transcript.challenge(b"y");

    let mut quotient = Vec::with_capacity(factor);
    for _ in 0..factor {
        let q = r.g1()?;
        transcript.absorb(b"quotient", &q.to_bytes());
        quotient.push(q);
    }

    let x: Fr = transcript.challenge(b"x");

    // --- Evaluations -------------------------------------------------------
    let plan = opening_plan(cs, usable, factor);
    let mut evals = Vec::with_capacity(plan.len());
    for _ in &plan {
        let e = r.scalar()?;
        transcript.absorb_scalar(b"eval", &e);
        evals.push(e);
    }

    let find_eval = |id: PolyId, rot: i32| -> Fr {
        plan.iter()
            .zip(&evals)
            .find(|(entry, _)| entry.poly == id && entry.rotation == rot)
            .map(|(_, e)| *e)
            .unwrap_or_else(|| panic!("missing eval for {id:?} rot {rot}"))
    };

    // Instance evaluations are computed directly from the public inputs.
    let instance_polys: Vec<Coeffs<Fr>> = instance_padded
        .iter()
        .map(|v| {
            let mut c = v.clone();
            domain.ifft(&mut c);
            Coeffs::new(c)
        })
        .collect();
    let instance_eval =
        |c: usize, rot: i32| -> Fr { instance_polys[c].evaluate(domain.rotate(x, rot)) };

    let column_eval = |col: Column, rot: Rotation| -> Fr {
        match col {
            Column::Advice(c) => find_eval(PolyId::Advice(c), rot.0),
            Column::Fixed(c) => find_eval(PolyId::Fixed(c), rot.0),
            Column::Committed(c) => find_eval(PolyId::Committed(c), rot.0),
            Column::Instance(c) => instance_eval(c, rot.0),
        }
    };

    let eval_expr = |e: &Expression| -> Fr {
        e.evaluate(
            &|c| c,
            &|c, rot| column_eval(Column::Instance(c), rot),
            &|c, rot| column_eval(Column::Advice(c), rot),
            &|c, rot| column_eval(Column::Fixed(c), rot),
            &|c| challenges[c],
        )
    };
    let compress = |exprs: &[Expression]| -> Fr {
        let mut acc = Fr::zero();
        let mut t = Fr::one();
        for e in exprs {
            acc += t * eval_expr(e);
            t *= theta;
        }
        acc
    };

    // Lagrange selector evaluations at x.
    let lagrange = domain.lagrange_evals(x);
    let l0_x = lagrange[0];
    let l_last_x = lagrange[usable];
    let l_blind_x: Fr = lagrange[usable + 1..].iter().copied().sum();
    let l_active_x = Fr::one() - l_last_x - l_blind_x;

    // --- Recompute the combined constraint value at x ----------------------
    let mut combined = Fr::zero();
    let add_term = |term: Fr, combined: &mut Fr| {
        *combined = *combined * y + term;
    };

    for gate in &cs.gates {
        for poly in &gate.polys {
            add_term(eval_expr(poly), &mut combined);
        }
    }

    if z_count > 0 {
        let delta = Fr::delta();
        let mut delta_powers = Vec::with_capacity(cs.permutation_columns.len());
        let mut cur = Fr::one();
        for _ in 0..cs.permutation_columns.len() {
            delta_powers.push(cur);
            cur *= delta;
        }
        add_term(
            l0_x * (Fr::one() - find_eval(PolyId::PermZ(0), 0)),
            &mut combined,
        );
        let z_last = find_eval(PolyId::PermZ(z_count - 1), 0);
        add_term(l_last_x * (z_last.square() - z_last), &mut combined);
        for c in 1..z_count {
            add_term(
                l0_x * (find_eval(PolyId::PermZ(c), 0)
                    - find_eval(PolyId::PermZ(c - 1), usable as i32)),
                &mut combined,
            );
        }
        let chunk_size = cs.permutation_chunk();
        for (chunk_idx, cols) in cs.permutation_columns.chunks(chunk_size).enumerate() {
            let base = chunk_idx * chunk_size;
            let mut left = find_eval(PolyId::PermZ(chunk_idx), 1);
            let mut right = find_eval(PolyId::PermZ(chunk_idx), 0);
            for (j, col) in cols.iter().enumerate() {
                let global = base + j;
                let v = column_eval(*col, Rotation::cur());
                left *= v + beta * find_eval(PolyId::Sigma(global), 0) + gamma;
                right *= v + beta * delta_powers[global] * x + gamma;
            }
            add_term(l_active_x * (left - right), &mut combined);
        }
    }

    for (lk_idx, lk) in cs.lookups.iter().enumerate() {
        let z = find_eval(PolyId::LookupZ(lk_idx), 0);
        let z_next = find_eval(PolyId::LookupZ(lk_idx), 1);
        let a_perm = find_eval(PolyId::LookupA(lk_idx), 0);
        let a_prev = find_eval(PolyId::LookupA(lk_idx), -1);
        let s_perm = find_eval(PolyId::LookupS(lk_idx), 0);
        add_term(l0_x * (Fr::one() - z), &mut combined);
        add_term(l_last_x * (z.square() - z), &mut combined);
        let a = compress(&lk.inputs);
        let t = compress(&lk.table);
        add_term(
            l_active_x
                * (z_next * (a_perm + beta) * (s_perm + gamma) - z * (a + beta) * (t + gamma)),
            &mut combined,
        );
        add_term(l0_x * (a_perm - s_perm), &mut combined);
        add_term(
            l_active_x * (a_perm - s_perm) * (a_perm - a_prev),
            &mut combined,
        );
    }

    // --- Vanishing check ----------------------------------------------------
    let zh_x = domain.evaluate_vanishing(x);
    let xn = x.pow(&[n as u64]);
    let mut h_x = Fr::zero();
    for j in (0..factor).rev() {
        h_x = h_x * xn + find_eval(PolyId::Quotient(j), 0);
    }
    if combined != zh_x * h_x {
        return Err(PlonkError::Verify(
            "vanishing argument failed: constraints do not hold".into(),
        ));
    }

    // --- Multi-open ----------------------------------------------------------
    let commitment_for = |id: PolyId| -> G1Affine {
        match id {
            PolyId::Advice(i) => advice_commitments[i],
            PolyId::Fixed(i) => vk.fixed_commitments[i],
            PolyId::Committed(i) => {
                wc.expect("committed columns imply a commitment")
                    .commitments[i]
            }
            PolyId::Sigma(i) => vk.sigma_commitments[i],
            PolyId::PermZ(i) => perm_z[i],
            PolyId::LookupA(i) => lookup_a[i],
            PolyId::LookupS(i) => lookup_s[i],
            PolyId::LookupZ(i) => lookup_z[i],
            PolyId::Quotient(i) => quotient[i],
        }
    };
    let queries: Vec<(G1Affine, Fr, Fr)> = plan
        .iter()
        .zip(&evals)
        .map(|(entry, e)| {
            (
                commitment_for(entry.poly),
                domain.rotate(x, entry.rotation),
                *e,
            )
        })
        .collect();
    let opening = r.remaining();
    params
        .verify_deferred(&mut transcript, &queries, opening)
        .map_err(|e| PlonkError::Verify(format!("opening verification failed: {e}")))
}
