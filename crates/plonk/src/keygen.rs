//! Key generation: preprocessing fixed columns, the permutation, and the
//! Lagrange selector polynomials.

use crate::circuit::{CellRef, ConstraintSystem, Preprocessed, BLINDING_FACTORS};
use crate::expression::Column;
use crate::PlonkError;
use std::sync::atomic::{AtomicUsize, Ordering};
use zkml_curves::G1Affine;
use zkml_ff::{Field, Fr};
use zkml_pcs::Params;
use zkml_poly::{Coeffs, EvaluationDomain};
use zkml_transcript::Blake2b;

/// Count of [`keygen`] invocations in this process, for cache-efficiency
/// assertions (a warm pk cache must show a zero delta).
static KEYGENS: AtomicUsize = AtomicUsize::new(0);

/// Count of [`commit_weights`] invocations in this process: each one
/// interpolates and MSM-commits every weight column, so a service reusing a
/// published commitment must show a zero delta on subsequent proofs.
static WEIGHT_ENCODINGS: AtomicUsize = AtomicUsize::new(0);

/// Total [`keygen`] calls so far in this process.
pub fn keygens() -> usize {
    KEYGENS.load(Ordering::Relaxed)
}

/// Total [`commit_weights`] calls so far in this process.
pub fn weight_encodings() -> usize {
    WEIGHT_ENCODINGS.load(Ordering::Relaxed)
}

/// The verifier's view of a circuit.
#[derive(Clone)]
pub struct VerifyingKey {
    /// log2 of the number of rows.
    pub k: u32,
    /// The constraint system structure.
    pub cs: ConstraintSystem,
    /// Commitments to the fixed columns.
    pub fixed_commitments: Vec<G1Affine>,
    /// Commitments to the permutation sigma polynomials.
    pub sigma_commitments: Vec<G1Affine>,
    /// Digest binding the whole key into transcripts.
    pub digest: [u8; 64],
}

/// Extended-domain context for quotient computation.
#[derive(Clone)]
pub struct ExtendedDomain {
    /// The base domain (size `n`).
    pub domain: EvaluationDomain<Fr>,
    /// The extended domain (size `n * factor`).
    pub ext: EvaluationDomain<Fr>,
    /// Extension factor (`2^ceil(log2(degree - 1))`).
    pub factor: usize,
    /// Inverses of the vanishing polynomial on the extended coset, one per
    /// residue class mod `factor`.
    pub zh_inv: Vec<Fr>,
}

impl ExtendedDomain {
    /// Builds the extended domain for degree bound `degree`.
    pub fn new(k: u32, degree: usize) -> Self {
        let domain = EvaluationDomain::new(k);
        let log_factor = (degree - 1).next_power_of_two().trailing_zeros();
        let ext = EvaluationDomain::<Fr>::new(k + log_factor);
        let factor = 1usize << log_factor;
        // Z_H(g * w_ext^i) = g^n * w_ext^(n i) - 1 depends on i mod factor.
        let n = domain.n as u64;
        let gn = ext.coset_gen.pow(&[n]);
        let w_n = ext.omega.pow(&[n]); // order = factor
        let mut zh_inv = Vec::with_capacity(factor);
        let mut cur = gn;
        for _ in 0..factor {
            zh_inv.push(cur - Fr::one());
            cur *= w_n;
        }
        zkml_ff::batch_invert(&mut zh_inv);
        Self {
            domain,
            ext,
            factor,
            zh_inv,
        }
    }

    /// Evaluates a base-domain polynomial (coefficients) over the extended
    /// coset.
    pub fn coset_ext(&self, mut coeffs: Vec<Fr>) -> Vec<Fr> {
        coeffs.resize(self.ext.n, Fr::zero());
        self.ext.coset_fft(&mut coeffs);
        coeffs
    }

    /// Rotation indexing on the extended coset: `rot` base-domain steps.
    #[inline]
    pub fn rotated_index(&self, i: usize, rot: i32) -> usize {
        let n = self.ext.n as i64;
        let idx = i as i64 + rot as i64 * self.factor as i64;
        idx.rem_euclid(n) as usize
    }
}

/// The prover's preprocessed data.
pub struct ProvingKey {
    /// The verifying key.
    pub vk: VerifyingKey,
    /// Extended domain context.
    pub domains: ExtendedDomain,
    /// Fixed column values (padded to `n`).
    pub fixed_values: Vec<Vec<Fr>>,
    /// Fixed column polynomials.
    pub fixed_polys: Vec<Coeffs<Fr>>,
    /// Fixed columns on the extended coset.
    pub fixed_ext: Vec<Vec<Fr>>,
    /// Permutation sigma values per permutation column.
    pub sigma_values: Vec<Vec<Fr>>,
    /// Sigma polynomials.
    pub sigma_polys: Vec<Coeffs<Fr>>,
    /// Sigma columns on the extended coset.
    pub sigma_ext: Vec<Vec<Fr>>,
    /// `l_0` on the extended coset.
    pub l0_ext: Vec<Fr>,
    /// `l_last` on the extended coset.
    pub l_last_ext: Vec<Fr>,
    /// `l_active = 1 - l_last - l_blind` on the extended coset.
    pub l_active_ext: Vec<Fr>,
}

/// The *published* commitment to a model's weight columns: what a verifier
/// needs to check a proof against a specific set of committed weights.
///
/// Computed once per model by [`commit_weights`] and reused across every
/// proof; it is deliberately **not** part of [`VerifyingKey`], so keygen and
/// key size stay independent of the weight values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightCommitment {
    /// log2 of the row count the weight columns were padded to.
    pub k: u32,
    /// One commitment per committed column, in column order.
    pub commitments: Vec<G1Affine>,
    /// Blake2b digest binding `k` and the commitments; this is the model's
    /// published identity, absorbed into every transcript.
    pub digest: [u8; 32],
}

impl WeightCommitment {
    /// Recomputes the digest over `k` and the commitments.
    pub fn compute_digest(k: u32, commitments: &[G1Affine]) -> [u8; 32] {
        let mut h = Blake2b::new();
        h.update(b"zkml-weight-commitment-v1");
        h.update(&k.to_le_bytes());
        h.update(&(commitments.len() as u64).to_le_bytes());
        for c in commitments {
            h.update(&c.to_bytes());
        }
        let full = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&full[..32]);
        out
    }
}

/// The prover's side of a weight commitment: the committed column values,
/// their coefficient forms, and their extended-coset evaluations — everything
/// the prover needs so that proving does **zero** weight interpolation or
/// commitment work per proof.
#[derive(Clone)]
pub struct CommittedWeights {
    /// Committed column values padded to the domain (column-major).
    pub values: Vec<Vec<Fr>>,
    /// Coefficient forms of the committed columns.
    pub polys: Vec<Coeffs<Fr>>,
    /// Committed columns on the extended coset.
    pub ext: Vec<Vec<Fr>>,
    /// Copy of the published digest, for transcript absorption.
    pub digest: [u8; 32],
}

impl CommittedWeights {
    /// An empty placeholder for circuits with no committed columns.
    pub fn empty() -> Self {
        CommittedWeights {
            values: Vec::new(),
            polys: Vec::new(),
            ext: Vec::new(),
            digest: [0u8; 32],
        }
    }
}

/// Commits to a circuit's weight columns, producing the published
/// [`WeightCommitment`] and the prover-side [`CommittedWeights`].
///
/// This is the once-per-model cost of the commit-and-prove flow: each column
/// is padded to the domain (zero padding — commitments are deterministic;
/// weight *hiding* is explicitly not a goal, the model is published),
/// interpolated, committed, and extended onto the quotient coset.
pub fn commit_weights(
    params: &Params,
    cs: &ConstraintSystem,
    committed: &[Vec<Fr>],
    k: u32,
) -> Result<(WeightCommitment, CommittedWeights), PlonkError> {
    if k > params.k() {
        return Err(PlonkError::Synthesis(format!(
            "circuit k={k} exceeds params k={}",
            params.k()
        )));
    }
    if committed.len() != cs.num_committed {
        return Err(PlonkError::Synthesis(format!(
            "expected {} committed columns, got {}",
            cs.num_committed,
            committed.len()
        )));
    }
    WEIGHT_ENCODINGS.fetch_add(1, Ordering::Relaxed);
    let domains = ExtendedDomain::new(k, cs.degree());
    let n = domains.domain.n;
    let mut values = Vec::with_capacity(committed.len());
    for col in committed {
        if col.len() > n {
            return Err(PlonkError::Synthesis(format!(
                "committed column has {} rows but n = {n}",
                col.len()
            )));
        }
        let mut v = col.clone();
        v.resize(n, Fr::zero());
        values.push(v);
    }
    let (polys, ext) = interpolate_columns(&domains, &values);
    let commitments: Vec<G1Affine> = zkml_par::par_map(polys.len(), |i| params.commit(&polys[i]));
    let digest = WeightCommitment::compute_digest(k, &commitments);
    Ok((
        WeightCommitment {
            k,
            commitments,
            digest,
        },
        CommittedWeights {
            values,
            polys,
            ext,
            digest,
        },
    ))
}

/// Interpolates column values into coefficient form and evaluates each
/// polynomial over the extended coset.
fn interpolate_columns(
    domains: &ExtendedDomain,
    values: &[Vec<Fr>],
) -> (Vec<Coeffs<Fr>>, Vec<Vec<Fr>>) {
    let polys: Vec<Coeffs<Fr>> = zkml_par::par_map(values.len(), |i| {
        let mut c = values[i].clone();
        domains.domain.ifft(&mut c);
        Coeffs::new(c)
    });
    let ext = zkml_par::par_map(polys.len(), |i| domains.coset_ext(polys[i].values.clone()));
    (polys, ext)
}

/// Computes the `l_0`, `l_last`, and `l_active` selector polynomials on the
/// extended coset.
fn lagrange_selectors(
    domains: &ExtendedDomain,
    cs: &ConstraintSystem,
) -> (Vec<Fr>, Vec<Fr>, Vec<Fr>) {
    let n = domains.domain.n;
    let usable = cs.usable_rows(n);
    let indicator = |rows: &dyn Fn(usize) -> bool| -> Vec<Fr> {
        let mut evals: Vec<Fr> = (0..n)
            .map(|i| if rows(i) { Fr::one() } else { Fr::zero() })
            .collect();
        domains.domain.ifft(&mut evals);
        domains.coset_ext(evals)
    };
    (
        indicator(&|i| i == 0),
        indicator(&|i| i == usable),
        indicator(&|i| i < usable),
    )
}

impl ProvingKey {
    /// Rebuilds a proving key from its persistent core: the verifying key
    /// plus the fixed and sigma column *values*. Everything else in the key
    /// (coefficient forms, coset extensions, Lagrange selectors) is derived
    /// data and is recomputed here, which keeps the serialized form small.
    pub fn from_parts(
        vk: VerifyingKey,
        fixed_values: Vec<Vec<Fr>>,
        sigma_values: Vec<Vec<Fr>>,
    ) -> Result<ProvingKey, PlonkError> {
        let domains = ExtendedDomain::new(vk.k, vk.cs.degree());
        let n = domains.domain.n;
        if fixed_values.len() != vk.cs.num_fixed {
            return Err(PlonkError::Synthesis(format!(
                "expected {} fixed columns, got {}",
                vk.cs.num_fixed,
                fixed_values.len()
            )));
        }
        if sigma_values.len() != vk.cs.permutation_columns.len() {
            return Err(PlonkError::Synthesis(format!(
                "expected {} sigma columns, got {}",
                vk.cs.permutation_columns.len(),
                sigma_values.len()
            )));
        }
        for col in fixed_values.iter().chain(sigma_values.iter()) {
            if col.len() != n {
                return Err(PlonkError::Synthesis(format!(
                    "column has {} rows but n = {n}",
                    col.len()
                )));
            }
        }
        let (fixed_polys, fixed_ext) = interpolate_columns(&domains, &fixed_values);
        let (sigma_polys, sigma_ext) = interpolate_columns(&domains, &sigma_values);
        let (l0_ext, l_last_ext, l_active_ext) = lagrange_selectors(&domains, &vk.cs);
        Ok(ProvingKey {
            vk,
            domains,
            fixed_values,
            fixed_polys,
            fixed_ext,
            sigma_values,
            sigma_polys,
            sigma_ext,
            l0_ext,
            l_last_ext,
            l_active_ext,
        })
    }
}

/// Builds the permutation mapping from copy constraints using the PLONK
/// cycle-merging construction.
pub fn build_permutation(
    cs: &ConstraintSystem,
    copies: &[(CellRef, CellRef)],
    n: usize,
) -> Result<Vec<Vec<(usize, usize)>>, PlonkError> {
    let columns = &cs.permutation_columns;
    let col_index = |c: Column| -> Result<usize, PlonkError> {
        columns
            .iter()
            .position(|pc| *pc == c)
            .ok_or_else(|| PlonkError::Synthesis(format!("column {c:?} not equality-enabled")))
    };
    let usable = cs.usable_rows(n);

    // mapping[c][i] = sigma(c, i); starts as the identity.
    let mut mapping: Vec<Vec<(usize, usize)>> = (0..columns.len())
        .map(|c| (0..n).map(|i| (c, i)).collect())
        .collect();
    // aux: cycle representative; sizes: cycle sizes at representatives.
    let mut aux: Vec<Vec<(usize, usize)>> = mapping.clone();
    let mut sizes: Vec<Vec<usize>> = (0..columns.len()).map(|_| vec![1usize; n]).collect();

    for (a, b) in copies {
        if a.row >= usable || b.row >= usable {
            return Err(PlonkError::Synthesis(format!(
                "copy constraint touches non-usable row ({} or {}, usable {})",
                a.row, b.row, usable
            )));
        }
        let ca = col_index(a.column)?;
        let cb = col_index(b.column)?;
        let mut left = (ca, a.row);
        let mut right = (cb, b.row);
        if aux[left.0][left.1] == aux[right.0][right.1] {
            continue; // already in the same cycle
        }
        // Merge the smaller cycle into the larger.
        if sizes[aux[left.0][left.1].0][aux[left.0][left.1].1]
            < sizes[aux[right.0][right.1].0][aux[right.0][right.1].1]
        {
            std::mem::swap(&mut left, &mut right);
        }
        let l_rep = aux[left.0][left.1];
        let r_rep = aux[right.0][right.1];
        sizes[l_rep.0][l_rep.1] += sizes[r_rep.0][r_rep.1];
        // Relabel the right cycle.
        let mut cur = right;
        loop {
            aux[cur.0][cur.1] = l_rep;
            cur = mapping[cur.0][cur.1];
            if cur == right {
                break;
            }
        }
        // Splice the cycles.
        let tmp = mapping[left.0][left.1];
        mapping[left.0][left.1] = mapping[right.0][right.1];
        mapping[right.0][right.1] = tmp;
    }
    Ok(mapping)
}

/// Generates proving and verifying keys.
pub fn keygen(
    params: &Params,
    cs: &ConstraintSystem,
    pre: &Preprocessed,
    k: u32,
) -> Result<ProvingKey, PlonkError> {
    if k > params.k() {
        return Err(PlonkError::Synthesis(format!(
            "circuit k={k} exceeds params k={}",
            params.k()
        )));
    }
    let degree = cs.degree();
    let domains = ExtendedDomain::new(k, degree);
    let n = domains.domain.n;
    if pre.fixed.len() != cs.num_fixed {
        return Err(PlonkError::Synthesis(format!(
            "expected {} fixed columns, got {}",
            cs.num_fixed,
            pre.fixed.len()
        )));
    }
    // Committed (weight) columns are validated for arity but deliberately
    // not processed here: they are committed once per model by
    // [`commit_weights`], keeping keygen cost and key size weight-free.
    if !pre.committed.is_empty() && pre.committed.len() != cs.num_committed {
        return Err(PlonkError::Synthesis(format!(
            "expected {} committed columns, got {}",
            cs.num_committed,
            pre.committed.len()
        )));
    }
    KEYGENS.fetch_add(1, Ordering::Relaxed);

    // Fixed columns.
    let mut fixed_values = Vec::with_capacity(cs.num_fixed);
    for col in &pre.fixed {
        if col.len() > n {
            return Err(PlonkError::Synthesis(format!(
                "fixed column has {} rows but n = {n}",
                col.len()
            )));
        }
        let mut v = col.clone();
        v.resize(n, Fr::zero());
        fixed_values.push(v);
    }
    // The fixed-column pipeline and the permutation pipeline are
    // independent; run them as the two arms of a join. Within each arm,
    // interpolation and commitments fan out per column.
    let (fixed_out, sigma_out) = zkml_par::join(
        || {
            let (fixed_polys, fixed_ext) = interpolate_columns(&domains, &fixed_values);
            let fixed_commitments: Vec<G1Affine> =
                zkml_par::par_map(fixed_polys.len(), |i| params.commit(&fixed_polys[i]));
            (fixed_polys, fixed_ext, fixed_commitments)
        },
        || {
            let mapping = build_permutation(cs, &pre.copies, n)?;
            let omega_powers: Vec<Fr> = domains.domain.elements();
            let delta = Fr::delta();
            let mut delta_powers = Vec::with_capacity(cs.permutation_columns.len());
            let mut cur = Fr::one();
            for _ in 0..cs.permutation_columns.len() {
                delta_powers.push(cur);
                cur *= delta;
            }
            let sigma_values: Vec<Vec<Fr>> = zkml_par::par_map(mapping.len(), |m| {
                mapping[m]
                    .iter()
                    .map(|(c, i)| delta_powers[*c] * omega_powers[*i])
                    .collect()
            });
            let (sigma_polys, sigma_ext) = interpolate_columns(&domains, &sigma_values);
            let sigma_commitments: Vec<G1Affine> =
                zkml_par::par_map(sigma_polys.len(), |i| params.commit(&sigma_polys[i]));
            Ok::<_, PlonkError>((sigma_values, sigma_polys, sigma_ext, sigma_commitments))
        },
    );
    let (fixed_polys, fixed_ext, fixed_commitments) = fixed_out;
    let (sigma_values, sigma_polys, sigma_ext, sigma_commitments) = sigma_out?;

    // Lagrange selectors.
    let (l0_ext, l_last_ext, l_active_ext) = lagrange_selectors(&domains, cs);

    // Key digest.
    let mut hasher = Blake2b::new();
    hasher.update(b"zkml-plonk-vk");
    hasher.update(&k.to_le_bytes());
    hasher.update(&(cs.num_instance as u64).to_le_bytes());
    hasher.update(&(cs.num_advice as u64).to_le_bytes());
    hasher.update(&(cs.num_fixed as u64).to_le_bytes());
    hasher.update(&(cs.num_committed as u64).to_le_bytes());
    hasher.update(&(cs.gates.len() as u64).to_le_bytes());
    hasher.update(&(cs.lookups.len() as u64).to_le_bytes());
    for c in fixed_commitments.iter().chain(sigma_commitments.iter()) {
        hasher.update(&c.to_bytes());
    }
    let digest = hasher.finalize();

    let vk = VerifyingKey {
        k,
        cs: cs.clone(),
        fixed_commitments,
        sigma_commitments,
        digest,
    };

    Ok(ProvingKey {
        vk,
        domains,
        fixed_values,
        fixed_polys,
        fixed_ext,
        sigma_values,
        sigma_polys,
        sigma_ext,
        l0_ext,
        l_last_ext,
        l_active_ext,
    })
}

/// Returns `BLINDING_FACTORS` (re-exported for sizing logic elsewhere).
pub fn blinding_factors() -> usize {
    BLINDING_FACTORS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::Column;

    #[test]
    fn permutation_identity_without_copies() {
        let mut cs = ConstraintSystem::new();
        let a = cs.advice_column(0);
        cs.enable_equality(Column::Advice(a));
        let mapping = build_permutation(&cs, &[], 16).unwrap();
        for (i, m) in mapping[0].iter().enumerate() {
            assert_eq!(*m, (0, i));
        }
    }

    #[test]
    fn permutation_cycles_merge() {
        let mut cs = ConstraintSystem::new();
        let a = cs.advice_column(0);
        let b = cs.advice_column(0);
        cs.enable_equality(Column::Advice(a));
        cs.enable_equality(Column::Advice(b));
        let cell = |c: usize, row: usize| CellRef {
            column: Column::Advice(c),
            row,
        };
        // (a,0) ~ (b,3) ~ (a,5): one 3-cycle.
        let copies = vec![(cell(0, 0), cell(1, 3)), (cell(1, 3), cell(0, 5))];
        let mapping = build_permutation(&cs, &copies, 16).unwrap();
        // Follow the cycle from (0,0): must visit all three cells and return.
        let mut seen = vec![(0usize, 0usize)];
        let mut cur = mapping[0][0];
        while cur != (0, 0) {
            seen.push(cur);
            cur = mapping[cur.0][cur.1];
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (0, 5), (1, 3)]);
        // Unrelated cells remain fixed points.
        assert_eq!(mapping[0][1], (0, 1));
    }

    #[test]
    fn duplicate_copy_is_idempotent() {
        let mut cs = ConstraintSystem::new();
        let a = cs.advice_column(0);
        cs.enable_equality(Column::Advice(a));
        let cell = |row: usize| CellRef {
            column: Column::Advice(0),
            row,
        };
        let copies = vec![(cell(0), cell(1)), (cell(0), cell(1)), (cell(1), cell(0))];
        let mapping = build_permutation(&cs, &copies, 16).unwrap();
        // 2-cycle between rows 0 and 1.
        assert_eq!(mapping[0][0], (0, 1));
        assert_eq!(mapping[0][1], (0, 0));
        let _ = a;
    }

    #[test]
    fn copy_on_blinding_row_rejected() {
        let mut cs = ConstraintSystem::new();
        let a = cs.advice_column(0);
        cs.enable_equality(Column::Advice(a));
        let cell = |row: usize| CellRef {
            column: Column::Advice(0),
            row,
        };
        let copies = vec![(cell(0), cell(15))]; // row 15 of 16 is blinding
        assert!(build_permutation(&cs, &copies, 16).is_err());
    }

    #[test]
    fn extended_domain_vanishing_inverses() {
        let ed = ExtendedDomain::new(4, 5);
        assert_eq!(ed.factor, 4);
        // zh_inv[i] * Z_H(coset point i) == 1 for a few sample points.
        for i in [0usize, 1, 5, 17] {
            let pt = ed.ext.coset_gen * ed.ext.omega.pow(&[i as u64]);
            let zh = pt.pow(&[ed.domain.n as u64]) - Fr::one();
            assert_eq!(zh * ed.zh_inv[i % ed.factor], Fr::one());
        }
    }

    #[test]
    fn rotated_index_wraps() {
        let ed = ExtendedDomain::new(3, 3);
        // factor 2, ext n = 16.
        assert_eq!(ed.rotated_index(0, 1), 2);
        assert_eq!(ed.rotated_index(0, -1), 14);
        assert_eq!(ed.rotated_index(15, 1), 1);
    }
}
