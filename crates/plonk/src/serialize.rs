//! Binary serialization of verifying and proving keys.
//!
//! The paper (§8) ships the verifier as a standalone binary that takes the
//! model configuration, verifying key, proof and public values. This module
//! provides the verifying-key encoding: the constraint-system structure
//! (including gate expressions) plus the fixed/sigma commitments. It also
//! encodes proving keys (verifying key + preprocessed column values) so a
//! proving service can spill generated keys to disk and skip keygen on warm
//! restarts.

use crate::circuit::{ConstraintSystem, Gate, Lookup};
use crate::expression::{Column, Expression, Rotation};
use crate::keygen::{ProvingKey, VerifyingKey, WeightCommitment};
use crate::PlonkError;
use zkml_pcs::{ReadError, Reader, Writer};

fn write_column(w: &mut Writer, c: &Column) {
    match c {
        Column::Instance(i) => {
            w.bytes(&[0]);
            w.u64(*i as u64);
        }
        Column::Advice(i) => {
            w.bytes(&[1]);
            w.u64(*i as u64);
        }
        Column::Fixed(i) => {
            w.bytes(&[2]);
            w.u64(*i as u64);
        }
        Column::Committed(i) => {
            w.bytes(&[3]);
            w.u64(*i as u64);
        }
    }
}

fn read_column(r: &mut Reader) -> Result<Column, ReadError> {
    let tag = r.u32()? as u8; // see write note below
    let i = r.u64()? as usize;
    match tag {
        0 => Ok(Column::Instance(i)),
        1 => Ok(Column::Advice(i)),
        2 => Ok(Column::Fixed(i)),
        3 => Ok(Column::Committed(i)),
        _ => Err(ReadError("bad column tag")),
    }
}

// NOTE: the Writer has no single-byte read; columns/tags are therefore
// written as u32 for symmetric reads.
fn write_tag(w: &mut Writer, t: u32) {
    w.u32(t);
}

fn write_column32(w: &mut Writer, c: &Column) {
    match c {
        Column::Instance(i) => {
            write_tag(w, 0);
            w.u64(*i as u64);
        }
        Column::Advice(i) => {
            write_tag(w, 1);
            w.u64(*i as u64);
        }
        Column::Fixed(i) => {
            write_tag(w, 2);
            w.u64(*i as u64);
        }
        Column::Committed(i) => {
            write_tag(w, 3);
            w.u64(*i as u64);
        }
    }
}

fn write_expr(w: &mut Writer, e: &Expression) {
    match e {
        Expression::Constant(c) => {
            write_tag(w, 0);
            w.scalar(c);
        }
        Expression::Instance(i, rot) => {
            write_tag(w, 1);
            w.u64(*i as u64);
            w.u64(rot.0 as u32 as u64);
        }
        Expression::Advice(i, rot) => {
            write_tag(w, 2);
            w.u64(*i as u64);
            w.u64(rot.0 as u32 as u64);
        }
        Expression::Fixed(i, rot) => {
            write_tag(w, 3);
            w.u64(*i as u64);
            w.u64(rot.0 as u32 as u64);
        }
        Expression::Challenge(i) => {
            write_tag(w, 4);
            w.u64(*i as u64);
        }
        Expression::Neg(a) => {
            write_tag(w, 5);
            write_expr(w, a);
        }
        Expression::Sum(a, b) => {
            write_tag(w, 6);
            write_expr(w, a);
            write_expr(w, b);
        }
        Expression::Product(a, b) => {
            write_tag(w, 7);
            write_expr(w, a);
            write_expr(w, b);
        }
        Expression::Scaled(a, s) => {
            write_tag(w, 8);
            write_expr(w, a);
            w.scalar(s);
        }
    }
}

fn read_expr(r: &mut Reader, depth: usize) -> Result<Expression, ReadError> {
    if depth > 64 {
        return Err(ReadError("expression too deep"));
    }
    let tag = r.u32()?;
    Ok(match tag {
        0 => Expression::Constant(r.scalar()?),
        1 => Expression::Instance(r.u64()? as usize, Rotation(r.u64()? as u32 as i32)),
        2 => Expression::Advice(r.u64()? as usize, Rotation(r.u64()? as u32 as i32)),
        3 => Expression::Fixed(r.u64()? as usize, Rotation(r.u64()? as u32 as i32)),
        4 => Expression::Challenge(r.u64()? as usize),
        5 => Expression::Neg(Box::new(read_expr(r, depth + 1)?)),
        6 => Expression::Sum(
            Box::new(read_expr(r, depth + 1)?),
            Box::new(read_expr(r, depth + 1)?),
        ),
        7 => Expression::Product(
            Box::new(read_expr(r, depth + 1)?),
            Box::new(read_expr(r, depth + 1)?),
        ),
        8 => Expression::Scaled(Box::new(read_expr(r, depth + 1)?), r.scalar()?),
        _ => return Err(ReadError("bad expression tag")),
    })
}

fn write_exprs(w: &mut Writer, es: &[Expression]) {
    w.u64(es.len() as u64);
    for e in es {
        write_expr(w, e);
    }
}

fn read_exprs(r: &mut Reader) -> Result<Vec<Expression>, ReadError> {
    let n = r.u64()? as usize;
    if n > 1 << 20 {
        return Err(ReadError("expression list too long"));
    }
    (0..n).map(|_| read_expr(r, 0)).collect()
}

/// Serializes a constraint system.
pub fn write_cs(w: &mut Writer, cs: &ConstraintSystem) {
    w.u64(cs.num_instance as u64);
    w.u64(cs.num_advice as u64);
    w.u64(cs.num_fixed as u64);
    w.u64(cs.num_committed as u64);
    w.u64(cs.num_challenges as u64);
    w.u64(cs.advice_phase.len() as u64);
    for p in &cs.advice_phase {
        w.u64(*p as u64);
    }
    w.u64(cs.gates.len() as u64);
    for g in &cs.gates {
        let name = g.name.as_bytes();
        w.u64(name.len() as u64);
        w.bytes(name);
        write_exprs(w, &g.polys);
    }
    w.u64(cs.lookups.len() as u64);
    for l in &cs.lookups {
        let name = l.name.as_bytes();
        w.u64(name.len() as u64);
        w.bytes(name);
        write_exprs(w, &l.inputs);
        write_exprs(w, &l.table);
    }
    w.u64(cs.permutation_columns.len() as u64);
    for c in &cs.permutation_columns {
        write_column32(w, c);
    }
    let _ = write_column; // byte-tag variant kept private for tests
}

/// Deserializes a constraint system.
pub fn read_cs(r: &mut Reader) -> Result<ConstraintSystem, ReadError> {
    let mut cs = ConstraintSystem::new();
    cs.num_instance = r.u64()? as usize;
    cs.num_advice = r.u64()? as usize;
    cs.num_fixed = r.u64()? as usize;
    cs.num_committed = r.u64()? as usize;
    cs.num_challenges = r.u64()? as usize;
    let np = r.u64()? as usize;
    if np != cs.num_advice {
        return Err(ReadError("phase vector length mismatch"));
    }
    cs.advice_phase = (0..np)
        .map(|_| r.u64().map(|v| v as u8))
        .collect::<Result<_, _>>()?;
    let ngates = r.u64()? as usize;
    if ngates > 1 << 16 {
        return Err(ReadError("too many gates"));
    }
    for _ in 0..ngates {
        let nl = r.u64()? as usize;
        if nl > 1 << 12 {
            return Err(ReadError("gate name too long"));
        }
        let name = String::from_utf8(r_take(r, nl)?.to_vec())
            .map_err(|_| ReadError("gate name not utf8"))?;
        let polys = read_exprs(r)?;
        cs.gates.push(Gate { name, polys });
    }
    let nlk = r.u64()? as usize;
    if nlk > 1 << 16 {
        return Err(ReadError("too many lookups"));
    }
    for _ in 0..nlk {
        let nl = r.u64()? as usize;
        if nl > 1 << 12 {
            return Err(ReadError("lookup name too long"));
        }
        let name = String::from_utf8(r_take(r, nl)?.to_vec())
            .map_err(|_| ReadError("lookup name not utf8"))?;
        let inputs = read_exprs(r)?;
        let table = read_exprs(r)?;
        cs.lookups.push(Lookup {
            name,
            inputs,
            table,
        });
    }
    let npm = r.u64()? as usize;
    if npm > 1 << 16 {
        return Err(ReadError("too many permutation columns"));
    }
    for _ in 0..npm {
        let c = read_column(r)?;
        cs.permutation_columns.push(c);
    }
    Ok(cs)
}

fn r_take<'a>(r: &mut Reader<'a>, n: usize) -> Result<&'a [u8], ReadError> {
    // Reader has no public take; emulate via remaining + reconstruct.
    // To keep the Reader API minimal we read byte-by-byte through u32 is
    // wasteful; instead extend Reader in zkml-pcs would be cleaner — this
    // helper requires it, so zkml-pcs exposes `take`.
    r.take_bytes(n)
}

impl VerifyingKey {
    /// Serializes the verifying key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.k);
        write_cs(&mut w, &self.cs);
        w.u64(self.fixed_commitments.len() as u64);
        for c in &self.fixed_commitments {
            w.g1(c);
        }
        w.u64(self.sigma_commitments.len() as u64);
        for c in &self.sigma_commitments {
            w.g1(c);
        }
        w.bytes(&self.digest);
        w.finish()
    }

    /// Deserializes a verifying key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ReadError> {
        let mut r = Reader::new(bytes);
        let k = r.u32()?;
        let cs = read_cs(&mut r)?;
        let nf = r.u64()? as usize;
        if nf > 1 << 20 {
            return Err(ReadError("too many fixed commitments"));
        }
        let fixed_commitments = (0..nf).map(|_| r.g1()).collect::<Result<_, _>>()?;
        let ns = r.u64()? as usize;
        if ns > 1 << 20 {
            return Err(ReadError("too many sigma commitments"));
        }
        let sigma_commitments = (0..ns).map(|_| r.g1()).collect::<Result<_, _>>()?;
        let digest: [u8; 64] = r
            .take_bytes(64)?
            .try_into()
            .map_err(|_| ReadError("bad digest"))?;
        if !r.is_exhausted() {
            return Err(ReadError("trailing bytes in verifying key"));
        }
        Ok(VerifyingKey {
            k,
            cs,
            fixed_commitments,
            sigma_commitments,
            digest,
        })
    }
}

fn write_scalar_columns(w: &mut Writer, cols: &[Vec<zkml_ff::Fr>]) {
    w.u64(cols.len() as u64);
    for col in cols {
        w.u64(col.len() as u64);
        for s in col {
            w.scalar(s);
        }
    }
}

fn read_scalar_columns(r: &mut Reader) -> Result<Vec<Vec<zkml_ff::Fr>>, ReadError> {
    let ncols = r.u64()? as usize;
    if ncols > 1 << 20 {
        return Err(ReadError("too many columns"));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let rows = r.u64()? as usize;
        if rows > 1 << 28 {
            return Err(ReadError("column too long"));
        }
        cols.push((0..rows).map(|_| r.scalar()).collect::<Result<_, _>>()?);
    }
    Ok(cols)
}

impl ProvingKey {
    /// Serializes the proving key: the verifying key plus the fixed and
    /// sigma column values. Derived data (coefficient forms, coset
    /// extensions, Lagrange selectors) is recomputed on load by
    /// [`ProvingKey::from_parts`], trading a few FFTs at read time for an
    /// encoding linear in the preprocessed columns.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let vk_bytes = self.vk.to_bytes();
        w.u64(vk_bytes.len() as u64);
        w.bytes(&vk_bytes);
        write_scalar_columns(&mut w, &self.fixed_values);
        write_scalar_columns(&mut w, &self.sigma_values);
        w.finish()
    }

    /// Deserializes a proving key written by [`ProvingKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PlonkError> {
        let mut r = Reader::new(bytes);
        let vk_len = r.u64()? as usize;
        let vk = VerifyingKey::from_bytes(r.take_bytes(vk_len)?)?;
        let fixed_values = read_scalar_columns(&mut r)?;
        let sigma_values = read_scalar_columns(&mut r)?;
        if !r.is_exhausted() {
            return Err(ReadError("trailing bytes in proving key").into());
        }
        ProvingKey::from_parts(vk, fixed_values, sigma_values)
    }
}

impl WeightCommitment {
    /// Serializes a published weight commitment.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.k);
        w.u64(self.commitments.len() as u64);
        for c in &self.commitments {
            w.g1(c);
        }
        w.bytes(&self.digest);
        w.finish()
    }

    /// Deserializes a weight commitment, recomputing and checking its
    /// digest so a corrupted file cannot masquerade as a published model.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ReadError> {
        let mut r = Reader::new(bytes);
        let k = r.u32()?;
        let nc = r.u64()? as usize;
        if nc > 1 << 20 {
            return Err(ReadError("too many weight commitments"));
        }
        let commitments: Vec<_> = (0..nc).map(|_| r.g1()).collect::<Result<_, _>>()?;
        let digest: [u8; 32] = r
            .take_bytes(32)?
            .try_into()
            .map_err(|_| ReadError("bad weight digest"))?;
        if !r.is_exhausted() {
            return Err(ReadError("trailing bytes in weight commitment"));
        }
        if digest != WeightCommitment::compute_digest(k, &commitments) {
            return Err(ReadError("weight commitment digest mismatch"));
        }
        Ok(WeightCommitment {
            k,
            commitments,
            digest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_ff::{Fr, PrimeField};

    fn sample_cs() -> ConstraintSystem {
        let mut cs = ConstraintSystem::new();
        let q = cs.fixed_column();
        let a = cs.advice_column(0);
        let b = cs.advice_column(1);
        cs.challenge();
        cs.enable_equality(Column::Advice(a));
        cs.create_gate(
            "g",
            vec![
                Expression::Fixed(q, Rotation::cur())
                    * (Expression::Advice(a, Rotation::prev())
                        * Expression::Advice(b, Rotation::next())
                        - Expression::Challenge(0)
                        - Expression::Constant(Fr::from_u64(7)))
                    * Fr::from_u64(3),
            ],
        );
        let t = cs.fixed_column();
        cs.create_lookup(
            "lk",
            vec![-Expression::Advice(a, Rotation::cur())],
            vec![Expression::Fixed(t, Rotation::cur())],
        );
        cs
    }

    #[test]
    fn cs_roundtrip() {
        let cs = sample_cs();
        let mut w = Writer::new();
        write_cs(&mut w, &cs);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let back = read_cs(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.num_advice, cs.num_advice);
        assert_eq!(back.advice_phase, cs.advice_phase);
        assert_eq!(back.gates.len(), cs.gates.len());
        assert_eq!(back.gates[0].polys, cs.gates[0].polys);
        assert_eq!(back.lookups[0].inputs, cs.lookups[0].inputs);
        assert_eq!(back.permutation_columns, cs.permutation_columns);
        // Degree (and hence quotient structure) is preserved.
        assert_eq!(back.degree(), cs.degree());
    }

    #[test]
    fn truncated_cs_rejected() {
        let cs = sample_cs();
        let mut w = Writer::new();
        write_cs(&mut w, &cs);
        let bytes = w.finish();
        for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(read_cs(&mut r).is_err(), "accepted truncation at {cut}");
        }
    }

    #[test]
    fn negative_rotation_roundtrips() {
        let e = Expression::Advice(3, Rotation(-2));
        let mut w = Writer::new();
        write_expr(&mut w, &e);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_expr(&mut r, 0).unwrap(), e);
    }
}
