//! Columns, rotations, and the polynomial-constraint expression AST.

use zkml_ff::{Field, Fr};

/// A column in the circuit grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Column {
    /// Public-input column.
    Instance(usize),
    /// Private witness column.
    Advice(usize),
    /// Preprocessed column (selectors, lookup tables, constants).
    Fixed(usize),
    /// Committed column: model weights published once as a standalone
    /// polynomial commitment (commit-and-prove, ROADMAP item 4). Committed
    /// columns are never queried by gate expressions; they enter constraints
    /// only through the permutation/copy argument, so one `WeightCommitment`
    /// can serve every proof over the same architecture.
    Committed(usize),
}

/// A relative row offset used when a constraint references adjacent rows.
///
/// ZKML gadgets are single-row (`Rotation(0)`) by design (§4.2 of the paper);
/// non-zero rotations exist for the multi-row ablation (Table 13) and for
/// the permutation/lookup arguments themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rotation(pub i32);

impl Rotation {
    /// The current row.
    pub fn cur() -> Self {
        Rotation(0)
    }
    /// The next row.
    pub fn next() -> Self {
        Rotation(1)
    }
    /// The previous row.
    pub fn prev() -> Self {
        Rotation(-1)
    }
}

/// Syntactic linearity of an [`Expression`] in its advice queries — see
/// [`Expression::linearity`]. Ordered so `max` combines classifications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Linearity {
    /// No advice queries: fully known given public data.
    Constant,
    /// Degree exactly one in advice queries.
    Linear,
    /// Advice queries multiply each other somewhere.
    NonLinear,
}

/// A polynomial constraint over the circuit columns.
#[derive(Clone, Debug, PartialEq)]
pub enum Expression {
    /// A constant field element.
    Constant(Fr),
    /// A query into an instance column at a rotation.
    Instance(usize, Rotation),
    /// A query into an advice column at a rotation.
    Advice(usize, Rotation),
    /// A query into a fixed column at a rotation.
    Fixed(usize, Rotation),
    /// A multi-phase challenge (available to phase-1 witness and gates).
    Challenge(usize),
    /// Negation.
    Neg(Box<Expression>),
    /// Sum of two expressions.
    Sum(Box<Expression>, Box<Expression>),
    /// Product of two expressions.
    Product(Box<Expression>, Box<Expression>),
    /// An expression multiplied by a constant.
    Scaled(Box<Expression>, Fr),
}

impl Expression {
    /// The degree of the expression, counting each column query as 1.
    pub fn degree(&self) -> usize {
        match self {
            Expression::Constant(_) | Expression::Challenge(_) => 0,
            Expression::Instance(..) | Expression::Advice(..) | Expression::Fixed(..) => 1,
            Expression::Neg(e) | Expression::Scaled(e, _) => e.degree(),
            Expression::Sum(a, b) => a.degree().max(b.degree()),
            Expression::Product(a, b) => a.degree() + b.degree(),
        }
    }

    /// Evaluates the expression with caller-provided query resolvers.
    pub fn evaluate<T: Field>(
        &self,
        constant: &impl Fn(Fr) -> T,
        instance: &impl Fn(usize, Rotation) -> T,
        advice: &impl Fn(usize, Rotation) -> T,
        fixed: &impl Fn(usize, Rotation) -> T,
        challenge: &impl Fn(usize) -> T,
    ) -> T {
        match self {
            Expression::Constant(c) => constant(*c),
            Expression::Instance(c, r) => instance(*c, *r),
            Expression::Advice(c, r) => advice(*c, *r),
            Expression::Fixed(c, r) => fixed(*c, *r),
            Expression::Challenge(i) => challenge(*i),
            Expression::Neg(e) => {
                let v: T = e.evaluate(constant, instance, advice, fixed, challenge);
                T::zero() - v
            }
            Expression::Sum(a, b) => {
                a.evaluate(constant, instance, advice, fixed, challenge)
                    + b.evaluate(constant, instance, advice, fixed, challenge)
            }
            Expression::Product(a, b) => {
                a.evaluate(constant, instance, advice, fixed, challenge)
                    * b.evaluate(constant, instance, advice, fixed, challenge)
            }
            Expression::Scaled(e, s) => {
                let v: T = e.evaluate(constant, instance, advice, fixed, challenge);
                v * constant(*s)
            }
        }
    }

    /// Evaluates the expression at `row` of concrete column grids, each of
    /// length `n`, wrapping rotations around the domain (matching the
    /// cyclic evaluation domain of the prover).
    pub fn evaluate_on_grid(
        &self,
        row: usize,
        n: usize,
        instance: &[Vec<Fr>],
        advice: &[Vec<Fr>],
        fixed: &[Vec<Fr>],
        challenges: &[Fr],
    ) -> Fr {
        let at = |col: &Vec<Fr>, rot: Rotation| -> Fr {
            let idx = (row as i64 + rot.0 as i64).rem_euclid(n as i64) as usize;
            col[idx]
        };
        self.evaluate(
            &|c| c,
            &|c, r| at(&instance[c], r),
            &|c, r| at(&advice[c], r),
            &|c, r| at(&fixed[c], r),
            &|c| challenges[c],
        )
    }

    /// Structural linearity of the expression in its **advice** queries.
    ///
    /// Instance and fixed queries, constants, and challenges all count as
    /// coefficients (they are known to a verifier-side analysis), so e.g.
    /// `q_fixed * (a - b)` classifies as [`Linearity::Linear`] even though
    /// its total degree is 2. This is a syntactic over-approximation: an
    /// expression that classifies `NonLinear` may still evaluate linearly
    /// on rows where a multiplicand is zero (static analyses re-classify
    /// after partial evaluation against the fixed columns).
    pub fn linearity(&self) -> Linearity {
        match self {
            Expression::Constant(_)
            | Expression::Challenge(_)
            | Expression::Instance(..)
            | Expression::Fixed(..) => Linearity::Constant,
            Expression::Advice(..) => Linearity::Linear,
            Expression::Neg(e) | Expression::Scaled(e, _) => e.linearity(),
            Expression::Sum(a, b) => a.linearity().max(b.linearity()),
            Expression::Product(a, b) => match (a.linearity(), b.linearity()) {
                (Linearity::Constant, x) | (x, Linearity::Constant) => x,
                _ => Linearity::NonLinear,
            },
        }
    }

    /// True when the expression queries only fixed columns (constants are
    /// allowed; instance, advice and challenges are not) — i.e. it is fully
    /// determined by the preprocessed circuit data.
    pub fn references_only_fixed(&self) -> bool {
        match self {
            Expression::Constant(_) | Expression::Fixed(..) => true,
            Expression::Instance(..) | Expression::Advice(..) | Expression::Challenge(_) => false,
            Expression::Neg(e) | Expression::Scaled(e, _) => e.references_only_fixed(),
            Expression::Sum(a, b) | Expression::Product(a, b) => {
                a.references_only_fixed() && b.references_only_fixed()
            }
        }
    }

    /// Collects every `(column, rotation)` query in the expression.
    pub fn collect_queries(&self, out: &mut Vec<(Column, Rotation)>) {
        match self {
            Expression::Constant(_) | Expression::Challenge(_) => {}
            Expression::Instance(c, r) => out.push((Column::Instance(*c), *r)),
            Expression::Advice(c, r) => out.push((Column::Advice(*c), *r)),
            Expression::Fixed(c, r) => out.push((Column::Fixed(*c), *r)),
            Expression::Neg(e) | Expression::Scaled(e, _) => e.collect_queries(out),
            Expression::Sum(a, b) | Expression::Product(a, b) => {
                a.collect_queries(out);
                b.collect_queries(out);
            }
        }
    }
}

impl std::ops::Add for Expression {
    type Output = Expression;
    fn add(self, rhs: Expression) -> Expression {
        Expression::Sum(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Sub for Expression {
    type Output = Expression;
    fn sub(self, rhs: Expression) -> Expression {
        Expression::Sum(Box::new(self), Box::new(Expression::Neg(Box::new(rhs))))
    }
}
impl std::ops::Mul for Expression {
    type Output = Expression;
    fn mul(self, rhs: Expression) -> Expression {
        Expression::Product(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Neg for Expression {
    type Output = Expression;
    fn neg(self) -> Expression {
        Expression::Neg(Box::new(self))
    }
}
impl std::ops::Mul<Fr> for Expression {
    type Output = Expression;
    fn mul(self, rhs: Fr) -> Expression {
        Expression::Scaled(Box::new(self), rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_ff::PrimeField;

    fn adv(i: usize) -> Expression {
        Expression::Advice(i, Rotation::cur())
    }

    #[test]
    fn degree_computation() {
        let e = adv(0) * adv(1) + adv(2) * Fr::from_u64(7);
        assert_eq!(e.degree(), 2);
        let q = Expression::Fixed(0, Rotation::cur());
        assert_eq!((q * e).degree(), 3);
        assert_eq!(Expression::Constant(Fr::ONE).degree(), 0);
        assert_eq!(Expression::Challenge(0).degree(), 0);
    }

    #[test]
    fn evaluation() {
        // q * (a0 * a1 - a2) with a = [2, 3, 6] and q = 1 evaluates to 0.
        let e = Expression::Fixed(0, Rotation::cur()) * (adv(0) * adv(1) - adv(2));
        let vals = [Fr::from_u64(2), Fr::from_u64(3), Fr::from_u64(6)];
        let r: Fr = e.evaluate(
            &|c| c,
            &|_, _| Fr::ZERO,
            &|i, _| vals[i],
            &|_, _| Fr::ONE,
            &|_| Fr::ZERO,
        );
        assert!(r.is_zero());
        // With a2 = 7 it does not.
        let vals = [Fr::from_u64(2), Fr::from_u64(3), Fr::from_u64(7)];
        let r: Fr = e.evaluate(
            &|c| c,
            &|_, _| Fr::ZERO,
            &|i, _| vals[i],
            &|_, _| Fr::ONE,
            &|_| Fr::ZERO,
        );
        assert_eq!(r, -Fr::ONE);
    }

    #[test]
    fn linearity_classification() {
        let q = Expression::Fixed(0, Rotation::cur());
        let inst = Expression::Instance(0, Rotation::cur());
        assert_eq!(
            Expression::Constant(Fr::ONE).linearity(),
            Linearity::Constant
        );
        assert_eq!(q.clone().linearity(), Linearity::Constant);
        assert_eq!(
            (inst * Expression::Challenge(0)).linearity(),
            Linearity::Constant
        );
        // Selector-gated linear combination stays Linear.
        assert_eq!(
            (q.clone() * (adv(0) + adv(1) - adv(2))).linearity(),
            Linearity::Linear
        );
        assert_eq!(
            (adv(0) * Fr::from_u64(7) - Expression::Constant(Fr::ONE)).linearity(),
            Linearity::Linear
        );
        assert_eq!((adv(0) * adv(1)).linearity(), Linearity::NonLinear);
        assert_eq!((q * (adv(0) * adv(1))).linearity(), Linearity::NonLinear);
        // Neg preserves the class.
        assert_eq!((-adv(0)).linearity(), Linearity::Linear);
    }

    #[test]
    fn fixed_only_references() {
        let q = Expression::Fixed(0, Rotation::cur());
        assert!(q.clone().references_only_fixed());
        assert!(
            (q.clone() * Fr::from_u64(3) + Expression::Constant(Fr::ONE)).references_only_fixed()
        );
        assert!(!(q.clone() + adv(0)).references_only_fixed());
        assert!(!(q * Expression::Challenge(0)).references_only_fixed());
    }

    #[test]
    fn query_collection() {
        let e = adv(0) * Expression::Fixed(3, Rotation::prev())
            + Expression::Instance(1, Rotation::next());
        let mut q = Vec::new();
        e.collect_queries(&mut q);
        assert_eq!(q.len(), 3);
        assert!(q.contains(&(Column::Fixed(3), Rotation::prev())));
        assert!(q.contains(&(Column::Instance(1), Rotation::next())));
    }
}
