//! Property tests for serialization: random constraint systems survive
//! `write_cs`/`read_cs`, and verifying/proving keys round-trip through
//! `to_bytes`/`from_bytes` — with a restored proving key still producing
//! proofs the original verifying key accepts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml_ff::{Fr, PrimeField};
use zkml_pcs::{Backend, Params, Reader, Writer};
use zkml_plonk::serialize::{read_cs, write_cs};
use zkml_plonk::{
    create_proof_with_rng, keygen, verify_proof, CellRef, Column, ConstraintSystem, Expression,
    Gate, Lookup, Preprocessed, ProvingKey, Rotation, VerifyingKey, WitnessSource,
};

/// Deterministically builds an expression tree from a byte stream, covering
/// every `Expression` variant with bounded depth. Column/challenge indices
/// stay inside the counts `random_cs` declares.
fn build_expr(ops: &mut std::slice::Iter<'_, u8>, depth: usize) -> Expression {
    let Some(&op) = ops.next() else {
        return Expression::Constant(Fr::from_u64(5));
    };
    let idx = (op >> 4) as usize;
    let rot = Rotation((op as i32 % 3) - 1);
    let variant = if depth >= 5 { op % 5 } else { op % 9 };
    match variant {
        0 => Expression::Constant(Fr::from_u64(op as u64)),
        1 => Expression::Instance(idx % 2, rot),
        2 => Expression::Advice(idx % 4, rot),
        3 => Expression::Fixed(idx % 4, rot),
        4 => Expression::Challenge(idx % 2),
        5 => Expression::Neg(Box::new(build_expr(ops, depth + 1))),
        6 => Expression::Sum(
            Box::new(build_expr(ops, depth + 1)),
            Box::new(build_expr(ops, depth + 1)),
        ),
        7 => Expression::Product(
            Box::new(build_expr(ops, depth + 1)),
            Box::new(build_expr(ops, depth + 1)),
        ),
        _ => Expression::Scaled(
            Box::new(build_expr(ops, depth + 1)),
            Fr::from_u64(op as u64 + 1),
        ),
    }
}

/// Builds a constraint system the same way `read_cs` does — by populating
/// the public fields — so arbitrary gate/lookup shapes can be exercised
/// without the builder API's conveniences getting in the way.
fn random_cs(gates: &[Vec<u8>], lookups: &[(Vec<u8>, Vec<u8>)], perm_mask: u8) -> ConstraintSystem {
    let mut cs = ConstraintSystem::new();
    cs.num_instance = 2;
    cs.num_advice = 4;
    cs.num_fixed = 4;
    cs.num_challenges = 2;
    cs.advice_phase = vec![0, 0, 1, 1];
    for (i, ops) in gates.iter().enumerate() {
        cs.gates.push(Gate {
            name: format!("gate{i}"),
            polys: vec![build_expr(&mut ops.iter(), 0)],
        });
    }
    for (i, (inp, tab)) in lookups.iter().enumerate() {
        cs.lookups.push(Lookup {
            name: format!("lookup{i}"),
            inputs: vec![build_expr(&mut inp.iter(), 0)],
            table: vec![build_expr(&mut tab.iter(), 0)],
        });
    }
    for c in 0..4 {
        if perm_mask & (1 << c) != 0 {
            cs.permutation_columns.push(Column::Advice(c));
        }
    }
    if perm_mask & 0x10 != 0 {
        cs.permutation_columns.push(Column::Instance(0));
    }
    cs
}

struct VecWitness {
    instance: Vec<Vec<Fr>>,
    advice: Vec<(usize, Vec<Fr>)>,
}
impl WitnessSource for VecWitness {
    fn instance(&self) -> Vec<Vec<Fr>> {
        self.instance.clone()
    }
    fn advice(&self, _phase: u8, _ch: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
        self.advice.clone()
    }
}

fn params() -> &'static Params {
    static P: std::sync::OnceLock<Params> = std::sync::OnceLock::new();
    P.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(77);
        Params::setup(Backend::Kzg, 7, &mut rng)
    })
}

/// A multiplication-chain circuit: out_i = a_i * v_i, copied forward, with
/// the final value public. Small enough to keygen and prove per test case.
fn mul_chain(coeffs: &[u64]) -> (ConstraintSystem, Preprocessed, VecWitness, Fr) {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a = cs.advice_column(0);
    let v = cs.advice_column(0);
    let out = cs.advice_column(0);
    let inst = cs.instance_column();
    cs.enable_equality(Column::Advice(v));
    cs.enable_equality(Column::Advice(out));
    cs.enable_equality(Column::Instance(inst));
    cs.create_gate(
        "mul",
        vec![
            Expression::Fixed(q, Rotation::cur())
                * (Expression::Advice(out, Rotation::cur())
                    - Expression::Advice(a, Rotation::cur())
                        * Expression::Advice(v, Rotation::cur())),
        ],
    );
    let mut av = Vec::new();
    let mut vv = Vec::new();
    let mut ov = Vec::new();
    let mut copies = Vec::new();
    let mut cur = Fr::from_u64(2);
    for (i, c) in coeffs.iter().enumerate() {
        av.push(Fr::from_u64(*c));
        vv.push(cur);
        cur *= Fr::from_u64(*c);
        ov.push(cur);
        if i > 0 {
            copies.push((
                CellRef {
                    column: Column::Advice(out),
                    row: i - 1,
                },
                CellRef {
                    column: Column::Advice(v),
                    row: i,
                },
            ));
        }
    }
    copies.push((
        CellRef {
            column: Column::Advice(out),
            row: coeffs.len() - 1,
        },
        CellRef {
            column: Column::Instance(inst),
            row: 0,
        },
    ));
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ONE; coeffs.len()]],
        copies,
    };
    let witness = VecWitness {
        instance: vec![vec![cur]],
        advice: vec![(a, av), (v, vv), (out, ov)],
    };
    (cs, pre, witness, cur)
}

fn assert_cs_eq(a: &ConstraintSystem, b: &ConstraintSystem) {
    assert_eq!(a.num_instance, b.num_instance);
    assert_eq!(a.num_advice, b.num_advice);
    assert_eq!(a.num_fixed, b.num_fixed);
    assert_eq!(a.num_challenges, b.num_challenges);
    assert_eq!(a.advice_phase, b.advice_phase);
    assert_eq!(a.gates.len(), b.gates.len());
    for (ga, gb) in a.gates.iter().zip(&b.gates) {
        assert_eq!(ga.name, gb.name);
        assert_eq!(ga.polys, gb.polys);
    }
    assert_eq!(a.lookups.len(), b.lookups.len());
    for (la, lb) in a.lookups.iter().zip(&b.lookups) {
        assert_eq!(la.name, lb.name);
        assert_eq!(la.inputs, lb.inputs);
        assert_eq!(la.table, lb.table);
    }
    assert_eq!(a.permutation_columns, b.permutation_columns);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_cs_roundtrips(
        gates in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..24), 0..4),
        lookup_in in prop::collection::vec(any::<u8>(), 1..12),
        lookup_tab in prop::collection::vec(any::<u8>(), 1..12),
        perm_mask in 0u8..32,
    ) {
        let lookups = [(lookup_in, lookup_tab)];
        let cs = random_cs(&gates, &lookups, perm_mask);
        let mut w = Writer::new();
        write_cs(&mut w, &cs);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let back = read_cs(&mut r).unwrap();
        prop_assert!(r.is_exhausted());
        assert_cs_eq(&cs, &back);
        // The encoding itself is canonical: re-serializing is byte-identical.
        let mut w2 = Writer::new();
        write_cs(&mut w2, &back);
        prop_assert_eq!(w2.finish(), bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn vk_bytes_roundtrip(coeffs in prop::collection::vec(1u64..1000, 1..40)) {
        let (cs, pre, _witness, _result) = mul_chain(&coeffs);
        let pk = keygen(params(), &cs, &pre, 7).unwrap();
        let bytes = pk.vk.to_bytes();
        let back = VerifyingKey::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.k, pk.vk.k);
        prop_assert_eq!(&back.digest[..], &pk.vk.digest[..]);
        prop_assert_eq!(&back.fixed_commitments, &pk.vk.fixed_commitments);
        prop_assert_eq!(&back.sigma_commitments, &pk.vk.sigma_commitments);
        assert_cs_eq(&back.cs, &pk.vk.cs);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn pk_bytes_roundtrip_and_restored_key_proves(
        coeffs in prop::collection::vec(1u64..1000, 2..20),
    ) {
        let (cs, pre, witness, result) = mul_chain(&coeffs);
        let pk = keygen(params(), &cs, &pre, 7).unwrap();
        let bytes = pk.to_bytes();
        let restored = ProvingKey::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&restored.vk.digest[..], &pk.vk.digest[..]);
        prop_assert_eq!(&restored.fixed_values, &pk.fixed_values);
        prop_assert_eq!(&restored.sigma_values, &pk.sigma_values);
        // The recomputed derived tables match the originals exactly.
        prop_assert_eq!(&restored.fixed_ext, &pk.fixed_ext);
        prop_assert_eq!(&restored.sigma_ext, &pk.sigma_ext);
        prop_assert_eq!(&restored.l0_ext, &pk.l0_ext);
        // A proof from the restored key verifies under the *original* vk.
        let mut rng = StdRng::seed_from_u64(coeffs.len() as u64);
        let proof = create_proof_with_rng(params(), &restored, &witness, &mut rng).unwrap();
        verify_proof(params(), &pk.vk, &[vec![result]], &proof).unwrap();
        prop_assert!(
            verify_proof(params(), &pk.vk, &[vec![result + Fr::ONE]], &proof).is_err()
        );
    }
}

#[test]
fn truncated_pk_rejected() {
    let (cs, pre, _witness, _result) = mul_chain(&[3, 5, 7]);
    let pk = keygen(params(), &cs, &pre, 7).unwrap();
    let bytes = pk.to_bytes();
    for cut in [1usize, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            ProvingKey::from_bytes(&bytes[..cut]).is_err(),
            "accepted truncation at {cut}"
        );
    }
    let mut trailing = bytes;
    trailing.push(0);
    assert!(ProvingKey::from_bytes(&trailing).is_err());
}
