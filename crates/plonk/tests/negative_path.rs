//! Negative-path verifier tests: corrupt each section of a serialized proof
//! and assert both backends reject without panicking; malformed public
//! inputs must also reject cleanly.
//!
//! The proof layout mirrors the transcript schedule (see `prover.rs`):
//! advice commitments | lookup permuted a/s pairs | permutation grand
//! products | lookup grand products | quotient pieces | evaluations |
//! backend-specific opening argument. Section offsets are computed from the
//! constraint system so every section gets hit regardless of circuit size.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml_ff::{Field, Fr, PrimeField};
use zkml_pcs::{Backend, Params};
use zkml_plonk::protocol::opening_plan;
use zkml_plonk::{
    create_proof_with_rng, keygen, verify_proof, CellRef, Column, ConstraintSystem, Expression,
    Preprocessed, Rotation, WitnessSource,
};

struct VecWitness {
    instance: Vec<Vec<Fr>>,
    advice0: Vec<(usize, Vec<Fr>)>,
}

impl WitnessSource for VecWitness {
    fn instance(&self) -> Vec<Vec<Fr>> {
        self.instance.clone()
    }
    fn advice(&self, phase: u8, _challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
        if phase == 0 {
            self.advice0.clone()
        } else {
            Vec::new()
        }
    }
}

/// Multiplication chain with copy constraints and a public output
/// (exercises the advice, permutation-Z, quotient, eval, and opening
/// sections).
fn mul_chain() -> (ConstraintSystem, Preprocessed, VecWitness, Vec<Vec<Fr>>) {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a = cs.advice_column(0);
    let b = cs.advice_column(0);
    let c = cs.advice_column(0);
    let inst = cs.instance_column();
    cs.enable_equality(Column::Advice(a));
    cs.enable_equality(Column::Advice(c));
    cs.enable_equality(Column::Instance(inst));
    cs.create_gate(
        "mul",
        vec![
            Expression::Fixed(q, Rotation::cur())
                * (Expression::Advice(a, Rotation::cur()) * Expression::Advice(b, Rotation::cur())
                    - Expression::Advice(c, Rotation::cur())),
        ],
    );
    let rows = 8usize;
    let (mut av, mut bv, mut cv) = (Vec::new(), Vec::new(), Vec::new());
    let mut acc = Fr::from_u64(3);
    for i in 0..rows {
        let m = Fr::from_u64(i as u64 + 2);
        av.push(acc);
        bv.push(m);
        acc *= m;
        cv.push(acc);
    }
    let copies: Vec<(CellRef, CellRef)> = (1..rows)
        .map(|i| {
            (
                CellRef {
                    column: Column::Advice(c),
                    row: i - 1,
                },
                CellRef {
                    column: Column::Advice(a),
                    row: i,
                },
            )
        })
        .chain(std::iter::once((
            CellRef {
                column: Column::Advice(c),
                row: rows - 1,
            },
            CellRef {
                column: Column::Instance(inst),
                row: 0,
            },
        )))
        .collect();
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::one(); rows]],
        copies,
    };
    let instance = vec![vec![acc]];
    let witness = VecWitness {
        instance: instance.clone(),
        advice0: vec![(a, av), (b, bv), (c, cv)],
    };
    (cs, pre, witness, instance)
}

/// Range/ReLU lookup circuit (exercises the lookup a/s and lookup-Z
/// sections).
fn lookup_circuit() -> (ConstraintSystem, Preprocessed, VecWitness) {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let t_in = cs.fixed_column();
    let t_out = cs.fixed_column();
    let x = cs.advice_column(0);
    let y = cs.advice_column(0);
    let (mut tin, mut tout) = (Vec::new(), Vec::new());
    for v in -8i64..8 {
        tin.push(Fr::from_i64(v));
        tout.push(Fr::from_i64(v.max(0)));
    }
    let (d_in, d_out) = (tin[0], tout[0]);
    let qe = Expression::Fixed(q, Rotation::cur());
    let input0 = qe.clone() * (Expression::Advice(x, Rotation::cur()) - Expression::Constant(d_in))
        + Expression::Constant(d_in);
    let input1 = qe * (Expression::Advice(y, Rotation::cur()) - Expression::Constant(d_out))
        + Expression::Constant(d_out);
    cs.create_lookup(
        "relu",
        vec![input0, input1],
        vec![
            Expression::Fixed(t_in, Rotation::cur()),
            Expression::Fixed(t_out, Rotation::cur()),
        ],
    );
    let xs: Vec<i64> = vec![-5, 3, 0, 7, -1, -8, 6];
    let xv: Vec<Fr> = xs.iter().map(|v| Fr::from_i64(*v)).collect();
    let yv: Vec<Fr> = xs.iter().map(|v| Fr::from_i64((*v).max(0))).collect();
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::one(); xs.len()], tin, tout],
        copies: vec![],
    };
    let witness = VecWitness {
        instance: vec![],
        advice0: vec![(x, xv), (y, yv)],
    };
    (cs, pre, witness)
}

/// Named byte ranges of a serialized proof, derived from the constraint
/// system (32 bytes per commitment/scalar; the opening argument is the
/// backend-specific remainder).
fn sections(cs: &ConstraintSystem, k: u32, proof_len: usize) -> Vec<(&'static str, usize, usize)> {
    let n = 1usize << k;
    let usable = cs.usable_rows(n);
    let factor = (cs.degree() - 1).next_power_of_two();
    let plan = opening_plan(cs, usable, factor);
    let sizes = [
        ("advice commitments", cs.num_advice * 32),
        ("lookup a/s commitments", cs.lookups.len() * 2 * 32),
        ("permutation grand products", cs.permutation_z_count() * 32),
        ("lookup grand products", cs.lookups.len() * 32),
        ("quotient pieces", factor * 32),
        ("evaluations", plan.len() * 32),
    ];
    let mut out = Vec::new();
    let mut pos = 0;
    for (name, len) in sizes {
        out.push((name, pos, pos + len));
        pos += len;
    }
    assert!(
        pos < proof_len,
        "proof too short for the fixed sections ({pos} >= {proof_len})"
    );
    out.push(("opening argument", pos, proof_len));
    out
}

fn prove(
    backend: Backend,
    params_k: u32,
    cs: &ConstraintSystem,
    pre: &Preprocessed,
    witness: &VecWitness,
) -> (Params, zkml_plonk::ProvingKey, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(999);
    let params = Params::setup(backend, params_k, &mut rng);
    let pk = keygen(&params, cs, pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let proof = create_proof_with_rng(&params, &pk, witness, &mut rng).unwrap();
    (params, pk, proof)
}

fn assert_all_sections_reject(
    backend: Backend,
    params_k: u32,
    cs: &ConstraintSystem,
    pre: &Preprocessed,
    witness: &VecWitness,
    instance: &[Vec<Fr>],
) {
    let (params, pk, proof) = prove(backend, params_k, cs, pre, witness);
    verify_proof(&params, &pk.vk, instance, &proof).unwrap();
    for (name, start, end) in sections(cs, 5, proof.len()) {
        if start == end {
            continue;
        }
        // Corrupt a byte in the middle of the section.
        let mut bad = proof.clone();
        let pos = start + (end - start) / 2;
        bad[pos] ^= 0x2a;
        assert!(
            verify_proof(&params, &pk.vk, instance, &bad).is_err(),
            "{backend}: corrupting '{name}' (byte {pos}) was accepted"
        );
        // Truncate the proof at the section start: must be a clean read
        // error, not a panic.
        let truncated = proof[..start].to_vec();
        assert!(
            verify_proof(&params, &pk.vk, instance, &truncated).is_err(),
            "{backend}: truncation before '{name}' was accepted"
        );
    }
}

#[test]
fn corrupted_sections_rejected_mul_chain_kzg() {
    let (cs, pre, witness, instance) = mul_chain();
    assert_all_sections_reject(Backend::Kzg, 6, &cs, &pre, &witness, &instance);
}

#[test]
fn corrupted_sections_rejected_mul_chain_ipa() {
    let (cs, pre, witness, instance) = mul_chain();
    assert_all_sections_reject(Backend::Ipa, 5, &cs, &pre, &witness, &instance);
}

#[test]
fn corrupted_sections_rejected_lookup_kzg() {
    let (cs, pre, witness) = lookup_circuit();
    assert_all_sections_reject(Backend::Kzg, 7, &cs, &pre, &witness, &[]);
}

#[test]
fn corrupted_sections_rejected_lookup_ipa() {
    let (cs, pre, witness) = lookup_circuit();
    assert_all_sections_reject(Backend::Ipa, 5, &cs, &pre, &witness, &[]);
}

#[test]
fn empty_and_garbage_proofs_rejected() {
    let (cs, pre, witness, instance) = mul_chain();
    let (params, pk, proof) = prove(Backend::Kzg, 6, &cs, &pre, &witness);
    assert!(verify_proof(&params, &pk.vk, &instance, &[]).is_err());
    assert!(verify_proof(&params, &pk.vk, &instance, &[0u8; 7]).is_err());
    let garbage: Vec<u8> = (0..proof.len()).map(|i| (i * 37 + 11) as u8).collect();
    assert!(verify_proof(&params, &pk.vk, &instance, &garbage).is_err());
}

#[test]
fn malformed_public_instances_rejected() {
    let (cs, pre, witness, instance) = mul_chain();
    let (params, pk, proof) = prove(Backend::Kzg, 6, &cs, &pre, &witness);
    verify_proof(&params, &pk.vk, &instance, &proof).unwrap();

    // Wrong public value.
    let wrong = vec![vec![instance[0][0] + Fr::one()]];
    assert!(verify_proof(&params, &pk.vk, &wrong, &proof).is_err());

    // Truncated: the instance column missing entirely.
    assert!(verify_proof(&params, &pk.vk, &[], &proof).is_err());
    let empty_col: Vec<Vec<Fr>> = vec![vec![]];
    assert!(verify_proof(&params, &pk.vk, &empty_col, &proof).is_err());

    // Extra instance column.
    let extra = vec![instance[0].clone(), vec![Fr::one()]];
    assert!(verify_proof(&params, &pk.vk, &extra, &proof).is_err());

    // Instance column longer than the usable rows.
    let n = 1usize << 5;
    let overlong = vec![vec![Fr::one(); n]];
    assert!(verify_proof(&params, &pk.vk, &overlong, &proof).is_err());
}
