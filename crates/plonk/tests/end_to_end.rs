//! End-to-end prove/verify tests for the Plonkish proving system, covering
//! gates, copy constraints, public inputs, lookups, multi-phase challenges,
//! and both commitment backends.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml_ff::{Field, Fr, PrimeField};
use zkml_pcs::{Backend, Params};
use zkml_plonk::{
    create_proof_with_rng, keygen, verify_proof, CellRef, Column, ConstraintSystem, Expression,
    Preprocessed, Rotation, WitnessSource,
};

fn params(backend: Backend, k: u32) -> Params {
    let mut rng = StdRng::seed_from_u64(999);
    Params::setup(backend, k, &mut rng)
}

/// A fixed witness provider backed by plain vectors.
struct VecWitness {
    instance: Vec<Vec<Fr>>,
    advice0: Vec<(usize, Vec<Fr>)>,
    #[allow(clippy::type_complexity)]
    advice1: Box<dyn Fn(&[Fr]) -> Vec<(usize, Vec<Fr>)> + Send + Sync>,
}

impl VecWitness {
    fn simple(instance: Vec<Vec<Fr>>, advice0: Vec<(usize, Vec<Fr>)>) -> Self {
        Self {
            instance,
            advice0,
            advice1: Box::new(|_| Vec::new()),
        }
    }
}

impl WitnessSource for VecWitness {
    fn instance(&self) -> Vec<Vec<Fr>> {
        self.instance.clone()
    }
    fn advice(&self, phase: u8, challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
        if phase == 0 {
            self.advice0.clone()
        } else {
            (self.advice1)(challenges)
        }
    }
}

/// Circuit 1: multiplication chain with copy constraints and a public output.
///
/// Rows hold (a, b, c) with gate q * (a*b - c) = 0. Row i+1's `a` is copied
/// from row i's `c`, and the final product is exposed via the instance
/// column.
fn mul_chain_setup() -> (ConstraintSystem, Preprocessed, VecWitness, Vec<Vec<Fr>>) {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a = cs.advice_column(0);
    let b = cs.advice_column(0);
    let c = cs.advice_column(0);
    let inst = cs.instance_column();
    cs.enable_equality(Column::Advice(a));
    cs.enable_equality(Column::Advice(c));
    cs.enable_equality(Column::Instance(inst));
    cs.create_gate(
        "mul",
        vec![
            Expression::Fixed(q, Rotation::cur())
                * (Expression::Advice(a, Rotation::cur()) * Expression::Advice(b, Rotation::cur())
                    - Expression::Advice(c, Rotation::cur())),
        ],
    );

    // Witness: chain of 8 multiplications starting from 3, multiplying by
    // (i + 2) each row.
    let rows = 8usize;
    let mut av = Vec::new();
    let mut bv = Vec::new();
    let mut cv = Vec::new();
    let mut acc = Fr::from_u64(3);
    for i in 0..rows {
        let m = Fr::from_u64(i as u64 + 2);
        av.push(acc);
        bv.push(m);
        acc *= m;
        cv.push(acc);
    }
    let copies: Vec<(CellRef, CellRef)> = (1..rows)
        .map(|i| {
            (
                CellRef {
                    column: Column::Advice(c),
                    row: i - 1,
                },
                CellRef {
                    column: Column::Advice(a),
                    row: i,
                },
            )
        })
        .chain(std::iter::once((
            CellRef {
                column: Column::Advice(c),
                row: rows - 1,
            },
            CellRef {
                column: Column::Instance(inst),
                row: 0,
            },
        )))
        .collect();

    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::one(); rows]],
        copies,
    };
    let instance = vec![vec![acc]];
    let witness = VecWitness::simple(instance.clone(), vec![(a, av), (b, bv), (c, cv)]);
    (cs, pre, witness, instance)
}

#[test]
fn mul_chain_proves_and_verifies_kzg() {
    let (cs, pre, witness, instance) = mul_chain_setup();
    let params = params(Backend::Kzg, 6);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
    verify_proof(&params, &pk.vk, &instance, &proof).unwrap();
}

#[test]
fn mul_chain_proves_and_verifies_ipa() {
    let (cs, pre, witness, instance) = mul_chain_setup();
    let params = params(Backend::Ipa, 5);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
    verify_proof(&params, &pk.vk, &instance, &proof).unwrap();
}

#[test]
fn wrong_public_input_rejected() {
    let (cs, pre, witness, instance) = mul_chain_setup();
    let params = params(Backend::Kzg, 6);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
    let bad = vec![vec![instance[0][0] + Fr::one()]];
    assert!(verify_proof(&params, &pk.vk, &bad, &proof).is_err());
}

#[test]
fn tampered_proof_rejected() {
    let (cs, pre, witness, instance) = mul_chain_setup();
    let params = params(Backend::Kzg, 6);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
    // Flip one byte in each third of the proof; all must fail (either parse
    // or verification error).
    for pos in [10, proof.len() / 2, proof.len() - 10] {
        let mut bad = proof.clone();
        bad[pos] ^= 0x01;
        assert!(
            verify_proof(&params, &pk.vk, &instance, &bad).is_err(),
            "tampering at {pos} was accepted"
        );
    }
}

#[test]
fn invalid_witness_fails_to_prove() {
    let (cs, pre, mut witness, _) = mul_chain_setup();
    // Break the copy constraint by corrupting c[2].
    witness.advice0[2].1[2] += Fr::one();
    let params = params(Backend::Kzg, 6);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    // The prover detects the unsatisfied permutation.
    assert!(create_proof_with_rng(&params, &pk, &witness, &mut rng).is_err());
}

/// Circuit 2: lookup-based range check plus a ReLU-style (x, f(x)) table.
fn lookup_setup() -> (ConstraintSystem, Preprocessed, VecWitness) {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let t_in = cs.fixed_column();
    let t_out = cs.fixed_column();
    let x = cs.advice_column(0);
    let y = cs.advice_column(0);
    // Table: (v, relu(v)) for v in -8..8 (signed via field negation).
    let mut tin = Vec::new();
    let mut tout = Vec::new();
    for v in -8i64..8 {
        tin.push(Fr::from_i64(v));
        tout.push(Fr::from_i64(v.max(0)));
    }
    // Lookup with the selector-gated default trick: row inactive => (t0_in,
    // t0_out) which is in the table.
    let d_in = tin[0];
    let d_out = tout[0];
    let qe = Expression::Fixed(q, Rotation::cur());
    let input0 = qe.clone() * (Expression::Advice(x, Rotation::cur()) - Expression::Constant(d_in))
        + Expression::Constant(d_in);
    let input1 = qe * (Expression::Advice(y, Rotation::cur()) - Expression::Constant(d_out))
        + Expression::Constant(d_out);
    cs.create_lookup(
        "relu",
        vec![input0, input1],
        vec![
            Expression::Fixed(t_in, Rotation::cur()),
            Expression::Fixed(t_out, Rotation::cur()),
        ],
    );

    // Witness: relu of a few signed values on active rows.
    let xs: Vec<i64> = vec![-5, 3, 0, 7, -1, -8, 6];
    let xv: Vec<Fr> = xs.iter().map(|v| Fr::from_i64(*v)).collect();
    let yv: Vec<Fr> = xs.iter().map(|v| Fr::from_i64((*v).max(0))).collect();
    let rows = xs.len();
    // Fixed columns: q enabled on those rows; the table itself, padded by
    // repeating the last entry across all usable rows at keygen... here the
    // table columns only hold 16 entries; remaining rows are zero, and zero
    // rows give the tuple (0, 0) which IS in the table (relu(0) = 0), so the
    // padding is safe for this test.
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::one(); rows], tin, tout],
        copies: vec![],
    };
    let witness = VecWitness::simple(vec![], vec![(x, xv), (y, yv)]);
    (cs, pre, witness)
}

#[test]
fn lookup_circuit_proves_and_verifies_both_backends() {
    let (cs, pre, witness) = lookup_setup();
    for backend in [Backend::Kzg, Backend::Ipa] {
        let params = params(backend, 7);
        let pk = keygen(&params, &cs, &pre, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
        verify_proof(&params, &pk.vk, &[], &proof).unwrap_or_else(|e| {
            panic!("lookup circuit failed on {backend}: {e}");
        });
    }
}

#[test]
fn lookup_rejects_out_of_table_witness() {
    let (cs, pre, mut witness) = lookup_setup();
    // Claim relu(-5) = 5 (wrong: should be 0) -> tuple (-5, 5) not in table.
    witness.advice0[1].1[0] = Fr::from_u64(5);
    let params = params(Backend::Kzg, 7);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    assert!(create_proof_with_rng(&params, &pk, &witness, &mut rng).is_err());
}

/// Circuit 3: multi-phase challenge. Phase-1 column must equal `challenge *
/// phase0_column` on each active row — the primitive behind Freivalds.
#[test]
fn challenge_phase_circuit() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a = cs.advice_column(0);
    let b = cs.advice_column(1);
    let chal = cs.challenge();
    cs.create_gate(
        "b = chi * a",
        vec![
            Expression::Fixed(q, Rotation::cur())
                * (Expression::Advice(b, Rotation::cur())
                    - Expression::Challenge(chal) * Expression::Advice(a, Rotation::cur())),
        ],
    );
    let rows = 5usize;
    let av: Vec<Fr> = (0..rows).map(|i| Fr::from_u64(i as u64 + 1)).collect();
    let av2 = av.clone();
    let witness = VecWitness {
        instance: vec![],
        advice0: vec![(a, av)],
        advice1: Box::new(move |challenges: &[Fr]| {
            let chi = challenges[0];
            vec![(1usize, av2.iter().map(|v| *v * chi).collect())]
        }),
    };
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::one(); rows]],
        copies: vec![],
    };
    let params = params(Backend::Kzg, 6);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
    verify_proof(&params, &pk.vk, &[], &proof).unwrap();

    // A phase-1 column that ignores the challenge must fail.
    let av3: Vec<Fr> = (0..rows).map(|i| Fr::from_u64(i as u64 + 1)).collect();
    let bad = VecWitness {
        instance: vec![],
        advice0: vec![(a, av3.clone())],
        advice1: Box::new(move |_| vec![(1usize, av3.clone())]),
    };
    let mut rng = StdRng::seed_from_u64(9);
    let result = create_proof_with_rng(&params, &pk, &bad, &mut rng);
    // The prover does not self-check gates, so it emits a proof; the
    // verifier must reject it.
    if let Ok(p) = result {
        assert!(verify_proof(&params, &pk.vk, &[], &p).is_err());
    }
}

/// Multi-row (rotation) gate: running-sum accumulator, the primitive behind
/// the multi-row ablation in Table 13 of the paper.
#[test]
fn multi_row_accumulator_circuit() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let v = cs.advice_column(0);
    let acc = cs.advice_column(0);
    // q * (acc_next - acc - v) = 0.
    cs.create_gate(
        "running sum",
        vec![
            Expression::Fixed(q, Rotation::cur())
                * (Expression::Advice(acc, Rotation::next())
                    - Expression::Advice(acc, Rotation::cur())
                    - Expression::Advice(v, Rotation::cur())),
        ],
    );
    let rows = 6usize;
    let vals: Vec<Fr> = (0..rows).map(|i| Fr::from_u64(i as u64 * 3 + 1)).collect();
    let mut accs = vec![Fr::zero()];
    for x in &vals {
        let prev = *accs.last().unwrap();
        accs.push(prev + *x);
    }
    // q active on rows 0..rows; acc column has rows+1 values.
    let witness = VecWitness::simple(vec![], vec![(v, vals), (acc, accs)]);
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::one(); rows]],
        copies: vec![],
    };
    let params = params(Backend::Kzg, 6);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
    verify_proof(&params, &pk.vk, &[], &proof).unwrap();
}
