//! Golden-vector regression tests for proof bytes.
//!
//! The whole proving pipeline — seeded SRS, keygen, transcript, seeded
//! prover randomness — is deterministic, so the byte output for a fixed
//! circuit and seed is a stable artifact. These tests pin it against
//! committed fixtures: any change to the transcript layout, commitment
//! serialization, or argument ordering shows up as a fixture diff and must
//! be a conscious decision (regenerate with `ZKML_REGEN_GOLDEN=1`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use zkml_ff::{Field, Fr, PrimeField};
use zkml_pcs::{Backend, Params};
use zkml_plonk::{
    create_proof_with_rng, keygen, verify_proof, CellRef, Column, ConstraintSystem, Expression,
    Preprocessed, Rotation, WitnessSource,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `ZKML_REGEN_GOLDEN=1` is set.
fn assert_golden(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var("ZKML_REGEN_GOLDEN").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|_| {
        panic!("missing golden fixture {path:?}; generate it with ZKML_REGEN_GOLDEN=1")
    });
    assert_eq!(
        expected.len(),
        actual.len(),
        "{name}: proof length changed ({} -> {}); regenerate with ZKML_REGEN_GOLDEN=1 \
         if the format change is intentional",
        expected.len(),
        actual.len()
    );
    let first_diff = expected.iter().zip(actual).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "{name}: proof bytes diverge from the golden fixture at offset {first_diff:?}; \
         regenerate with ZKML_REGEN_GOLDEN=1 if the change is intentional"
    );
}

/// Multiplication chain with copy constraints and a public output: rows
/// hold (a, b, c) under gate `q * (a*b - c) = 0`, row i+1's `a` copied
/// from row i's `c`, final product exposed through the instance column.
struct ChainWitness {
    instance: Vec<Vec<Fr>>,
    advice: Vec<(usize, Vec<Fr>)>,
}

impl WitnessSource for ChainWitness {
    fn instance(&self) -> Vec<Vec<Fr>> {
        self.instance.clone()
    }
    fn advice(&self, phase: u8, _challenges: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
        if phase == 0 {
            self.advice.clone()
        } else {
            Vec::new()
        }
    }
}

fn mul_chain() -> (ConstraintSystem, Preprocessed, ChainWitness, Vec<Vec<Fr>>) {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a = cs.advice_column(0);
    let b = cs.advice_column(0);
    let c = cs.advice_column(0);
    let inst = cs.instance_column();
    cs.enable_equality(Column::Advice(a));
    cs.enable_equality(Column::Advice(c));
    cs.enable_equality(Column::Instance(inst));
    cs.create_gate(
        "mul",
        vec![
            Expression::Fixed(q, Rotation::cur())
                * (Expression::Advice(a, Rotation::cur()) * Expression::Advice(b, Rotation::cur())
                    - Expression::Advice(c, Rotation::cur())),
        ],
    );

    let rows = 8usize;
    let (mut av, mut bv, mut cv) = (Vec::new(), Vec::new(), Vec::new());
    let mut acc = Fr::from_u64(3);
    for i in 0..rows {
        let m = Fr::from_u64(i as u64 + 2);
        av.push(acc);
        bv.push(m);
        acc *= m;
        cv.push(acc);
    }
    let copies: Vec<(CellRef, CellRef)> = (1..rows)
        .map(|i| {
            (
                CellRef {
                    column: Column::Advice(c),
                    row: i - 1,
                },
                CellRef {
                    column: Column::Advice(a),
                    row: i,
                },
            )
        })
        .chain(std::iter::once((
            CellRef {
                column: Column::Advice(c),
                row: rows - 1,
            },
            CellRef {
                column: Column::Instance(inst),
                row: 0,
            },
        )))
        .collect();
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::one(); rows]],
        copies,
    };
    let instance = vec![vec![acc]];
    let witness = ChainWitness {
        instance: instance.clone(),
        advice: vec![(a, av), (b, bv), (c, cv)],
    };
    (cs, pre, witness, instance)
}

fn golden_proof(backend: Backend, k: u32) -> Vec<u8> {
    let (cs, pre, witness, instance) = mul_chain();
    let mut srs_rng = StdRng::seed_from_u64(0x601D);
    let params = Params::setup(backend, k, &mut srs_rng);
    let pk = keygen(&params, &cs, &pre, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(0x601D_0001);
    let proof = create_proof_with_rng(&params, &pk, &witness, &mut rng).unwrap();
    // The fixture must never pin an invalid proof.
    verify_proof(&params, &pk.vk, &instance, &proof).unwrap();

    // Determinism precondition: a second run from the same seeds must be
    // byte-identical, otherwise the golden comparison is meaningless.
    let mut rng2 = StdRng::seed_from_u64(0x601D_0001);
    let proof2 = create_proof_with_rng(&params, &pk, &witness, &mut rng2).unwrap();
    assert_eq!(proof, proof2, "proof generation must be deterministic");
    proof
}

#[test]
fn mul_chain_proof_bytes_match_golden_kzg() {
    assert_golden("mul_chain_kzg.proof", &golden_proof(Backend::Kzg, 6));
}

#[test]
fn mul_chain_proof_bytes_match_golden_ipa() {
    assert_golden("mul_chain_ipa.proof", &golden_proof(Backend::Ipa, 5));
}
