//! Property tests for the proving system: random multiplication-chain
//! circuits prove and verify; random corruptions are rejected.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkml_ff::{Fr, PrimeField};
use zkml_pcs::{Backend, Params};
use zkml_plonk::{
    create_proof_with_rng, keygen, verify_proof, CellRef, Column, ConstraintSystem, Expression,
    Preprocessed, Rotation, WitnessSource,
};

struct VecWitness {
    instance: Vec<Vec<Fr>>,
    advice: Vec<(usize, Vec<Fr>)>,
}
impl WitnessSource for VecWitness {
    fn instance(&self) -> Vec<Vec<Fr>> {
        self.instance.clone()
    }
    fn advice(&self, _phase: u8, _ch: &[Fr]) -> Vec<(usize, Vec<Fr>)> {
        self.advice.clone()
    }
}

fn params() -> &'static Params {
    static P: std::sync::OnceLock<Params> = std::sync::OnceLock::new();
    P.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(77);
        Params::setup(Backend::Kzg, 7, &mut rng)
    })
}

/// Builds an affine-chain circuit: v_{i+1} = a_i * v_i + b_i with the final
/// value public, for arbitrary coefficient vectors.
fn affine_chain(
    coeffs: &[(u64, u64)],
    start: u64,
) -> (ConstraintSystem, Preprocessed, VecWitness, Fr) {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a = cs.advice_column(0);
    let b = cs.advice_column(0);
    let v = cs.advice_column(0);
    let out = cs.advice_column(0);
    let inst = cs.instance_column();
    cs.enable_equality(Column::Advice(v));
    cs.enable_equality(Column::Advice(out));
    cs.enable_equality(Column::Instance(inst));
    cs.create_gate(
        "affine",
        vec![
            Expression::Fixed(q, Rotation::cur())
                * (Expression::Advice(out, Rotation::cur())
                    - Expression::Advice(a, Rotation::cur())
                        * Expression::Advice(v, Rotation::cur())
                    - Expression::Advice(b, Rotation::cur())),
        ],
    );
    let mut av = Vec::new();
    let mut bv = Vec::new();
    let mut vv = Vec::new();
    let mut ov = Vec::new();
    let mut copies = Vec::new();
    let mut cur = Fr::from_u64(start);
    for (i, (ca, cb)) in coeffs.iter().enumerate() {
        av.push(Fr::from_u64(*ca));
        bv.push(Fr::from_u64(*cb));
        vv.push(cur);
        cur = Fr::from_u64(*ca) * cur + Fr::from_u64(*cb);
        ov.push(cur);
        if i > 0 {
            copies.push((
                CellRef {
                    column: Column::Advice(out),
                    row: i - 1,
                },
                CellRef {
                    column: Column::Advice(v),
                    row: i,
                },
            ));
        }
    }
    copies.push((
        CellRef {
            column: Column::Advice(out),
            row: coeffs.len() - 1,
        },
        CellRef {
            column: Column::Instance(inst),
            row: 0,
        },
    ));
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ONE; coeffs.len()]],
        copies,
    };
    let witness = VecWitness {
        instance: vec![vec![cur]],
        advice: vec![(a, av), (b, bv), (v, vv), (out, ov)],
    };
    (cs, pre, witness, cur)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_affine_chains_prove_and_verify(
        coeffs in prop::collection::vec((1u64..1000, 0u64..1000), 1..50),
        start in 0u64..100,
    ) {
        let (cs, pre, witness, result) = affine_chain(&coeffs, start);
        let pk = keygen(params(), &cs, &pre, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(coeffs.len() as u64);
        let proof = create_proof_with_rng(params(), &pk, &witness, &mut rng).unwrap();
        verify_proof(params(), &pk.vk, &[vec![result]], &proof).unwrap();
        // The wrong result must be rejected.
        prop_assert!(
            verify_proof(params(), &pk.vk, &[vec![result + Fr::ONE]], &proof).is_err()
        );
    }

    #[test]
    fn random_byte_corruptions_rejected(
        coeffs in prop::collection::vec((1u64..50, 0u64..50), 2..10),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (cs, pre, witness, result) = affine_chain(&coeffs, 3);
        let pk = keygen(params(), &cs, &pre, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let proof = create_proof_with_rng(params(), &pk, &witness, &mut rng).unwrap();
        let mut bad = proof.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= 1 << bit;
        prop_assert!(
            verify_proof(params(), &pk.vk, &[vec![result]], &bad).is_err(),
            "corruption at byte {pos} bit {bit} accepted"
        );
    }
}
