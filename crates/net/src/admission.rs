//! Tenant-aware admission control in front of the proving service's
//! bounded queue: per-tenant token-bucket rate limits, per-tenant in-flight
//! quotas, and two priority lanes (interactive vs batch) drained by
//! weighted round-robin. Rejections here are pure backpressure — the HTTP
//! front end maps them to 429 with a `Retry-After` hint, and the CLI to a
//! distinct "retry later" exit code.

use crate::json::JsonObj;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which lane a job is queued on. Interactive jobs are dequeued with a
/// higher weight than batch jobs, so a batch backlog cannot starve
/// latency-sensitive submitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive lane (default).
    Interactive,
    /// Throughput lane; drained at the lower weight.
    Batch,
}

impl Priority {
    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Per-tenant admission policy.
#[derive(Debug, Clone, Copy)]
pub struct TenantPolicy {
    /// Token-bucket refill rate: sustained submissions per second.
    pub rate_per_s: f64,
    /// Token-bucket capacity: tolerated submission burst.
    pub burst: f64,
    /// Maximum jobs a tenant may have admitted-but-not-terminal at once.
    pub max_in_flight: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self {
            rate_per_s: 50.0,
            burst: 100.0,
            max_in_flight: 32,
        }
    }
}

/// Admission-layer configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Policy applied to tenants without an override.
    pub default_policy: TenantPolicy,
    /// Per-tenant policy overrides, by tenant name.
    pub overrides: Vec<(String, TenantPolicy)>,
    /// Interactive-lane weight in the round-robin dispatch pattern.
    pub interactive_weight: usize,
    /// Batch-lane weight in the round-robin dispatch pattern.
    pub batch_weight: usize,
    /// Bound on each lane; submissions beyond it are rejected busy.
    pub lane_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            default_policy: TenantPolicy::default(),
            overrides: Vec::new(),
            interactive_weight: 3,
            batch_weight: 1,
            lane_capacity: 256,
        }
    }
}

/// Why a submission was not admitted. All variants are retryable
/// backpressure, never a statement about the job itself.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The tenant's token bucket is empty.
    RateLimited {
        /// Time until one token will have refilled.
        retry_after: Duration,
    },
    /// The tenant is at its in-flight quota.
    QuotaExceeded {
        /// Jobs currently in flight for the tenant.
        in_flight: usize,
        /// The configured quota.
        limit: usize,
    },
    /// The target lane is full (server-wide backpressure).
    LaneFull {
        /// The configured per-lane capacity.
        capacity: usize,
    },
}

impl AdmitError {
    /// A conservative retry hint for the `Retry-After` header.
    pub fn retry_after(&self) -> Duration {
        match self {
            AdmitError::RateLimited { retry_after } => *retry_after,
            // Quota and lane pressure clear when a job finishes; one second
            // is a sane poll interval against a proving service.
            AdmitError::QuotaExceeded { .. } | AdmitError::LaneFull { .. } => {
                Duration::from_secs(1)
            }
        }
    }
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::RateLimited { retry_after } => {
                write!(f, "rate limited (retry in {retry_after:?})")
            }
            AdmitError::QuotaExceeded { in_flight, limit } => {
                write!(f, "in-flight quota exceeded ({in_flight}/{limit})")
            }
            AdmitError::LaneFull { capacity } => {
                write!(f, "queue lane full ({capacity} waiting)")
            }
        }
    }
}

/// How an admitted job left the system (for the per-tenant counters).
#[derive(Debug, Clone, Copy)]
pub enum ReleaseOutcome {
    /// The job completed successfully.
    Completed,
    /// The job failed.
    Failed,
    /// The job was cancelled.
    Cancelled,
}

/// Per-tenant counters surfaced in `/v1/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Submissions seen (admitted + rejected).
    pub submitted: u64,
    /// Submissions admitted into a lane.
    pub admitted: u64,
    /// Rejections by the token bucket.
    pub rejected_rate: u64,
    /// Rejections by the in-flight quota.
    pub rejected_quota: u64,
    /// Rejections because the lane was full.
    pub rejected_busy: u64,
    /// Admitted jobs that completed.
    pub completed: u64,
    /// Admitted jobs that failed.
    pub failed: u64,
    /// Admitted jobs that were cancelled.
    pub cancelled: u64,
    /// Jobs currently admitted but not yet terminal.
    pub in_flight: u64,
}

struct TenantState {
    policy: TenantPolicy,
    tokens: f64,
    refilled: Instant,
    counters: TenantCounters,
}

/// The admission layer: one token bucket + quota + counter block per
/// tenant, created lazily on first submission.
pub struct Admission {
    default_policy: TenantPolicy,
    overrides: Vec<(String, TenantPolicy)>,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl Admission {
    /// Builds the layer from its policy configuration (the lane weights and
    /// capacity in [`AdmissionConfig`] are enforced by the gateway's
    /// dispatcher, not here).
    pub fn new(cfg: &AdmissionConfig) -> Self {
        Self {
            default_policy: cfg.default_policy,
            overrides: cfg.overrides.clone(),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.overrides
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, p)| *p)
            .unwrap_or(self.default_policy)
    }

    fn with_state<R>(&self, tenant: &str, f: impl FnOnce(&mut TenantState) -> R) -> R {
        let mut tenants = self.tenants.lock().unwrap();
        let state = tenants.entry(tenant.to_string()).or_insert_with(|| {
            let policy = self.policy_for(tenant);
            TenantState {
                policy,
                tokens: policy.burst,
                refilled: Instant::now(),
                counters: TenantCounters::default(),
            }
        });
        f(state)
    }

    /// Admits one submission for `tenant`: charges a token and claims an
    /// in-flight slot, or rejects with the reason. Quota is checked before
    /// the bucket so a quota-rejected burst does not also drain tokens.
    pub fn admit(&self, tenant: &str) -> Result<(), AdmitError> {
        self.with_state(tenant, |s| {
            s.counters.submitted += 1;
            // Refill the bucket for the elapsed wall time.
            let now = Instant::now();
            let elapsed = now.duration_since(s.refilled).as_secs_f64();
            s.tokens = (s.tokens + elapsed * s.policy.rate_per_s).min(s.policy.burst);
            s.refilled = now;

            if s.counters.in_flight >= s.policy.max_in_flight as u64 {
                s.counters.rejected_quota += 1;
                return Err(AdmitError::QuotaExceeded {
                    in_flight: s.counters.in_flight as usize,
                    limit: s.policy.max_in_flight,
                });
            }
            if s.tokens < 1.0 {
                s.counters.rejected_rate += 1;
                let deficit = 1.0 - s.tokens;
                let retry_after = if s.policy.rate_per_s > 0.0 {
                    Duration::from_secs_f64(deficit / s.policy.rate_per_s)
                } else {
                    Duration::from_secs(60)
                };
                return Err(AdmitError::RateLimited { retry_after });
            }
            s.tokens -= 1.0;
            s.counters.admitted += 1;
            s.counters.in_flight += 1;
            Ok(())
        })
    }

    /// Records a lane-full rejection (the gateway checks lane bounds; the
    /// admitted token and slot are refunded since the job never queued).
    pub fn refund_lane_full(&self, tenant: &str) {
        self.with_state(tenant, |s| {
            s.counters.admitted = s.counters.admitted.saturating_sub(1);
            s.counters.in_flight = s.counters.in_flight.saturating_sub(1);
            s.counters.rejected_busy += 1;
            s.tokens = (s.tokens + 1.0).min(s.policy.burst);
        });
    }

    /// Releases an admitted job's in-flight slot with its outcome.
    pub fn release(&self, tenant: &str, outcome: ReleaseOutcome) {
        self.with_state(tenant, |s| {
            s.counters.in_flight = s.counters.in_flight.saturating_sub(1);
            match outcome {
                ReleaseOutcome::Completed => s.counters.completed += 1,
                ReleaseOutcome::Failed => s.counters.failed += 1,
                ReleaseOutcome::Cancelled => s.counters.cancelled += 1,
            }
        });
    }

    /// Re-claims an in-flight slot without charging a token: used when the
    /// journal replays still-queued jobs at startup, so quotas keep holding
    /// across a restart.
    pub fn restore(&self, tenant: &str) {
        self.with_state(tenant, |s| {
            s.counters.submitted += 1;
            s.counters.admitted += 1;
            s.counters.in_flight += 1;
        });
    }

    /// A copy of one tenant's counters (tests and introspection).
    pub fn counters(&self, tenant: &str) -> Option<TenantCounters> {
        self.tenants.lock().unwrap().get(tenant).map(|s| s.counters)
    }

    /// The per-tenant counters as a JSON object keyed by tenant name,
    /// sorted for deterministic output.
    pub fn tenants_json(&self) -> String {
        let tenants = self.tenants.lock().unwrap();
        let mut names: Vec<&String> = tenants.keys().collect();
        names.sort();
        let mut obj = JsonObj::new();
        for name in names {
            let c = tenants[name].counters;
            let inner = JsonObj::new()
                .u64("submitted", c.submitted)
                .u64("admitted", c.admitted)
                .u64("rejected_rate", c.rejected_rate)
                .u64("rejected_quota", c.rejected_quota)
                .u64("rejected_busy", c.rejected_busy)
                .u64("completed", c.completed)
                .u64("failed", c.failed)
                .u64("cancelled", c.cancelled)
                .u64("in_flight", c.in_flight)
                .finish();
            obj = obj.raw(name, &inner);
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, burst: f64, quota: usize) -> AdmissionConfig {
        AdmissionConfig {
            default_policy: TenantPolicy {
                rate_per_s: rate,
                burst,
                max_in_flight: quota,
            },
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn burst_then_rate_limit() {
        // Effectively no refill during the test.
        let adm = Admission::new(&cfg(0.001, 2.0, 100));
        assert!(adm.admit("a").is_ok());
        assert!(adm.admit("a").is_ok());
        match adm.admit("a") {
            Err(AdmitError::RateLimited { retry_after }) => {
                assert!(retry_after > Duration::from_secs(60))
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        let c = adm.counters("a").unwrap();
        assert_eq!((c.admitted, c.rejected_rate, c.in_flight), (2, 1, 2));
    }

    #[test]
    fn buckets_are_per_tenant() {
        let adm = Admission::new(&cfg(0.001, 1.0, 100));
        assert!(adm.admit("a").is_ok());
        assert!(adm.admit("a").is_err());
        assert!(adm.admit("b").is_ok(), "tenant b has its own bucket");
    }

    #[test]
    fn quota_blocks_before_bucket() {
        let adm = Admission::new(&cfg(1000.0, 1000.0, 2));
        assert!(adm.admit("a").is_ok());
        assert!(adm.admit("a").is_ok());
        match adm.admit("a") {
            Err(AdmitError::QuotaExceeded { in_flight, limit }) => {
                assert_eq!((in_flight, limit), (2, 2))
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Releasing one frees a slot.
        adm.release("a", ReleaseOutcome::Completed);
        assert!(adm.admit("a").is_ok());
        let c = adm.counters("a").unwrap();
        assert_eq!(c.completed, 1);
        assert_eq!(c.rejected_quota, 1);
        assert_eq!(c.in_flight, 2);
    }

    #[test]
    fn override_applies_to_named_tenant() {
        let mut config = cfg(1000.0, 1000.0, 100);
        config.overrides.push((
            "throttled".to_string(),
            TenantPolicy {
                rate_per_s: 0.001,
                burst: 1.0,
                max_in_flight: 100,
            },
        ));
        let adm = Admission::new(&config);
        assert!(adm.admit("throttled").is_ok());
        assert!(adm.admit("throttled").is_err());
        assert!(adm.admit("other").is_ok());
        assert!(adm.admit("other").is_ok());
    }

    #[test]
    fn refund_undoes_admission() {
        let adm = Admission::new(&cfg(0.001, 1.0, 100));
        assert!(adm.admit("a").is_ok());
        adm.refund_lane_full("a");
        // The token came back, so the next submit is admitted again.
        assert!(adm.admit("a").is_ok());
        let c = adm.counters("a").unwrap();
        assert_eq!(c.rejected_busy, 1);
        assert_eq!(c.in_flight, 1);
    }

    #[test]
    fn json_snapshot_is_sorted_and_parseable() {
        let adm = Admission::new(&cfg(1000.0, 1000.0, 100));
        adm.admit("beta").unwrap();
        adm.admit("alpha").unwrap();
        let json = adm.tenants_json();
        let v = crate::json::Json::parse(&json).unwrap();
        match &v {
            crate::json::Json::Obj(fields) => {
                assert_eq!(fields[0].0, "alpha");
                assert_eq!(fields[1].0, "beta");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(
            v.get("alpha").unwrap().get("in_flight").unwrap().as_u64(),
            Some(1)
        );
    }
}
