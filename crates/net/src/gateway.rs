//! The HTTP gateway: a std-only threaded HTTP/1.1 server (accept loop +
//! fixed handler pool, no async runtime) layered over the proving service.
//!
//! Request path: `POST /v1/jobs` → admission (token bucket, quota, lane
//! bound) → journal `submitted` → priority lane. A single dispatcher
//! thread drains the lanes by weighted round-robin into the service's
//! bounded queue (journaling `started`), polls in-flight handles, joins
//! batched verification outcomes, and appends exactly one terminal record
//! per job. `GET /v1/jobs/{id}` serves status and (hex-encoded) artifacts,
//! `DELETE /v1/jobs/{id}` cancels cooperatively, `GET /v1/stats` merges the
//! service snapshot with per-tenant admission counters.

use crate::admission::{Admission, AdmissionConfig, Priority, ReleaseOutcome};
use crate::http::{read_request, write_json_response, ParseError, Request};
use crate::journal::{replay, JobDesc, Journal, Record, ReplayState};
use crate::json::{decode_hex, encode_hex, Json, JsonObj};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zkml_ff::Fr;
use zkml_model::Graph;
use zkml_pcs::Backend;
use zkml_service::{
    decode_public, encode_public, CancelToken, JobHandle, JobKind, JobSpec, ProofArtifacts,
    ProvingService, ServiceConfig, ServiceError,
};
use zkml_shard::SegmentSpec;

/// Gateway construction parameters.
#[derive(Clone)]
pub struct GatewayConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 binds an ephemeral port;
    /// read it back via [`Gateway::local_addr`]).
    pub addr: String,
    /// The proving-service configuration behind the gateway.
    pub service: ServiceConfig,
    /// Admission policies, lane weights, and lane capacity.
    pub admission: AdmissionConfig,
    /// Journal file; `None` runs without durability (tests, benches).
    pub journal: Option<PathBuf>,
    /// HTTP handler threads.
    pub handler_threads: usize,
    /// Flush batched verification once this many proofs are pending.
    pub verify_batch: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            service: ServiceConfig::default(),
            admission: AdmissionConfig::default(),
            journal: None,
            handler_threads: 4,
            verify_batch: 4,
        }
    }
}

/// A job's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Completed,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Payload of a standalone verify job (not journaled; too large).
#[derive(Clone)]
struct VerifyPayload {
    backend: Backend,
    vk: Vec<u8>,
    public: Vec<Fr>,
    proof: Vec<u8>,
    /// Digest of a published model commitment the proof must verify against.
    model: Option<[u8; 32]>,
    /// Prover-carried serialized weight commitment (may be empty).
    commitment: Vec<u8>,
}

struct JobEntry {
    tenant: String,
    priority: Priority,
    desc: JobDesc,
    state: JobState,
    cancel: CancelToken,
    graph: Option<Arc<Graph>>,
    verify_payload: Option<VerifyPayload>,
    artifacts: Option<ProofArtifacts>,
    error: Option<String>,
    /// True when the job reached `Completed` in this process, so its
    /// artifacts (if any) are actually servable. Jobs replayed from the
    /// journal keep their terminal state but not their bytes.
    result_available: bool,
}

#[derive(Default)]
struct Lanes {
    interactive: VecDeque<u64>,
    batch: VecDeque<u64>,
}

impl Lanes {
    fn lane_mut(&mut self, p: Priority) -> &mut VecDeque<u64> {
        match p {
            Priority::Interactive => &mut self.interactive,
            Priority::Batch => &mut self.batch,
        }
    }
}

struct Inner {
    service: ProvingService,
    admission: Admission,
    lanes: Mutex<Lanes>,
    registry: Mutex<HashMap<u64, JobEntry>>,
    journal: Option<Journal>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    interactive_weight: usize,
    batch_weight: usize,
    lane_capacity: usize,
    verify_batch: usize,
    verify_after_prove: bool,
    started: Instant,
}

impl Inner {
    fn journal_append(&self, rec: &Record) -> std::io::Result<()> {
        match &self.journal {
            Some(j) => j.append(rec),
            None => Ok(()),
        }
    }

    /// Appends a journal record where failure cannot fail the job anymore
    /// (terminal records); IO errors are reported but not fatal.
    fn journal_note(&self, rec: &Record) {
        if let Err(e) = self.journal_append(rec) {
            eprintln!("journal append failed: {e}");
        }
    }
}

/// How a job left the system, from the dispatcher's point of view.
enum Outcome {
    Completed(Option<Box<ProofArtifacts>>),
    Failed(String),
    Cancelled,
}

/// The running HTTP gateway. Dropping it performs a graceful shutdown:
/// stop accepting, drain both lanes and all in-flight jobs, flush batched
/// verification, fsync the journal.
pub struct Gateway {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    dispatch_thread: Option<JoinHandle<()>>,
    handler_threads: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listener, replays the journal, starts the proving service,
    /// the dispatcher, and the handler pool.
    pub fn start(cfg: GatewayConfig) -> std::io::Result<Gateway> {
        let verify_after_prove = cfg.service.verify_after_prove;
        let (journal, records) = match &cfg.journal {
            Some(path) => {
                let (j, recs) = Journal::open(path)?;
                (Some(j), recs)
            }
            None => (None, Vec::new()),
        };
        let service = ProvingService::start(cfg.service)?;
        let admission = Admission::new(&cfg.admission);
        let inner = Arc::new(Inner {
            service,
            admission,
            lanes: Mutex::new(Lanes::default()),
            registry: Mutex::new(HashMap::new()),
            journal,
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            interactive_weight: cfg.admission.interactive_weight.max(1),
            batch_weight: cfg.admission.batch_weight.max(1),
            lane_capacity: cfg.admission.lane_capacity.max(1),
            verify_batch: cfg.verify_batch.max(1),
            verify_after_prove,
            started: Instant::now(),
        });
        replay_into(&inner, &records);

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (conn_tx, conn_rx) = std::sync::mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handler_threads = (0..cfg.handler_threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("zkml-http-{i}"))
                    .spawn(move || handler_loop(rx, inner))
                    .expect("spawn http handler")
            })
            .collect();
        let accept_thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("zkml-accept".to_string())
                .spawn(move || accept_loop(listener, conn_tx, inner))
                .expect("spawn accept loop")
        };
        let dispatch_thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("zkml-dispatch".to_string())
                .spawn(move || dispatcher_loop(inner))
                .expect("spawn dispatcher")
        };
        Ok(Gateway {
            inner,
            local_addr,
            accept_thread: Some(accept_thread),
            dispatch_thread: Some(dispatch_thread),
            handler_threads,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The merged stats document served at `GET /v1/stats`.
    pub fn stats_json(&self) -> String {
        stats_json(&self.inner)
    }

    /// Graceful shutdown: stop accepting, drain lanes and in-flight jobs,
    /// flush verification, fsync the journal. Blocks until done.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join(); // exiting drops the conn sender
        }
        for t in self.handler_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
        if let Some(j) = &self.inner.journal {
            let _ = j.sync();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Rebuilds registry, lanes, and admission state from journal records.
/// Policy: terminal jobs stay terminal (without artifact bytes); jobs that
/// were queued re-enter their lane and re-run; jobs that were in flight
/// when the process died are deterministically failed (the journal gains
/// their terminal record immediately, so a second replay agrees).
fn replay_into(inner: &Arc<Inner>, records: &[crate::journal::Record]) {
    let (jobs, next_id) = replay(records);
    inner.next_id.store(next_id, Ordering::SeqCst);
    let mut registry = inner.registry.lock().unwrap();
    let mut lanes = inner.lanes.lock().unwrap();
    for job in jobs {
        let mut entry = JobEntry {
            tenant: job.tenant.clone(),
            priority: job.priority,
            desc: job.desc.clone(),
            state: JobState::Queued,
            cancel: CancelToken::new(),
            graph: None,
            verify_payload: None,
            artifacts: None,
            error: None,
            result_available: false,
        };
        match job.state {
            ReplayState::Completed { .. } => entry.state = JobState::Completed,
            ReplayState::Failed(err) => {
                entry.state = JobState::Failed;
                entry.error = Some(err);
            }
            ReplayState::Cancelled => entry.state = JobState::Cancelled,
            ReplayState::InFlight => {
                // The crash interrupted this job mid-run. Re-fail it
                // deterministically rather than re-running: its submitter
                // may already be acting on the uncertainty, and a re-run
                // could complete a job the client has given up on.
                let error = "interrupted by server restart while running".to_string();
                entry.state = JobState::Failed;
                entry.error = Some(error.clone());
                inner.journal_note(&Record::Failed { job: job.id, error });
            }
            ReplayState::Queued => match &job.desc {
                JobDesc::Verify => {
                    // Verify payloads are not journaled, so a queued verify
                    // job cannot be reconstructed.
                    let error = "verify job payload not durable across restart".to_string();
                    entry.state = JobState::Failed;
                    entry.error = Some(error.clone());
                    inner.journal_note(&Record::Failed { job: job.id, error });
                }
                JobDesc::Prove { model, .. } => match zkml_model::zoo::by_name(model) {
                    Some(graph) => {
                        entry.graph = Some(Arc::new(graph));
                        inner.admission.restore(&job.tenant);
                        lanes.lane_mut(job.priority).push_back(job.id);
                    }
                    None => {
                        let error = format!("unknown model '{model}' at replay");
                        entry.state = JobState::Failed;
                        entry.error = Some(error.clone());
                        inner.journal_note(&Record::Failed { job: job.id, error });
                    }
                },
                JobDesc::Sleep { .. } => {
                    inner.admission.restore(&job.tenant);
                    lanes.lane_mut(job.priority).push_back(job.id);
                }
            },
        }
        registry.insert(job.id, entry);
    }
}

fn accept_loop(listener: TcpListener, conn_tx: Sender<TcpStream>, inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handler_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, inner: Arc<Inner>) {
    loop {
        // Hold the lock only while receiving, so handlers serve connections
        // concurrently.
        let conn = { rx.lock().unwrap().recv() };
        match conn {
            Ok(mut stream) => handle_connection(&inner, &mut stream),
            Err(_) => break, // accept loop gone and queue drained
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: &mut TcpStream) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(ParseError::ConnectionClosed) | Err(ParseError::Io(_)) => return,
        Err(ParseError::TooLarge) => {
            let body = JsonObj::new()
                .str("error", "request body too large")
                .finish();
            let _ = write_json_response(stream, 413, &[], &body);
            return;
        }
        Err(ParseError::Bad(msg)) => {
            let body = JsonObj::new().str("error", &msg).finish();
            let _ = write_json_response(stream, 400, &[], &body);
            return;
        }
    };
    let (status, extra, body) = route(inner, &request);
    let extra_refs: Vec<(&str, String)> = extra.iter().map(|(k, v)| (*k, v.clone())).collect();
    let _ = write_json_response(stream, status, &extra_refs, &body);
}

type RouteResult = (u16, Vec<(&'static str, String)>, String);

fn err_body(msg: &str) -> String {
    JsonObj::new().str("error", msg).finish()
}

fn route(inner: &Arc<Inner>, req: &Request) -> RouteResult {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let body = JsonObj::new()
                .bool("ok", true)
                .bool("draining", inner.shutdown.load(Ordering::SeqCst))
                .finish();
            (200, vec![], body)
        }
        ("GET", "/v1/stats") => (200, vec![], stats_json(inner)),
        ("POST", "/v1/jobs") => submit_route(inner, &req.body),
        ("POST", "/v1/models") => commit_model_route(inner, &req.body),
        ("GET", "/v1/models") => list_models_route(inner),
        (_, "/v1/jobs") | (_, "/v1/healthz") | (_, "/v1/stats") | (_, "/v1/models") => {
            (405, vec![], err_body("method not allowed"))
        }
        (method, path) if path.starts_with("/v1/jobs/") => {
            let id = match path["/v1/jobs/".len()..].parse::<u64>() {
                Ok(id) => id,
                Err(_) => return (404, vec![], err_body("no such job")),
            };
            match method {
                "GET" => job_status_route(inner, id),
                "DELETE" => cancel_route(inner, id),
                _ => (405, vec![], err_body("method not allowed")),
            }
        }
        _ => (404, vec![], err_body("not found")),
    }
}

fn stats_json(inner: &Arc<Inner>) -> String {
    let snap = inner.service.snapshot();
    let (ni, nb) = {
        let lanes = inner.lanes.lock().unwrap();
        (lanes.interactive.len() as u64, lanes.batch.len() as u64)
    };
    JsonObj::new()
        .raw("service", &snap.to_json())
        .raw(
            "lanes",
            &JsonObj::new()
                .u64("interactive", ni)
                .u64("batch", nb)
                .finish(),
        )
        .raw("tenants", &inner.admission.tenants_json())
        .u64("uptime_s", inner.started.elapsed().as_secs())
        .bool("draining", inner.shutdown.load(Ordering::SeqCst))
        .finish()
}

/// A validated submission: tenant, priority, durable description, and the
/// non-durable payloads (resolved graph, verify bytes).
type Submission = (
    String,
    Priority,
    JobDesc,
    Option<Arc<Graph>>,
    Option<VerifyPayload>,
);

/// Parses an optional 32-byte hex digest field.
fn parse_digest_field(v: &Json, name: &str) -> Result<Option<[u8; 32]>, String> {
    match v.get(name) {
        None => Ok(None),
        Some(d) => {
            let h = d.as_str().ok_or(format!("{name} must be a hex string"))?;
            let bytes = decode_hex(h).map_err(|e| format!("{name}: {e}"))?;
            let digest: [u8; 32] = bytes
                .try_into()
                .map_err(|_| format!("{name} must be 32 bytes"))?;
            Ok(Some(digest))
        }
    }
}

/// Parses and validates a submission body into a job description.
fn parse_submission(body: &[u8]) -> Result<Submission, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let v = Json::parse(text).map_err(|e| format!("bad json: {e}"))?;

    let tenant = match v.get("tenant") {
        None => "anonymous".to_string(),
        Some(t) => {
            let t = t.as_str().ok_or("tenant must be a string")?;
            if t.is_empty() || t.len() > 64 || !t.chars().all(|c| c.is_ascii_graphic()) {
                return Err("tenant must be 1..=64 printable ascii chars".into());
            }
            t.to_string()
        }
    };
    let priority = match v.get("priority") {
        None => Priority::Interactive,
        Some(p) => p
            .as_str()
            .and_then(Priority::parse)
            .ok_or("priority must be \"interactive\" or \"batch\"")?,
    };
    let kind = match v.get("kind") {
        None => {
            // Infer: a segments field means a segmented prove.
            if v.get("segments").is_some() {
                "prove_segmented"
            } else {
                "prove"
            }
        }
        Some(k) => k.as_str().ok_or("kind must be a string")?,
    };

    match kind {
        "prove" | "prove_segmented" => {
            let model = v
                .get("model")
                .and_then(Json::as_str)
                .ok_or("prove jobs need a \"model\"")?
                .to_string();
            let graph = zkml_model::zoo::by_name(&model)
                .ok_or_else(|| format!("unknown model '{model}'"))?;
            let backend = match v.get("backend").and_then(Json::as_str) {
                None | Some("kzg") => Backend::Kzg,
                Some("ipa") => Backend::Ipa,
                Some(other) => return Err(format!("unknown backend '{other}'")),
            };
            let seed = match v.get("seed") {
                None => 1,
                Some(s) => s.as_u64().ok_or("seed must be a non-negative integer")?,
            };
            let segments = if kind == "prove_segmented" {
                Some(match v.get("segments") {
                    None => SegmentSpec::Auto,
                    Some(Json::Str(s)) if s == "auto" => SegmentSpec::Auto,
                    Some(n) => match n.as_u64() {
                        Some(n) if n >= 1 => SegmentSpec::Fixed(n as usize),
                        _ => return Err("segments must be \"auto\" or a count >= 1".into()),
                    },
                })
            } else {
                None
            };
            let model_digest = parse_digest_field(&v, "model_digest")?;
            if model_digest.is_some() && segments.is_some() {
                return Err("model_digest is not supported for segmented proves".into());
            }
            Ok((
                tenant,
                priority,
                JobDesc::Prove {
                    model,
                    backend,
                    seed,
                    segments,
                    model_digest,
                },
                Some(Arc::new(graph)),
                None,
            ))
        }
        "sleep" => {
            let ms = match v.get("sleep_ms") {
                None => 0,
                Some(s) => s
                    .as_u64()
                    .ok_or("sleep_ms must be a non-negative integer")?,
            };
            if ms > 60_000 {
                return Err("sleep_ms capped at 60000".into());
            }
            Ok((tenant, priority, JobDesc::Sleep { ms }, None, None))
        }
        "verify" => {
            let hex_field = |name: &str| -> Result<Vec<u8>, String> {
                match v.get(name).and_then(Json::as_str) {
                    Some(h) => decode_hex(h).map_err(|e| format!("{name}: {e}")),
                    None => Err(format!("verify jobs need \"{name}\"")),
                }
            };
            let model = parse_digest_field(&v, "model_digest")?;
            let commitment = match v.get("commitment_hex").and_then(Json::as_str) {
                Some(h) => decode_hex(h).map_err(|e| format!("commitment_hex: {e}"))?,
                None => Vec::new(),
            };
            let payload = if v.get("bundle_hex").is_some() {
                let bundle = hex_field("bundle_hex")?;
                VerifyPayload {
                    backend: Backend::Kzg, // the bundle carries its own
                    vk: Vec::new(),
                    public: Vec::new(),
                    proof: bundle,
                    model,
                    commitment,
                }
            } else {
                let proof = hex_field("proof_hex")?;
                let vk = hex_field("vk_hex")?;
                if vk.is_empty() {
                    return Err("vk_hex must not be empty".into());
                }
                let public_bytes = hex_field("public_hex")?;
                let (backend, public) =
                    decode_public(&public_bytes).map_err(|e| format!("public_hex: {e}"))?;
                VerifyPayload {
                    backend,
                    vk,
                    public,
                    proof,
                    model,
                    commitment,
                }
            };
            Ok((tenant, priority, JobDesc::Verify, None, Some(payload)))
        }
        other => Err(format!("unknown job kind '{other}'")),
    }
}

fn submit_route(inner: &Arc<Inner>, body: &[u8]) -> RouteResult {
    if inner.shutdown.load(Ordering::SeqCst) {
        return (503, vec![], err_body("server is draining"));
    }
    let (tenant, priority, desc, graph, verify_payload) = match parse_submission(body) {
        Ok(parts) => parts,
        Err(msg) => return (400, vec![], err_body(&msg)),
    };

    // Admission and enqueue under the lane lock, so the lane bound and the
    // tenant's slot accounting cannot race.
    let mut lanes = inner.lanes.lock().unwrap();
    if let Err(e) = inner.admission.admit(&tenant) {
        let secs = e.retry_after().as_secs_f64();
        let body = JsonObj::new()
            .str("error", &e.to_string())
            .f64("retry_after_s", secs)
            .finish();
        return (
            429,
            vec![("retry-after", format!("{}", secs.ceil().max(1.0) as u64))],
            body,
        );
    }
    let lane = lanes.lane_mut(priority);
    if lane.len() >= inner.lane_capacity {
        inner.admission.refund_lane_full(&tenant);
        let body = JsonObj::new()
            .str(
                "error",
                &format!("queue lane full ({} waiting)", inner.lane_capacity),
            )
            .f64("retry_after_s", 1.0)
            .finish();
        return (429, vec![("retry-after", "1".to_string())], body);
    }

    let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
    // Write-ahead: the submission is durable before the 202 goes out.
    if let Err(e) = inner.journal_append(&Record::Submitted {
        job: id,
        tenant: tenant.clone(),
        priority,
        desc: desc.clone(),
    }) {
        inner.admission.refund_lane_full(&tenant);
        return (500, vec![], err_body(&format!("journal write failed: {e}")));
    }
    let entry = JobEntry {
        tenant,
        priority,
        desc,
        state: JobState::Queued,
        cancel: CancelToken::new(),
        graph,
        verify_payload,
        artifacts: None,
        error: None,
        result_available: false,
    };
    inner.registry.lock().unwrap().insert(id, entry);
    lane.push_back(id);
    let body = JsonObj::new()
        .u64("job_id", id)
        .str("status", "queued")
        .finish();
    (202, vec![], body)
}

/// `POST /v1/models`: publishes a model's weight commitment. The job runs
/// synchronously through the service (bypassing the lanes — publication is
/// a one-time administrative action, not proving traffic) and the response
/// carries the digest that subsequent prove/verify submissions reference.
fn commit_model_route(inner: &Arc<Inner>, body: &[u8]) -> RouteResult {
    if inner.shutdown.load(Ordering::SeqCst) {
        return (503, vec![], err_body("server is draining"));
    }
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, vec![], err_body("body is not utf-8")),
    };
    let v = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, vec![], err_body(&format!("bad json: {e}"))),
    };
    let Some(model) = v.get("model").and_then(Json::as_str) else {
        return (400, vec![], err_body("commit-model needs a \"model\""));
    };
    let Some(graph) = zkml_model::zoo::by_name(model) else {
        return (400, vec![], err_body(&format!("unknown model '{model}'")));
    };
    let backend = match v.get("backend").and_then(Json::as_str) {
        None | Some("kzg") => Backend::Kzg,
        Some("ipa") => Backend::Ipa,
        Some(other) => return (400, vec![], err_body(&format!("unknown backend '{other}'"))),
    };
    let handle = match inner
        .service
        .submit(JobSpec::commit_model(Arc::new(graph), backend))
    {
        Ok(h) => h,
        Err(ServiceError::Busy { .. }) => {
            return (
                429,
                vec![("retry-after", "1".to_string())],
                err_body("service queue full"),
            )
        }
        Err(e) => return (500, vec![], err_body(&e.to_string())),
    };
    match handle.wait() {
        Ok(Some(a)) => {
            let digest = a.model_digest.map(|d| encode_hex(&d)).unwrap_or_default();
            let body = JsonObj::new()
                .str("model", model)
                .str("digest", &digest)
                .str("commitment_hex", &encode_hex(&a.weight_commitment))
                .u64("k", u64::from(a.k))
                .str("cache", &format!("{:?}", a.cache))
                .finish();
            (200, vec![], body)
        }
        Ok(None) => (500, vec![], err_body("commit-model returned no artifacts")),
        Err(ServiceError::CommitmentMismatch(msg)) => (422, vec![], err_body(&msg)),
        Err(e) => (500, vec![], err_body(&e.to_string())),
    }
}

/// `GET /v1/models`: the published model commitments, sorted by digest.
fn list_models_route(inner: &Arc<Inner>) -> RouteResult {
    let mut entries = inner.service.registry().list();
    entries.sort_by_key(|e| e.digest);
    let items: Vec<String> = entries
        .iter()
        .map(|e| {
            JsonObj::new()
                .str("digest", &encode_hex(&e.digest))
                .str("model", &e.model)
                .str("backend", &format!("{:?}", e.backend).to_lowercase())
                .u64("k", u64::from(e.k))
                .finish()
        })
        .collect();
    let body = JsonObj::new()
        .u64("count", items.len() as u64)
        .raw("models", &format!("[{}]", items.join(",")))
        .finish();
    (200, vec![], body)
}

fn job_status_route(inner: &Arc<Inner>, id: u64) -> RouteResult {
    let registry = inner.registry.lock().unwrap();
    let Some(entry) = registry.get(&id) else {
        return (404, vec![], err_body("no such job"));
    };
    let mut obj = JsonObj::new()
        .u64("job_id", id)
        .str("tenant", &entry.tenant)
        .str("priority", entry.priority.as_str())
        .str("kind", entry.desc.kind())
        .str("status", entry.state.as_str())
        .bool("result_available", entry.result_available);
    if let JobDesc::Prove { model, .. } = &entry.desc {
        obj = obj.str("model", model);
    }
    obj = match &entry.error {
        Some(e) => obj.str("error", e),
        None => obj.null("error"),
    };
    if entry.state == JobState::Completed && entry.result_available {
        if let Some(a) = &entry.artifacts {
            obj = obj
                .u64("k", u64::from(a.k))
                .u64("segments", u64::from(a.segments))
                .u64("prove_ms", a.prove_ms)
                .str("cache", &format!("{:?}", a.cache))
                .bool("bundle", a.bundle.is_some())
                .str("proof_hex", &encode_hex(&a.proof))
                .str("vk_hex", &encode_hex(&a.vk_bytes))
                .str(
                    "public_hex",
                    &encode_hex(&encode_public(a.backend, &a.public)),
                );
            if !a.weight_commitment.is_empty() {
                obj = obj.str("commitment_hex", &encode_hex(&a.weight_commitment));
            }
            if let Some(d) = &a.model_digest {
                obj = obj.str("model_digest", &encode_hex(d));
            }
        }
    }
    (200, vec![], obj.finish())
}

fn cancel_route(inner: &Arc<Inner>, id: u64) -> RouteResult {
    // Lock order everywhere: lanes, then registry.
    let mut lanes = inner.lanes.lock().unwrap();
    let mut registry = inner.registry.lock().unwrap();
    let Some(entry) = registry.get_mut(&id) else {
        return (404, vec![], err_body("no such job"));
    };
    if entry.state.terminal() {
        let body = JsonObj::new()
            .u64("job_id", id)
            .str("status", entry.state.as_str())
            .str("error", "job already terminal")
            .finish();
        return (409, vec![], body);
    }
    entry.cancel.cancel();
    if entry.state == JobState::Queued {
        let lane = lanes.lane_mut(entry.priority);
        if let Some(pos) = lane.iter().position(|&j| j == id) {
            // Still in its lane: cancel synchronously.
            lane.remove(pos);
            entry.state = JobState::Cancelled;
            inner.journal_note(&Record::Cancelled { job: id });
            inner
                .admission
                .release(&entry.tenant, ReleaseOutcome::Cancelled);
            let body = JsonObj::new()
                .u64("job_id", id)
                .str("status", "cancelled")
                .finish();
            return (200, vec![], body);
        }
        // Popped by the dispatcher already; the token will stop it at the
        // next stage boundary and the dispatcher writes the terminal state.
    }
    let body = JsonObj::new()
        .u64("job_id", id)
        .str("status", "cancelling")
        .finish();
    (202, vec![], body)
}

/// Picks the next job id by weighted round-robin over the two lanes: the
/// repeating pattern serves `interactive_weight` interactive slots then
/// `batch_weight` batch slots; an empty primary lane yields its slot to the
/// other, so neither lane can starve while work is waiting.
fn pop_weighted(inner: &Inner, cursor: &mut usize) -> Option<u64> {
    let mut lanes = inner.lanes.lock().unwrap();
    let period = inner.interactive_weight + inner.batch_weight;
    let interactive_first = (*cursor % period) < inner.interactive_weight;
    let id = if interactive_first {
        lanes
            .interactive
            .pop_front()
            .or_else(|| lanes.batch.pop_front())
    } else {
        lanes
            .batch
            .pop_front()
            .or_else(|| lanes.interactive.pop_front())
    };
    if id.is_some() {
        *cursor += 1;
    }
    id
}

/// What the dispatcher needs to hand a job to the service.
struct DispatchInfo {
    tenant: String,
    spec: JobSpec,
    joins_batch_verify: bool,
}

/// What to do with a job popped from a lane.
enum Dispatch {
    /// Hand it to the service.
    Ready(Box<DispatchInfo>),
    /// Already handled elsewhere (e.g. cancelled and finalized); drop it.
    Skip,
    /// Finalize it with this outcome instead of running it.
    Abort(String, Box<Outcome>),
}

fn build_dispatch(inner: &Inner, id: u64) -> Dispatch {
    let registry = inner.registry.lock().unwrap();
    let Some(entry) = registry.get(&id) else {
        return Dispatch::Skip; // cancelled and removed concurrently
    };
    if entry.state != JobState::Queued {
        return Dispatch::Skip;
    }
    let tenant = entry.tenant.clone();
    if entry.cancel.is_cancelled() {
        return Dispatch::Abort(tenant, Box::new(Outcome::Cancelled));
    }
    let mut joins_batch_verify = false;
    let kind = match &entry.desc {
        JobDesc::Prove {
            backend,
            seed,
            segments,
            model_digest,
            ..
        } => {
            let graph = match &entry.graph {
                Some(g) => Arc::clone(g),
                None => {
                    return Dispatch::Abort(
                        tenant,
                        Box::new(Outcome::Failed(
                            "job lost its resolved model graph".to_string(),
                        )),
                    )
                }
            };
            match segments {
                Some(spec) => JobKind::ProveSegmented {
                    graph,
                    backend: *backend,
                    seed: *seed,
                    segments: *spec,
                },
                None => {
                    joins_batch_verify = inner.verify_after_prove;
                    JobKind::Prove {
                        graph,
                        backend: *backend,
                        seed: *seed,
                        model: *model_digest,
                    }
                }
            }
        }
        JobDesc::Sleep { ms } => JobKind::Sleep(Duration::from_millis(*ms)),
        JobDesc::Verify => match &entry.verify_payload {
            Some(p) => JobKind::Verify {
                backend: p.backend,
                vk: p.vk.clone(),
                public: p.public.clone(),
                proof: p.proof.clone(),
                model: p.model,
                weight_commitment: p.commitment.clone(),
            },
            None => {
                return Dispatch::Abort(
                    tenant,
                    Box::new(Outcome::Failed("verify job payload missing".to_string())),
                )
            }
        },
    };
    let spec = JobSpec::new(kind).with_cancel(entry.cancel.clone());
    Dispatch::Ready(Box::new(DispatchInfo {
        tenant,
        spec,
        joins_batch_verify,
    }))
}

/// Applies a terminal outcome: registry state, journal record, tenant slot.
fn finish(inner: &Inner, id: u64, tenant: &str, outcome: Outcome) {
    let mut registry = inner.registry.lock().unwrap();
    let Some(entry) = registry.get_mut(&id) else {
        return;
    };
    if entry.state.terminal() {
        return; // exactly-once: ignore late duplicates
    }
    match outcome {
        Outcome::Completed(artifacts) => {
            entry.state = JobState::Completed;
            entry.result_available = true;
            if let Some(a) = artifacts {
                entry.artifacts = Some(*a);
            }
            let (k, segments, prove_ms) = entry
                .artifacts
                .as_ref()
                .map(|a| (a.k, a.segments, a.prove_ms))
                .unwrap_or((0, 0, 0));
            inner.journal_note(&Record::Completed {
                job: id,
                k,
                segments,
                prove_ms,
            });
            inner.admission.release(tenant, ReleaseOutcome::Completed);
        }
        Outcome::Failed(error) => {
            entry.state = JobState::Failed;
            entry.error = Some(error.clone());
            inner.journal_note(&Record::Failed { job: id, error });
            inner.admission.release(tenant, ReleaseOutcome::Failed);
        }
        Outcome::Cancelled => {
            entry.state = JobState::Cancelled;
            inner.journal_note(&Record::Cancelled { job: id });
            inner.admission.release(tenant, ReleaseOutcome::Cancelled);
        }
    }
}

fn dispatcher_loop(inner: Arc<Inner>) {
    // (gateway id, tenant, handle, joins batch verify)
    let mut inflight: Vec<(u64, String, JobHandle, bool)> = Vec::new();
    // service job id -> gateway job id, for joining batch-verify outcomes.
    let mut awaiting_verify: HashMap<u64, u64> = HashMap::new();
    let mut cursor = 0usize;
    loop {
        let draining = inner.shutdown.load(Ordering::SeqCst);

        // 1. Feed the service from the lanes (weighted round-robin) until
        //    it pushes back.
        while let Some(id) = pop_weighted(&inner, &mut cursor) {
            let info = match build_dispatch(&inner, id) {
                Dispatch::Ready(info) => info,
                Dispatch::Skip => continue,
                Dispatch::Abort(tenant, outcome) => {
                    finish(&inner, id, &tenant, *outcome);
                    continue;
                }
            };
            match inner.service.submit(info.spec) {
                Ok(handle) => {
                    // `started` is journaled only once the service actually
                    // holds the job. A crash in the gap between accept and
                    // append replays the job as queued and re-runs it; once
                    // the record lands, a crash deterministically fails it.
                    inner.journal_note(&Record::Started { job: id });
                    if let Some(entry) = inner.registry.lock().unwrap().get_mut(&id) {
                        entry.state = JobState::Running;
                    }
                    inflight.push((id, info.tenant, handle, info.joins_batch_verify));
                }
                Err(ServiceError::Busy { .. }) => {
                    // Backpressure from the bounded queue: put the job back
                    // at the front of its lane and stop feeding this round.
                    // The cursor rewinds so the weighted pattern counts
                    // dispatches, not attempts.
                    cursor -= 1;
                    let mut lanes = inner.lanes.lock().unwrap();
                    let registry = inner.registry.lock().unwrap();
                    if let Some(entry) = registry.get(&id) {
                        lanes.lane_mut(entry.priority).push_front(id);
                    }
                    break;
                }
                Err(e) => {
                    finish(&inner, id, &info.tenant, Outcome::Failed(e.to_string()));
                }
            }
        }

        // 2. Poll in-flight jobs without blocking long.
        let mut still = Vec::new();
        for (id, tenant, handle, joins) in inflight {
            match handle.wait_timeout(Duration::from_millis(1)) {
                None => still.push((id, tenant, handle, joins)),
                Some(Ok(Some(artifacts))) => {
                    if joins {
                        // Completed but unverified: hold at Running until
                        // the batched verifier rules.
                        awaiting_verify.insert(artifacts.job_id, id);
                        if let Some(entry) = inner.registry.lock().unwrap().get_mut(&id) {
                            entry.artifacts = Some(artifacts);
                        }
                    } else {
                        finish(
                            &inner,
                            id,
                            &tenant,
                            Outcome::Completed(Some(Box::new(artifacts))),
                        );
                    }
                }
                Some(Ok(None)) => finish(&inner, id, &tenant, Outcome::Completed(None)),
                Some(Err(ServiceError::Cancelled)) => {
                    finish(&inner, id, &tenant, Outcome::Cancelled)
                }
                Some(Err(e)) => finish(&inner, id, &tenant, Outcome::Failed(e.to_string())),
            }
        }
        inflight = still;

        // 3. Settle batched verification. A job's `completed` record is
        //    written only after its proof actually verified.
        if inner.verify_after_prove {
            let pending = inner.service.pending_verifications();
            if pending >= inner.verify_batch || (pending > 0 && inflight.is_empty()) {
                let report = inner.service.flush_verifications();
                for outcome in &report.outcomes {
                    let Some(gid) = awaiting_verify.remove(&outcome.job_id) else {
                        continue;
                    };
                    let tenant = inner
                        .registry
                        .lock()
                        .unwrap()
                        .get(&gid)
                        .map(|e| e.tenant.clone())
                        .unwrap_or_default();
                    if outcome.ok {
                        finish(&inner, gid, &tenant, Outcome::Completed(None));
                    } else {
                        let msg = outcome
                            .error
                            .clone()
                            .unwrap_or_else(|| "proof rejected".to_string());
                        finish(
                            &inner,
                            gid,
                            &tenant,
                            Outcome::Failed(format!("proof failed verification: {msg}")),
                        );
                    }
                }
            }
        }

        // 4. Drain-and-exit on shutdown.
        if draining && inflight.is_empty() && awaiting_verify.is_empty() {
            let lanes_empty = {
                let lanes = inner.lanes.lock().unwrap();
                lanes.interactive.is_empty() && lanes.batch.is_empty()
            };
            if lanes_empty && inner.service.pending_verifications() == 0 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}
