//! A tiny blocking HTTP/1.1 client for the CLI (`zkml submit --http`,
//! `zkml status --http`) and the benches. One request per connection,
//! mirroring the server's connection-close policy.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A decoded HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body as text (the API always answers JSON).
    pub body: String,
}

impl HttpResponse {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one HTTP request against `addr` (a `host:port` string). A JSON
/// body may be supplied for POST.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(30))))
        .map_err(|e| format!("socket timeout: {e}"))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response missing header terminator")?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| "non-utf8 response headers")?;
    let body_bytes = &raw[split + 4..];
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    // connection: close — the body is everything up to EOF, but honor
    // content-length when present (defensive against trailing bytes).
    let body = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(n) if n <= body_bytes.len() => &body_bytes[..n],
        _ => body_bytes,
    };
    Ok(HttpResponse {
        status,
        headers,
        body: String::from_utf8_lossy(body).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response() {
        let r = parse_response(
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nContent-Length: 7\r\n\r\n{\"e\":1}",
        )
        .unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("2"));
        assert_eq!(r.body, "{\"e\":1}");
    }
}
