//! Hand-rolled minimal HTTP/1.1, server side: just enough of RFC 9112 for
//! the JSON API — request-line + headers + `Content-Length` bodies, no
//! chunked transfer, no keep-alive (every response closes the connection).
//! Staying std-only is a workspace ground rule; the subset here is what the
//! CLI client and `curl` both speak.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body (verify jobs carry hex-encoded bundles).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path component only; any query string is stripped.
    pub path: String,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps to a 4xx.
#[derive(Debug)]
pub enum ParseError {
    /// Connection closed before a full request arrived.
    ConnectionClosed,
    /// Malformed request line or headers.
    Bad(String),
    /// Body longer than [`MAX_BODY_BYTES`].
    TooLarge,
    /// Socket error while reading.
    Io(std::io::Error),
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read the header block up to the blank line.
    loop {
        let mut line = Vec::new();
        reader
            .read_until(b'\n', &mut line)
            .map_err(ParseError::Io)?;
        if line.is_empty() {
            return Err(ParseError::ConnectionClosed);
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEADER_BYTES {
            return Err(ParseError::Bad("header block too large".into()));
        }
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    let head = String::from_utf8(head).map_err(|_| ParseError::Bad("non-utf8 headers".into()))?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(ParseError::ConnectionClosed)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("bad header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| ParseError::Bad("bad content-length".into()))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ParseError::Io)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The reason phrase for the handful of status codes the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes. `extra` headers are emitted
/// verbatim (used for `Retry-After`).
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    extra: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra {
        out.push_str(k);
        out.push_str(": ");
        out.push_str(v);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    stream.write_all(out.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip(b"POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(roundtrip(b""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(
            roundtrip(b"GET /x SPDY/3\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            roundtrip(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            roundtrip(
                format!(
                    "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes()
            ),
            Err(ParseError::TooLarge)
        ));
    }
}
