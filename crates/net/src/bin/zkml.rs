//! The ZKML command-line interface (§8 of the paper): optimize, prove, and
//! verify model inferences — plus a proving-service front-end.
//!
//! ```text
//! zkml models
//! zkml optimize mnist --backend kzg
//! zkml prove mnist --dir /tmp/mnist-proof [--backend kzg] [--seed 7]
//! zkml verify --dir /tmp/mnist-proof
//! zkml serve --http 127.0.0.1:9944 [--journal J] [--tenant-limit T:R:B:Q]
//! zkml submit mnist --http 127.0.0.1:9944 [--tenant T] [--wait] [--dir D]
//! zkml status --http 127.0.0.1:9944 --id 3 [--dir D]
//! zkml cancel --http 127.0.0.1:9944 --id 3
//! zkml serve --spool /tmp/zkml-spool [--workers 2] [--once] [--cache-dir D]
//! zkml submit mnist --spool /tmp/zkml-spool [--seed 7] [--wait]
//! ```
//!
//! The primary serving surface is HTTP (`serve --http`): a std-only
//! HTTP/1.1 gateway with a durable job journal, per-tenant admission, and
//! priority lanes (see `zkml-net`). Rejections for backpressure map to
//! HTTP 429 on the wire and exit code 3 in the client.
//!
//! `serve --spool`/`submit --spool` speak the legacy spool-directory
//! protocol: `submit` drops a `<job>.req` file (atomic rename), `serve`
//! picks it up, proves through the `zkml-service` worker pool, and writes
//! `<job>.out/` with the proof artifacts and a `status` file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use zkml::{optimizer, OptimizerOptions};
use zkml_ff::PrimeField;
use zkml_model::Graph;
use zkml_net::{
    decode_hex, encode_hex, http_request, AdmissionConfig, Gateway, GatewayConfig, Json, JsonObj,
    TenantPolicy,
};
use zkml_pcs::{Backend, Params};
use zkml_plonk::{verify_proof_committed, VerifyingKey, WeightCommitment};
use zkml_service::{
    decode_public, encode_public, write_proof_dir, BatchOutcome, BatchReport, JobHandle, JobSpec,
    ProvingService, ServiceConfig, SRS_SEED,
};
use zkml_shard::{FreshKeySource, KeySource, SegmentSpec, SegmentedProof};
use zkml_tensor::{FixedPoint, Tensor};

/// A CLI failure: a usage error (exit 2), a runtime error (exit 1), a
/// retryable backpressure rejection — rate limit, quota, queue full —
/// (exit 3, so scripts can distinguish "try again later" from "broken"),
/// or a model-commitment mismatch (exit 4: the proof, weights, or digest
/// don't match the published commitment — retrying won't help, but it is
/// a distinct failure from a malformed proof).
enum CliError {
    Usage,
    Msg(String),
    Backoff(String),
    Commitment(String),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Msg(s)
    }
}

fn parse_backend(args: &[String]) -> Backend {
    match flag_value(args, "--backend").as_deref() {
        Some("ipa") => Backend::Ipa,
        _ => Backend::Kzg,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// All values of a repeatable flag (e.g. `--tenant-limit A:.. --tenant-limit B:..`).
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--segments N|auto`: `None` means monolithic proving.
fn parse_segments(args: &[String]) -> Result<Option<SegmentSpec>, CliError> {
    match flag_value(args, "--segments").as_deref() {
        None => Ok(None),
        Some("auto") => Ok(Some(SegmentSpec::Auto)),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(SegmentSpec::Fixed(n))),
            _ => Err(CliError::Msg(format!(
                "invalid value '{v}' for --segments (expected a count >= 1 or 'auto')"
            ))),
        },
    }
}

/// Parses `--model <digest>`: the 64-hex-char digest of a published model
/// commitment that proving/verification must match exactly.
fn parse_model_digest(args: &[String]) -> Result<Option<[u8; 32]>, CliError> {
    match flag_value(args, "--model") {
        None => Ok(None),
        Some(h) => {
            let bytes =
                decode_hex(&h).map_err(|e| CliError::Msg(format!("bad --model digest: {e}")))?;
            let digest: [u8; 32] = bytes
                .try_into()
                .map_err(|_| CliError::Msg("--model digest must be 32 bytes of hex".to_string()))?;
            Ok(Some(digest))
        }
    }
}

fn parsed_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Msg(format!("invalid value '{v}' for {flag}"))),
    }
}

fn usage() -> &'static str {
    "usage:\n  zkml models\n  zkml export <model> --file <path.zkml>\n  \
     zkml optimize <model|path.zkml> [--backend kzg|ipa] [--max-k K]\n  \
     zkml commit-model <model|path.zkml> --dir <commit-dir> [--backend kzg|ipa] [--max-k K]\n  \
     zkml commit-model <model> --http <addr> [--backend kzg|ipa] [--dir <commit-dir>]\n  \
     zkml prove <model|path.zkml> --dir <out-dir> [--backend kzg|ipa] [--seed N]\n             \
     [--segments N|auto] [--max-k K] [--model <digest>]\n  \
     zkml verify --dir <dir> [--model <digest>]\n  \
     zkml serve --http <addr> [--workers N] [--queue N] [--cache-dir <dir>]\n             \
     [--journal <file>] [--port-file <file>] [--handlers N] [--lane-cap N]\n             \
     [--rate R] [--burst B] [--quota Q] [--tenant-limit NAME:RATE:BURST:QUOTA]...\n             \
     [--deadline-s S] [--verify-batch N] [--no-verify]\n  \
     zkml submit <model> --http <addr> [--tenant T] [--priority interactive|batch]\n             \
     [--backend kzg|ipa] [--seed N] [--segments N|auto] [--model <digest>]\n             \
     [--wait] [--timeout-s S] [--dir <out-dir>]\n  \
     zkml status --http <addr> --id <job> [--dir <out-dir>]\n  \
     zkml cancel --http <addr> --id <job>\n  \
     zkml serve --spool <dir> [--workers N] [--queue N] [--cache-dir <dir>]   (legacy)\n             \
     [--once] [--poll-ms M] [--deadline-s S] [--verify-batch N] [--no-verify]\n  \
     zkml submit <model> --spool <dir> [--backend kzg|ipa] [--seed N]         (legacy)\n             \
     [--segments N|auto] [--wait] [--timeout-s S]"
}

/// Resolves a model argument: a zoo name or a `.zkml` model file.
fn resolve_model(arg: &str) -> Result<Graph, CliError> {
    if arg.ends_with(".zkml") || Path::new(arg).exists() {
        let bytes =
            std::fs::read(arg).map_err(|e| CliError::Msg(format!("read model {arg}: {e}")))?;
        return Graph::from_bytes(&bytes)
            .map_err(|e| CliError::Msg(format!("parse model {arg}: {e}")));
    }
    zkml_model::zoo::by_name(arg)
        .ok_or_else(|| CliError::Msg(format!("unknown model '{arg}' (try `zkml models`)")))
}

/// Restores default SIGPIPE handling so `zkml models | head` terminates
/// quietly instead of panicking on a broken pipe (Rust ignores SIGPIPE by
/// default, turning it into an io::Error that println! panics on).
#[cfg(unix)]
fn reset_sigpipe() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() -> ExitCode {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage) => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
        Err(CliError::Msg(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Backoff(msg)) => {
            eprintln!("rejected (retry later): {msg}");
            ExitCode::from(3)
        }
        Err(CliError::Commitment(msg)) => {
            eprintln!("commitment mismatch: {msg}");
            ExitCode::from(4)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("models") => {
            println!("{:<12} {:>10} {:>12}", "model", "params", "flops");
            for g in zkml_model::zoo::all_models() {
                let s = zkml_model::stats(&g);
                println!(
                    "{:<12} {:>10} {:>12}",
                    g.name,
                    zkml_model::stats::human(s.params),
                    zkml_model::stats::human(s.flops)
                );
            }
            Ok(())
        }
        Some("export") => {
            let name = args.get(1).ok_or(CliError::Usage)?;
            let g = resolve_model(name)?;
            let file = flag_value(args, "--file").ok_or(CliError::Usage)?;
            std::fs::write(&file, g.to_bytes())
                .map_err(|e| CliError::Msg(format!("write {file}: {e}")))?;
            println!("wrote {} ({} nodes) to {file}", g.name, g.nodes.len());
            Ok(())
        }
        Some("optimize") => {
            let name = args.get(1).ok_or(CliError::Usage)?;
            let g = resolve_model(name)?;
            let backend = parse_backend(args);
            let max_k: u32 = parsed_flag(args, "--max-k", 15)?;
            let hw = zkml::cost::HardwareStats::cached();
            let opts = OptimizerOptions::new(backend, max_k);
            let report = optimizer::optimize(&g, &optimizer::zero_inputs(&g), &opts, hw)
                .map_err(|e| CliError::Msg(format!("optimize {}: {e}", g.name)))?;
            println!(
                "{} ({backend}): {} layouts evaluated ({} pruned) in {:?}",
                g.name, report.evaluated, report.pruned, report.elapsed
            );
            println!(
                "best: 2^{} rows x {} columns, {:?}",
                report.best_k, report.best.num_cols, report.best.choices
            );
            println!(
                "estimated proving {:.2}s (fft {:.2}s, msm {:.2}s, lookup {:.2}s), proof ~{} B",
                report.best_cost.proving_s,
                report.best_cost.fft_s,
                report.best_cost.msm_s,
                report.best_cost.lookup_s,
                report.best_cost.proof_bytes
            );
            Ok(())
        }
        Some("commit-model") if has_flag(args, "--http") => commit_model_http_flow(args),
        Some("commit-model") => {
            let name = args.get(1).ok_or(CliError::Usage)?;
            let g = resolve_model(name)?;
            let dir = flag_value(args, "--dir").ok_or(CliError::Usage)?;
            let backend = parse_backend(args);
            let max_k: u32 = parsed_flag(args, "--max-k", 15)?;
            commit_model_flow(&g, backend, max_k, Path::new(&dir))
        }
        Some("prove") => {
            let name = args.get(1).ok_or(CliError::Usage)?;
            let g = resolve_model(name)?;
            let dir = flag_value(args, "--dir").ok_or(CliError::Usage)?;
            let backend = parse_backend(args);
            let seed: u64 = parsed_flag(args, "--seed", 1)?;
            let max_k: u32 = parsed_flag(args, "--max-k", 15)?;
            let model = parse_model_digest(args)?;
            match parse_segments(args)? {
                Some(spec) => {
                    if model.is_some() {
                        return Err(CliError::Msg(
                            "--model is not supported for segmented proves".to_string(),
                        ));
                    }
                    prove_segmented_flow(&g, backend, seed, max_k, spec, Path::new(&dir))
                }
                None => prove_flow(&g, backend, seed, max_k, Path::new(&dir), model),
            }
        }
        Some("verify") => {
            let dir = flag_value(args, "--dir").ok_or(CliError::Usage)?;
            let model = parse_model_digest(args)?;
            verify_flow(Path::new(&dir), model)
        }
        Some("serve") if has_flag(args, "--http") => serve_http_flow(args),
        Some("serve") => serve_flow(args),
        Some("submit") if has_flag(args, "--http") => submit_http_flow(args),
        Some("submit") => submit_flow(args),
        Some("status") => status_http_flow(args),
        Some("cancel") => cancel_http_flow(args),
        _ => Err(CliError::Usage),
    }
}

/// Deterministic quantized inputs for the standalone prove flows.
fn cli_inputs(g: &Graph, scale_bits: u32, seed: u64) -> Vec<Tensor<i64>> {
    let fp = FixedPoint::new(scale_bits);
    let mut rng = StdRng::seed_from_u64(seed);
    g.inputs
        .iter()
        .map(|id| {
            let shape = g.shape(*id).to_vec();
            let n: usize = shape.iter().product();
            Tensor::new(
                shape,
                (0..n)
                    .map(|_| fp.quantize(rng.gen_range(-1.0..1.0)))
                    .collect(),
            )
        })
        .collect()
}

/// Standalone commit-model: compile once, commit the weight columns, and
/// write the serialized commitment as `<digest>.wc` into `--dir`. The
/// printed digest is what `prove --model` / `verify --model` match against.
fn commit_model_flow(g: &Graph, backend: Backend, max_k: u32, dir: &Path) -> Result<(), CliError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::Msg(format!("create {}: {e}", dir.display())))?;
    let hw = zkml::cost::HardwareStats::cached();
    let opts = OptimizerOptions::new(backend, max_k);
    // Circuit layouts depend only on the architecture, not on input values,
    // so the commitment is valid for proofs over any input seed.
    let inputs = cli_inputs(g, opts.numeric.scale_bits, 0);
    let report = optimizer::optimize(g, &inputs, &opts, hw)
        .map_err(|e| CliError::Msg(format!("optimize {}: {e}", g.name)))?;
    let compiled = report
        .synthesize_best()
        .map_err(|e| CliError::Msg(format!("compile {}: {e}", g.name)))?;
    if !compiled.has_committed() {
        return Err(CliError::Msg(format!(
            "model {} has no weight columns to commit",
            g.name
        )));
    }
    let mut srs_rng = StdRng::seed_from_u64(SRS_SEED);
    let params = Params::setup(backend, compiled.k, &mut srs_rng);
    let t = Instant::now();
    let (wc, _) = compiled
        .commit_weights(&params)
        .map_err(|e| CliError::Msg(format!("commit weights: {e}")))?;
    let digest = encode_hex(&wc.digest);
    let file = dir.join(format!("{digest}.wc"));
    std::fs::write(&file, wc.to_bytes())
        .map_err(|e| CliError::Msg(format!("write {}: {e}", file.display())))?;
    println!(
        "committed {} weight column(s) of {} in {:?} (k={})",
        wc.commitments.len(),
        g.name,
        t.elapsed(),
        compiled.k
    );
    println!("model digest: {digest}");
    println!("wrote {}", file.display());
    Ok(())
}

fn prove_flow(
    g: &Graph,
    backend: Backend,
    seed: u64,
    max_k: u32,
    dir: &Path,
    model: Option<[u8; 32]>,
) -> Result<(), CliError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::Msg(format!("create {}: {e}", dir.display())))?;
    let hw = zkml::cost::HardwareStats::cached();
    let opts = OptimizerOptions::new(backend, max_k);
    let inputs = cli_inputs(g, opts.numeric.scale_bits, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let report = optimizer::optimize(g, &inputs, &opts, hw)
        .map_err(|e| CliError::Msg(format!("optimize {}: {e}", g.name)))?;
    println!(
        "optimizer chose 2^{} x {} cols in {:?}",
        report.best_k, report.best.num_cols, report.elapsed
    );

    let t = Instant::now();
    let compiled = report
        .synthesize_best()
        .map_err(|e| CliError::Msg(format!("compile {}: {e}", g.name)))?;
    println!(
        "compiled in {:?} (rows {})",
        t.elapsed(),
        compiled.stats.rows
    );
    if model.is_some() && !compiled.has_committed() {
        return Err(CliError::Commitment(format!(
            "--model given but {} has no committed weight columns",
            g.name
        )));
    }
    let mut srs_rng = StdRng::seed_from_u64(SRS_SEED);
    let params = Params::setup(backend, compiled.k, &mut srs_rng);
    let pk = compiled
        .keygen(&params)
        .map_err(|e| CliError::Msg(format!("keygen: {e}")))?;
    let t = Instant::now();
    // Committed-weight circuits: commit once, check the digest against a
    // published one when `--model` names it, and prove under the committed
    // encodings. The commitment rides along as `commitment.bin` — a
    // committed proof is unverifiable without it.
    let mut commitment: Option<WeightCommitment> = None;
    let proof = if compiled.has_committed() {
        let (wc, weights) = compiled
            .commit_weights(&params)
            .map_err(|e| CliError::Msg(format!("commit weights: {e}")))?;
        if let Some(expected) = model {
            if wc.digest != expected {
                return Err(CliError::Commitment(format!(
                    "weights of {} hash to {}, not the published {}",
                    g.name,
                    encode_hex(&wc.digest),
                    encode_hex(&expected)
                )));
            }
            println!(
                "weights match published model digest {}",
                encode_hex(&expected)
            );
        }
        let proof = compiled
            .prove_with_weights(&params, &pk, &mut rng, &[], &weights)
            .map_err(|e| CliError::Msg(format!("prove: {e}")))?;
        commitment = Some(wc);
        proof
    } else {
        compiled
            .prove(&params, &pk, &mut rng)
            .map_err(|e| CliError::Msg(format!("prove: {e}")))?
    };
    println!("proved in {:?} ({} bytes)", t.elapsed(), proof.len());

    let write = |name: &str, bytes: &[u8]| -> Result<(), CliError> {
        std::fs::write(dir.join(name), bytes)
            .map_err(|e| CliError::Msg(format!("write {name}: {e}")))
    };
    write("proof.bin", &proof)?;
    write("vk.bin", &pk.vk.to_bytes())?;
    if let Some(wc) = &commitment {
        write("commitment.bin", &wc.to_bytes())?;
    }
    let public = compiled
        .instance()
        .first()
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    write("public.bin", &encode_public(backend, public))?;
    println!(
        "wrote proof.bin, vk.bin{}, public.bin to {}",
        if commitment.is_some() {
            ", commitment.bin"
        } else {
            ""
        },
        dir.display()
    );
    Ok(())
}

/// Standalone segmented proving: cut at tensor boundaries, prove every
/// segment concurrently, write one `bundle.bin`. Fully deterministic — the
/// SRS comes from the fixed seed and the proof randomness only from
/// `--seed` — so repeated runs (at any thread count) emit identical
/// bundles.
fn prove_segmented_flow(
    g: &Graph,
    backend: Backend,
    seed: u64,
    max_k: u32,
    spec: SegmentSpec,
    dir: &Path,
) -> Result<(), CliError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::Msg(format!("create {}: {e}", dir.display())))?;
    let hw = zkml::cost::HardwareStats::cached();
    let opts = OptimizerOptions::new(backend, max_k);
    let inputs = cli_inputs(g, opts.numeric.scale_bits, seed);

    let t = Instant::now();
    let sched = zkml::layers::lower_graph(g, &inputs, opts.numeric);
    let segments = zkml_shard::compile_segments(&sched, spec, &opts, hw)
        .map_err(|e| CliError::Msg(format!("segment {}: {e}", g.name)))?;
    let ks: Vec<u32> = segments.iter().map(|s| s.compiled.k).collect();
    println!(
        "cut into {} segment(s) with k = {ks:?} in {:?}",
        segments.len(),
        t.elapsed()
    );

    let keys = FreshKeySource::default();
    let t = Instant::now();
    let bundle = zkml_shard::prove_compiled(g.content_hash(), &segments, &keys, &opts, seed)
        .map_err(|e| CliError::Msg(format!("prove: {e}")))?;
    let bytes = bundle.to_bytes();
    println!(
        "proved {} segment(s) in {:?} ({} byte bundle)",
        bundle.segments.len(),
        t.elapsed(),
        bytes.len()
    );

    let write = |name: &str, bytes: &[u8]| -> Result<(), CliError> {
        std::fs::write(dir.join(name), bytes)
            .map_err(|e| CliError::Msg(format!("write {name}: {e}")))
    };
    write("bundle.bin", &bytes)?;
    write(
        "public.bin",
        &encode_public(backend, bundle.public_outputs()),
    )?;
    println!("wrote bundle.bin, public.bin to {}", dir.display());
    Ok(())
}

fn verify_flow(dir: &Path, model: Option<[u8; 32]>) -> Result<(), CliError> {
    let load = |name: &str| -> Result<Vec<u8>, CliError> {
        std::fs::read(PathBuf::from(dir).join(name))
            .map_err(|e| CliError::Msg(format!("read {name}: {e}")))
    };
    // A proof directory holds either a segmented bundle or a monolithic
    // proof triple; the bundle carries its own per-segment verifying keys.
    if dir.join("bundle.bin").exists() {
        if model.is_some() {
            return Err(CliError::Msg(
                "--model is not supported for segmented bundles".to_string(),
            ));
        }
        return verify_bundle_flow(&load("bundle.bin")?);
    }
    let vk = VerifyingKey::from_bytes(&load("vk.bin")?)
        .map_err(|e| CliError::Msg(format!("parse vk.bin: {e}")))?;
    let (backend, instance) = decode_public(&load("public.bin")?)
        .map_err(|e| CliError::Msg(format!("parse public.bin: {e}")))?;
    let proof = load("proof.bin")?;
    // Committed-weight proofs carry the weight commitment they claim to be
    // proved under; verification binds the proof to exactly that commitment
    // (and, with `--model`, to exactly the published digest).
    let commitment = if dir.join("commitment.bin").exists() {
        Some(
            WeightCommitment::from_bytes(&load("commitment.bin")?)
                .map_err(|e| CliError::Msg(format!("parse commitment.bin: {e}")))?,
        )
    } else {
        None
    };
    if vk.cs.num_committed > 0 && commitment.is_none() {
        return Err(CliError::Commitment(
            "proof is for a committed-weight circuit but the directory has no commitment.bin"
                .to_string(),
        ));
    }
    if let Some(expected) = model {
        match &commitment {
            None => {
                return Err(CliError::Commitment(
                    "--model given but the proof carries no weight commitment".to_string(),
                ))
            }
            Some(wc) if wc.digest != expected => {
                return Err(CliError::Commitment(format!(
                    "proof carries commitment {}, not the published {}",
                    encode_hex(&wc.digest),
                    encode_hex(&expected)
                )));
            }
            Some(_) => println!(
                "commitment matches published model digest {}",
                encode_hex(&expected)
            ),
        }
    }
    // The SRS is a public artifact; this reproduction regenerates it from
    // the fixed test seed (see DESIGN.md on the trusted-setup substitution).
    let mut srs_rng = StdRng::seed_from_u64(SRS_SEED);
    let params = Params::setup(backend, vk.k, &mut srs_rng);
    let t = Instant::now();
    let outcome = verify_proof_committed(
        &params,
        &vk,
        std::slice::from_ref(&instance),
        &proof,
        &[],
        commitment.as_ref(),
    )
    .map_err(|e| e.to_string())
    .and_then(|v| {
        if v.settle(&params) {
            Ok(())
        } else {
            Err("pairing check failed".to_string())
        }
    });
    match outcome {
        Ok(()) => {
            println!(
                "proof VERIFIED in {:?} ({} public values, {} byte proof)",
                t.elapsed(),
                instance.len(),
                proof.len()
            );
            // Show the first few outputs as fixed-point values.
            let preview: Vec<i128> = instance
                .iter()
                .take(8)
                .map(|v| v.to_signed_i128())
                .collect();
            println!("public outputs (quantized): {preview:?}");
            Ok(())
        }
        Err(e) => Err(CliError::Msg(format!("proof REJECTED: {e}"))),
    }
}

/// Verifies a segmented bundle: boundary-instance chaining, per-segment
/// transcript replay, and one batched KZG multi-pairing across segments.
fn verify_bundle_flow(bytes: &[u8]) -> Result<(), CliError> {
    let bundle = SegmentedProof::from_bytes(bytes)
        .map_err(|e| CliError::Msg(format!("parse bundle.bin: {e}")))?;
    let keys = FreshKeySource::default();
    let t = Instant::now();
    match zkml_shard::verify_bundle(&bundle, |b, k| keys.params(b, k)) {
        Ok(report) => {
            println!(
                "bundle VERIFIED in {:?} ({} segments, {} KZG openings settled in one pairing, {} bytes)",
                t.elapsed(),
                report.segments,
                report.kzg_batched,
                bytes.len()
            );
            let preview: Vec<i128> = bundle
                .public_outputs()
                .iter()
                .take(8)
                .map(|v| v.to_signed_i128())
                .collect();
            println!("public outputs (quantized): {preview:?}");
            Ok(())
        }
        Err(e) => Err(CliError::Msg(format!("bundle REJECTED: {e}"))),
    }
}

// ---------------------------------------------------------------------------
// Spool protocol: serve / submit.
// ---------------------------------------------------------------------------

struct SpoolRequest {
    stem: String,
    model: String,
    backend: Backend,
    seed: u64,
    segments: Option<SegmentSpec>,
}

fn parse_request(path: &Path) -> Result<SpoolRequest, String> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or("bad request filename")?
        .to_string();
    let text = std::fs::read_to_string(path).map_err(|e| format!("read request: {e}"))?;
    let mut model = None;
    let mut backend = Backend::Kzg;
    let mut seed = 1u64;
    let mut segments = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once('=').ok_or("request line missing '='")?;
        match key.trim() {
            "model" => model = Some(value.trim().to_string()),
            "backend" => {
                backend = match value.trim() {
                    "kzg" => Backend::Kzg,
                    "ipa" => Backend::Ipa,
                    other => return Err(format!("bad backend '{other}'")),
                }
            }
            "seed" => seed = value.trim().parse().map_err(|_| "bad seed".to_string())?,
            "segments" => {
                segments = Some(match value.trim() {
                    "auto" => SegmentSpec::Auto,
                    n => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => SegmentSpec::Fixed(n),
                        _ => return Err(format!("bad segments '{n}'")),
                    },
                })
            }
            other => return Err(format!("unknown request key '{other}'")),
        }
    }
    Ok(SpoolRequest {
        stem,
        model: model.ok_or("request missing model=")?,
        backend,
        seed,
        segments,
    })
}

fn write_status(spool: &Path, stem: &str, status: &str) {
    let out_dir = spool.join(format!("{stem}.out"));
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let _ = std::fs::write(out_dir.join("status"), status);
    }
}

/// Joins proved jobs with their (batched, hence later) verification
/// outcomes, so a job's status file is written only once its proof has
/// actually been checked. Workers enqueue a proof for verification before
/// the serve loop sees the job complete, so outcomes can arrive in either
/// order relative to the proof artifacts.
#[derive(Default)]
struct VerifyTracker {
    /// Proved jobs waiting for a verification outcome: job id -> (spool
    /// stem, status line to write on success).
    awaiting: std::collections::HashMap<u64, (String, String)>,
    /// Verification outcomes that arrived before the job's artifacts were
    /// drained from the service.
    early: std::collections::HashMap<u64, BatchOutcome>,
    /// Total proofs that failed verification.
    failed: usize,
}

impl VerifyTracker {
    fn settle(&mut self, spool: &Path, stem: &str, ok_line: &str, outcome: &BatchOutcome) {
        if outcome.ok {
            write_status(spool, stem, ok_line);
            println!("job {} verified: {stem}", outcome.job_id);
        } else {
            self.failed += 1;
            let msg = outcome.error.as_deref().unwrap_or("proof rejected");
            write_status(
                spool,
                stem,
                &format!("error: proof failed verification: {msg}\n"),
            );
            println!("job {} FAILED verification: {stem}: {msg}", outcome.job_id);
        }
    }

    /// Called when the serve loop drains a completed proving job.
    fn on_proved(&mut self, spool: &Path, job_id: u64, stem: &str, ok_line: String) {
        match self.early.remove(&job_id) {
            Some(outcome) => self.settle(spool, stem, &ok_line, &outcome),
            None => {
                self.awaiting.insert(job_id, (stem.to_string(), ok_line));
            }
        }
    }

    /// Called with each batch-verification report.
    fn record_flush(&mut self, spool: &Path, report: &BatchReport) {
        for outcome in &report.outcomes {
            match self.awaiting.remove(&outcome.job_id) {
                Some((stem, ok_line)) => self.settle(spool, &stem, &ok_line, outcome),
                None => {
                    self.early.insert(outcome.job_id, outcome.clone());
                }
            }
        }
    }
}

fn serve_flow(args: &[String]) -> Result<(), CliError> {
    let spool = PathBuf::from(flag_value(args, "--spool").ok_or(CliError::Usage)?);
    std::fs::create_dir_all(&spool)
        .map_err(|e| CliError::Msg(format!("create spool {}: {e}", spool.display())))?;
    let once = has_flag(args, "--once");
    let poll = Duration::from_millis(parsed_flag(args, "--poll-ms", 100u64)?);
    let deadline_s: u64 = parsed_flag(args, "--deadline-s", 0)?;
    let verify = !has_flag(args, "--no-verify");
    let verify_batch: usize = parsed_flag(args, "--verify-batch", 4usize)?.max(1);
    let cfg = ServiceConfig {
        workers: parsed_flag(args, "--workers", 2usize)?,
        queue_capacity: parsed_flag(args, "--queue", 16usize)?,
        default_deadline: (deadline_s > 0).then(|| Duration::from_secs(deadline_s)),
        cache_dir: flag_value(args, "--cache-dir").map(PathBuf::from),
        verify_after_prove: verify,
        ..ServiceConfig::default()
    };
    let service =
        ProvingService::start(cfg).map_err(|e| CliError::Msg(format!("start service: {e}")))?;
    println!(
        "serving spool {} ({} workers, queue {}){}",
        spool.display(),
        service.worker_count(),
        parsed_flag(args, "--queue", 16usize)?,
        if once { ", one-shot" } else { "" }
    );

    let mut inflight: Vec<(String, JobHandle)> = Vec::new();
    let mut tracker = VerifyTracker::default();
    loop {
        // Pick up new requests. A request is removed from the spool only
        // once the service accepts it; on Busy it stays for the next scan.
        let mut reqs: Vec<PathBuf> = std::fs::read_dir(&spool)
            .map_err(|e| CliError::Msg(format!("scan spool: {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "req"))
            .collect();
        reqs.sort();
        for path in reqs {
            let request = match parse_request(&path) {
                Ok(r) => r,
                Err(msg) => {
                    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("bad");
                    write_status(&spool, stem, &format!("error: {msg}\n"));
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
            };
            let graph = match resolve_model(&request.model) {
                Ok(g) => g,
                Err(_) => {
                    write_status(
                        &spool,
                        &request.stem,
                        &format!("error: unknown model '{}'\n", request.model),
                    );
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
            };
            let spec = match request.segments {
                Some(segments) => JobSpec::prove_segmented(
                    Arc::new(graph),
                    request.backend,
                    request.seed,
                    segments,
                ),
                None => JobSpec::prove(Arc::new(graph), request.backend, request.seed),
            };
            match service.submit(spec) {
                Ok(handle) => {
                    println!("job {} accepted: {}", handle.id(), request.stem);
                    let _ = std::fs::remove_file(&path);
                    inflight.push((request.stem, handle));
                }
                Err(zkml_service::ServiceError::Busy { .. }) => {
                    // Backpressure: leave the request in the spool.
                    break;
                }
                Err(e) => {
                    write_status(&spool, &request.stem, &format!("error: {e}\n"));
                    let _ = std::fs::remove_file(&path);
                }
            }
        }

        // Drain completed jobs without blocking new pickups for long.
        let mut still_running = Vec::new();
        for (stem, handle) in inflight {
            match handle.wait_timeout(Duration::from_millis(10)) {
                None => still_running.push((stem, handle)),
                Some(Ok(Some(artifacts))) => {
                    let out_dir = spool.join(format!("{stem}.out"));
                    match write_proof_dir(&out_dir, &artifacts) {
                        Ok(()) => {
                            let ok_line = format!(
                                "ok model={} k={} segments={} cache={:?} prove_ms={}\n",
                                artifacts.model,
                                artifacts.k,
                                artifacts.segments,
                                artifacts.cache,
                                artifacts.prove_ms
                            );
                            println!(
                                "job {} proved: {} (k={}, {} segment(s), cache {:?}, {} ms)",
                                artifacts.job_id,
                                stem,
                                artifacts.k,
                                artifacts.segments,
                                artifacts.cache,
                                artifacts.prove_ms
                            );
                            if verify && artifacts.bundle.is_none() {
                                // Status is written once the proof clears
                                // batched verification, so 'ok' really
                                // means verified.
                                tracker.on_proved(&spool, artifacts.job_id, &stem, ok_line);
                            } else {
                                // Segmented bundles are verified inline by
                                // the worker (the batch verifier knows
                                // nothing of chain bindings), so a drained
                                // bundle job is already verified.
                                write_status(&spool, &stem, &ok_line);
                            }
                        }
                        Err(e) => write_status(&spool, &stem, &format!("error: {e}\n")),
                    }
                }
                Some(Ok(None)) => write_status(&spool, &stem, "ok\n"),
                Some(Err(e)) => {
                    println!("job failed: {stem}: {e}");
                    write_status(&spool, &stem, &format!("error: {e}\n"));
                }
            }
        }
        inflight = still_running;

        // Flush batched verification inside the loop: once a batch has
        // accumulated, or as soon as the service goes idle. Without this
        // the long-running mode would queue proofs (and their key
        // material) forever and never actually verify them.
        if verify {
            let pending = service.pending_verifications();
            if pending >= verify_batch || (pending > 0 && inflight.is_empty()) {
                let report = service.flush_verifications();
                tracker.record_flush(&spool, &report);
            }
        }

        if once && inflight.is_empty() {
            let empty = !std::fs::read_dir(&spool)
                .map_err(|e| CliError::Msg(format!("scan spool: {e}")))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .any(|p| p.extension().is_some_and(|ext| ext == "req"));
            if empty {
                break;
            }
        }
        std::thread::sleep(poll);
    }

    if verify {
        let report = service.flush_verifications();
        tracker.record_flush(&spool, &report);
    }
    let snap = service.snapshot();
    println!(
        "batch verification: {} proofs verified, {} failed",
        snap.proofs_verified, snap.verify_failures
    );
    println!("{}", snap.to_json());
    if tracker.failed > 0 {
        return Err(CliError::Msg(format!(
            "{} proof(s) failed batched verification",
            tracker.failed
        )));
    }
    Ok(())
}

fn submit_flow(args: &[String]) -> Result<(), CliError> {
    let model = args.get(1).ok_or(CliError::Usage)?;
    let spool = PathBuf::from(flag_value(args, "--spool").ok_or(CliError::Usage)?);
    std::fs::create_dir_all(&spool)
        .map_err(|e| CliError::Msg(format!("create spool {}: {e}", spool.display())))?;
    let backend = parse_backend(args);
    let seed: u64 = parsed_flag(args, "--seed", 1)?;
    let segments = parse_segments(args)?;

    let mut body = format!(
        "model={model}\nbackend={}\nseed={seed}\n",
        match backend {
            Backend::Kzg => "kzg",
            Backend::Ipa => "ipa",
        }
    );
    match segments {
        Some(SegmentSpec::Auto) => body.push_str("segments=auto\n"),
        Some(SegmentSpec::Fixed(n)) => body.push_str(&format!("segments={n}\n")),
        None => {}
    }
    // Reserve the first free job slot by creating its .tmp file with
    // O_EXCL: concurrent submitters that race to the same index all but
    // one lose the create and move on to the next slot, so no request is
    // ever silently overwritten. The tmp-write + rename keeps the
    // serve-side scan atomic.
    let mut stem = None;
    for i in 0..10_000 {
        let candidate = format!("job-{i:04}");
        let busy = ["tmp", "req", "out", "done"]
            .iter()
            .any(|ext| spool.join(format!("{candidate}.{ext}")).exists());
        if busy {
            continue;
        }
        let tmp = spool.join(format!("{candidate}.tmp"));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&tmp)
        {
            Ok(mut f) => {
                use std::io::Write;
                f.write_all(body.as_bytes())
                    .map_err(|e| CliError::Msg(format!("write request: {e}")))?;
                stem = Some(candidate);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(CliError::Msg(format!("reserve job slot: {e}"))),
        }
    }
    let stem = stem.ok_or_else(|| CliError::Msg("no free job slot in spool".to_string()))?;
    let tmp = spool.join(format!("{stem}.tmp"));
    let req = spool.join(format!("{stem}.req"));
    std::fs::rename(&tmp, &req).map_err(|e| CliError::Msg(format!("publish request: {e}")))?;
    println!("submitted {stem} ({model}, {backend}, seed {seed})");

    if has_flag(args, "--wait") {
        let timeout = Duration::from_secs(parsed_flag(args, "--timeout-s", 600u64)?);
        let status_path = spool.join(format!("{stem}.out")).join("status");
        let start = Instant::now();
        loop {
            if let Ok(status) = std::fs::read_to_string(&status_path) {
                print!("{status}");
                if status.starts_with("ok") {
                    return Ok(());
                }
                return Err(CliError::Msg(format!("job {stem} failed")));
            }
            if start.elapsed() > timeout {
                return Err(CliError::Msg(format!(
                    "timed out after {timeout:?} waiting for {stem}"
                )));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// HTTP protocol: serve / submit / status / cancel.
// ---------------------------------------------------------------------------

/// Set by SIGINT/SIGTERM; the serve loop polls it and shuts down gracefully
/// (drain the lanes, settle verification, fsync the journal).
static SHUTDOWN_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_handler() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// Parses `NAME:RATE:BURST:QUOTA` into a per-tenant policy override.
fn parse_tenant_limit(spec: &str) -> Result<(String, TenantPolicy), CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = || {
        CliError::Msg(format!(
            "bad --tenant-limit '{spec}' (want NAME:RATE:BURST:QUOTA)"
        ))
    };
    if parts.len() != 4 || parts[0].is_empty() {
        return Err(bad());
    }
    let rate: f64 = parts[1].parse().map_err(|_| bad())?;
    let burst: f64 = parts[2].parse().map_err(|_| bad())?;
    let quota: usize = parts[3].parse().map_err(|_| bad())?;
    if rate.is_nan() || burst.is_nan() || rate <= 0.0 || burst < 1.0 {
        return Err(bad());
    }
    Ok((
        parts[0].to_string(),
        TenantPolicy {
            rate_per_s: rate,
            burst,
            max_in_flight: quota,
        },
    ))
}

fn serve_http_flow(args: &[String]) -> Result<(), CliError> {
    let addr = flag_value(args, "--http").ok_or(CliError::Usage)?;
    let deadline_s: u64 = parsed_flag(args, "--deadline-s", 0)?;
    let service = ServiceConfig {
        workers: parsed_flag(args, "--workers", 2usize)?,
        queue_capacity: parsed_flag(args, "--queue", 16usize)?,
        default_deadline: (deadline_s > 0).then(|| Duration::from_secs(deadline_s)),
        cache_dir: flag_value(args, "--cache-dir").map(PathBuf::from),
        verify_after_prove: !has_flag(args, "--no-verify"),
        ..ServiceConfig::default()
    };
    let default_policy = TenantPolicy {
        rate_per_s: parsed_flag(args, "--rate", 50.0f64)?,
        burst: parsed_flag(args, "--burst", 100.0f64)?,
        max_in_flight: parsed_flag(args, "--quota", 32usize)?,
    };
    let overrides = flag_values(args, "--tenant-limit")
        .iter()
        .map(|s| parse_tenant_limit(s))
        .collect::<Result<Vec<_>, _>>()?;
    let admission = AdmissionConfig {
        default_policy,
        overrides,
        lane_capacity: parsed_flag(args, "--lane-cap", 256usize)?,
        ..AdmissionConfig::default()
    };
    let cfg = GatewayConfig {
        addr,
        service,
        admission,
        journal: flag_value(args, "--journal").map(PathBuf::from),
        handler_threads: parsed_flag(args, "--handlers", 4usize)?,
        verify_batch: parsed_flag(args, "--verify-batch", 4usize)?,
    };
    install_shutdown_handler();
    let gateway = Gateway::start(cfg).map_err(|e| CliError::Msg(format!("start gateway: {e}")))?;
    let bound = gateway.local_addr();
    println!("serving http on {bound}");
    // Publish the bound address for scripts that asked for port 0.
    if let Some(port_file) = flag_value(args, "--port-file") {
        std::fs::write(&port_file, format!("{bound}\n"))
            .map_err(|e| CliError::Msg(format!("write {port_file}: {e}")))?;
    }
    while !SHUTDOWN_REQUESTED.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutdown requested; draining");
    let stats = gateway.stats_json();
    gateway.shutdown();
    println!("{stats}");
    Ok(())
}

/// Maps an HTTP error response to a CLI error; 429s become `Backoff`.
fn http_error(resp: &zkml_net::HttpResponse, what: &str) -> CliError {
    let detail = Json::parse(&resp.body)
        .ok()
        .and_then(|v| v.get("error").and_then(|e| e.as_str().map(String::from)))
        .unwrap_or_else(|| resp.body.clone());
    if resp.status == 429 {
        let retry = resp
            .header("retry-after")
            .map(|v| format!(" (retry after {v}s)"))
            .unwrap_or_default();
        CliError::Backoff(format!("{what}: {detail}{retry}"))
    } else {
        CliError::Msg(format!("{what}: HTTP {}: {detail}", resp.status))
    }
}

/// Writes a completed job's artifacts (fetched as hex over HTTP) into a
/// proof directory that `zkml verify --dir` accepts.
fn write_proof_dir_from_status(dir: &Path, status: &Json) -> Result<(), CliError> {
    let hex_field = |name: &str| -> Result<Vec<u8>, CliError> {
        let h = status
            .get(name)
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Msg(format!("job status missing {name}")))?;
        decode_hex(h).map_err(|e| CliError::Msg(format!("{name}: {e}")))
    };
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::Msg(format!("create {}: {e}", dir.display())))?;
    let write = |name: &str, bytes: &[u8]| -> Result<(), CliError> {
        std::fs::write(dir.join(name), bytes)
            .map_err(|e| CliError::Msg(format!("write {name}: {e}")))
    };
    let bundled = status
        .get("bundle")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if bundled {
        // Segmented bundles carry their own per-segment verifying keys.
        write("bundle.bin", &hex_field("proof_hex")?)?;
    } else {
        write("proof.bin", &hex_field("proof_hex")?)?;
        write("vk.bin", &hex_field("vk_hex")?)?;
    }
    // Committed-weight proofs travel with their weight commitment; without
    // it the downloaded directory would be unverifiable.
    if status.get("commitment_hex").is_some() {
        write("commitment.bin", &hex_field("commitment_hex")?)?;
    }
    write("public.bin", &hex_field("public_hex")?)?;
    println!("wrote proof artifacts to {}", dir.display());
    Ok(())
}

/// `commit-model --http`: publishes the model's weight commitment on the
/// server's registry and prints the digest that prove/verify submissions
/// reference; `--dir` additionally saves the commitment as `<digest>.wc`.
fn commit_model_http_flow(args: &[String]) -> Result<(), CliError> {
    let model = args
        .get(1)
        .filter(|m| !m.starts_with("--"))
        .ok_or(CliError::Usage)?;
    let addr = flag_value(args, "--http").ok_or(CliError::Usage)?;
    let body = JsonObj::new()
        .str("model", model)
        .str(
            "backend",
            match parse_backend(args) {
                Backend::Kzg => "kzg",
                Backend::Ipa => "ipa",
            },
        )
        .finish();
    let resp = http_request(&addr, "POST", "/v1/models", Some(&body)).map_err(CliError::Msg)?;
    if resp.status == 422 {
        let detail = Json::parse(&resp.body)
            .ok()
            .and_then(|v| v.get("error").and_then(|e| e.as_str().map(String::from)))
            .unwrap_or_else(|| resp.body.clone());
        return Err(CliError::Commitment(detail));
    }
    if resp.status != 200 {
        return Err(http_error(&resp, "commit-model"));
    }
    let doc =
        Json::parse(&resp.body).map_err(|e| CliError::Msg(format!("bad response json: {e}")))?;
    let digest = doc
        .get("digest")
        .and_then(Json::as_str)
        .ok_or_else(|| CliError::Msg("response missing digest".to_string()))?
        .to_string();
    println!(
        "published {model} (k={}, cache {})",
        doc.get("k").and_then(Json::as_u64).unwrap_or(0),
        doc.get("cache").and_then(Json::as_str).unwrap_or("?"),
    );
    println!("model digest: {digest}");
    if let Some(dir) = flag_value(args, "--dir") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError::Msg(format!("create {}: {e}", dir.display())))?;
        let hex = doc
            .get("commitment_hex")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Msg("response missing commitment_hex".to_string()))?;
        let bytes = decode_hex(hex).map_err(|e| CliError::Msg(format!("commitment_hex: {e}")))?;
        let file = dir.join(format!("{digest}.wc"));
        std::fs::write(&file, bytes)
            .map_err(|e| CliError::Msg(format!("write {}: {e}", file.display())))?;
        println!("wrote {}", file.display());
    }
    Ok(())
}

fn fetch_status(addr: &str, id: u64) -> Result<Json, CliError> {
    let resp = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).map_err(CliError::Msg)?;
    if resp.status != 200 {
        return Err(http_error(&resp, &format!("job {id}")));
    }
    Json::parse(&resp.body).map_err(|e| CliError::Msg(format!("bad status json: {e}")))
}

/// Polls a job until it reaches a terminal state; returns its final status
/// document. Completed jobs optionally download artifacts into `--dir`.
fn wait_for_job(
    addr: &str,
    id: u64,
    timeout: Duration,
    dir: Option<&Path>,
) -> Result<(), CliError> {
    let start = Instant::now();
    loop {
        let status = fetch_status(addr, id)?;
        let state = status
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        match state.as_str() {
            "completed" => {
                println!(
                    "job {id} completed (k={}, {} segment(s), {} ms)",
                    status.get("k").and_then(Json::as_u64).unwrap_or(0),
                    status.get("segments").and_then(Json::as_u64).unwrap_or(0),
                    status.get("prove_ms").and_then(Json::as_u64).unwrap_or(0),
                );
                if let Some(dir) = dir {
                    write_proof_dir_from_status(dir, &status)?;
                }
                return Ok(());
            }
            "failed" => {
                let err = status
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error");
                return Err(CliError::Msg(format!("job {id} failed: {err}")));
            }
            "cancelled" => return Err(CliError::Msg(format!("job {id} was cancelled"))),
            _ => {}
        }
        if start.elapsed() > timeout {
            return Err(CliError::Msg(format!(
                "timed out after {timeout:?} waiting for job {id} (last state: {state})"
            )));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn submit_http_flow(args: &[String]) -> Result<(), CliError> {
    let model = args
        .get(1)
        .filter(|m| !m.starts_with("--"))
        .ok_or(CliError::Usage)?;
    let addr = flag_value(args, "--http").ok_or(CliError::Usage)?;
    let seed: u64 = parsed_flag(args, "--seed", 1)?;
    let mut body = JsonObj::new();
    if let Some(tenant) = flag_value(args, "--tenant") {
        body = body.str("tenant", &tenant);
    }
    if let Some(priority) = flag_value(args, "--priority") {
        body = body.str("priority", &priority);
    }
    let sleep_ms: u64 = parsed_flag(args, "--sleep-ms", 0)?;
    if model.as_str() == "sleep" {
        // A no-op job, useful for exercising admission without proving.
        body = body.str("kind", "sleep").u64("sleep_ms", sleep_ms);
    } else {
        body = body
            .str("model", model)
            .str(
                "backend",
                match parse_backend(args) {
                    Backend::Kzg => "kzg",
                    Backend::Ipa => "ipa",
                },
            )
            .u64("seed", seed);
        match parse_segments(args)? {
            Some(SegmentSpec::Auto) => {
                body = body.str("kind", "prove_segmented").str("segments", "auto")
            }
            Some(SegmentSpec::Fixed(n)) => {
                body = body
                    .str("kind", "prove_segmented")
                    .u64("segments", n as u64)
            }
            None => body = body.str("kind", "prove"),
        }
        if let Some(digest) = parse_model_digest(args)? {
            body = body.str("model_digest", &encode_hex(&digest));
        }
    }
    let resp =
        http_request(&addr, "POST", "/v1/jobs", Some(&body.finish())).map_err(CliError::Msg)?;
    if resp.status != 202 {
        return Err(http_error(&resp, "submit"));
    }
    let accepted =
        Json::parse(&resp.body).map_err(|e| CliError::Msg(format!("bad response json: {e}")))?;
    let id = accepted
        .get("job_id")
        .and_then(Json::as_u64)
        .ok_or_else(|| CliError::Msg("response missing job_id".to_string()))?;
    println!("submitted job {id} ({model}, seed {seed})");
    if has_flag(args, "--wait") {
        let timeout = Duration::from_secs(parsed_flag(args, "--timeout-s", 600u64)?);
        let dir = flag_value(args, "--dir").map(PathBuf::from);
        wait_for_job(&addr, id, timeout, dir.as_deref())?;
    }
    Ok(())
}

fn status_http_flow(args: &[String]) -> Result<(), CliError> {
    let addr = flag_value(args, "--http").ok_or(CliError::Usage)?;
    let id: u64 = flag_value(args, "--id")
        .ok_or(CliError::Usage)?
        .parse()
        .map_err(|_| CliError::Msg("bad --id".to_string()))?;
    let status = fetch_status(&addr, id)?;
    let state = status
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    println!(
        "job {id}: {state} (tenant {}, {} {})",
        status.get("tenant").and_then(Json::as_str).unwrap_or("?"),
        status.get("priority").and_then(Json::as_str).unwrap_or("?"),
        status.get("kind").and_then(Json::as_str).unwrap_or("?"),
    );
    if let Some(err) = status.get("error").and_then(Json::as_str) {
        println!("error: {err}");
    }
    if state == "completed" {
        if let Some(dir) = flag_value(args, "--dir") {
            write_proof_dir_from_status(Path::new(&dir), &status)?;
        }
    }
    if state == "failed" || state == "cancelled" {
        return Err(CliError::Msg(format!("job {id} is {state}")));
    }
    Ok(())
}

fn cancel_http_flow(args: &[String]) -> Result<(), CliError> {
    let addr = flag_value(args, "--http").ok_or(CliError::Usage)?;
    let id: u64 = flag_value(args, "--id")
        .ok_or(CliError::Usage)?
        .parse()
        .map_err(|_| CliError::Msg("bad --id".to_string()))?;
    let resp =
        http_request(&addr, "DELETE", &format!("/v1/jobs/{id}"), None).map_err(CliError::Msg)?;
    if resp.status != 200 && resp.status != 202 {
        return Err(http_error(&resp, &format!("cancel job {id}")));
    }
    let doc =
        Json::parse(&resp.body).map_err(|e| CliError::Msg(format!("bad response json: {e}")))?;
    println!(
        "job {id}: {}",
        doc.get("status").and_then(Json::as_str).unwrap_or("?")
    );
    Ok(())
}
