//! The durable job journal: an append-only file of JSON-line records that
//! lets a restarted (or crashed) server reconstruct every job's fate.
//!
//! Write-ahead discipline: `submitted` is appended (and fsynced) before the
//! client's 202 is sent, `started` before the job enters the proving
//! service, and exactly one terminal record (`completed` / `failed` /
//! `cancelled`) after. Replay is therefore simple: a job whose last record
//! is `submitted` was queued but never picked up → re-run it; a job whose
//! last record is `started` was in flight when the process died → fail it
//! deterministically (the submitter can retry); terminal jobs stay
//! terminal. Proof bytes are deliberately not journaled — a replayed job
//! regenerates them from its (model, backend, seed) description.

use crate::admission::Priority;
use crate::json::{decode_hex, encode_hex, escape, Json, JsonObj};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use zkml_pcs::Backend;
use zkml_shard::SegmentSpec;

/// A replayable description of what a job does. Verification jobs carry
/// proof payloads too large to journal; they are recorded for bookkeeping
/// but marked non-replayable.
#[derive(Debug, Clone, PartialEq)]
pub enum JobDesc {
    /// Prove one inference of a zoo model (monolithic when `segments` is
    /// `None`, segmented otherwise).
    Prove {
        /// Zoo model name.
        model: String,
        /// Commitment backend.
        backend: Backend,
        /// Input/proof seed.
        seed: u64,
        /// Segmentation request.
        segments: Option<SegmentSpec>,
        /// Published model-commitment digest the prove references, if any.
        /// The commitment registry itself is not durable, so a replayed
        /// digest-referencing job fails deterministically with a
        /// commitment mismatch until the model is republished.
        model_digest: Option<[u8; 32]>,
    },
    /// Occupy a worker (health checks, benches, tests).
    Sleep {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Verify a client-supplied proof. The payload is not journaled, so a
    /// verify job interrupted by a crash is re-failed, never re-run.
    Verify,
}

impl JobDesc {
    /// Short kind tag used on the wire and in the journal.
    pub fn kind(&self) -> &'static str {
        match self {
            JobDesc::Prove {
                segments: Some(_), ..
            } => "prove_segmented",
            JobDesc::Prove { .. } => "prove",
            JobDesc::Sleep { .. } => "sleep",
            JobDesc::Verify => "verify",
        }
    }
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was admitted; carries everything needed to re-run it.
    Submitted {
        /// The gateway-assigned job id.
        job: u64,
        /// Submitting tenant.
        tenant: String,
        /// Requested lane.
        priority: Priority,
        /// What the job does.
        desc: JobDesc,
    },
    /// The job entered the proving service.
    Started {
        /// The job id.
        job: u64,
    },
    /// Terminal: the job finished (and, for proofs, verified).
    Completed {
        /// The job id.
        job: u64,
        /// Circuit size exponent (0 for non-proving jobs).
        k: u32,
        /// Segment count (0 for non-proving jobs).
        segments: u32,
        /// Proving wall time (0 for non-proving jobs).
        prove_ms: u64,
    },
    /// Terminal: the job failed.
    Failed {
        /// The job id.
        job: u64,
        /// The failure message.
        error: String,
    },
    /// Terminal: the job was cancelled.
    Cancelled {
        /// The job id.
        job: u64,
    },
}

fn backend_str(b: Backend) -> &'static str {
    match b {
        Backend::Kzg => "kzg",
        Backend::Ipa => "ipa",
    }
}

impl Record {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Record::Submitted {
                job,
                tenant,
                priority,
                desc,
            } => {
                let mut obj = JsonObj::new()
                    .str("rec", "submitted")
                    .u64("job", *job)
                    .str("tenant", tenant)
                    .str("priority", priority.as_str())
                    .str("kind", desc.kind());
                match desc {
                    JobDesc::Prove {
                        model,
                        backend,
                        seed,
                        segments,
                        model_digest,
                    } => {
                        obj = obj
                            .str("model", model)
                            .str("backend", backend_str(*backend))
                            .u64("seed", *seed);
                        match segments {
                            Some(SegmentSpec::Auto) => obj = obj.str("segments", "auto"),
                            Some(SegmentSpec::Fixed(n)) => obj = obj.u64("segments", *n as u64),
                            None => {}
                        }
                        if let Some(digest) = model_digest {
                            obj = obj.str("model_digest", &encode_hex(digest));
                        }
                    }
                    JobDesc::Sleep { ms } => obj = obj.u64("sleep_ms", *ms),
                    JobDesc::Verify => {}
                }
                obj.finish()
            }
            Record::Started { job } => JsonObj::new()
                .str("rec", "started")
                .u64("job", *job)
                .finish(),
            Record::Completed {
                job,
                k,
                segments,
                prove_ms,
            } => JsonObj::new()
                .str("rec", "completed")
                .u64("job", *job)
                .u64("k", u64::from(*k))
                .u64("segments", u64::from(*segments))
                .u64("prove_ms", *prove_ms)
                .finish(),
            Record::Failed { job, error } => JsonObj::new()
                .str("rec", "failed")
                .u64("job", *job)
                .str("error", error)
                .finish(),
            Record::Cancelled { job } => JsonObj::new()
                .str("rec", "cancelled")
                .u64("job", *job)
                .finish(),
        }
    }

    /// Parses one journal line.
    pub fn decode(line: &str) -> Result<Record, String> {
        let v = Json::parse(line)?;
        let job = v
            .get("job")
            .and_then(Json::as_u64)
            .ok_or("record missing job id")?;
        let rec = v
            .get("rec")
            .and_then(Json::as_str)
            .ok_or("record missing rec tag")?;
        match rec {
            "submitted" => {
                let tenant = v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or("submitted missing tenant")?
                    .to_string();
                let priority = v
                    .get("priority")
                    .and_then(Json::as_str)
                    .and_then(Priority::parse)
                    .ok_or("submitted missing priority")?;
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("submitted missing kind")?;
                let desc = match kind {
                    "prove" | "prove_segmented" => {
                        let model = v
                            .get("model")
                            .and_then(Json::as_str)
                            .ok_or("prove missing model")?
                            .to_string();
                        let backend = match v.get("backend").and_then(Json::as_str) {
                            Some("kzg") => Backend::Kzg,
                            Some("ipa") => Backend::Ipa,
                            _ => return Err("prove missing backend".into()),
                        };
                        let seed = v
                            .get("seed")
                            .and_then(Json::as_u64)
                            .ok_or("prove missing seed")?;
                        let segments = match v.get("segments") {
                            None => None,
                            Some(Json::Str(s)) if s == "auto" => Some(SegmentSpec::Auto),
                            Some(n) => Some(SegmentSpec::Fixed(
                                n.as_u64().ok_or("bad segments")? as usize
                            )),
                        };
                        let model_digest = match v.get("model_digest").and_then(Json::as_str) {
                            None => None,
                            Some(h) => Some(
                                decode_hex(h)?
                                    .try_into()
                                    .map_err(|_| "model_digest must be 32 bytes")?,
                            ),
                        };
                        JobDesc::Prove {
                            model,
                            backend,
                            seed,
                            segments,
                            model_digest,
                        }
                    }
                    "sleep" => JobDesc::Sleep {
                        ms: v
                            .get("sleep_ms")
                            .and_then(Json::as_u64)
                            .ok_or("sleep missing sleep_ms")?,
                    },
                    "verify" => JobDesc::Verify,
                    other => return Err(format!("unknown job kind '{other}'")),
                };
                Ok(Record::Submitted {
                    job,
                    tenant,
                    priority,
                    desc,
                })
            }
            "started" => Ok(Record::Started { job }),
            "completed" => Ok(Record::Completed {
                job,
                k: v.get("k").and_then(Json::as_u64).unwrap_or(0) as u32,
                segments: v.get("segments").and_then(Json::as_u64).unwrap_or(0) as u32,
                prove_ms: v.get("prove_ms").and_then(Json::as_u64).unwrap_or(0),
            }),
            "failed" => Ok(Record::Failed {
                job,
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            }),
            "cancelled" => Ok(Record::Cancelled { job }),
            other => Err(format!("unknown record '{}'", escape(other))),
        }
    }
}

/// The append side of the journal. Every append flushes and fsyncs before
/// returning, so an acknowledged record survives a crash.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, returning the handle and
    /// every record already present. A torn final line — the signature of a
    /// crash mid-append — is tolerated and dropped; corruption anywhere
    /// else is an error.
    pub fn open(path: &Path) -> std::io::Result<(Journal, Vec<Record>)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut records = Vec::new();
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
            let last_nonempty = lines.iter().rposition(|l| !l.trim().is_empty());
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match Record::decode(line) {
                    Ok(rec) => records.push(rec),
                    Err(e) if Some(i) == last_nonempty => {
                        // Torn tail from a crash mid-append; the record was
                        // never acknowledged, so dropping it is safe.
                        eprintln!("journal: dropping torn final record: {e}");
                    }
                    Err(e) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("journal {} line {}: {e}", path.display(), i + 1),
                        ));
                    }
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            Journal {
                file: Mutex::new(file),
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Appends one record durably (write + flush + fsync).
    pub fn append(&self, record: &Record) -> std::io::Result<()> {
        let mut file = self.file.lock().unwrap();
        file.write_all(record.encode().as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        file.sync_data()
    }

    /// Forces the journal to disk (a no-op given per-append fsync, kept as
    /// the explicit shutdown barrier).
    pub fn sync(&self) -> std::io::Result<()> {
        self.file.lock().unwrap().sync_all()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A job reconstructed from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayJob {
    /// The job's id (preserved across restarts).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Requested lane.
    pub priority: Priority,
    /// What the job does.
    pub desc: JobDesc,
    /// Where the job stood when the journal ended.
    pub state: ReplayState,
}

/// A job's state at the end of the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayState {
    /// Submitted but never started: safe to re-run.
    Queued,
    /// Started but no terminal record: the process died with the job in
    /// flight.
    InFlight,
    /// Completed (artifact bytes are not journaled).
    Completed {
        /// Circuit size exponent.
        k: u32,
        /// Segment count.
        segments: u32,
        /// Proving wall time.
        prove_ms: u64,
    },
    /// Failed with the recorded error.
    Failed(String),
    /// Cancelled.
    Cancelled,
}

/// Folds raw records into per-job replay states (in submission order) and
/// the next free job id. Records for unknown job ids (a truncated journal
/// head) are ignored rather than fatal.
pub fn replay(records: &[Record]) -> (Vec<ReplayJob>, u64) {
    let mut jobs: Vec<ReplayJob> = Vec::new();
    let mut next_id = 1;
    for rec in records {
        match rec {
            Record::Submitted {
                job,
                tenant,
                priority,
                desc,
            } => {
                next_id = next_id.max(job + 1);
                jobs.push(ReplayJob {
                    id: *job,
                    tenant: tenant.clone(),
                    priority: *priority,
                    desc: desc.clone(),
                    state: ReplayState::Queued,
                });
            }
            Record::Started { job } => {
                if let Some(j) = jobs.iter_mut().find(|j| j.id == *job) {
                    if j.state == ReplayState::Queued {
                        j.state = ReplayState::InFlight;
                    }
                }
            }
            Record::Completed {
                job,
                k,
                segments,
                prove_ms,
            } => {
                if let Some(j) = jobs.iter_mut().find(|j| j.id == *job) {
                    j.state = ReplayState::Completed {
                        k: *k,
                        segments: *segments,
                        prove_ms: *prove_ms,
                    };
                }
            }
            Record::Failed { job, error } => {
                if let Some(j) = jobs.iter_mut().find(|j| j.id == *job) {
                    j.state = ReplayState::Failed(error.clone());
                }
            }
            Record::Cancelled { job } => {
                if let Some(j) = jobs.iter_mut().find(|j| j.id == *job) {
                    j.state = ReplayState::Cancelled;
                }
            }
        }
    }
    (jobs, next_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "zkml-journal-test-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submitted {
                job: 1,
                tenant: "alice".into(),
                priority: Priority::Interactive,
                desc: JobDesc::Prove {
                    model: "mnist".into(),
                    backend: Backend::Kzg,
                    seed: 7,
                    segments: Some(SegmentSpec::Auto),
                    model_digest: None,
                },
            },
            Record::Submitted {
                job: 2,
                tenant: "bob".into(),
                priority: Priority::Batch,
                desc: JobDesc::Sleep { ms: 5 },
            },
            Record::Started { job: 1 },
            Record::Completed {
                job: 1,
                k: 11,
                segments: 3,
                prove_ms: 1200,
            },
            Record::Submitted {
                job: 3,
                tenant: "alice".into(),
                priority: Priority::Interactive,
                desc: JobDesc::Prove {
                    model: "lenet".into(),
                    backend: Backend::Ipa,
                    seed: 9,
                    segments: None,
                    model_digest: Some([0x5A; 32]),
                },
            },
            Record::Started { job: 3 },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rec in sample_records() {
            let line = rec.encode();
            assert_eq!(Record::decode(&line).unwrap(), rec, "line: {line}");
        }
    }

    #[test]
    fn replay_states() {
        let (jobs, next_id) = replay(&sample_records());
        assert_eq!(next_id, 4);
        assert_eq!(jobs.len(), 3);
        assert_eq!(
            jobs[0].state,
            ReplayState::Completed {
                k: 11,
                segments: 3,
                prove_ms: 1200
            }
        );
        assert_eq!(jobs[1].state, ReplayState::Queued, "never started");
        assert_eq!(jobs[2].state, ReplayState::InFlight, "started, no terminal");
    }

    #[test]
    fn journal_survives_reopen_and_torn_tail() {
        let path = tempfile("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, existing) = Journal::open(&path).unwrap();
            assert!(existing.is_empty());
            for rec in sample_records() {
                journal.append(&rec).unwrap();
            }
        }
        // Simulate a crash mid-append: a torn, unparseable final line.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"rec\":\"submitted\",\"job\":4,\"ten")
                .unwrap();
        }
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records, sample_records(), "torn tail dropped, rest intact");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_mid_journal_is_fatal() {
        let path = tempfile("corrupt");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "garbage line\n{\"rec\":\"started\",\"job\":1}\n").unwrap();
        assert!(Journal::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
