//! zkml-net: an HTTP/JSON front end for the proving service.
//!
//! The spool-directory protocol (files dropped into a watched directory)
//! was the repo's first serving surface; it cannot express backpressure,
//! multi-tenancy, or restart recovery. This crate replaces it with a
//! std-only threaded HTTP/1.1 server — no async runtime, hand-rolled
//! parsing — exposing:
//!
//! * `POST /v1/jobs` — submit a prove / segmented-prove / verify job,
//! * `GET /v1/jobs/{id}` — poll status and fetch hex-encoded artifacts,
//! * `DELETE /v1/jobs/{id}` — cancel (cooperative, stage-boundary),
//! * `GET /v1/stats` — service snapshot plus per-tenant counters,
//! * `GET /v1/healthz` — liveness.
//!
//! Three mechanisms distinguish it from a plain wrapper:
//!
//! * a **durable job journal** ([`journal`]): every submission, start, and
//!   terminal outcome is a fsync'd JSON line; on startup the journal is
//!   replayed so queued jobs re-run and jobs interrupted mid-flight are
//!   deterministically failed — no job is lost and none completes twice;
//! * **tenant-aware admission** ([`admission`]): per-tenant token buckets
//!   and in-flight quotas in front of the service's bounded queue, with
//!   rejections mapped to HTTP 429 + `Retry-After`;
//! * **priority lanes** ([`gateway`]): interactive and batch submissions
//!   queue separately and are drained by weighted round-robin, so bulk
//!   batch work cannot starve interactive callers.

pub mod admission;
pub mod client;
pub mod gateway;
pub mod http;
pub mod journal;
pub mod json;

pub use admission::{
    Admission, AdmissionConfig, AdmitError, Priority, ReleaseOutcome, TenantCounters, TenantPolicy,
};
pub use client::{http_request, HttpResponse};
pub use gateway::{Gateway, GatewayConfig};
pub use journal::{replay, JobDesc, Journal, Record, ReplayJob, ReplayState};
pub use json::{decode_hex, encode_hex, Json, JsonObj};
