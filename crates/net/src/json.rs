//! Minimal JSON encode/decode for the serving layer.
//!
//! The workspace ground rules forbid `serde_json`, and the service's stats
//! snapshot already hand-rolls its JSON (`StatsSnapshot::to_json`). This
//! module extends that approach with the two missing pieces the HTTP API
//! needs: a small recursive-descent parser for request bodies and a
//! streaming object writer for responses (which can embed pre-rendered JSON
//! like the stats snapshot verbatim via [`JsonObj::raw`]).

use std::fmt::Write as _;

/// A parsed JSON value. Integers without a fraction or exponent are kept
/// exact in `Int` (covers `u64` seeds); everything else numeric is `Float`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')
                                    .map_err(|_| "lone high surrogate".to_string())?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or("bad unicode escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8")?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

/// Escapes a string for embedding in JSON (without the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A streaming JSON object writer.
#[derive(Default)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (4 decimal places, matching the stats JSON).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v:.4}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a `null` field.
    pub fn null(mut self, k: &str) -> Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Embeds pre-rendered JSON verbatim (e.g. `StatsSnapshot::to_json()`
    /// or a nested [`JsonObj`]).
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Lower-hex encoding of bytes.
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes a hex string (case-insensitive, even length).
pub fn decode_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(s.get(i..i + 2).ok_or("non-ascii hex")?, 16)
                .map_err(|_| format!("bad hex at byte {i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_basics() {
        let v = Json::parse(
            r#"{"a":1,"b":"x\n\"y\"","c":[true,null,-2.5],"d":{"e":18446744073709551615}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y\""));
        match v.get("c").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0].as_bool(), Some(true));
                assert_eq!(items[1], Json::Null);
                assert_eq!(items[2].as_f64(), Some(-2.5));
            }
            other => panic!("expected array, got {other:?}"),
        }
        // u64::MAX survives exactly.
        assert_eq!(
            v.get("d").unwrap().get("e").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}x", "\"\\q\"", "nul"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn writer_emits_valid_json() {
        let inner = JsonObj::new().u64("n", 3).finish();
        let out = JsonObj::new()
            .str("s", "a\"b")
            .u64("u", 42)
            .bool("t", true)
            .null("z")
            .raw("nested", &inner)
            .finish();
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.get("s").unwrap().as_str(), Some("a\"b"));
        assert_eq!(back.get("u").unwrap().as_u64(), Some(42));
        assert_eq!(back.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("z"), Some(&Json::Null));
        assert_eq!(
            back.get("nested").unwrap().get("n").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0u8, 1, 0xab, 0xff];
        let hex = encode_hex(&bytes);
        assert_eq!(hex, "0001abff");
        assert_eq!(decode_hex(&hex).unwrap(), bytes);
        assert!(decode_hex("abc").is_err());
        assert!(decode_hex("zz").is_err());
    }

    #[test]
    fn stats_snapshot_embeds_cleanly() {
        // The reuse contract with the service's hand-rolled stats JSON.
        let snap = zkml_service::ServiceStats::new().snapshot();
        let out = JsonObj::new().raw("service", &snap.to_json()).finish();
        let back = Json::parse(&out).unwrap();
        assert!(back.get("service").unwrap().get("jobs_submitted").is_some());
    }
}
