//! End-to-end HTTP API tests over real sockets: submit/status/cancel
//! lifecycle, admission rejections as 429 + Retry-After, and error paths.

use std::time::{Duration, Instant};
use zkml_net::{
    http_request, AdmissionConfig, Gateway, GatewayConfig, HttpResponse, Json, TenantPolicy,
};
use zkml_service::ServiceConfig;

fn start(cfg: GatewayConfig) -> (Gateway, String) {
    let gw = Gateway::start(cfg).expect("start gateway");
    let addr = gw.local_addr().to_string();
    (gw, addr)
}

fn small_service() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        ..ServiceConfig::default()
    }
}

fn post_job(addr: &str, body: &str) -> HttpResponse {
    http_request(addr, "POST", "/v1/jobs", Some(body)).expect("post /v1/jobs")
}

fn job_status(addr: &str, id: u64) -> Json {
    let resp = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(resp.status, 200, "status body: {}", resp.body);
    Json::parse(&resp.body).unwrap()
}

fn wait_terminal(addr: &str, id: u64) -> Json {
    let start = Instant::now();
    loop {
        let doc = job_status(addr, id);
        let state = doc
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if state != "queued" && state != "running" {
            return doc;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "job {id} stuck in {state}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn healthz_stats_and_error_paths() {
    let (gw, addr) = start(GatewayConfig {
        service: small_service(),
        ..GatewayConfig::default()
    });

    let health = http_request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let doc = Json::parse(&health.body).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

    let stats = http_request(&addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let doc = Json::parse(&stats.body).unwrap();
    assert!(doc.get("service").is_some());
    assert!(doc.get("tenants").is_some());
    assert!(doc.get("lanes").is_some());

    // Error paths: unknown route, unknown job, bad method, bad bodies.
    let r = http_request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(r.status, 404);
    let r = http_request(&addr, "GET", "/v1/jobs/999", None).unwrap();
    assert_eq!(r.status, 404);
    let r = http_request(&addr, "PUT", "/v1/jobs/1", None).unwrap();
    assert_eq!(r.status, 405);
    let r = http_request(&addr, "DELETE", "/v1/stats", None).unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(post_job(&addr, "not json").status, 400);
    assert_eq!(post_job(&addr, "{\"kind\":\"launch\"}").status, 400);
    assert_eq!(
        post_job(&addr, "{\"kind\":\"prove\",\"model\":\"no-such-model\"}").status,
        400
    );
    assert_eq!(
        post_job(&addr, "{\"kind\":\"sleep\",\"tenant\":\"\"}").status,
        400
    );

    gw.shutdown();
}

#[test]
fn sleep_job_lifecycle_and_terminal_cancel_conflicts() {
    let (gw, addr) = start(GatewayConfig {
        service: small_service(),
        ..GatewayConfig::default()
    });

    let resp = post_job(
        &addr,
        "{\"kind\":\"sleep\",\"sleep_ms\":20,\"tenant\":\"alice\",\"priority\":\"batch\"}",
    );
    assert_eq!(resp.status, 202, "body: {}", resp.body);
    let id = Json::parse(&resp.body)
        .unwrap()
        .get("job_id")
        .and_then(Json::as_u64)
        .unwrap();

    let doc = wait_terminal(&addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("completed"));
    assert_eq!(doc.get("tenant").and_then(Json::as_str), Some("alice"));
    assert_eq!(doc.get("priority").and_then(Json::as_str), Some("batch"));
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("sleep"));

    // Cancelling a terminal job is a conflict, not a state change.
    let r = http_request(&addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(r.status, 409);
    let doc = job_status(&addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("completed"));

    // Per-tenant counters reflect the completed job.
    let stats = Json::parse(&gw.stats_json()).unwrap();
    let alice = stats.get("tenants").and_then(|t| t.get("alice")).unwrap();
    assert_eq!(alice.get("admitted").and_then(Json::as_u64), Some(1));
    assert_eq!(alice.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(alice.get("in_flight").and_then(Json::as_u64), Some(0));

    gw.shutdown();
}

#[test]
fn queued_job_cancels_synchronously() {
    // One worker + a one-slot queue: two long sleeps saturate the service,
    // so a third job stays in its gateway lane where DELETE can remove it.
    let (gw, addr) = start(GatewayConfig {
        service: ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
        ..GatewayConfig::default()
    });

    for _ in 0..2 {
        assert_eq!(
            post_job(&addr, "{\"kind\":\"sleep\",\"sleep_ms\":400}").status,
            202
        );
    }
    std::thread::sleep(Duration::from_millis(100)); // let the dispatcher saturate the service
    let resp = post_job(&addr, "{\"kind\":\"sleep\",\"sleep_ms\":400}");
    assert_eq!(resp.status, 202);
    let id = Json::parse(&resp.body)
        .unwrap()
        .get("job_id")
        .and_then(Json::as_u64)
        .unwrap();

    let r = http_request(&addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
    // 200 = removed from its lane synchronously; 202 covers the narrow race
    // where the dispatcher had the job popped for a (rejected) dispatch
    // attempt — the cancel token still stops it before it runs.
    assert!(r.status == 200 || r.status == 202, "body: {}", r.body);
    let doc = wait_terminal(&addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("cancelled"));

    gw.shutdown();
}

#[test]
fn rate_limit_maps_to_429_with_retry_after() {
    let (gw, addr) = start(GatewayConfig {
        service: small_service(),
        admission: AdmissionConfig {
            overrides: vec![(
                "throttled".to_string(),
                TenantPolicy {
                    rate_per_s: 0.001,
                    burst: 1.0,
                    max_in_flight: 8,
                },
            )],
            ..AdmissionConfig::default()
        },
        ..GatewayConfig::default()
    });

    let body = "{\"kind\":\"sleep\",\"sleep_ms\":1,\"tenant\":\"throttled\"}";
    assert_eq!(post_job(&addr, body).status, 202);
    let rejected = post_job(&addr, body);
    assert_eq!(rejected.status, 429, "body: {}", rejected.body);
    let retry: u64 = rejected
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .unwrap();
    assert!(retry >= 1);
    let doc = Json::parse(&rejected.body).unwrap();
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("rate limited"));

    // An unthrottled tenant is unaffected.
    assert_eq!(
        post_job(
            &addr,
            "{\"kind\":\"sleep\",\"sleep_ms\":1,\"tenant\":\"free\"}"
        )
        .status,
        202
    );

    let stats = Json::parse(&gw.stats_json()).unwrap();
    let t = stats
        .get("tenants")
        .and_then(|t| t.get("throttled"))
        .unwrap();
    assert_eq!(t.get("rejected_rate").and_then(Json::as_u64), Some(1));

    gw.shutdown();
}

#[test]
fn in_flight_quota_maps_to_429() {
    let (gw, addr) = start(GatewayConfig {
        service: small_service(),
        admission: AdmissionConfig {
            default_policy: TenantPolicy {
                rate_per_s: 1000.0,
                burst: 1000.0,
                max_in_flight: 1,
            },
            ..AdmissionConfig::default()
        },
        ..GatewayConfig::default()
    });

    let body = "{\"kind\":\"sleep\",\"sleep_ms\":2000,\"tenant\":\"bob\"}";
    let first = post_job(&addr, body);
    assert_eq!(first.status, 202);
    let rejected = post_job(&addr, body);
    assert_eq!(rejected.status, 429, "body: {}", rejected.body);
    assert!(rejected.header("retry-after").is_some());
    assert!(Json::parse(&rejected.body)
        .unwrap()
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("in-flight"));

    // Cancel the running job to release the slot instead of waiting 2s.
    let id = Json::parse(&first.body)
        .unwrap()
        .get("job_id")
        .and_then(Json::as_u64)
        .unwrap();
    let _ = http_request(&addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
    let doc = wait_terminal(&addr, id);
    let state = doc.get("status").and_then(Json::as_str).unwrap();
    assert!(
        state == "cancelled" || state == "completed",
        "state {state}"
    );

    gw.shutdown();
}

#[test]
fn submissions_rejected_while_draining() {
    let (gw, addr) = start(GatewayConfig {
        service: small_service(),
        ..GatewayConfig::default()
    });
    assert_eq!(
        post_job(&addr, "{\"kind\":\"sleep\",\"sleep_ms\":50}").status,
        202
    );
    // Shutdown drains: the accepted job must finish, and the gateway must
    // come down even though a job was mid-flight when the drain started.
    gw.shutdown();
}
