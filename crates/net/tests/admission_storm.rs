//! Concurrent multi-tenant admission tests: a submit storm against tight
//! rate limits, quota enforcement under concurrency, and priority-lane
//! dequeue ordering observed through the journal.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use zkml_net::{http_request, AdmissionConfig, Gateway, GatewayConfig, Json, Record, TenantPolicy};
use zkml_service::ServiceConfig;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkml-net-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit(addr: &str, body: &str) -> u16 {
    http_request(addr, "POST", "/v1/jobs", Some(body))
        .expect("post /v1/jobs")
        .status
}

fn tenant_counter(stats: &Json, tenant: &str, field: &str) -> u64 {
    stats
        .get("tenants")
        .and_then(|t| t.get(tenant))
        .and_then(|t| t.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing counter {tenant}.{field}"))
}

/// Sixteen client threads storm two tenants. The burst-limited tenant gets
/// exactly its burst admitted and the rest rate-limited with 429; the
/// unlimited tenant is never rejected; the per-tenant counters balance.
#[test]
fn concurrent_storm_respects_per_tenant_rate_limits() {
    let gw = Gateway::start(GatewayConfig {
        service: ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
        admission: AdmissionConfig {
            default_policy: TenantPolicy {
                rate_per_s: 10_000.0,
                burst: 10_000.0,
                max_in_flight: 256,
            },
            // Refill is ~0 on test timescales, so admissions == burst.
            overrides: vec![(
                "limited".to_string(),
                TenantPolicy {
                    rate_per_s: 0.001,
                    burst: 5.0,
                    max_in_flight: 64,
                },
            )],
            lane_capacity: 1024,
            ..AdmissionConfig::default()
        },
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gw.local_addr().to_string();

    let threads: Vec<_> = (0..16)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let tenant = if i % 2 == 0 { "limited" } else { "free" };
                let body = format!("{{\"kind\":\"sleep\",\"sleep_ms\":1,\"tenant\":\"{tenant}\"}}");
                let mut codes = Vec::new();
                for _ in 0..4 {
                    codes.push((tenant, submit(&addr, &body)));
                }
                codes
            })
        })
        .collect();
    let results: Vec<(&str, u16)> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();

    let accepted = |t: &str| results.iter().filter(|(n, c)| *n == t && *c == 202).count();
    let rejected = |t: &str| results.iter().filter(|(n, c)| *n == t && *c == 429).count();
    assert_eq!(accepted("limited"), 5, "burst admits exactly burst-many");
    assert_eq!(rejected("limited"), 27);
    assert_eq!(accepted("free"), 32);
    assert_eq!(rejected("free"), 0);

    // Counters balance: submitted == admitted + rejections, and every
    // admitted job eventually completes, draining in_flight to zero.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = Json::parse(&gw.stats_json()).unwrap();
        if tenant_counter(&stats, "limited", "completed") == 5
            && tenant_counter(&stats, "free", "completed") == 32
        {
            assert_eq!(tenant_counter(&stats, "limited", "submitted"), 32);
            assert_eq!(tenant_counter(&stats, "limited", "admitted"), 5);
            assert_eq!(tenant_counter(&stats, "limited", "rejected_rate"), 27);
            assert_eq!(tenant_counter(&stats, "limited", "in_flight"), 0);
            assert_eq!(tenant_counter(&stats, "free", "in_flight"), 0);
            break;
        }
        assert!(Instant::now() < deadline, "jobs never drained: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    gw.shutdown();
}

/// With a quota of 2 in-flight jobs and long-running work, a burst of ten
/// concurrent submissions admits exactly two.
#[test]
fn quota_bounds_concurrent_in_flight_jobs() {
    let gw = Gateway::start(GatewayConfig {
        service: ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            ..ServiceConfig::default()
        },
        admission: AdmissionConfig {
            default_policy: TenantPolicy {
                rate_per_s: 10_000.0,
                burst: 10_000.0,
                max_in_flight: 2,
            },
            ..AdmissionConfig::default()
        },
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gw.local_addr().to_string();

    let threads: Vec<_> = (0..10)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                submit(
                    &addr,
                    "{\"kind\":\"sleep\",\"sleep_ms\":3000,\"tenant\":\"q\"}",
                )
            })
        })
        .collect();
    let codes: Vec<u16> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(codes.iter().filter(|c| **c == 202).count(), 2);
    assert_eq!(codes.iter().filter(|c| **c == 429).count(), 8);

    let stats = Json::parse(&gw.stats_json()).unwrap();
    assert_eq!(tenant_counter(&stats, "q", "rejected_quota"), 8);
    assert!(tenant_counter(&stats, "q", "in_flight") <= 2);
    gw.shutdown();
}

/// Priority-lane ordering: with the service saturated, three batch jobs
/// submitted BEFORE three interactive jobs are dequeued AFTER most of them —
/// the journal's `started` records expose the dispatch order.
#[test]
fn interactive_lane_preempts_earlier_batch_submissions() {
    let dir = tempdir("lanes");
    let journal = dir.join("journal.jsonl");
    let gw = Gateway::start(GatewayConfig {
        service: ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
        journal: Some(journal.clone()),
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gw.local_addr().to_string();

    // Two blockers saturate the single worker and the one-slot queue.
    for _ in 0..2 {
        assert_eq!(submit(&addr, "{\"kind\":\"sleep\",\"sleep_ms\":600}"), 202);
    }
    std::thread::sleep(Duration::from_millis(150));
    // Batch jobs enter their lane first, then interactive ones.
    for _ in 0..3 {
        assert_eq!(
            submit(
                &addr,
                "{\"kind\":\"sleep\",\"sleep_ms\":5,\"priority\":\"batch\"}"
            ),
            202
        );
    }
    for _ in 0..3 {
        assert_eq!(
            submit(
                &addr,
                "{\"kind\":\"sleep\",\"sleep_ms\":5,\"priority\":\"interactive\"}"
            ),
            202
        );
    }
    gw.shutdown(); // drains everything, then fsyncs the journal

    let text = std::fs::read_to_string(&journal).unwrap();
    let records: Vec<Record> = text.lines().map(|l| Record::decode(l).unwrap()).collect();
    let priority_of = |id: u64| {
        records.iter().find_map(|r| match r {
            Record::Submitted { job, priority, .. } if *job == id => Some(*priority),
            _ => None,
        })
    };
    // Dispatch order of the six lane jobs (ids 3..=8), skipping the blockers.
    let started: Vec<u64> = records
        .iter()
        .filter_map(|r| match r {
            Record::Started { job } if *job >= 3 => Some(*job),
            _ => None,
        })
        .collect();
    assert_eq!(started.len(), 6, "journal: {text}");
    let lanes: Vec<&str> = started
        .iter()
        .map(|id| priority_of(*id).unwrap().as_str())
        .collect();
    // Weighted 3:1 round-robin: interactive jobs overtake the earlier batch
    // submissions instead of queueing behind them (FIFO would give
    // [batch, batch, batch, interactive, interactive, interactive]).
    assert_eq!(lanes[0], "interactive", "dispatch order: {lanes:?}");
    let last_interactive = lanes.iter().rposition(|l| *l == "interactive").unwrap();
    let last_batch = lanes.iter().rposition(|l| *l == "batch").unwrap();
    assert!(
        last_interactive < last_batch,
        "interactive lane should drain before batch finishes: {lanes:?}"
    );

    // Every job reached exactly one terminal record.
    for id in 1..=8u64 {
        let terminals = records
            .iter()
            .filter(|r| {
                matches!(r,
                    Record::Completed { job, .. } | Record::Failed { job, .. } | Record::Cancelled { job }
                    if *job == id)
            })
            .count();
        assert_eq!(terminals, 1, "job {id} in journal: {text}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
