//! Journal recovery tests: a gateway restarted on the journal of a crashed
//! server must lose no job, complete none twice, re-run still-queued work,
//! and deterministically fail work that was mid-flight at the crash.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use zkml_net::{http_request, Gateway, GatewayConfig, Json, Record};
use zkml_service::ServiceConfig;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkml-net-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn status_of(addr: &str, id: u64) -> Json {
    let resp = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(resp.status, 200, "job {id}: {}", resp.body);
    Json::parse(&resp.body).unwrap()
}

fn state_of(addr: &str, id: u64) -> String {
    status_of(addr, id)
        .get("status")
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

fn read_records(path: &PathBuf) -> Vec<Record> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|l| Record::decode(l).unwrap())
        .collect()
}

fn terminal_count(records: &[Record], id: u64) -> usize {
    records
        .iter()
        .filter(|r| {
            matches!(r,
                Record::Completed { job, .. } | Record::Failed { job, .. } | Record::Cancelled { job }
                if *job == id)
        })
        .count()
}

/// Simulated crash: a hand-written journal capturing a server that died with
/// one completed job, one mid-flight, one still queued, and one cancelled.
/// Restart must bring every job to a terminal state exactly once.
#[test]
fn replay_recovers_every_job_exactly_once() {
    let dir = tempdir("crash");
    let journal = dir.join("journal.jsonl");
    // What a crashed server leaves behind (job 3 queued but never started).
    std::fs::write(
        &journal,
        concat!(
            "{\"rec\":\"submitted\",\"job\":1,\"tenant\":\"a\",\"priority\":\"interactive\",\"kind\":\"sleep\",\"sleep_ms\":1}\n",
            "{\"rec\":\"started\",\"job\":1}\n",
            "{\"rec\":\"completed\",\"job\":1,\"k\":0,\"segments\":0,\"prove_ms\":0}\n",
            "{\"rec\":\"submitted\",\"job\":2,\"tenant\":\"a\",\"priority\":\"interactive\",\"kind\":\"sleep\",\"sleep_ms\":60000}\n",
            "{\"rec\":\"started\",\"job\":2}\n",
            "{\"rec\":\"submitted\",\"job\":3,\"tenant\":\"b\",\"priority\":\"batch\",\"kind\":\"sleep\",\"sleep_ms\":5}\n",
            "{\"rec\":\"submitted\",\"job\":4,\"tenant\":\"b\",\"priority\":\"interactive\",\"kind\":\"sleep\",\"sleep_ms\":5}\n",
            "{\"rec\":\"cancelled\",\"job\":4}\n",
        ),
    )
    .unwrap();

    let gw = Gateway::start(GatewayConfig {
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        journal: Some(journal.clone()),
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gw.local_addr().to_string();

    // Completed and cancelled jobs keep their terminal states; the
    // mid-flight job is failed deterministically, not re-run (its 60s sleep
    // would otherwise still be going).
    assert_eq!(state_of(&addr, 1), "completed");
    assert_eq!(state_of(&addr, 2), "failed");
    assert!(status_of(&addr, 2)
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("interrupted by server restart"));
    assert_eq!(state_of(&addr, 4), "cancelled");
    // A replayed completion has no artifact bytes to serve.
    assert_eq!(
        status_of(&addr, 1)
            .get("result_available")
            .and_then(Json::as_bool),
        Some(false)
    );

    // The queued job re-runs to completion.
    let deadline = Instant::now() + Duration::from_secs(20);
    while state_of(&addr, 3) != "completed" {
        assert!(Instant::now() < deadline, "job 3 never re-ran");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Job numbering resumes past the replayed ids.
    let resp = http_request(&addr, "POST", "/v1/jobs", Some("{\"kind\":\"sleep\"}")).unwrap();
    assert_eq!(resp.status, 202);
    let new_id = Json::parse(&resp.body)
        .unwrap()
        .get("job_id")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(new_id, 5);
    gw.shutdown();

    let records = read_records(&journal);
    for id in 1..=5 {
        assert_eq!(terminal_count(&records, id), 1, "job {id}");
    }

    // A second restart on the recovered journal changes nothing: every job
    // is already terminal, so no new records appear (idempotent recovery).
    let before = records.len();
    let gw = Gateway::start(GatewayConfig {
        journal: Some(journal.clone()),
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gw.local_addr().to_string();
    assert_eq!(state_of(&addr, 2), "failed");
    assert_eq!(state_of(&addr, 3), "completed");
    gw.shutdown();
    assert_eq!(read_records(&journal).len(), before);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Live crash-equivalent: drop a gateway WITHOUT draining is not possible
/// through the public API (drop drains), so simulate the kill by copying the
/// journal mid-run and restarting from the copy.
#[test]
fn snapshot_of_running_journal_recovers() {
    let dir = tempdir("live");
    let journal = dir.join("journal.jsonl");
    let gw = Gateway::start(GatewayConfig {
        service: ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
        journal: Some(journal.clone()),
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gw.local_addr().to_string();
    for _ in 0..3 {
        let r = http_request(
            &addr,
            "POST",
            "/v1/jobs",
            Some("{\"kind\":\"sleep\",\"sleep_ms\":400}"),
        )
        .unwrap();
        assert_eq!(r.status, 202);
    }
    std::thread::sleep(Duration::from_millis(100));
    // "kill -9": snapshot the journal while jobs are running and queued.
    let snapshot = dir.join("snapshot.jsonl");
    std::fs::copy(&journal, &snapshot).unwrap();
    gw.shutdown();

    let gw = Gateway::start(GatewayConfig {
        journal: Some(snapshot.clone()),
        ..GatewayConfig::default()
    })
    .unwrap();
    let addr = gw.local_addr().to_string();
    // Every job from the snapshot reaches a terminal state: started ones
    // fail, queued ones re-run.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let states: Vec<String> = (1..=3).map(|id| state_of(&addr, id)).collect();
        if states
            .iter()
            .all(|s| s == "completed" || s == "failed" || s == "cancelled")
        {
            break;
        }
        assert!(Instant::now() < deadline, "stuck: {states:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    gw.shutdown();
    let records = read_records(&snapshot);
    for id in 1..=3 {
        assert_eq!(terminal_count(&records, id), 1, "job {id}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
