//! Golden-vector regression test for the ZKSB bundle encoding.
//!
//! A segmented proof's serialized form covers the container layout
//! (magic, counts, length prefixes), every segment's verifying key and
//! instance encoding, and the per-segment proof bytes — all deterministic
//! under seeded SRS and prover randomness. Pinning the bytes catches any
//! accidental format drift: old spooled bundles must keep verifying across
//! releases, so an encoding change has to be deliberate (regenerate with
//! `ZKML_REGEN_GOLDEN=1`).

use std::path::PathBuf;
use zkml::{Gadget, HardwareStats, NumericConfig, OpSchedule, OptimizerOptions, ScheduleBuilder};
use zkml_pcs::Backend;
use zkml_shard::{
    compile_segments, prove_compiled, verify_bundle, FreshKeySource, KeySource, SegmentSpec,
    SegmentedProof,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var("ZKML_REGEN_GOLDEN").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|_| {
        panic!("missing golden fixture {path:?}; generate it with ZKML_REGEN_GOLDEN=1")
    });
    assert_eq!(
        expected.len(),
        actual.len(),
        "{name}: bundle length changed ({} -> {}); regenerate with ZKML_REGEN_GOLDEN=1 \
         if the format change is intentional",
        expected.len(),
        actual.len()
    );
    let first_diff = expected.iter().zip(actual).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "{name}: bundle bytes diverge from the golden fixture at offset {first_diff:?}; \
         regenerate with ZKML_REGEN_GOLDEN=1 if the change is intentional"
    );
}

/// relu -> elementwise mul + dot -> sum; cuts into two segments with the
/// relu outputs as the boundary tensor.
fn toy_schedule() -> OpSchedule {
    let mut sb = ScheduleBuilder::new(NumericConfig::default_nano());
    let xs = sb.load_values(&[3, -2, 5, 1, -4, 7, 2, -1]);
    let ws = sb.load_values(&[2; 8]);
    let r = sb.relu(&xs);
    let pairs: Vec<_> = r.iter().zip(&ws).map(|(a, b)| (*a, *b)).collect();
    let m = sb.arith_pack(Gadget::MulPack, &pairs);
    let d = sb.dot(&r, &ws, None);
    let s = sb.sum(&[m[0], m[1], d]);
    sb.finish(vec![(vec![1], vec![s])])
}

fn golden_bundle() -> SegmentedProof {
    let opts = OptimizerOptions::new(Backend::Kzg, 12);
    let hw = HardwareStats::fixture();
    let keys = FreshKeySource::default();
    let segs = compile_segments(&toy_schedule(), SegmentSpec::Fixed(2), &opts, &hw).unwrap();
    assert_eq!(segs.len(), 2, "toy schedule should cut in two");
    let bundle = prove_compiled([0x5Eu8; 32], &segs, &keys, &opts, 42).unwrap();
    verify_bundle(&bundle, |b, k| keys.params(b, k)).expect("fixture bundle must verify");
    bundle
}

#[test]
fn zksb_bundle_bytes_match_golden() {
    let bundle = golden_bundle();
    let bytes = bundle.to_bytes();

    // Determinism precondition for a byte-level fixture: proving the same
    // segments again must reproduce the bundle exactly.
    let bytes2 = golden_bundle().to_bytes();
    assert_eq!(bytes, bytes2, "segmented proving must be deterministic");

    assert_golden("toy_bundle.zksb", &bytes);

    // The committed encoding must stay self-describing: a round-trip
    // through from_bytes yields a bundle that still batch-verifies.
    let restored = SegmentedProof::from_bytes(&bytes).expect("golden bundle parses");
    let keys = FreshKeySource::default();
    verify_bundle(&restored, |b, k| keys.params(b, k)).expect("restored bundle verifies");
}
