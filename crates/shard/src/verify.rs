//! Bundle verification: boundary chaining, per-segment transcript-bound
//! verification, and one batched KZG settlement for the whole chain.

use crate::bundle::{segment_binding, SegmentedProof};
use crate::ShardError;
use std::sync::Arc;
use zkml_pcs::{batch_check, Backend, KzgSrs, Params, Verification};
use zkml_plonk::{verify_proof_committed, VerifyingKey, WeightCommitment};

/// What a successful [`verify_bundle`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BundleReport {
    /// Segments in the bundle.
    pub segments: usize,
    /// KZG accumulators settled by the single batched multi-pairing
    /// (0 for IPA bundles, which verify completely per segment).
    pub kzg_batched: usize,
}

/// Verifies a segmented proof bundle end to end.
///
/// Checks, in order:
///
/// 1. **Shape** — at least one segment, the first with an empty boundary-in
///    prefix, every header `k` matching its verifying key.
/// 2. **Chaining** — segment `i`'s instance past its boundary-in prefix
///    equals segment `i+1`'s boundary-in prefix, value for value; together
///    with each segment's proof this pins the bundle's
///    [`public_outputs`](SegmentedProof::public_outputs) to the composed
///    model evaluated on the first segment's committed inputs.
/// 3. **Per-segment proofs** — verified in parallel with the transcript
///    bound to `(chain digest, position, segment count)` recomputed from
///    the bundle itself, so reordering, splicing, or tampering with any
///    segment's public data invalidates every proof's Fiat–Shamir
///    challenges.
/// 4. **Settlement** — KZG pairing checks are deferred and folded into
///    **one** multi-pairing via [`zkml_pcs::batch_check`] (all segments
///    share the deterministic SRS's tau, whatever their `k`); IPA segments
///    were already settled in step 3.
///
/// `params_for` supplies the commitment params per `(backend, k)` —
/// typically an artifact cache or a [`crate::FreshKeySource`] closure.
pub fn verify_bundle<F>(bundle: &SegmentedProof, params_for: F) -> Result<BundleReport, ShardError>
where
    F: Fn(Backend, u32) -> Arc<Params> + Sync,
{
    let n = bundle.segments.len();
    if n == 0 {
        return Err(ShardError::Malformed("bundle has no segments".into()));
    }
    if bundle.segments[0].boundary_in_len != 0 {
        return Err(ShardError::Verify(
            "first segment claims boundary inputs".into(),
        ));
    }

    let mut vks = Vec::with_capacity(n);
    let mut wcs: Vec<Option<WeightCommitment>> = Vec::with_capacity(n);
    for (i, s) in bundle.segments.iter().enumerate() {
        if (s.boundary_in_len as usize) > s.instance.len() {
            return Err(ShardError::Malformed(format!(
                "segment {i}: boundary prefix longer than instance column"
            )));
        }
        let vk = VerifyingKey::from_bytes(&s.vk_bytes)
            .map_err(|e| ShardError::Malformed(format!("segment {i}: bad verifying key: {e}")))?;
        if vk.k != s.k {
            return Err(ShardError::Malformed(format!(
                "segment {i}: header k = {} but verifying key k = {}",
                s.k, vk.k
            )));
        }
        // A weight-bearing segment must carry its weight commitment, and a
        // weight-free one must not: both directions are bundle-shape
        // errors, caught before any proof math runs.
        let wc = if vk.cs.num_committed > 0 {
            if s.weight_commitment.is_empty() {
                return Err(ShardError::Malformed(format!(
                    "segment {i}: circuit has committed weight columns but \
                     the bundle carries no weight commitment"
                )));
            }
            Some(
                WeightCommitment::from_bytes(&s.weight_commitment).map_err(|e| {
                    ShardError::Malformed(format!("segment {i}: bad weight commitment: {e}"))
                })?,
            )
        } else {
            if !s.weight_commitment.is_empty() {
                return Err(ShardError::Malformed(format!(
                    "segment {i}: weight commitment present for a circuit \
                     without committed columns"
                )));
            }
            None
        };
        wcs.push(wc);
        vks.push(vk);
    }

    for i in 0..n - 1 {
        let out = &bundle.segments[i].instance[bundle.segments[i].boundary_in_len as usize..];
        let next = &bundle.segments[i + 1];
        let inn = &next.instance[..next.boundary_in_len as usize];
        if out != inn {
            return Err(ShardError::Verify(format!(
                "boundary mismatch between segments {i} and {}",
                i + 1
            )));
        }
    }

    let chain = bundle.chain_digest();
    let results: Vec<Result<(Verification, Arc<Params>), ShardError>> = zkml_par::par_map(n, |i| {
        let s = &bundle.segments[i];
        let params = params_for(bundle.backend, s.k);
        let instance = [s.instance.clone()];
        let binding = segment_binding(&chain, i, n);
        let v = verify_proof_committed(
            &params,
            &vks[i],
            &instance,
            &s.proof,
            &binding,
            wcs[i].as_ref(),
        )
        .map_err(|e| ShardError::Verify(format!("segment {i}: {e}")))?;
        Ok((v, params))
    });

    let mut accs = Vec::new();
    let mut srs: Option<&KzgSrs> = None;
    let mut held: Vec<Arc<Params>> = Vec::with_capacity(n);
    for r in &results {
        match r {
            Err(e) => {
                return Err(match e {
                    ShardError::Verify(s) => ShardError::Verify(s.clone()),
                    other => ShardError::Malformed(other.to_string()),
                })
            }
            Ok((_, params)) => held.push(Arc::clone(params)),
        }
    }
    for (i, r) in results.iter().enumerate() {
        let Ok((v, _)) = r else { unreachable!() };
        match v {
            Verification::Complete => {}
            Verification::Deferred(acc) => {
                let Params::Kzg(s) = held[i].as_ref() else {
                    return Err(ShardError::Verify(format!(
                        "segment {i}: deferred verification without KZG params"
                    )));
                };
                match srs {
                    None => srs = Some(s),
                    Some(first) => {
                        // The deterministic setup shares one tau across
                        // every k; a params source violating that cannot
                        // be folded into one pairing.
                        if first.tau_g2 != s.tau_g2 {
                            return Err(ShardError::Verify(
                                "segments use incompatible SRS instances".into(),
                            ));
                        }
                    }
                }
                accs.push(acc.clone());
            }
        }
    }

    if let Some(s) = srs {
        if !batch_check(s, &accs) {
            return Err(ShardError::Verify("batched KZG settlement failed".into()));
        }
    }

    Ok(BundleReport {
        segments: n,
        kzg_batched: accs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove::{compile_segments, prove_compiled, FreshKeySource, KeySource, SegmentSpec};
    use zkml::{
        eval_schedule, Gadget, HardwareStats, NumericConfig, OpSchedule, OptimizerOptions,
        ScheduleBuilder,
    };
    use zkml_ff::{Fr, PrimeField};

    /// relu -> dot -> add, enough structure to cut in two.
    fn toy_schedule() -> OpSchedule {
        let mut sb = ScheduleBuilder::new(NumericConfig::default_nano());
        let xs = sb.load_values(&[3, -2, 5, 1, -4, 7, 2, -1]);
        let ws = sb.load_values(&[2; 8]);
        let r = sb.relu(&xs);
        let pairs: Vec<_> = r.iter().zip(&ws).map(|(a, b)| (*a, *b)).collect();
        let m = sb.arith_pack(Gadget::MulPack, &pairs);
        let d = sb.dot(&r, &ws, None);
        let s = sb.sum(&[m[0], m[1], d]);
        sb.finish(vec![(vec![1], vec![s])])
    }

    fn setup() -> (OptimizerOptions, &'static HardwareStats) {
        let opts = OptimizerOptions::new(zkml_pcs::Backend::Kzg, 12);
        let hw = Box::leak(Box::new(HardwareStats::fixture()));
        (opts, hw)
    }

    #[test]
    fn segmented_roundtrip_batches_and_matches_monolithic() {
        let sched = toy_schedule();
        let (opts, hw) = setup();
        let keys = FreshKeySource::default();
        let model_hash = [0xA5u8; 32];

        let segs = compile_segments(&sched, SegmentSpec::Fixed(2), &opts, hw).unwrap();
        assert_eq!(segs.len(), 2, "toy schedule should cut in two");
        let bundle = prove_compiled(model_hash, &segs, &keys, &opts, 42).unwrap();

        let report = verify_bundle(&bundle, |b, k| keys.params(b, k)).unwrap();
        assert_eq!(report.segments, 2);
        assert_eq!(report.kzg_batched, 2, "KZG must settle via the batch");

        // Public outputs match the monolithic evaluation.
        let vals = eval_schedule(&sched);
        let expected = Fr::from_i64(*vals.last().unwrap());
        assert_eq!(bundle.public_outputs(), &[expected]);

        // And the serialized form round-trips to a verifying bundle.
        let back = SegmentedProof::from_bytes(&bundle.to_bytes()).unwrap();
        verify_bundle(&back, |b, k| keys.params(b, k)).unwrap();
    }

    #[test]
    fn tampered_boundary_and_order_rejected() {
        let sched = toy_schedule();
        let (opts, hw) = setup();
        let keys = FreshKeySource::default();
        let segs = compile_segments(&sched, SegmentSpec::Fixed(2), &opts, hw).unwrap();
        let bundle = prove_compiled([1u8; 32], &segs, &keys, &opts, 7).unwrap();
        let ok = |b: &SegmentedProof| verify_bundle(b, |be, k| keys.params(be, k)).is_ok();
        assert!(ok(&bundle));

        // Tampering with a boundary instance value breaks the chain (and
        // the binding).
        let mut t = bundle.clone();
        let cut = t.segments[0].boundary_in_len as usize;
        t.segments[0].instance[cut] += Fr::from_u64(1);
        assert!(!ok(&t));

        // Swapping segment order must fail even though each proof is
        // individually valid somewhere.
        let mut sw = bundle.clone();
        sw.segments.swap(0, 1);
        assert!(!ok(&sw));

        // Proof bytes are covered by verification itself.
        let mut p = bundle.clone();
        let mid = p.segments[1].proof.len() / 2;
        p.segments[1].proof[mid] ^= 1;
        assert!(!ok(&p));
    }

    /// Like `toy_schedule` but with the multiplier vector loaded as
    /// committed weights, so segments carry weight commitments.
    fn weighted_schedule(w: i64) -> OpSchedule {
        let mut sb = ScheduleBuilder::new(NumericConfig::default_nano());
        let xs = sb.load_values(&[3, -2, 5, 1, -4, 7, 2, -1]);
        let ws = sb.load_weights(&[w; 8]);
        let r = sb.relu(&xs);
        let pairs: Vec<_> = r.iter().zip(&ws).map(|(a, b)| (*a, *b)).collect();
        let m = sb.arith_pack(Gadget::MulPack, &pairs);
        let d = sb.dot(&r, &ws, None);
        let s = sb.sum(&[m[0], m[1], d]);
        sb.finish(vec![(vec![1], vec![s])])
    }

    #[test]
    fn weighted_segments_verify_and_reject_foreign_weight_commitments() {
        let (opts, hw) = setup();
        let keys = FreshKeySource::default();
        let ok = |b: &SegmentedProof| verify_bundle(b, |be, k| keys.params(be, k)).is_ok();

        // Two bundles over the identical architecture, different weights.
        let seg_a = compile_segments(&weighted_schedule(2), SegmentSpec::Fixed(2), &opts, hw)
            .expect("compile a");
        let bundle_a = prove_compiled([0xAAu8; 32], &seg_a, &keys, &opts, 3).expect("prove a");
        let seg_b = compile_segments(&weighted_schedule(3), SegmentSpec::Fixed(2), &opts, hw)
            .expect("compile b");
        let bundle_b = prove_compiled([0xAAu8; 32], &seg_b, &keys, &opts, 3).expect("prove b");
        assert!(ok(&bundle_a));
        assert!(ok(&bundle_b));
        let weighted = bundle_a
            .segments
            .iter()
            .filter(|s| !s.weight_commitment.is_empty())
            .count();
        assert!(weighted > 0, "weighted schedule must commit weights");

        // Splice a foreign segment's weight commitment: the chain digest
        // shifts, every proof's binding diverges, the bundle dies.
        let idx = bundle_a
            .segments
            .iter()
            .position(|s| !s.weight_commitment.is_empty())
            .unwrap();
        let mut spliced = bundle_a.clone();
        spliced.segments[idx].weight_commitment = bundle_b.segments[idx].weight_commitment.clone();
        assert!(
            !ok(&spliced),
            "foreign weight commitment must not verify in this chain"
        );

        // Dropping the commitment outright is a shape error.
        let mut stripped = bundle_a.clone();
        stripped.segments[idx].weight_commitment.clear();
        assert!(!ok(&stripped));
    }
}
