//! The segmented-proof artifact: per-segment proofs plus the metadata the
//! bundle verifier needs, with a binary encoding and the chain digest that
//! binds segments to their bundle and position.

use crate::ShardError;
use zkml_ff::Fr;
use zkml_pcs::{Backend, Reader, Writer};

/// Upper bound on segments per bundle (decoder hardening; far above any
/// real cut plan).
const MAX_SEGMENTS: usize = 1 << 10;

/// One segment's share of a [`SegmentedProof`].
#[derive(Clone, Debug)]
pub struct SegmentProof {
    /// log2 of the segment circuit's row count.
    pub k: u32,
    /// The segment's serialized verifying key
    /// ([`zkml_plonk::VerifyingKey::to_bytes`]).
    pub vk_bytes: Vec<u8>,
    /// Length of the boundary-in prefix of `instance` (0 for the first
    /// segment). The remainder is the segment's boundary-out values, or
    /// the model outputs for the last segment.
    pub boundary_in_len: u32,
    /// The segment's single public-instance column.
    pub instance: Vec<Fr>,
    /// The segment's serialized [`zkml_plonk::WeightCommitment`] when its
    /// circuit carries committed weight columns; empty otherwise. Covered
    /// by the chain digest, so splicing a segment proved under different
    /// weights into the bundle breaks every segment's binding.
    pub weight_commitment: Vec<u8>,
    /// The plonk proof, created bound to this bundle's chain digest and
    /// this segment's position (see [`segment_binding`]).
    pub proof: Vec<u8>,
}

/// A model proved as a chain of segment proofs.
///
/// The bundle is the unit of verification: [`crate::verify_bundle`] checks
/// the boundary instances chain, re-derives every segment's transcript
/// binding from the bundle itself, and settles all KZG openings with one
/// multi-pairing.
#[derive(Clone, Debug)]
pub struct SegmentedProof {
    /// `Graph::content_hash()` of the proved model.
    pub model_hash: [u8; 32],
    /// Commitment backend every segment was proved under.
    pub backend: Backend,
    /// The segments, in chain order.
    pub segments: Vec<SegmentProof>,
}

fn backend_tag(b: Backend) -> u32 {
    match b {
        Backend::Kzg => 0,
        Backend::Ipa => 1,
    }
}

fn backend_from_tag(t: u32) -> Result<Backend, ShardError> {
    match t {
        0 => Ok(Backend::Kzg),
        1 => Ok(Backend::Ipa),
        _ => Err(ShardError::Malformed(format!("unknown backend tag {t}"))),
    }
}

impl SegmentedProof {
    /// Digest binding the whole chain: model hash, backend, segment count,
    /// and every segment's `(k, verifying key, boundary split, instance,
    /// weight commitment)`.
    ///
    /// Proof bytes are deliberately excluded — the digest is an *input* to
    /// proving (each segment proof is transcript-bound to it), so it can
    /// only cover what exists before any proof does. Everything that
    /// determines what the segments claim is covered, so tampering with any
    /// segment's public data changes every segment's expected binding.
    pub fn chain_digest(&self) -> [u8; 32] {
        let mut w = Writer::new();
        w.bytes(&self.model_hash);
        w.u32(backend_tag(self.backend));
        w.u32(self.segments.len() as u32);
        for s in &self.segments {
            w.u32(s.k);
            w.u64(s.vk_bytes.len() as u64);
            w.bytes(&s.vk_bytes);
            w.u32(s.boundary_in_len);
            w.u64(s.instance.len() as u64);
            for v in &s.instance {
                w.scalar(v);
            }
            w.u64(s.weight_commitment.len() as u64);
            w.bytes(&s.weight_commitment);
        }
        let mut h = zkml_transcript::Blake2b::new();
        h.update(b"zkml-segment-chain-v2");
        h.update(&w.finish());
        let digest = h.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&digest[..32]);
        out
    }

    /// Serializes the bundle.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(u32::from_be_bytes(*b"ZKSB"));
        w.u32(2); // format version (2: per-segment weight commitments)
        w.bytes(&self.model_hash);
        w.u32(backend_tag(self.backend));
        w.u32(self.segments.len() as u32);
        for s in &self.segments {
            w.u32(s.k);
            w.u64(s.vk_bytes.len() as u64);
            w.bytes(&s.vk_bytes);
            w.u32(s.boundary_in_len);
            w.u64(s.instance.len() as u64);
            for v in &s.instance {
                w.scalar(v);
            }
            w.u64(s.weight_commitment.len() as u64);
            w.bytes(&s.weight_commitment);
            w.u64(s.proof.len() as u64);
            w.bytes(&s.proof);
        }
        w.finish()
    }

    /// Deserializes a bundle written by [`SegmentedProof::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShardError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != u32::from_be_bytes(*b"ZKSB") {
            return Err(ShardError::Malformed("bad bundle magic".into()));
        }
        let version = r.u32()?;
        if version != 2 {
            return Err(ShardError::Malformed(format!(
                "unsupported bundle version {version} (expected 2; version 1 \
                 bundles predate weight commitments and must be re-proved)"
            )));
        }
        let model_hash: [u8; 32] = r
            .take_bytes(32)?
            .try_into()
            .map_err(|_| ShardError::Malformed("bad model hash".into()))?;
        let backend = backend_from_tag(r.u32()?)?;
        let nsegs = r.u32()? as usize;
        if nsegs == 0 || nsegs > MAX_SEGMENTS {
            return Err(ShardError::Malformed(format!(
                "segment count {nsegs} out of range"
            )));
        }
        let mut segments = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            let k = r.u32()?;
            let vk_len = r.u64()? as usize;
            if vk_len > 1 << 28 {
                return Err(ShardError::Malformed("verifying key too long".into()));
            }
            let vk_bytes = r.take_bytes(vk_len)?.to_vec();
            let boundary_in_len = r.u32()?;
            let n_inst = r.u64()? as usize;
            if n_inst > 1 << 28 {
                return Err(ShardError::Malformed("instance column too long".into()));
            }
            let instance = (0..n_inst)
                .map(|_| r.scalar())
                .collect::<Result<Vec<Fr>, _>>()?;
            if (boundary_in_len as usize) > instance.len() {
                return Err(ShardError::Malformed(
                    "boundary prefix longer than instance column".into(),
                ));
            }
            let wc_len = r.u64()? as usize;
            if wc_len > 1 << 28 {
                return Err(ShardError::Malformed("weight commitment too long".into()));
            }
            let weight_commitment = r.take_bytes(wc_len)?.to_vec();
            let proof_len = r.u64()? as usize;
            if proof_len > 1 << 28 {
                return Err(ShardError::Malformed("proof too long".into()));
            }
            let proof = r.take_bytes(proof_len)?.to_vec();
            segments.push(SegmentProof {
                k,
                vk_bytes,
                boundary_in_len,
                instance,
                weight_commitment,
                proof,
            });
        }
        if !r.is_exhausted() {
            return Err(ShardError::Malformed("trailing bytes in bundle".into()));
        }
        Ok(SegmentedProof {
            model_hash,
            backend,
            segments,
        })
    }

    /// The public outputs the bundle claims for the model: the last
    /// segment's instance column past its boundary-in prefix.
    pub fn public_outputs(&self) -> &[Fr] {
        let last = self.segments.last().expect("bundle has >= 1 segment");
        &last.instance[last.boundary_in_len as usize..]
    }
}

/// The transcript-binding context for segment `index` of `nsegs` in the
/// bundle with the given chain digest.
///
/// Passed as the `binding` of [`zkml_plonk::create_proof_bound`] /
/// [`zkml_plonk::verify_proof_deferred`], it commits the proof to its exact
/// position in this exact chain: swapping two segments, splicing a segment
/// from another bundle, or altering any segment's public data all change
/// the expected binding and make the Fiat–Shamir challenges diverge.
pub fn segment_binding(chain: &[u8; 32], index: usize, nsegs: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 32 + 8);
    out.extend_from_slice(b"zkml-segment-bind-v1");
    out.extend_from_slice(chain);
    out.extend_from_slice(&(index as u32).to_le_bytes());
    out.extend_from_slice(&(nsegs as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_ff::PrimeField;

    fn sample_bundle() -> SegmentedProof {
        SegmentedProof {
            model_hash: [7u8; 32],
            backend: Backend::Kzg,
            segments: vec![
                SegmentProof {
                    k: 5,
                    vk_bytes: vec![1, 2, 3],
                    boundary_in_len: 0,
                    instance: vec![Fr::from_u64(10), Fr::from_u64(20)],
                    weight_commitment: vec![0xAA, 0xBB],
                    proof: vec![9, 9],
                },
                SegmentProof {
                    k: 6,
                    vk_bytes: vec![4, 5],
                    boundary_in_len: 2,
                    instance: vec![Fr::from_u64(10), Fr::from_u64(20), Fr::from_u64(30)],
                    weight_commitment: Vec::new(),
                    proof: vec![8],
                },
            ],
        }
    }

    #[test]
    fn bundle_roundtrips() {
        let b = sample_bundle();
        let bytes = b.to_bytes();
        let back = SegmentedProof::from_bytes(&bytes).unwrap();
        assert_eq!(back.model_hash, b.model_hash);
        assert_eq!(back.backend, b.backend);
        assert_eq!(back.segments.len(), 2);
        assert_eq!(back.segments[1].instance, b.segments[1].instance);
        assert_eq!(back.segments[1].boundary_in_len, 2);
        assert_eq!(back.chain_digest(), b.chain_digest());
        assert_eq!(back.public_outputs(), &[Fr::from_u64(30)]);
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let bytes = sample_bundle().to_bytes();
        for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SegmentedProof::from_bytes(&bytes[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(SegmentedProof::from_bytes(&extra).is_err());
    }

    #[test]
    fn chain_digest_covers_public_data_not_proofs() {
        let b = sample_bundle();
        let base = b.chain_digest();

        // Proof bytes are excluded (the digest is a proving input).
        let mut p = b.clone();
        p.segments[0].proof = vec![0xFF];
        assert_eq!(p.chain_digest(), base);

        // Everything public changes the digest.
        let mut m = b.clone();
        m.model_hash[0] ^= 1;
        assert_ne!(m.chain_digest(), base);
        let mut i = b.clone();
        i.segments[1].instance[0] += Fr::from_u64(1);
        assert_ne!(i.chain_digest(), base);
        let mut v = b.clone();
        v.segments[0].vk_bytes.push(0);
        assert_ne!(v.chain_digest(), base);
        let mut s = b.clone();
        s.segments.swap(0, 1);
        assert_ne!(s.chain_digest(), base);
        // A different (or missing) weight commitment is a different chain:
        // splicing a foreign segment's weights can't preserve bindings.
        let mut wc = b.clone();
        wc.segments[0].weight_commitment[0] ^= 1;
        assert_ne!(wc.chain_digest(), base);
        let mut wd = b.clone();
        wd.segments[0].weight_commitment.clear();
        assert_ne!(wd.chain_digest(), base);
    }

    #[test]
    fn weight_commitment_roundtrips() {
        let b = sample_bundle();
        let back = SegmentedProof::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back.segments[0].weight_commitment, vec![0xAA, 0xBB]);
        assert!(back.segments[1].weight_commitment.is_empty());
    }

    #[test]
    fn version_1_bundles_rejected() {
        // A pre-weight-commitment bundle: same layout minus the
        // weight-commitment field, tagged version 1.
        let b = sample_bundle();
        let mut w = Writer::new();
        w.u32(u32::from_be_bytes(*b"ZKSB"));
        w.u32(1);
        w.bytes(&b.model_hash);
        w.u32(0);
        w.u32(b.segments.len() as u32);
        for s in &b.segments {
            w.u32(s.k);
            w.u64(s.vk_bytes.len() as u64);
            w.bytes(&s.vk_bytes);
            w.u32(s.boundary_in_len);
            w.u64(s.instance.len() as u64);
            for v in &s.instance {
                w.scalar(v);
            }
            w.u64(s.proof.len() as u64);
            w.bytes(&s.proof);
        }
        let err = SegmentedProof::from_bytes(&w.finish()).unwrap_err();
        assert!(
            err.to_string().contains("version 1"),
            "old-format bundle must be rejected by version, got: {err}"
        );
    }

    #[test]
    fn bindings_differ_per_position_and_chain() {
        let chain_a = [1u8; 32];
        let chain_b = [2u8; 32];
        assert_ne!(
            segment_binding(&chain_a, 0, 2),
            segment_binding(&chain_a, 1, 2)
        );
        assert_ne!(
            segment_binding(&chain_a, 0, 2),
            segment_binding(&chain_a, 0, 3)
        );
        assert_ne!(
            segment_binding(&chain_a, 0, 2),
            segment_binding(&chain_b, 0, 2)
        );
    }
}
