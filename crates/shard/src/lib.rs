//! zkml-shard: segmented proving over the ZKML compile pipeline.
//!
//! The paper proves one model as one circuit, so the largest provable
//! model is whatever fits in a single `k`. This crate removes that cap by
//! sharding the backend-independent [`zkml::OpSchedule`] at tensor
//! boundaries into `N` sub-schedules (see `zkml::segment`), compiling each
//! through the unchanged `place()`/`synthesize()` pipeline into its own
//! bounded-`k` sub-circuit, and proving the segments concurrently on the
//! `zkml-par` pool.
//!
//! Soundness of the chain rests on three mechanisms:
//!
//! 1. **Instance chaining** — each segment exposes its boundary tensors as
//!    public instance values (`[boundary-in ++ boundary-out]`); the bundle
//!    verifier checks segment `i`'s outgoing slice equals segment `i+1`'s
//!    incoming slice, so the segments provably compute one composed
//!    function.
//! 2. **Transcript binding** — every segment proof is created with
//!    [`zkml_plonk::create_proof_bound`] over the bundle's *chain digest*
//!    (covering the model hash, backend, every segment's verifying key and
//!    instance column) plus the segment's position, so a proof cannot be
//!    replayed at another position or spliced into another bundle.
//! 3. **Batched settlement** — on KZG, per-segment verification is run with
//!    [`zkml_plonk::verify_proof_deferred`] and the pending accumulators
//!    are settled with **one** multi-pairing via [`zkml_pcs::batch_check`]
//!    (the fixed-seed SRS shares one tau across every `k`). IPA verifies
//!    per segment.

pub mod bundle;
pub mod prove;
pub mod verify;

pub use bundle::{segment_binding, SegmentProof, SegmentedProof};
pub use prove::{
    compile_segments, prove_compiled, prove_segmented, CompiledSegment, FreshKeySource, KeySource,
    SegmentSpec, DEFAULT_SRS_SEED,
};
pub use verify::{verify_bundle, BundleReport};

/// Errors from segmented proving or bundle verification.
#[derive(Debug)]
pub enum ShardError {
    /// Cutting the schedule failed.
    Segment(zkml::SegmentError),
    /// Compiling or proving a segment failed.
    Compile(zkml::ZkmlError),
    /// The bundle is malformed (serialization, counts, lengths).
    Malformed(String),
    /// The bundle failed verification.
    Verify(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Segment(e) => write!(f, "{e}"),
            ShardError::Compile(e) => write!(f, "{e}"),
            ShardError::Malformed(s) => write!(f, "malformed bundle: {s}"),
            ShardError::Verify(s) => write!(f, "bundle verification failed: {s}"),
        }
    }
}
impl std::error::Error for ShardError {}

impl From<zkml::SegmentError> for ShardError {
    fn from(e: zkml::SegmentError) -> Self {
        ShardError::Segment(e)
    }
}
impl From<zkml::ZkmlError> for ShardError {
    fn from(e: zkml::ZkmlError) -> Self {
        ShardError::Compile(e)
    }
}
impl From<zkml_pcs::ReadError> for ShardError {
    fn from(e: zkml_pcs::ReadError) -> Self {
        ShardError::Malformed(e.to_string())
    }
}
