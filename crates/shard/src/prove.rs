//! Segment compilation and parallel bound proving.
//!
//! [`compile_segments`] cuts one lowered [`OpSchedule`] into segments and
//! runs each through the unchanged optimize → place → synthesize pipeline;
//! [`prove_compiled`] then derives the bundle's chain digest from the
//! segment metadata and proves every segment concurrently on the
//! `zkml-par` pool, each proof transcript-bound to its position in the
//! chain. [`prove_segmented`] is the one-call composition.

use crate::bundle::{segment_binding, SegmentProof, SegmentedProof};
use crate::ShardError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use zkml::{
    cut_schedule, optimize_schedule, CompiledCircuit, HardwareStats, LayoutPlan, OpSchedule,
    OptimizerOptions, SegmentPlan, ZkmlError,
};
use zkml_pcs::{Backend, Params};
use zkml_plonk::{CommittedWeights, ProvingKey, WeightCommitment};

/// Seed for regenerating the deterministic SRS when no external params
/// source is supplied. Matches `zkml_service::SRS_SEED` (this crate sits
/// below the service and cannot import it), so standalone bundles verify
/// against service-generated params and vice versa.
pub const DEFAULT_SRS_SEED: u64 = 0x5151;

/// How many segments to cut a model into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentSpec {
    /// Cut into (at most) this many balanced segments. `Fixed(1)` proves
    /// monolithically through the segmented path.
    Fixed(usize),
    /// Start monolithic and double the segment count until every segment's
    /// layout sweep fits within the optimizer's `max_k`.
    Auto,
}

/// Where segment proving gets its commitment params and proving keys.
///
/// Segments are independent circuits, so each wants its own `(k, params,
/// proving key)`; this trait lets the proving service route the lookups
/// through its `ArtifactCache` (in `zkml-service`, per-segment
/// `ArtifactKey::for_plan`, so the pk cache shards naturally) while
/// standalone callers use [`FreshKeySource`].
pub trait KeySource: Sync {
    /// Commitment parameters supporting `2^k` rows for `backend`.
    fn params(&self, backend: Backend, k: u32) -> Arc<Params>;

    /// The proving key for one compiled segment of the model hashing to
    /// `model_hash`. `plan` is the layout plan the segment was synthesized
    /// from (its digest keys caches before witnesses exist); `compiled` is
    /// the synthesized segment for keygen or cache validation.
    fn proving_key(
        &self,
        model_hash: [u8; 32],
        backend: Backend,
        plan: &LayoutPlan,
        compiled: &CompiledCircuit,
        params: &Params,
    ) -> Result<Arc<ProvingKey>, ZkmlError>;
}

/// A [`KeySource`] with no cache behind it: params are regenerated from a
/// fixed seed (memoized per `(backend, k)` within this source) and keygen
/// runs per segment.
pub struct FreshKeySource {
    /// Seed for [`Params::setup`]'s deterministic rng.
    pub srs_seed: u64,
    memo: Mutex<HashMap<(Backend, u32), Arc<Params>>>,
}

impl FreshKeySource {
    /// A source regenerating params from `srs_seed`.
    pub fn new(srs_seed: u64) -> Self {
        Self {
            srs_seed,
            memo: Mutex::new(HashMap::new()),
        }
    }
}

impl Default for FreshKeySource {
    fn default() -> Self {
        Self::new(DEFAULT_SRS_SEED)
    }
}

impl KeySource for FreshKeySource {
    fn params(&self, backend: Backend, k: u32) -> Arc<Params> {
        if let Some(p) = self.memo.lock().unwrap().get(&(backend, k)) {
            return Arc::clone(p);
        }
        let mut rng = StdRng::seed_from_u64(self.srs_seed);
        let fresh = Arc::new(Params::setup(backend, k, &mut rng));
        Arc::clone(
            self.memo
                .lock()
                .unwrap()
                .entry((backend, k))
                .or_insert(fresh),
        )
    }

    fn proving_key(
        &self,
        _model_hash: [u8; 32],
        _backend: Backend,
        _plan: &LayoutPlan,
        compiled: &CompiledCircuit,
        params: &Params,
    ) -> Result<Arc<ProvingKey>, ZkmlError> {
        Ok(Arc::new(compiled.keygen(params)?))
    }
}

/// One segment compiled and ready to prove.
pub struct CompiledSegment {
    /// The layout plan the segment's sweep picked (keys artifact caches).
    pub plan: LayoutPlan,
    /// The synthesized segment circuit with its witness.
    pub compiled: CompiledCircuit,
    /// Length of the boundary-in prefix of the segment's instance column.
    pub boundary_in_len: usize,
}

fn compile_plan(
    sched: &OpSchedule,
    plan: &SegmentPlan,
    opts: &OptimizerOptions,
    hw: &HardwareStats,
) -> Result<Vec<CompiledSegment>, ShardError> {
    let segs = cut_schedule(sched, plan)?;
    let mut out = Vec::with_capacity(segs.len());
    // Segments run serially here: each layout sweep is already parallel
    // over candidates internally (and deterministic at any thread count).
    for seg in segs {
        let boundary_in_len = seg.boundary_in_len();
        let report = optimize_schedule(seg.schedule, opts, hw)?;
        let compiled = report.synthesize_best()?;
        out.push(CompiledSegment {
            plan: report.best_plan.clone(),
            compiled,
            boundary_in_len,
        });
    }
    Ok(out)
}

/// Maximum segment count [`SegmentSpec::Auto`] will try before giving up.
const AUTO_MAX_SEGMENTS: usize = 64;

/// Cuts a lowered schedule per `spec` and compiles every segment through
/// the optimize → place → synthesize pipeline.
///
/// With [`SegmentSpec::Auto`], the segment count doubles from 1 until
/// every segment's sweep finds a layout within `opts.max_k` — so a model
/// too large to prove monolithically at `max_k` compiles as the smallest
/// power-of-two number of segments that fits.
pub fn compile_segments(
    sched: &OpSchedule,
    spec: SegmentSpec,
    opts: &OptimizerOptions,
    hw: &HardwareStats,
) -> Result<Vec<CompiledSegment>, ShardError> {
    match spec {
        SegmentSpec::Fixed(n) => {
            if n == 0 {
                return Err(ShardError::Malformed("segment count must be >= 1".into()));
            }
            compile_plan(sched, &SegmentPlan::balanced(sched, n), opts, hw)
        }
        SegmentSpec::Auto => {
            let mut n = 1usize;
            let mut last_segments = 0usize;
            loop {
                let plan = SegmentPlan::balanced(sched, n);
                let produced = plan.num_segments();
                if produced == last_segments {
                    // The schedule cannot be cut any finer; surface the
                    // infeasibility instead of looping.
                    return compile_plan(sched, &plan, opts, hw);
                }
                last_segments = produced;
                match compile_plan(sched, &plan, opts, hw) {
                    Err(ShardError::Compile(ZkmlError::NoFeasibleLayout { .. }))
                        if n < AUTO_MAX_SEGMENTS =>
                    {
                        n *= 2;
                    }
                    other => return other,
                }
            }
        }
    }
}

/// Deterministic per-segment proof seed: a fixed-point mix of the caller's
/// seed and the segment index, so bundles are bit-identical across runs
/// and thread counts for a given seed.
fn segment_seed(seed: u64, index: usize) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)
}

/// Proves compiled segments concurrently and assembles the bundle.
///
/// Key material is fetched (or generated) per segment in parallel first;
/// the chain digest is then derived from the complete metadata, and every
/// segment is proved on the `zkml-par` pool with its proof bound to
/// `(chain digest, position)`. Proof randomness derives only from `seed`
/// and the segment index, so the bundle is deterministic.
pub fn prove_compiled(
    model_hash: [u8; 32],
    segments: &[CompiledSegment],
    keys: &dyn KeySource,
    opts: &OptimizerOptions,
    seed: u64,
) -> Result<SegmentedProof, ShardError> {
    if segments.is_empty() {
        return Err(ShardError::Malformed("no segments to prove".into()));
    }
    let backend = opts.backend;

    type KeyMaterial = Result<
        (
            Arc<Params>,
            Arc<ProvingKey>,
            Option<(WeightCommitment, CommittedWeights)>,
        ),
        ZkmlError,
    >;
    let keyed: Vec<KeyMaterial> = zkml_par::par_map(segments.len(), |i| {
        let seg = &segments[i];
        let params = keys.params(backend, seg.compiled.k);
        let pk = keys.proving_key(model_hash, backend, &seg.plan, &seg.compiled, &params)?;
        // Weight-bearing segments commit their committed-column plane once
        // here; the commitment rides in the bundle (chain-digested) and
        // the encodings feed the bound proof below.
        let weights = if seg.compiled.has_committed() {
            Some(seg.compiled.commit_weights(&params)?)
        } else {
            None
        };
        Ok((params, pk, weights))
    });
    let mut material = Vec::with_capacity(segments.len());
    for r in keyed {
        material.push(r?);
    }

    let mut bundle = SegmentedProof {
        model_hash,
        backend,
        segments: segments
            .iter()
            .zip(&material)
            .map(|(seg, (_, pk, weights))| SegmentProof {
                k: seg.compiled.k,
                vk_bytes: pk.vk.to_bytes(),
                boundary_in_len: seg.boundary_in_len as u32,
                instance: seg.compiled.instance()[0].clone(),
                weight_commitment: weights
                    .as_ref()
                    .map(|(wc, _)| wc.to_bytes())
                    .unwrap_or_default(),
                proof: Vec::new(),
            })
            .collect(),
    };
    let chain = bundle.chain_digest();
    let nsegs = segments.len();

    let proofs: Vec<Result<Vec<u8>, ZkmlError>> = zkml_par::par_map(nsegs, |i| {
        let (params, pk, weights) = &material[i];
        let mut rng = StdRng::seed_from_u64(segment_seed(seed, i));
        let binding = segment_binding(&chain, i, nsegs);
        match weights {
            Some((_, cw)) => segments[i]
                .compiled
                .prove_with_weights(params, pk, &mut rng, &binding, cw),
            None => segments[i]
                .compiled
                .prove_bound(params, pk, &mut rng, &binding),
        }
    });
    for (slot, proof) in bundle.segments.iter_mut().zip(proofs) {
        slot.proof = proof?;
    }
    Ok(bundle)
}

/// One-call segmented proving: cut, compile, and prove a lowered schedule.
pub fn prove_segmented(
    sched: &OpSchedule,
    spec: SegmentSpec,
    model_hash: [u8; 32],
    keys: &dyn KeySource,
    opts: &OptimizerOptions,
    hw: &HardwareStats,
    seed: u64,
) -> Result<SegmentedProof, ShardError> {
    let segments = compile_segments(sched, spec, opts, hw)?;
    prove_compiled(model_hash, &segments, keys, opts, seed)
}
