//! KZG polynomial commitments with batched multi-point openings (GWC-style).
//!
//! The structured reference string is generated locally from a random toxic
//! scalar. The paper uses the Perpetual-Powers-of-Tau ceremony transcript
//! (supporting up to `2^28` rows); a locally generated SRS is the identical
//! mathematical object, minus the distributed-ceremony trust story, which is
//! out of scope for a systems reproduction (see DESIGN.md).

use crate::serial::{ReadError, Reader, Writer};
use rand::RngCore;
use zkml_curves::{msm, pairing_check, G1Affine, G1Projective, G2Affine};
use zkml_ff::{Field, Fr, PrimeField};
use zkml_poly::Coeffs;
use zkml_transcript::Transcript;

/// A KZG structured reference string: `[tau^i] G1` and `[tau] G2`.
#[derive(Clone)]
pub struct KzgSrs {
    /// log2 of the maximum supported polynomial length.
    pub k: u32,
    /// `[tau^i] G1` for `i < 2^k`.
    pub g1_powers: Vec<G1Affine>,
    /// `[1] G2`.
    pub g2: G2Affine,
    /// `[tau] G2`.
    pub tau_g2: G2Affine,
}

/// Computes `[s_i] base` for many scalars using 8-bit fixed-base windows.
fn batch_mul_fixed_base(base: &G1Projective, scalars: &[Fr]) -> Vec<G1Affine> {
    // table[w][b] = [b * 256^w] base
    let mut tables: Vec<Vec<G1Projective>> = Vec::with_capacity(32);
    let mut window_base = *base;
    for _ in 0..32 {
        let mut table = Vec::with_capacity(255);
        let mut acc = window_base;
        for _ in 0..255 {
            table.push(acc);
            acc += window_base;
        }
        tables.push(table);
        window_base = acc; // acc = 256 * window_base
    }
    let projective: Vec<G1Projective> = zkml_par::par_map(scalars.len(), |i| {
        let bytes = scalars[i].to_bytes();
        let mut acc = G1Projective::identity();
        for (w, byte) in bytes.iter().enumerate() {
            if *byte != 0 {
                acc += tables[w][*byte as usize - 1];
            }
        }
        acc
    });
    G1Projective::batch_to_affine(&projective)
}

impl KzgSrs {
    /// Generates an SRS of size `2^k` from a random toxic scalar.
    pub fn setup(k: u32, rng: &mut impl RngCore) -> Self {
        let tau = Fr::random(rng);
        let n = 1usize << k;
        let mut powers = Vec::with_capacity(n);
        let mut cur = Fr::one();
        for _ in 0..n {
            powers.push(cur);
            cur *= tau;
        }
        let g1_powers = batch_mul_fixed_base(&G1Projective::generator(), &powers);
        let tau_g2 = G2Affine::generator().mul_scalar(&tau);
        Self {
            k,
            g1_powers,
            g2: G2Affine::generator(),
            tau_g2,
        }
    }

    /// Commits to a polynomial in coefficient form.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is longer than the SRS.
    pub fn commit(&self, poly: &Coeffs<Fr>) -> G1Affine {
        assert!(
            poly.len() <= self.g1_powers.len(),
            "polynomial exceeds SRS size"
        );
        msm(&self.g1_powers[..poly.len()], &poly.values).to_affine()
    }

    /// Opens a batch of `(polynomial, point)` queries.
    ///
    /// Queries are grouped by point; within a group polynomials are combined
    /// with powers of a transcript challenge `gamma`, and one quotient
    /// witness is emitted per distinct point. The claimed evaluations must
    /// already have been absorbed into the transcript by the caller.
    pub fn open(&self, transcript: &mut Transcript, queries: &[(&Coeffs<Fr>, Fr)]) -> Vec<u8> {
        let gamma: Fr = transcript.challenge(b"kzg-gamma");
        let groups = group_points(queries.iter().map(|(_, z)| *z));
        let mut w = Writer::new();
        for (z, idxs) in &groups {
            // F = sum_i gamma^i p_i over this group.
            let max_len = idxs.iter().map(|&i| queries[i].0.len()).max().unwrap_or(0);
            let mut combined = Coeffs::zero(max_len);
            let mut coeff = Fr::one();
            for &i in idxs {
                for (c, p) in combined.values.iter_mut().zip(&queries[i].0.values) {
                    *c += coeff * *p;
                }
                coeff *= gamma;
            }
            let witness = self.commit(&combined.kate_divide(*z));
            transcript.absorb(b"kzg-w", &witness.to_bytes());
            w.g1(&witness);
        }
        w.finish()
    }

    /// Verifies a batched opening produced by [`KzgSrs::open`].
    ///
    /// `queries` supplies `(commitment, point, claimed_eval)` in the same
    /// order the prover used.
    pub fn verify(
        &self,
        transcript: &mut Transcript,
        queries: &[(G1Affine, Fr, Fr)],
        proof: &[u8],
    ) -> Result<(), ReadError> {
        let acc = self.prepare(transcript, queries, proof)?;
        if acc.check(self) {
            Ok(())
        } else {
            Err(ReadError("KZG pairing check failed"))
        }
    }

    /// Runs everything in [`KzgSrs::verify`] *except* the final pairing
    /// check, returning the pairing inputs as a [`KzgAccumulator`].
    ///
    /// Accumulators from proofs over SRS instances sharing the same toxic
    /// scalar (same `tau_g2`) can be folded with [`batch_check`] so one
    /// multi-pairing settles many proofs — the amortization segmented
    /// proving relies on.
    pub fn prepare(
        &self,
        transcript: &mut Transcript,
        queries: &[(G1Affine, Fr, Fr)],
        proof: &[u8],
    ) -> Result<KzgAccumulator, ReadError> {
        let gamma: Fr = transcript.challenge(b"kzg-gamma");
        let groups = group_points(queries.iter().map(|(_, z, _)| *z));
        let mut r = Reader::new(proof);
        let mut witnesses = Vec::with_capacity(groups.len());
        for _ in &groups {
            let wit = r.g1()?;
            transcript.absorb(b"kzg-w", &wit.to_bytes());
            witnesses.push(wit);
        }
        if !r.is_exhausted() {
            return Err(ReadError("trailing bytes in KZG proof"));
        }
        let u: Fr = transcript.challenge(b"kzg-u");

        // Accumulate e(sum u^j W_j, [tau]_2) == e(sum u^j (F_j + z_j W_j - v_j G), [1]_2).
        let mut lhs = G1Projective::identity();
        let mut rhs = G1Projective::identity();
        let mut uj = Fr::one();
        for ((z, idxs), wit) in groups.iter().zip(&witnesses) {
            let mut f = G1Projective::identity();
            let mut v = Fr::zero();
            let mut coeff = Fr::one();
            for &i in idxs {
                f += queries[i].0.to_projective().mul_scalar(&coeff);
                v += coeff * queries[i].2;
                coeff *= gamma;
            }
            let wp = wit.to_projective();
            lhs += wp.mul_scalar(&uj);
            rhs +=
                (f + wp.mul_scalar(z) - G1Projective::generator().mul_scalar(&v)).mul_scalar(&uj);
            uj *= u;
        }
        Ok(KzgAccumulator { lhs, rhs })
    }
}

/// The deferred tail of a KZG opening verification: the two G1 points of
/// the final pairing check `e(lhs, [tau]_2) == e(rhs, [1]_2)`.
///
/// Produced by [`KzgSrs::prepare`]; settle a single accumulator with
/// [`KzgAccumulator::check`] or a whole batch with [`batch_check`].
#[derive(Clone, Debug)]
pub struct KzgAccumulator {
    /// Coefficient of `[tau]_2` in the pairing check.
    pub lhs: G1Projective,
    /// Coefficient of `[1]_2` in the pairing check.
    pub rhs: G1Projective,
}

impl KzgAccumulator {
    /// Settles this accumulator alone with one pairing check.
    pub fn check(&self, srs: &KzgSrs) -> bool {
        pairing_check(&[
            (self.lhs.to_affine(), srs.tau_g2),
            (self.rhs.negate().to_affine(), srs.g2),
        ])
    }
}

/// Settles many [`KzgAccumulator`]s with **one** pairing check.
///
/// The accumulators are folded with powers of a Fiat–Shamir challenge
/// derived from every accumulator point, so a prover cannot craft segments
/// whose individual check failures cancel: any invalid accumulator makes
/// the folded check fail except with negligible probability.
///
/// All accumulators must come from SRS instances sharing `srs`'s toxic
/// scalar (this reproduction regenerates the SRS from a fixed seed, so
/// every `k` shares one tau — callers should still guard with
/// [`KzgSrs::tau_g2`] equality when mixing params).
pub fn batch_check(srs: &KzgSrs, accs: &[KzgAccumulator]) -> bool {
    if accs.is_empty() {
        return true;
    }
    let mut transcript = Transcript::new(b"zkml-kzg-batch");
    for acc in accs {
        transcript.absorb(b"acc-lhs", &acc.lhs.to_affine().to_bytes());
        transcript.absorb(b"acc-rhs", &acc.rhs.to_affine().to_bytes());
    }
    let r: Fr = transcript.challenge(b"kzg-batch-r");
    let mut lhs = G1Projective::identity();
    let mut rhs = G1Projective::identity();
    let mut rj = Fr::one();
    for acc in accs {
        lhs += acc.lhs.mul_scalar(&rj);
        rhs += acc.rhs.mul_scalar(&rj);
        rj *= r;
    }
    pairing_check(&[
        (lhs.to_affine(), srs.tau_g2),
        (rhs.negate().to_affine(), srs.g2),
    ])
}

/// Groups query indices by point, preserving first-occurrence order.
pub fn group_points(points: impl Iterator<Item = Fr>) -> Vec<(Fr, Vec<usize>)> {
    let mut groups: Vec<(Fr, Vec<usize>)> = Vec::new();
    for (i, z) in points.enumerate() {
        if let Some((_, idxs)) = groups.iter_mut().find(|(p, _)| *p == z) {
            idxs.push(i);
        } else {
            groups.push((z, vec![i]));
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn srs(k: u32) -> KzgSrs {
        let mut rng = StdRng::seed_from_u64(1234);
        KzgSrs::setup(k, &mut rng)
    }

    #[test]
    fn fixed_base_matches_naive() {
        let mut rng = StdRng::seed_from_u64(50);
        let scalars: Vec<Fr> = (0..20).map(|_| Fr::random(&mut rng)).collect();
        let fast = batch_mul_fixed_base(&G1Projective::generator(), &scalars);
        for (s, f) in scalars.iter().zip(fast.iter()) {
            assert_eq!(G1Projective::generator().mul_scalar(s).to_affine(), *f);
        }
    }

    #[test]
    fn commitment_is_homomorphic() {
        let s = srs(6);
        let mut rng = StdRng::seed_from_u64(51);
        let a = Coeffs::new((0..40).map(|_| Fr::random(&mut rng)).collect());
        let b = Coeffs::new((0..40).map(|_| Fr::random(&mut rng)).collect());
        let sum = &a + &b;
        let ca = s.commit(&a).to_projective();
        let cb = s.commit(&b).to_projective();
        assert_eq!((ca + cb).to_affine(), s.commit(&sum));
    }

    #[test]
    fn single_open_verifies() {
        let s = srs(6);
        let mut rng = StdRng::seed_from_u64(52);
        let p = Coeffs::new((0..33).map(|_| Fr::random(&mut rng)).collect());
        let z = Fr::random(&mut rng);
        let v = p.evaluate(z);
        let c = s.commit(&p);

        let mut tp = Transcript::new(b"test");
        tp.absorb_scalar(b"eval", &v);
        let proof = s.open(&mut tp, &[(&p, z)]);

        let mut tv = Transcript::new(b"test");
        tv.absorb_scalar(b"eval", &v);
        assert!(s.verify(&mut tv, &[(c, z, v)], &proof).is_ok());
    }

    #[test]
    fn wrong_eval_rejected() {
        let s = srs(6);
        let mut rng = StdRng::seed_from_u64(53);
        let p = Coeffs::new((0..33).map(|_| Fr::random(&mut rng)).collect());
        let z = Fr::random(&mut rng);
        let v = p.evaluate(z);
        let c = s.commit(&p);

        let mut tp = Transcript::new(b"test");
        tp.absorb_scalar(b"eval", &v);
        let proof = s.open(&mut tp, &[(&p, z)]);

        let mut tv = Transcript::new(b"test");
        tv.absorb_scalar(b"eval", &v);
        let bad = v + Fr::one();
        assert!(s.verify(&mut tv, &[(c, z, bad)], &proof).is_err());
    }

    #[test]
    fn multi_poly_multi_point_batch() {
        let s = srs(7);
        let mut rng = StdRng::seed_from_u64(54);
        let polys: Vec<Coeffs<Fr>> = (0..4)
            .map(|_| Coeffs::new((0..100).map(|_| Fr::random(&mut rng)).collect()))
            .collect();
        let z1 = Fr::random(&mut rng);
        let z2 = Fr::random(&mut rng);
        // p0, p1, p2 at z1; p1, p3 at z2.
        let queries: Vec<(usize, Fr)> = vec![(0, z1), (1, z1), (2, z1), (1, z2), (3, z2)];
        let evals: Vec<Fr> = queries
            .iter()
            .map(|(i, z)| polys[*i].evaluate(*z))
            .collect();
        let commits: Vec<G1Affine> = polys.iter().map(|p| s.commit(p)).collect();

        let mut tp = Transcript::new(b"test");
        for e in &evals {
            tp.absorb_scalar(b"eval", e);
        }
        let pq: Vec<(&Coeffs<Fr>, Fr)> = queries.iter().map(|(i, z)| (&polys[*i], *z)).collect();
        let proof = s.open(&mut tp, &pq);

        let mut tv = Transcript::new(b"test");
        for e in &evals {
            tv.absorb_scalar(b"eval", e);
        }
        let vq: Vec<(G1Affine, Fr, Fr)> = queries
            .iter()
            .zip(&evals)
            .map(|((i, z), e)| (commits[*i], *z, *e))
            .collect();
        assert!(s.verify(&mut tv, &vq, &proof).is_ok());

        // Tampering with any single eval must break it.
        let mut tv2 = Transcript::new(b"test");
        for e in &evals {
            tv2.absorb_scalar(b"eval", e);
        }
        let mut vq2 = vq.clone();
        vq2[3].2 += Fr::one();
        assert!(s.verify(&mut tv2, &vq2, &proof).is_err());
    }

    #[test]
    fn batch_check_settles_many_openings_at_once() {
        let s = srs(6);
        let mut rng = StdRng::seed_from_u64(56);
        let mut accs = Vec::new();
        for _ in 0..3 {
            let p = Coeffs::new((0..33).map(|_| Fr::random(&mut rng)).collect());
            let z = Fr::random(&mut rng);
            let v = p.evaluate(z);
            let c = s.commit(&p);
            let mut tp = Transcript::new(b"test");
            tp.absorb_scalar(b"eval", &v);
            let proof = s.open(&mut tp, &[(&p, z)]);
            let mut tv = Transcript::new(b"test");
            tv.absorb_scalar(b"eval", &v);
            accs.push(s.prepare(&mut tv, &[(c, z, v)], &proof).unwrap());
        }
        assert!(batch_check(&s, &accs));
        assert!(batch_check(&s, &[]), "empty batch is vacuously valid");
        // Each accumulator also settles alone.
        for acc in &accs {
            assert!(acc.check(&s));
        }
    }

    #[test]
    fn batch_check_rejects_one_bad_accumulator() {
        let s = srs(6);
        let mut rng = StdRng::seed_from_u64(57);
        let mut accs = Vec::new();
        for i in 0..3 {
            let p = Coeffs::new((0..33).map(|_| Fr::random(&mut rng)).collect());
            let z = Fr::random(&mut rng);
            let v = p.evaluate(z);
            let claimed = if i == 1 { v + Fr::one() } else { v };
            let c = s.commit(&p);
            let mut tp = Transcript::new(b"test");
            tp.absorb_scalar(b"eval", &v);
            let proof = s.open(&mut tp, &[(&p, z)]);
            let mut tv = Transcript::new(b"test");
            tv.absorb_scalar(b"eval", &claimed);
            accs.push(s.prepare(&mut tv, &[(c, z, claimed)], &proof).unwrap());
        }
        assert!(!batch_check(&s, &accs));
    }

    #[test]
    fn batch_check_folds_accumulators_across_srs_sizes() {
        // Same tau at different k (fixed seed), so accumulators from
        // different-size circuits combine into one pairing.
        let mut rng = StdRng::seed_from_u64(1234);
        let tau_srs = KzgSrs::setup(7, &mut rng);
        let small = KzgSrs {
            k: 6,
            g1_powers: tau_srs.g1_powers[..64].to_vec(),
            g2: tau_srs.g2,
            tau_g2: tau_srs.tau_g2,
        };
        let mut rng = StdRng::seed_from_u64(58);
        let mut accs = Vec::new();
        for s in [&tau_srs, &small] {
            let p = Coeffs::new((0..30).map(|_| Fr::random(&mut rng)).collect());
            let z = Fr::random(&mut rng);
            let v = p.evaluate(z);
            let c = s.commit(&p);
            let mut tp = Transcript::new(b"test");
            tp.absorb_scalar(b"eval", &v);
            let proof = s.open(&mut tp, &[(&p, z)]);
            let mut tv = Transcript::new(b"test");
            tv.absorb_scalar(b"eval", &v);
            accs.push(s.prepare(&mut tv, &[(c, z, v)], &proof).unwrap());
        }
        assert!(batch_check(&tau_srs, &accs));
    }

    #[test]
    fn proof_size_is_one_point_per_distinct_eval_point() {
        let s = srs(6);
        let mut rng = StdRng::seed_from_u64(55);
        let p = Coeffs::new((0..20).map(|_| Fr::random(&mut rng)).collect());
        let z1 = Fr::random(&mut rng);
        let z2 = Fr::random(&mut rng);
        let mut t = Transcript::new(b"test");
        let proof = s.open(&mut t, &[(&p, z1), (&p, z2), (&p, z1)]);
        assert_eq!(proof.len(), 2 * 32);
    }
}
