//! Inner-product-argument polynomial commitments (transparent setup).
//!
//! Commitments are Pedersen vector commitments over a hashed-to-curve basis;
//! openings are the logarithmic Bulletproofs folding argument. Verification
//! performs an `O(n)` multi-scalar multiplication to reconstruct the folded
//! basis point — this is the source of the higher verification times the
//! paper reports for the IPA backend (Table 7) relative to KZG's two
//! pairings.

use crate::kzg::group_points;
use crate::serial::{ReadError, Reader, Writer};
use zkml_curves::{msm, G1Affine, G1Projective};
use zkml_ff::{Field, Fr};
use zkml_poly::Coeffs;
use zkml_transcript::Transcript;

/// Transparent IPA parameters: a hashed-to-curve basis plus the auxiliary
/// point used to bind claimed inner products.
#[derive(Clone)]
pub struct IpaParams {
    /// log2 of the basis size.
    pub k: u32,
    /// Pedersen basis `G_i` (no discrete-log relations known).
    pub basis: Vec<G1Affine>,
    /// Auxiliary point `U` for the evaluation claim.
    pub u: G1Affine,
}

impl IpaParams {
    /// Derives parameters of size `2^k` deterministically (no trusted setup).
    pub fn setup(k: u32) -> Self {
        let n = 1usize << k;
        let basis = zkml_par::par_map(n, |i| {
            let mut seed = b"zkml-ipa-basis-".to_vec();
            seed.extend_from_slice(&(i as u64).to_le_bytes());
            G1Affine::hash_to_curve(&seed)
        });
        let u = G1Affine::hash_to_curve(b"zkml-ipa-u");
        Self { k, basis, u }
    }

    /// Commits to a polynomial in coefficient form.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is longer than the basis.
    pub fn commit(&self, poly: &Coeffs<Fr>) -> G1Affine {
        assert!(poly.len() <= self.basis.len(), "polynomial exceeds basis");
        msm(&self.basis[..poly.len()], &poly.values).to_affine()
    }

    /// Opens a batch of `(polynomial, point)` queries.
    ///
    /// Queries sharing a point are folded with a transcript challenge into a
    /// single polynomial, then one logarithmic argument is run per distinct
    /// point. Claimed evaluations must already be in the transcript.
    pub fn open(&self, transcript: &mut Transcript, queries: &[(&Coeffs<Fr>, Fr)]) -> Vec<u8> {
        let gamma: Fr = transcript.challenge(b"ipa-gamma");
        let groups = group_points(queries.iter().map(|(_, z)| *z));
        let mut w = Writer::new();
        for (z, idxs) in &groups {
            let mut combined = Coeffs::zero(self.basis.len());
            let mut coeff = Fr::one();
            for &i in idxs {
                for (c, p) in combined.values.iter_mut().zip(&queries[i].0.values) {
                    *c += coeff * *p;
                }
                coeff *= gamma;
            }
            self.open_single(transcript, &combined, *z, &mut w);
        }
        w.finish()
    }

    fn open_single(&self, transcript: &mut Transcript, poly: &Coeffs<Fr>, z: Fr, w: &mut Writer) {
        let n = self.basis.len();
        debug_assert_eq!(poly.len(), n);
        let v = poly.evaluate(z);
        transcript.absorb_scalar(b"ipa-v", &v);
        let xi: Fr = transcript.challenge(b"ipa-xi");
        let u = self.u.to_projective().mul_scalar(&xi).to_affine();

        let mut a = poly.values.clone();
        let mut b = Vec::with_capacity(n);
        let mut cur = Fr::one();
        for _ in 0..n {
            b.push(cur);
            cur *= z;
        }
        let mut g: Vec<G1Affine> = self.basis.clone();

        let mut len = n;
        while len > 1 {
            let half = len / 2;
            let (a_lo, a_hi) = a.split_at(half);
            let (b_lo, b_hi) = b.split_at(half);
            let (g_lo, g_hi) = g.split_at(half);
            let ab_lo: Fr = a_hi.iter().zip(b_lo).map(|(x, y)| *x * *y).sum();
            let ab_hi: Fr = a_lo.iter().zip(b_hi).map(|(x, y)| *x * *y).sum();
            let l = (msm(g_lo, a_hi) + u.to_projective().mul_scalar(&ab_lo)).to_affine();
            let r = (msm(g_hi, a_lo) + u.to_projective().mul_scalar(&ab_hi)).to_affine();
            transcript.absorb(b"ipa-l", &l.to_bytes());
            transcript.absorb(b"ipa-r", &r.to_bytes());
            w.g1(&l);
            w.g1(&r);
            let x: Fr = transcript.challenge(b"ipa-x");
            let x_inv = x.invert().expect("challenge nonzero");

            let mut a2 = Vec::with_capacity(half);
            let mut b2 = Vec::with_capacity(half);
            for i in 0..half {
                a2.push(a_lo[i] + x * a_hi[i]);
                b2.push(b_lo[i] + x_inv * b_hi[i]);
            }
            let g2: Vec<G1Projective> = (0..half)
                .map(|i| g_lo[i].to_projective() + g_hi[i].to_projective().mul_scalar(&x_inv))
                .collect();
            a = a2;
            b = b2;
            g = G1Projective::batch_to_affine(&g2);
            len = half;
        }
        w.scalar(&a[0]);
        transcript.absorb_scalar(b"ipa-a", &a[0]);
    }

    /// Verifies a batched opening produced by [`IpaParams::open`].
    pub fn verify(
        &self,
        transcript: &mut Transcript,
        queries: &[(G1Affine, Fr, Fr)],
        proof: &[u8],
    ) -> Result<(), ReadError> {
        let gamma: Fr = transcript.challenge(b"ipa-gamma");
        let groups = group_points(queries.iter().map(|(_, z, _)| *z));
        let mut r = Reader::new(proof);
        for (z, idxs) in &groups {
            let mut commitment = G1Projective::identity();
            let mut v = Fr::zero();
            let mut coeff = Fr::one();
            for &i in idxs {
                commitment += queries[i].0.to_projective().mul_scalar(&coeff);
                v += coeff * queries[i].2;
                coeff *= gamma;
            }
            self.verify_single(transcript, commitment, *z, v, &mut r)?;
        }
        if !r.is_exhausted() {
            return Err(ReadError("trailing bytes in IPA proof"));
        }
        Ok(())
    }

    fn verify_single(
        &self,
        transcript: &mut Transcript,
        commitment: G1Projective,
        z: Fr,
        v: Fr,
        r: &mut Reader<'_>,
    ) -> Result<(), ReadError> {
        transcript.absorb_scalar(b"ipa-v", &v);
        let xi: Fr = transcript.challenge(b"ipa-xi");
        let u = self.u.to_projective().mul_scalar(&xi);
        let mut p = commitment + u.mul_scalar(&v);

        let rounds = self.k as usize;
        let mut challenges = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let l = r.g1()?;
            let rr = r.g1()?;
            transcript.absorb(b"ipa-l", &l.to_bytes());
            transcript.absorb(b"ipa-r", &rr.to_bytes());
            let x: Fr = transcript.challenge(b"ipa-x");
            let x_inv = x.invert().expect("challenge nonzero");
            p += l.to_projective().mul_scalar(&x) + rr.to_projective().mul_scalar(&x_inv);
            challenges.push((x, x_inv));
        }
        let a_final = r.scalar()?;
        transcript.absorb_scalar(b"ipa-a", &a_final);

        // s_i = prod over rounds j of x_j^{-bit(i)}, where round 1 pairs with
        // the top bit of i (the first fold splits lo/hi halves). Building by
        // doubling therefore consumes challenges from the LAST round first.
        let mut s = vec![Fr::one()];
        for (_, x_inv) in challenges.iter().rev() {
            let mut next = Vec::with_capacity(s.len() * 2);
            next.extend_from_slice(&s);
            next.extend(s.iter().map(|si| *si * *x_inv));
            s = next;
        }
        let g_final = msm(&self.basis, &s);
        // b_final = prod_j (1 + x_j^{-1} z^{2^(k-j)}) by the same folding.
        let mut b_final = Fr::one();
        let mut z_pow = z; // z^(2^0), consumed from the last round backwards
        for (_, x_inv) in challenges.iter().rev() {
            b_final *= Fr::one() + *x_inv * z_pow;
            z_pow = z_pow.square();
        }
        let expect = g_final.mul_scalar(&a_final) + u.mul_scalar(&(a_final * b_final));
        if p == expect {
            Ok(())
        } else {
            Err(ReadError("IPA final check failed"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(k: u32) -> IpaParams {
        IpaParams::setup(k)
    }

    fn pad(mut p: Coeffs<Fr>, n: usize) -> Coeffs<Fr> {
        p.values.resize(n, Fr::zero());
        p
    }

    #[test]
    fn single_open_verifies() {
        let params = params(5);
        let mut rng = StdRng::seed_from_u64(60);
        let p = pad(
            Coeffs::new((0..20).map(|_| Fr::random(&mut rng)).collect()),
            32,
        );
        let z = Fr::random(&mut rng);
        let v = p.evaluate(z);
        let c = params.commit(&p);

        let mut tp = Transcript::new(b"test");
        tp.absorb_scalar(b"eval", &v);
        let proof = params.open(&mut tp, &[(&p, z)]);

        let mut tv = Transcript::new(b"test");
        tv.absorb_scalar(b"eval", &v);
        assert!(params.verify(&mut tv, &[(c, z, v)], &proof).is_ok());
    }

    #[test]
    fn wrong_eval_rejected() {
        let params = params(4);
        let mut rng = StdRng::seed_from_u64(61);
        let p = pad(
            Coeffs::new((0..16).map(|_| Fr::random(&mut rng)).collect()),
            16,
        );
        let z = Fr::random(&mut rng);
        let v = p.evaluate(z);
        let c = params.commit(&p);

        let mut tp = Transcript::new(b"test");
        tp.absorb_scalar(b"eval", &v);
        let proof = params.open(&mut tp, &[(&p, z)]);

        let mut tv = Transcript::new(b"test");
        tv.absorb_scalar(b"eval", &v);
        assert!(params
            .verify(&mut tv, &[(c, z, v + Fr::one())], &proof)
            .is_err());
    }

    #[test]
    fn multi_poly_multi_point_batch() {
        let params = params(5);
        let mut rng = StdRng::seed_from_u64(62);
        let polys: Vec<Coeffs<Fr>> = (0..3)
            .map(|_| {
                pad(
                    Coeffs::new((0..25).map(|_| Fr::random(&mut rng)).collect()),
                    32,
                )
            })
            .collect();
        let z1 = Fr::random(&mut rng);
        let z2 = Fr::random(&mut rng);
        let queries: Vec<(usize, Fr)> = vec![(0, z1), (1, z1), (2, z2)];
        let evals: Vec<Fr> = queries
            .iter()
            .map(|(i, z)| polys[*i].evaluate(*z))
            .collect();
        let commits: Vec<G1Affine> = polys.iter().map(|p| params.commit(p)).collect();

        let mut tp = Transcript::new(b"test");
        for e in &evals {
            tp.absorb_scalar(b"eval", e);
        }
        let pq: Vec<(&Coeffs<Fr>, Fr)> = queries.iter().map(|(i, z)| (&polys[*i], *z)).collect();
        let proof = params.open(&mut tp, &pq);

        let mut tv = Transcript::new(b"test");
        for e in &evals {
            tv.absorb_scalar(b"eval", e);
        }
        let vq: Vec<(G1Affine, Fr, Fr)> = queries
            .iter()
            .zip(&evals)
            .map(|((i, z), e)| (commits[*i], *z, *e))
            .collect();
        assert!(params.verify(&mut tv, &vq, &proof).is_ok());

        let mut tv2 = Transcript::new(b"test");
        for e in &evals {
            tv2.absorb_scalar(b"eval", e);
        }
        let mut vq2 = vq.clone();
        vq2[0].2 += Fr::one();
        assert!(params.verify(&mut tv2, &vq2, &proof).is_err());
    }

    #[test]
    fn proof_is_logarithmic_per_point() {
        let params = params(5);
        let mut rng = StdRng::seed_from_u64(63);
        let p = pad(
            Coeffs::new((0..30).map(|_| Fr::random(&mut rng)).collect()),
            32,
        );
        let z = Fr::random(&mut rng);
        let v = p.evaluate(z);
        let mut t = Transcript::new(b"test");
        t.absorb_scalar(b"eval", &v);
        let proof = params.open(&mut t, &[(&p, z)]);
        // 2 * k points + 1 scalar.
        assert_eq!(proof.len(), 2 * 5 * 32 + 32);
    }

    #[test]
    fn setup_is_deterministic() {
        let a = IpaParams::setup(3);
        let b = IpaParams::setup(3);
        assert_eq!(a.basis, b.basis);
        assert_eq!(a.u, b.u);
        // All points distinct (no accidental collisions).
        for i in 0..a.basis.len() {
            for j in i + 1..a.basis.len() {
                assert_ne!(a.basis[i], a.basis[j]);
            }
        }
    }
}
