//! Polynomial commitment schemes for the ZKML proving stack.
//!
//! Two backends, mirroring the paper's halo2 configuration:
//!
//! * [`KzgSrs`] — pairing-based, universal trusted setup, constant-size
//!   verification (one batched pairing check), smaller per-point openings.
//! * [`IpaParams`] — transparent (no trusted setup), logarithmic proofs per
//!   point but `O(n)` group operations to verify.
//!
//! Both are driven through the [`Params`] enum so the Plonkish layer and the
//! ZKML optimizer can switch backends with a configuration flag, exactly as
//! the paper's Tables 6 and 7 do.

pub mod ipa;
pub mod kzg;
pub mod serial;

pub use ipa::IpaParams;
pub use kzg::{batch_check, KzgAccumulator, KzgSrs};
pub use serial::{ReadError, Reader, Writer};

use rand::RngCore;
use zkml_curves::G1Affine;
use zkml_ff::Fr;
use zkml_poly::Coeffs;
use zkml_transcript::Transcript;

/// The commitment-scheme backend selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// KZG (pairing-based; trusted setup; O(1) verification).
    Kzg,
    /// Inner-product argument (transparent; O(n) verification).
    Ipa,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Kzg => write!(f, "KZG"),
            Backend::Ipa => write!(f, "IPA"),
        }
    }
}

/// Instantiated commitment parameters for one of the two backends.
#[derive(Clone)]
pub enum Params {
    /// KZG structured reference string.
    Kzg(KzgSrs),
    /// Transparent IPA basis.
    Ipa(IpaParams),
}

impl Params {
    /// Sets up parameters supporting polynomials of length up to `2^k`.
    pub fn setup(backend: Backend, k: u32, rng: &mut impl RngCore) -> Self {
        match backend {
            Backend::Kzg => Params::Kzg(KzgSrs::setup(k, rng)),
            Backend::Ipa => Params::Ipa(IpaParams::setup(k)),
        }
    }

    /// Which backend these parameters instantiate.
    pub fn backend(&self) -> Backend {
        match self {
            Params::Kzg(_) => Backend::Kzg,
            Params::Ipa(_) => Backend::Ipa,
        }
    }

    /// log2 of the maximum polynomial length.
    pub fn k(&self) -> u32 {
        match self {
            Params::Kzg(s) => s.k,
            Params::Ipa(p) => p.k,
        }
    }

    /// Commits to a polynomial in coefficient form.
    pub fn commit(&self, poly: &Coeffs<Fr>) -> G1Affine {
        match self {
            Params::Kzg(s) => s.commit(poly),
            Params::Ipa(p) => p.commit(poly),
        }
    }

    /// Opens a batch of `(polynomial, point)` queries.
    ///
    /// IPA folds over the full basis, so polynomials are padded to the
    /// parameter size internally by the IPA path.
    pub fn open(&self, transcript: &mut Transcript, queries: &[(&Coeffs<Fr>, Fr)]) -> Vec<u8> {
        match self {
            Params::Kzg(s) => s.open(transcript, queries),
            Params::Ipa(p) => p.open(transcript, queries),
        }
    }

    /// Verifies a batched opening against `(commitment, point, eval)` claims.
    pub fn verify(
        &self,
        transcript: &mut Transcript,
        queries: &[(G1Affine, Fr, Fr)],
        proof: &[u8],
    ) -> Result<(), ReadError> {
        match self {
            Params::Kzg(s) => s.verify(transcript, queries, proof),
            Params::Ipa(p) => p.verify(transcript, queries, proof),
        }
    }

    /// Like [`Params::verify`], but defers the expensive final check when
    /// the backend supports it.
    ///
    /// KZG runs everything up to (not including) the pairing check and
    /// returns [`Verification::Deferred`]; the caller settles one proof with
    /// [`Verification::settle`] or a whole batch with [`batch_check`]. IPA
    /// has no such accumulator and verifies completely.
    pub fn verify_deferred(
        &self,
        transcript: &mut Transcript,
        queries: &[(G1Affine, Fr, Fr)],
        proof: &[u8],
    ) -> Result<Verification, ReadError> {
        match self {
            Params::Kzg(s) => Ok(Verification::Deferred(
                s.prepare(transcript, queries, proof)?,
            )),
            Params::Ipa(p) => {
                p.verify(transcript, queries, proof)?;
                Ok(Verification::Complete)
            }
        }
    }
}

/// The outcome of [`Params::verify_deferred`]: either the opening is fully
/// verified, or its final pairing check is pending as a [`KzgAccumulator`].
#[derive(Clone, Debug)]
pub enum Verification {
    /// The opening verified completely (IPA path).
    Complete,
    /// All transcript and group work is done; the pairing check is pending.
    Deferred(KzgAccumulator),
}

impl Verification {
    /// Settles this verification against the params it came from.
    pub fn settle(&self, params: &Params) -> bool {
        match (self, params) {
            (Verification::Complete, _) => true,
            (Verification::Deferred(acc), Params::Kzg(s)) => acc.check(s),
            // A deferred KZG accumulator cannot be settled by IPA params.
            (Verification::Deferred(_), Params::Ipa(_)) => false,
        }
    }

    /// The pending accumulator, if any.
    pub fn accumulator(&self) -> Option<&KzgAccumulator> {
        match self {
            Verification::Complete => None,
            Verification::Deferred(acc) => Some(acc),
        }
    }
}
