//! Byte-stream helpers for proof and key serialization.

use zkml_curves::{G1Affine, G2Affine};
use zkml_ff::{Fr, PrimeField};

/// A growable byte sink for proof serialization.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a scalar (32 bytes).
    pub fn scalar(&mut self, v: &Fr) {
        self.buf.extend_from_slice(&v.to_bytes());
    }

    /// Appends a compressed G1 point (32 bytes).
    pub fn g1(&mut self, p: &G1Affine) {
        self.buf.extend_from_slice(&p.to_bytes());
    }

    /// Appends a G2 point (64 bytes).
    pub fn g2(&mut self, p: &G2Affine) {
        self.buf.extend_from_slice(&p.to_bytes());
    }

    /// Finishes and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor over proof bytes with typed reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Error returned when deserialization fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError(pub &'static str);

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proof deserialization error: {}", self.0)
    }
}
impl std::error::Error for ReadError {}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.pos + n > self.buf.len() {
            return Err(ReadError("unexpected end of input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, ReadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, ReadError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a scalar, rejecting non-canonical encodings.
    pub fn scalar(&mut self) -> Result<Fr, ReadError> {
        let b: [u8; 32] = self.take(32)?.try_into().expect("32 bytes");
        Fr::from_bytes(&b).ok_or(ReadError("non-canonical scalar"))
    }

    /// Reads a compressed G1 point, checking the curve equation.
    pub fn g1(&mut self) -> Result<G1Affine, ReadError> {
        let b: [u8; 32] = self.take(32)?.try_into().expect("32 bytes");
        G1Affine::from_bytes(&b).ok_or(ReadError("invalid G1 point"))
    }

    /// Reads a G2 point, checking curve and subgroup membership.
    pub fn g2(&mut self) -> Result<G2Affine, ReadError> {
        let b: [u8; 64] = self.take(64)?.try_into().expect("64 bytes");
        G2Affine::from_bytes(&b).ok_or(ReadError("invalid G2 point"))
    }

    /// Returns true if all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        self.take(n)
    }

    /// Consumes and returns all remaining bytes.
    pub fn remaining(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkml_curves::G1Projective;

    #[test]
    fn roundtrip() {
        let mut w = Writer::new();
        w.u32(7);
        w.u64(1 << 40);
        w.scalar(&Fr::from_u64(123456));
        w.g1(&G1Affine::generator());
        w.g1(&G1Affine::identity());
        w.g2(&G2Affine::generator());
        let bytes = w.finish();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.scalar().unwrap(), Fr::from_u64(123456));
        assert_eq!(r.g1().unwrap(), G1Affine::generator());
        assert!(r.g1().unwrap().is_identity());
        assert_eq!(r.g2().unwrap(), G2Affine::generator());
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_fails() {
        let mut w = Writer::new();
        w.g1(&G1Projective::generator().to_affine());
        let bytes = w.finish();
        let mut r = Reader::new(&bytes[..16]);
        assert!(r.g1().is_err());
    }

    #[test]
    fn bad_point_rejected() {
        let mut bytes = G1Affine::generator().to_bytes();
        bytes[0] ^= 1; // perturb x
        let mut r = Reader::new(&bytes);
        assert!(r.g1().is_err());
    }
}
