//! Rule-level tests for the deterministic-cell engine on hand-built
//! constraint systems, independent of the ZKML compiler.

use zkml_analyze::{analyze, AnalysisInput, FreeReason, RegionSpan};
use zkml_ff::{Fr, PrimeField};
use zkml_plonk::{CellRef, Column, ConstraintSystem, Expression, Preprocessed, Rotation};

fn f(v: u64) -> Fr {
    Fr::from_u64(v)
}

fn adv(i: usize) -> Expression {
    Expression::Advice(i, Rotation::cur())
}

fn fx(i: usize) -> Expression {
    Expression::Fixed(i, Rotation::cur())
}

fn cell(col: usize, row: usize) -> CellRef {
    CellRef {
        column: Column::Advice(col),
        row,
    }
}

/// `assigned` defaults to "rows 0..rows of every advice column".
fn run(
    cs: &ConstraintSystem,
    pre: &Preprocessed,
    k: u32,
    rows: usize,
    inputs: &[CellRef],
) -> zkml_analyze::AnalysisReport {
    let assigned: Vec<CellRef> = (0..cs.num_advice)
        .flat_map(|c| (0..rows).map(move |r| cell(c, r)))
        .collect();
    analyze(&AnalysisInput {
        cs,
        pre,
        k,
        assigned: &assigned,
        inputs,
        regions: &[],
    })
}

/// Unique-unknown linear rule: `q * (a0 + a1 - a2) = 0` with a0, a1 as
/// inputs determines a2 on selector rows, and chains across rows through
/// copies.
#[test]
fn linear_chain_determines() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a0 = cs.advice_column(0);
    let a1 = cs.advice_column(0);
    let a2 = cs.advice_column(0);
    for c in [a0, a1, a2] {
        cs.enable_equality(Column::Advice(c));
    }
    cs.create_gate("add", vec![fx(q) * (adv(a0) + adv(a1) - adv(a2))]);
    let k = 4;
    let rows = 3usize;
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ONE; rows]],
        // Row i+1 consumes row i's sum: a0[i+1] = a2[i].
        copies: vec![(cell(a2, 0), cell(a0, 1)), (cell(a2, 1), cell(a0, 2))],
    };
    let inputs = [cell(a0, 0), cell(a1, 0), cell(a1, 1), cell(a1, 2)];
    let report = run(&cs, &pre, k, rows, &inputs);
    assert!(report.is_clean(), "{report}");
}

/// The same circuit with the selector column left all-zero: the gate
/// partially evaluates to a constant everywhere, so the inputs are never
/// bound and the outputs are never determined.
#[test]
fn dead_selector_frees_everything() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a0 = cs.advice_column(0);
    let a1 = cs.advice_column(0);
    let a2 = cs.advice_column(0);
    cs.create_gate("add", vec![fx(q) * (adv(a0) + adv(a1) - adv(a2))]);
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ZERO; 1]],
        copies: vec![],
    };
    let inputs = [cell(a0, 0), cell(a1, 0)];
    let report = run(&cs, &pre, 4, 1, &inputs);
    assert_eq!(report.free.len(), 3, "{report}");
    assert!(report
        .free
        .iter()
        .any(|fc| fc.column == Column::Advice(a0) && fc.reason == FreeReason::UnboundInput));
    assert!(report
        .free
        .iter()
        .any(|fc| fc.column == Column::Advice(a2) && fc.reason == FreeReason::NotDetermined));
}

/// Booleanity + bit recomposition: `b*(b-1) = 0` per bit plus
/// `x = Σ 2^i b_i` determines every bit from the input.
#[test]
fn bit_decomposition_determines() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let x = cs.advice_column(0);
    let bits: Vec<usize> = (0..4).map(|_| cs.advice_column(0)).collect();
    let mut polys = Vec::new();
    for &b in &bits {
        polys.push(fx(q) * (adv(b) * (adv(b) - Expression::Constant(Fr::ONE))));
    }
    let mut recompose = -adv(x);
    for (i, &b) in bits.iter().enumerate() {
        recompose = recompose + adv(b) * f(1 << i);
    }
    polys.push(fx(q) * recompose);
    cs.create_gate("bits", polys);
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ONE; 1]],
        copies: vec![],
    };
    let inputs = [cell(x, 0)];
    let report = run(&cs, &pre, 4, 1, &inputs);
    assert!(report.is_clean(), "{report}");
}

/// Without the booleanity constraints the recomposition alone leaves the
/// bits free (many decompositions satisfy one linear equation).
#[test]
fn recomposition_without_booleanity_is_flagged() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let x = cs.advice_column(0);
    let bits: Vec<usize> = (0..4).map(|_| cs.advice_column(0)).collect();
    let mut recompose = -adv(x);
    for (i, &b) in bits.iter().enumerate() {
        recompose = recompose + adv(b) * f(1 << i);
    }
    cs.create_gate("bits", vec![fx(q) * recompose]);
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ONE; 1]],
        copies: vec![],
    };
    let inputs = [cell(x, 0)];
    let report = run(&cs, &pre, 4, 1, &inputs);
    assert_eq!(report.free.len(), 4, "{report}");
    assert!(report
        .free
        .iter()
        .all(|fc| fc.reason == FreeReason::NotDetermined));
}

/// Quotient/remainder: `x - d*quot - rem = 0` with `rem` range-checked via
/// a contiguous lookup table determines both unknowns.
#[test]
fn divmod_with_range_lookup_determines() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let table = cs.fixed_column();
    let x = cs.advice_column(0);
    let quot = cs.advice_column(0);
    let rem = cs.advice_column(0);
    let d = f(8);
    cs.create_gate("divmod", vec![fx(q) * (adv(x) - adv(quot) * d - adv(rem))]);
    cs.create_lookup("range", vec![fx(q) * adv(rem)], vec![fx(table)]);
    let k = 4u32;
    let n = 1usize << k;
    let usable = cs.usable_rows(n);
    // Table holds {0..7}; remaining usable rows repeat 0 (contiguous set).
    let table_vals: Vec<Fr> = (0..usable).map(|i| f((i % 8) as u64)).collect();
    let mut sel = vec![Fr::ZERO; usable];
    sel[0] = Fr::ONE;
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![sel, table_vals],
        copies: vec![],
    };
    let inputs = [cell(x, 0)];
    let report = run(&cs, &pre, k, 1, &inputs);
    assert!(report.is_clean(), "{report}");
}

/// Functional lookup: a 2-column fixed table mapping key -> value
/// determines the output cell once the key cell is known.
#[test]
fn functional_lookup_determines() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let tk = cs.fixed_column();
    let tv = cs.fixed_column();
    let x = cs.advice_column(0);
    let y = cs.advice_column(0);
    cs.create_lookup(
        "nonlin",
        vec![fx(q) * adv(x), fx(q) * adv(y)],
        vec![fx(tk), fx(tv)],
    );
    let k = 4u32;
    let n = 1usize << k;
    let usable = cs.usable_rows(n);
    let keys: Vec<Fr> = (0..usable).map(|i| f(i as u64)).collect();
    let vals: Vec<Fr> = (0..usable).map(|i| f((i * i) as u64)).collect();
    let mut sel = vec![Fr::ZERO; usable];
    sel[0] = Fr::ONE;
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![sel, keys, vals],
        copies: vec![],
    };
    let inputs = [cell(x, 0)];
    let report = run(&cs, &pre, k, 1, &inputs);
    assert!(report.is_clean(), "{report}");
}

/// A *non*-functional table (two rows share a key with different values)
/// must NOT determine the output.
#[test]
fn ambiguous_lookup_is_flagged() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let tk = cs.fixed_column();
    let tv = cs.fixed_column();
    let x = cs.advice_column(0);
    let y = cs.advice_column(0);
    cs.create_lookup(
        "multi",
        vec![fx(q) * adv(x), fx(q) * adv(y)],
        vec![fx(tk), fx(tv)],
    );
    let k = 4u32;
    let n = 1usize << k;
    let usable = cs.usable_rows(n);
    // Key 0 maps to both 0 and 1: a cheating prover can pick either.
    let keys = vec![Fr::ZERO; usable];
    let vals: Vec<Fr> = (0..usable).map(|i| f((i % 2) as u64)).collect();
    let mut sel = vec![Fr::ZERO; usable];
    sel[0] = Fr::ONE;
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![sel, keys, vals],
        copies: vec![],
    };
    let inputs = [cell(x, 0)];
    let report = run(&cs, &pre, k, 1, &inputs);
    assert_eq!(report.free.len(), 1, "{report}");
    assert_eq!(report.free[0].column, Column::Advice(y));
    assert_eq!(report.free[0].reason, FreeReason::NotDetermined);
}

/// Max pattern: `(m - a)(m - b) = 0` with both `m - a` and `m - b`
/// range-checked on the row pins `m` to the larger of the two.
#[test]
fn max_pattern_determines() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let table = cs.fixed_column();
    let a = cs.advice_column(0);
    let b = cs.advice_column(0);
    let m = cs.advice_column(0);
    cs.create_gate("max", vec![fx(q) * ((adv(m) - adv(a)) * (adv(m) - adv(b)))]);
    cs.create_lookup("range_a", vec![fx(q) * (adv(m) - adv(a))], vec![fx(table)]);
    cs.create_lookup("range_b", vec![fx(q) * (adv(m) - adv(b))], vec![fx(table)]);
    let k = 4u32;
    let n = 1usize << k;
    let usable = cs.usable_rows(n);
    let table_vals: Vec<Fr> = (0..usable).map(|i| f((i % 8) as u64)).collect();
    let mut sel = vec![Fr::ZERO; usable];
    sel[0] = Fr::ONE;
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![sel, table_vals],
        copies: vec![],
    };
    let inputs = [cell(a, 0), cell(b, 0)];
    let report = run(&cs, &pre, k, 1, &inputs);
    assert!(report.is_clean(), "{report}");
}

/// The classic missing-booleanity bug: `(m - a)(m - b) = 0` with NO range
/// checks leaves m free to be either root — flagged.
#[test]
fn max_without_ranges_is_flagged() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a = cs.advice_column(0);
    let b = cs.advice_column(0);
    let m = cs.advice_column(0);
    cs.create_gate("max", vec![fx(q) * ((adv(m) - adv(a)) * (adv(m) - adv(b)))]);
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ONE; 1]],
        copies: vec![],
    };
    let inputs = [cell(a, 0), cell(b, 0)];
    let report = run(&cs, &pre, 4, 1, &inputs);
    assert_eq!(report.free.len(), 1, "{report}");
    assert_eq!(report.free[0].column, Column::Advice(m));
}

/// Cells anchored to instance cells through the permutation are known.
#[test]
fn instance_copies_anchor() {
    let mut cs = ConstraintSystem::new();
    cs.instance_column();
    let a0 = cs.advice_column(0);
    cs.enable_equality(Column::Advice(a0));
    cs.enable_equality(Column::Instance(0));
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![],
        copies: vec![(
            CellRef {
                column: Column::Instance(0),
                row: 0,
            },
            cell(a0, 0),
        )],
    };
    let report = run(&cs, &pre, 4, 1, &[]);
    assert!(report.is_clean(), "{report}");
}

/// Region metadata attributes free cells to the owning gadget.
#[test]
fn free_cells_carry_region_labels() {
    let mut cs = ConstraintSystem::new();
    let q = cs.fixed_column();
    let a0 = cs.advice_column(0);
    let a1 = cs.advice_column(0);
    cs.create_gate("noop", vec![fx(q) * (adv(a0) - adv(a1))]);
    let pre = Preprocessed {
        committed: Vec::new(),
        fixed: vec![vec![Fr::ZERO; 1]],
        copies: vec![],
    };
    let assigned = [cell(a0, 0), cell(a1, 0)];
    let regions = [RegionSpan {
        label: "Relu { n: 1 }".into(),
        columns: 0..2,
        rows: 0..1,
    }];
    let report = analyze(&AnalysisInput {
        cs: &cs,
        pre: &pre,
        k: 4,
        assigned: &assigned,
        inputs: &[],
        regions: &regions,
    });
    assert_eq!(report.free.len(), 2);
    for fc in &report.free {
        assert_eq!(fc.region.as_deref(), Some("Relu { n: 1 }"));
        assert_eq!(fc.gadget.as_deref(), Some("Relu { n: 1 }"));
        // Display stays stable for error surfaces.
        let s = fc.to_string();
        assert!(s.contains("row 0"), "{s}");
    }
}
